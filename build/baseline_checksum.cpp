#include <cstdint>
#include <cstring>
#include <iostream>
#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"
using namespace shears;
// FNV-1a over the core record fields (stable across struct layout changes).
static std::uint64_t record_hash(const atlas::MeasurementDataset& ds) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) { h ^= b[i]; h *= 0x100000001b3ULL; }
  };
  for (const auto& m : ds.records()) {
    mix(&m.probe_id, sizeof m.probe_id);
    mix(&m.region_index, sizeof m.region_index);
    mix(&m.tick, sizeof m.tick);
    mix(&m.min_ms, sizeof m.min_ms);
    mix(&m.avg_ms, sizeof m.avg_ms);
    mix(&m.max_ms, sizeof m.max_ms);
    mix(&m.sent, sizeof m.sent);
    mix(&m.received, sizeof m.received);
  }
  return h;
}
int main() {
  atlas::PlacementConfig pc; pc.probe_count = 400; pc.seed = 11;
  const auto fleet = atlas::ProbeFleet::generate(pc);
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;
  for (double uptime : {1.0, 0.9}) {
    for (unsigned threads : {1u, 4u}) {
      atlas::CampaignConfig cc; cc.duration_days = 3; cc.seed = 13;
      cc.threads = threads; cc.probe_uptime = uptime;
      const auto ds = atlas::Campaign(fleet, registry, model, cc).run();
      std::cout << "uptime=" << uptime << " threads=" << threads
                << " n=" << ds.size() << " hash=" << record_hash(ds) << "\n";
    }
  }
  return 0;
}
