// latency-shears — umbrella header.
//
// Reproduction of "Pruning Edge Research with Latency Shears" (HotNets '20).
// Pulls in the whole public API:
//
//   shears::geo       — coordinates, continents, the country registry
//   shears::stats     — RNG, distributions, ECDFs, summaries, bootstrap
//   shears::obs       — metrics registry, spans, telemetry snapshots
//   shears::topology  — the seven providers and 101 cloud regions
//   shears::net       — the Internet latency model (paths + last mile)
//   shears::atlas     — probe fleet, scheduler, campaign engine, dataset
//   shears::faults    — deterministic fault schedules, retry & quarantine
//   shears::apps      — perception thresholds and the Fig. 2 app catalog
//   shears::trends    — the Fig. 1 zeitgeist series and era analytics
//   shears::core      — the §4 analyses and the Fig. 8 feasibility zone
//   shears::serve     — columnar store, spatial index, the latency oracle
//   shears::report    — text tables and ASCII plots
//
// Typical use (see examples/quickstart.cpp):
//
//   auto fleet    = shears::atlas::ProbeFleet::generate({});
//   auto registry = shears::topology::CloudRegistry::campaign_footprint();
//   shears::net::LatencyModel model;
//   shears::atlas::Campaign campaign(fleet, registry, model, {});
//   auto dataset  = campaign.run();
//   auto bands    = shears::core::band_country_latencies(
//       shears::core::country_min_latency(dataset));
#pragma once

#include "apps/application.hpp"
#include "apps/thresholds.hpp"
#include "atlas/campaign.hpp"
#include "atlas/credits.hpp"
#include "atlas/isp.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "atlas/probe.hpp"
#include "atlas/selection.hpp"
#include "atlas/tags.hpp"
#include "core/access_comparison.hpp"
#include "core/analysis.hpp"
#include "core/feasibility.hpp"
#include "config/ini.hpp"
#include "config/scenario.hpp"
#include "core/quality.hpp"
#include "core/whatif.hpp"
#include "edge/deployment.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/resilience.hpp"
#include "geo/city.hpp"
#include "geo/continent.hpp"
#include "geo/coordinates.hpp"
#include "geo/country.hpp"
#include "geo/spatial_index.hpp"
#include "net/access.hpp"
#include "net/endpoint.hpp"
#include "net/latency_model.hpp"
#include "net/path.hpp"
#include "net/ping.hpp"
#include "net/segments.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "opt/candidates.hpp"
#include "opt/overlay.hpp"
#include "opt/search.hpp"
#include "report/plot.hpp"
#include "report/resilience.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"
#include "route/graph.hpp"
#include "route/path_provider.hpp"
#include "route/steering.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "serve/reference.hpp"
#include "serve/snapshot.hpp"
#include "stats/bootstrap.hpp"
#include "stats/distributions.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/p2_quantile.hpp"
#include "stats/ranktest.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "topology/provider.hpp"
#include "topology/region.hpp"
#include "topology/registry.hpp"
#include "trends/crawler.hpp"
#include "trends/trends.hpp"
