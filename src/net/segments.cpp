#include "net/segments.hpp"

#include <algorithm>
#include <cmath>

#include "stats/distributions.hpp"

namespace shears::net {

namespace {

/// Hops attributed to the metro/aggregation part of the path.
constexpr double kMetroHops = 3.0;
/// Hops attributed to the datacenter edge + fabric.
constexpr double kDatacenterHops = 1.0;

}  // namespace

SegmentBreakdown decompose_path(const LatencyModel& model, const Endpoint& src,
                                const topology::CloudRegion& dst) {
  const PathCharacteristics path = model.path_to(src, dst);
  const PathModelConfig& config = model.config().path;

  SegmentBreakdown breakdown;
  breakdown[PathSegment::kLastMile] = model.access_profile_of(src).median_ms;

  // Propagation split: the first `min_routed_km` of the routed path are
  // metro/aggregation; the rest is long-haul transit.
  const double metro_km = std::min(path.routed_km, config.min_routed_km);
  const double metro_prop = 2.0 * metro_km * config.fibre_us_per_km / 1000.0;
  const double transit_prop = path.propagation_ms - metro_prop;

  // Processing split mirrors the hop model: base hops are metro + DC,
  // distance hops ride the transit, the public-transit surcharge is the
  // peering hand-offs.
  const double distance_hops = path.routed_km / config.km_per_hop;
  const double peering_hops =
      topology::backbone_class(dst.provider) == topology::BackboneClass::kPublic
          ? config.extra_public_hops
          : 0.0;

  breakdown[PathSegment::kAccessNetwork] =
      metro_prop + kMetroHops * config.per_hop_ms;
  breakdown[PathSegment::kTransit] =
      transit_prop + distance_hops * config.per_hop_ms;
  breakdown[PathSegment::kPeeringOrBackbone] =
      peering_hops * config.per_hop_ms;
  breakdown[PathSegment::kDatacenter] = kDatacenterHops * config.per_hop_ms;
  return breakdown;
}

std::vector<TracerouteHop> traceroute(const LatencyModel& model,
                                      const Endpoint& src,
                                      const topology::CloudRegion& dst,
                                      stats::Xoshiro256& rng) {
  const SegmentBreakdown breakdown = decompose_path(model, src, dst);
  const PathCharacteristics path = model.path_to(src, dst);
  const PathModelConfig& config = model.config().path;

  // Hop plan: (segment, count, label stem). Counts follow the hop model,
  // with at least one hop per non-empty segment.
  struct SegmentPlan {
    PathSegment segment;
    int hops;
    const char* stem;
  };
  const int transit_hops = std::max(
      1, static_cast<int>(std::lround(path.routed_km / config.km_per_hop)));
  const int peering_hops =
      breakdown[PathSegment::kPeeringOrBackbone] > 0.0
          ? static_cast<int>(config.extra_public_hops)
          : 1;  // private backbones still show one hand-off hop
  const SegmentPlan plan[] = {
      {PathSegment::kLastMile, 1, "cpe"},
      {PathSegment::kAccessNetwork, 3, "metro"},
      {PathSegment::kTransit, transit_hops, "transit"},
      {PathSegment::kPeeringOrBackbone, peering_hops, "peer"},
      {PathSegment::kDatacenter, 1, "dc"},
  };

  std::vector<TracerouteHop> hops;
  int ttl = 0;
  double expected_cum = 0.0;
  double observed_floor = 0.0;
  for (const SegmentPlan& seg : plan) {
    const double budget = breakdown[seg.segment];
    for (int i = 0; i < seg.hops; ++i) {
      ++ttl;
      expected_cum += budget / seg.hops;
      TracerouteHop hop;
      hop.ttl = ttl;
      hop.segment = seg.segment;
      hop.label = std::string(seg.stem) + std::to_string(i + 1) + "." +
                  std::string(seg.segment == PathSegment::kDatacenter
                                  ? dst.region_id
                                  : "as");
      // TTL-expired responses occasionally go unanswered (rate limiting).
      hop.responded = !rng.bernoulli(0.08);
      if (hop.responded) {
        const double sample =
            stats::sample_lognormal_median(rng, expected_cum, 1.12);
        // Per-hop RTTs are individually jittered but a traceroute's
        // cumulative reading rarely decreases; enforce the usual monotone
        // presentation.
        hop.rtt_ms = std::max(sample, observed_floor);
        observed_floor = hop.rtt_ms;
      }
      hops.push_back(std::move(hop));
    }
  }
  return hops;
}

}  // namespace shears::net
