// Lane-batched burst kernel (see burst_lanes.hpp for the contract).
//
// Compiled as a SIMD kernel TU (cmake/ShearsKernels.cmake): -mavx2 (unless
// SHEARS_DISABLE_SIMD), -O3, -ffp-contract=off, -fno-trapping-math,
// -fno-math-errno. There are no intrinsics here — the speedup comes from
// every phase being a plain array loop the autovectorizer turns into
// 4-wide AVX2 code: the draw grid is one lockstep fill, the masks and
// uniforms are branch-free derivations, and the transcendentals are the
// polynomial exp/log/cossin of stats/vecmath.hpp inlined into the loop
// bodies instead of scalar libm calls.
#include "net/burst_lanes.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "stats/vecmath.hpp"

namespace shears::net {
namespace {

using stats::vec::cossin_2pi;
using stats::vec::vexp;
using stats::vec::vlog;
using stats::vec::vsqrt;

constexpr std::size_t kSlots =
    static_cast<std::size_t>(kMaxBatchedPackets) * kBurstLanes;

/// Uniform in [0, 1) from a raw draw: the top 52 bits become the mantissa
/// of a double in [1, 2), minus 1. Exactly (x >> 12) * 2^-52, but with no
/// int64->double conversion (which AVX2 cannot vectorize). One bit less
/// resolution than the scalar next_double(); the engines are held to
/// distributional agreement, not shared bits.
inline double to_unit(std::uint64_t x) noexcept {
  return std::bit_cast<double>(0x3FF0000000000000ULL | (x >> 12)) - 1.0;
}

}  // namespace

void sample_burst_lanes(const LatencyModelConfig& config,
                        const BurstStateLanes& lanes, double excess_sigma,
                        int packets, stats::XoshiroLanes& rng,
                        std::array<PingResult, kBurstLanes>& out) noexcept {
  const std::size_t np = static_cast<std::size_t>(packets);
  const std::size_t n = np * kBurstLanes;

  // --- Phase A: one lockstep fill generates the whole draw grid. Each
  // lane's stream is consumed kind-major: np loss draws, np Box–Muller U,
  // np V, np bufferbloat Bernoullis, np bufferbloat severities, np spike
  // Bernoullis, np spike severities — kDrawsPerPacket * np in total, a
  // pure function of the lane's own stream position. Row r holds draw r
  // of every lane, so kind block k is the contiguous range
  // draws[k*n .. k*n+n) and its element p*kBurstLanes+l is already the
  // slot index used everywhere below.
  std::uint64_t draws[kDrawsPerPacket * kSlots];
  rng.fill_u64_lockstep(draws, kDrawsPerPacket * np, lanes.active);
  const std::uint64_t* g_loss = draws + 0 * n;
  const std::uint64_t* g_u = draws + 1 * n;
  const std::uint64_t* g_v = draws + 2 * n;
  const std::uint64_t* g_bloat = draws + 3 * n;
  const std::uint64_t* g_wsev = draws + 4 * n;
  const std::uint64_t* g_spike = draws + 5 * n;
  const std::uint64_t* g_psev = draws + 6 * n;

  // Masks and uniforms, one single-purpose loop each (mixing u64 mask
  // stores and double stores in one body defeats the vectorizer). The
  // masks are u64 0/1 so the compare result stays in the integer lanes.
  // `u < p` reproduces bernoulli()'s clamping for free: u >= 0 rejects
  // p <= 0, u < 1 accepts p >= 1.
  std::uint64_t lost[kSlots];
  std::uint64_t has_bloat[kSlots];
  std::uint64_t has_spike[kSlots];
  double uu[kSlots], uv[kSlots];
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t l = 0; l < kBurstLanes; ++l) {
      const std::size_t idx = p * kBurstLanes + l;
      lost[idx] = to_unit(g_loss[idx]) < lanes.loss[l] ? 1 : 0;
    }
  for (std::size_t i = 0; i < n; ++i) uu[i] = to_unit(g_u[i]);
  for (std::size_t i = 0; i < n; ++i) uv[i] = to_unit(g_v[i]);
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t l = 0; l < kBurstLanes; ++l) {
      const std::size_t idx = p * kBurstLanes + l;
      has_bloat[idx] =
          to_unit(g_bloat[idx]) < lanes.bloat_probability[l] ? 1 : 0;
    }
  for (std::size_t i = 0; i < n; ++i)
    has_spike[i] = to_unit(g_spike[i]) < config.spike_probability ? 1 : 0;

  // --- Phase B: batched transcendentals.
  // One Box–Muller pair per packet serves both lognormal factors:
  // radius r = sqrt(-2 log U), angle (c, s) = cossin(2*pi*V), giving the
  // two independent standard normals r*c (queueing excess) and r*s
  // (access latency). log_poly's DBL_MIN clamp keeps the U == 0 corner
  // finite.
  double w[kSlots], radius[kSlots];
  vlog(uu, w, n);
  for (std::size_t i = 0; i < n; ++i) w[i] = -2.0 * w[i];
  vsqrt(w, radius, n);

  double t1[kSlots], t2[kSlots];
  for (std::size_t i = 0; i < n; ++i) {
    double c, s;
    cossin_2pi(uv[i], c, s);
    t1[i] = excess_sigma * (radius[i] * c);
    // log_spread is per-lane, folded in below; keep the raw normal here.
    t2[i] = radius[i] * s;
  }
  vexp(t1, t1, n);
  double body1[kSlots], body2[kSlots];
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t l = 0; l < kBurstLanes; ++l) {
      const std::size_t idx = p * kBurstLanes + l;
      body1[idx] = lanes.excess_median_ms[l] * t1[idx];
      t2[idx] = lanes.log_spread[l] * t2[idx];
    }
  vexp(t2, t2, n);
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t l = 0; l < kBurstLanes; ++l) {
      const std::size_t idx = p * kBurstLanes + l;
      body2[idx] = lanes.median_ms[l] * t2[idx];
    }

  // Bufferbloat Weibull(0.8, scale_l) and spike Pareto(x_min, alpha)
  // severities: only a minority of slots draws either (bloat is a
  // per-burst probability, spikes are rare), so both pipelines run over
  // a compacted slot list instead of the full grid. Untouched slots stay
  // 0.0, which lets phase C add them unconditionally.
  double wsev[kSlots], psev[kSlots];
  for (std::size_t i = 0; i < n; ++i) wsev[i] = psev[i] = 0.0;
  double packed[kSlots + 4];
  int slot_of[kSlots];

  // Branchless compaction: unconditional store, advance by the mask.
  // Data-dependent `if`s here mispredict ~30% of the time on the bloat
  // Bernoulli and cost more than the wasted stores.
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    packed[m] = 1.0 - to_unit(g_wsev[i]);  // (0, 1]: log stays finite
    slot_of[m] = static_cast<int>(i);
    m += has_bloat[i];
  }
  if (m > 0) {
    // Pad to a full vector; -log(1) == 0 makes the pad slots inert.
    const std::size_t mp = (m + 3) & ~std::size_t{3};
    for (std::size_t j = m; j < mp; ++j) packed[j] = 1.0;
    // scale * (-log u)^(1/0.8) via the double-log pipeline
    // exp(1.25 * log(-log u)); u == 1 rides the log clamp down to a
    // denormal-scale ~0, matching the scalar 0 within epsilon.
    vlog(packed, packed, mp);
    for (std::size_t j = 0; j < mp; ++j) packed[j] = -packed[j];
    vlog(packed, packed, mp);
    for (std::size_t j = 0; j < mp; ++j) packed[j] = 1.25 * packed[j];
    vexp(packed, packed, mp);
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t i = static_cast<std::size_t>(slot_of[j]);
      wsev[i] = lanes.bloat_scale_ms[i % kBurstLanes] * packed[j];
    }
  }

  m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    packed[m] = 1.0 - to_unit(g_psev[i]);
    slot_of[m] = static_cast<int>(i);
    m += has_spike[i];
  }
  if (m > 0) {
    const std::size_t mp = (m + 3) & ~std::size_t{3};
    for (std::size_t j = m; j < mp; ++j) packed[j] = 1.0;
    // x_min * u^(-1/alpha) = x_min * exp(-log(u) / alpha).
    const double neg_inv_alpha = -1.0 / config.spike_alpha;
    vlog(packed, packed, mp);
    for (std::size_t j = 0; j < mp; ++j) packed[j] = neg_inv_alpha * packed[j];
    vexp(packed, packed, mp);
    for (std::size_t j = 0; j < m; ++j)
      psev[static_cast<std::size_t>(slot_of[j])] =
          config.spike_min_ms * packed[j];
  }

  // --- Phase C: per-packet RTT composition in sample_ping's exact
  // order, then the burst aggregation of aggregate_burst. body1/body2
  // are exact zeros when a lane's median is zero (0 * exp == 0), the
  // same value the scalar guards contribute; the unconditional
  // latency_scale / offset / clamp steps are exact IEEE identities for
  // neutral lanes (see sample_ping_neutral).
  const bool excess_on = config.excess_fraction > 0.0;
  double rtt[kSlots];
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t l = 0; l < kBurstLanes; ++l) {
      const std::size_t idx = p * kBurstLanes + l;
      double r = lanes.base_rtt_ms[l];
      r += excess_on ? body1[idx] : 0.0;
      r *= lanes.latency_scale[l];
      double access = body2[idx] + wsev[idx];
      access = access < 0.2 ? 0.2 : access;
      r += access;
      r += psev[idx];
      r = r + lanes.offset_ms[l];
      rtt[idx] = r < 0.0 ? 0.0 : r;
    }

  for (std::size_t l = 0; l < kBurstLanes; ++l) {
    out[l] = PingResult{};
    if (!lanes.active[l]) continue;
    PingResult& result = out[l];
    result.sent = packets;
    double sum = 0.0;
    for (std::size_t p = 0; p < np; ++p) {
      const std::size_t idx = p * kBurstLanes + l;
      if (lost[idx]) continue;
      const double r = rtt[idx];
      if (result.received == 0) {
        result.min_ms = result.max_ms = r;
      } else {
        result.min_ms = std::min(result.min_ms, r);
        result.max_ms = std::max(result.max_ms, r);
      }
      sum += r;
      ++result.received;
    }
    if (result.received > 0) result.avg_ms = sum / result.received;
  }
}

}  // namespace shears::net
