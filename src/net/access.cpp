#include "net/access.hpp"

#include "stats/distributions.hpp"

namespace shears::net {

AccessProfile base_profile(AccessTechnology t) noexcept {
  // Medians are added round-trip milliseconds on a tier-1 network.
  // Sources (paper citations in brackets): home broadband 2-15 ms [65],
  // WiFi adds ~10 ms over its uplink [66], LTE 20-40 ms with seconds-long
  // bufferbloat episodes [35], early commercial 5G ~1.5-2x better than LTE
  // but far from the 1 ms ITU target [49, 71].
  switch (t) {
    case AccessTechnology::kEthernet:
      return {1.5, 1.30, 0.002, 15.0, 0.001};
    case AccessTechnology::kFibre:
      return {3.5, 1.35, 0.004, 20.0, 0.001};
    case AccessTechnology::kCable:
      return {10.0, 1.45, 0.010, 40.0, 0.003};
    case AccessTechnology::kDsl:
      return {16.0, 1.45, 0.015, 60.0, 0.004};
    case AccessTechnology::kWifi:
      return {16.0, 1.70, 0.030, 60.0, 0.008};
    case AccessTechnology::kLte:
      return {37.0, 1.60, 0.060, 220.0, 0.015};
    case AccessTechnology::kFiveG:
      return {14.0, 1.50, 0.030, 120.0, 0.008};
  }
  return {};
}

AccessProfile profile_for(AccessTechnology t,
                          geo::ConnectivityTier tier) noexcept {
  AccessProfile p = base_profile(t);
  const double m = tier_latency_multiplier(tier);
  p.median_ms *= m;
  // Burstiness and loss grow with tier too, but sub-linearly.
  const double burst = 1.0 + (m - 1.0) * 0.75;
  p.bloat_probability *= burst;
  p.loss_rate *= burst;
  return p;
}

namespace {

// The pre-cache engine compiled the distribution samplers in their own
// translation unit, so every recomputed access sample paid real call
// boundaries. These wrappers preserve those boundaries for this
// (reference) entry point — the cached kernel uses the header-inlined
// samplers instead. Letting the optimiser inline through here would make
// the benchmark baseline faster than the engine it stands in for.
[[gnu::noinline]] double lognormal_median_call(stats::Xoshiro256& rng,
                                               double median,
                                               double spread) noexcept {
  return stats::sample_lognormal_median(rng, median, spread);
}

[[gnu::noinline]] double weibull_call(stats::Xoshiro256& rng, double shape,
                                      double scale) noexcept {
  return stats::sample_weibull(rng, shape, scale);
}

}  // namespace

double sample_access_latency(const AccessProfile& profile,
                             stats::Xoshiro256& rng) noexcept {
  // Verbatim pre-cache body (bit-identical to sample_access_latency_raw
  // with this profile's derived log-spread).
  double latency = lognormal_median_call(rng, profile.median_ms,
                                         profile.spread);
  if (rng.bernoulli(profile.bloat_probability)) {
    // Bufferbloat episode: shape < 1 gives the heavy upper tail observed
    // on loaded cellular links (occasionally whole seconds).
    latency += weibull_call(rng, 0.8, profile.bloat_scale_ms);
  }
  // A physical floor: no access technology contributes negative latency,
  // and even ideal ethernet costs a few hundred microseconds round trip.
  return latency < 0.2 ? 0.2 : latency;
}

double sample_access_latency_presigma(const AccessProfile& profile,
                                      double log_spread,
                                      stats::Xoshiro256& rng) noexcept {
  return sample_access_latency_raw(profile.median_ms, log_spread,
                                   profile.bloat_probability,
                                   profile.bloat_scale_ms, rng);
}

}  // namespace shears::net
