#include "net/access.hpp"

#include "stats/distributions.hpp"

namespace shears::net {

AccessProfile base_profile(AccessTechnology t) noexcept {
  // Medians are added round-trip milliseconds on a tier-1 network.
  // Sources (paper citations in brackets): home broadband 2-15 ms [65],
  // WiFi adds ~10 ms over its uplink [66], LTE 20-40 ms with seconds-long
  // bufferbloat episodes [35], early commercial 5G ~1.5-2x better than LTE
  // but far from the 1 ms ITU target [49, 71].
  switch (t) {
    case AccessTechnology::kEthernet:
      return {1.5, 1.30, 0.002, 15.0, 0.001};
    case AccessTechnology::kFibre:
      return {3.5, 1.35, 0.004, 20.0, 0.001};
    case AccessTechnology::kCable:
      return {10.0, 1.45, 0.010, 40.0, 0.003};
    case AccessTechnology::kDsl:
      return {16.0, 1.45, 0.015, 60.0, 0.004};
    case AccessTechnology::kWifi:
      return {16.0, 1.70, 0.030, 60.0, 0.008};
    case AccessTechnology::kLte:
      return {37.0, 1.60, 0.060, 220.0, 0.015};
    case AccessTechnology::kFiveG:
      return {14.0, 1.50, 0.030, 120.0, 0.008};
  }
  return {};
}

AccessProfile profile_for(AccessTechnology t,
                          geo::ConnectivityTier tier) noexcept {
  AccessProfile p = base_profile(t);
  const double m = tier_latency_multiplier(tier);
  p.median_ms *= m;
  // Burstiness and loss grow with tier too, but sub-linearly.
  const double burst = 1.0 + (m - 1.0) * 0.75;
  p.bloat_probability *= burst;
  p.loss_rate *= burst;
  return p;
}

double sample_access_latency(const AccessProfile& profile,
                             stats::Xoshiro256& rng) noexcept {
  double latency =
      stats::sample_lognormal_median(rng, profile.median_ms, profile.spread);
  if (rng.bernoulli(profile.bloat_probability)) {
    // Bufferbloat episode: shape < 1 gives the heavy upper tail observed
    // on loaded cellular links (occasionally whole seconds).
    latency += stats::sample_weibull(rng, 0.8, profile.bloat_scale_ms);
  }
  // A physical floor: no access technology contributes negative latency,
  // and even ideal ethernet costs a few hundred microseconds round trip.
  return latency < 0.2 ? 0.2 : latency;
}

}  // namespace shears::net
