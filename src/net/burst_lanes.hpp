// Lane-batched burst sampling: the block form of detail::sample_ping.
//
// The campaign's scalar hot loop samples one probe's burst at a time;
// per packet that is ~8 serial RNG draws (with data-dependent rejection
// loops) plus ~4 serial libm transcendentals, which together dominate
// the per-sample cost. The batched kernel samples one burst for up to
// kBurstLanes probes at once in three phases:
//
//   A. lockstep draw generation — every active lane consumes exactly
//      kDrawsPerPacket raw 64-bit draws per packet, in a fixed kind-major
//      schedule (`packets` loss Bernoullis, then the Box–Muller U block,
//      V block, bufferbloat Bernoullis, bufferbloat severities, spike
//      Bernoullis, spike severities), so the whole draw grid is one
//      branch-free XoshiroLanes::fill_u64_lockstep call: eight streams
//      advanced in integer vector lanes.
//   B. batched math — the draws go through array-form log/sqrt/cossin/
//      exp (stats/vecmath.hpp) over all lanes x packets at once. The two
//      lognormal factors share one Box–Muller pair (radius from U, the
//      cos/sin pair of V giving two independent normals); the Weibull
//      and Pareto tails run over compacted slot lists since only a
//      minority of packets draws them.
//   C. combine + aggregate — the per-packet RTT composition (the exact
//      arithmetic of detail::sample_ping) and the burst min/avg/max
//      aggregation, as branch-light array ops.
//
// Determinism contract (DESIGN.md §6): the batched engine is
// *distribution-equivalent* to the scalar one, not draw-for-draw equal —
// the fixed draw schedule and the Box–Muller (rather than rejection
// polar) normals consume each lane's stream differently, so individual
// records differ while loss rates, fault structure and RTT quantiles
// agree within the bounds the differential suite (src/check) enforces.
// Within the batched engine everything stays exact: results are a pure
// function of (config, probe ids, tick), bit-identical across thread
// counts and shardings — a lane advances only when its own burst
// samples, by exactly kDrawsPerPacket * packets — and bit-identical
// between the AVX2 and forced-scalar builds (exact-order IEEE ops,
// -ffp-contract=off, polynomial transcendentals instead of libm).
//
// Faulted windows ride the same arrays: a lane's Perturbation is three
// more SoA slots (composed loss, latency scale, offset), so fault
// exposure no longer falls off the fast path.
#pragma once

#include <array>
#include <cstddef>

#include "net/latency_model.hpp"
#include "stats/lanes.hpp"

namespace shears::net {

inline constexpr std::size_t kBurstLanes = stats::XoshiroLanes::kLanes;

/// Raw 64-bit draws each active lane consumes per packet — the fixed
/// schedule that keeps generation branch-free. Pinned by test so the
/// "lane l advanced exactly this much" invariant (which thread/shard
/// invariance rests on) cannot drift silently.
inline constexpr std::size_t kDrawsPerPacket = 7;

/// Bursts above this packet count fall back to the scalar engine (the
/// kernel's scratch is stack-sized); Atlas-style campaigns use 3-4.
inline constexpr int kMaxBatchedPackets = 16;

/// detail::BurstState transposed across lanes, plus a participation
/// mask. Inactive lanes (block tail, exposure-lost bursts, hung or
/// offline probes) consume no draws and produce a default PingResult.
struct BurstStateLanes {
  std::array<double, kBurstLanes> loss{};
  std::array<double, kBurstLanes> base_rtt_ms{};
  std::array<double, kBurstLanes> excess_median_ms{};
  std::array<double, kBurstLanes> latency_scale{};
  std::array<double, kBurstLanes> offset_ms{};
  std::array<double, kBurstLanes> median_ms{};
  std::array<double, kBurstLanes> bloat_probability{};
  std::array<double, kBurstLanes> bloat_scale_ms{};
  std::array<double, kBurstLanes> log_spread{};
  std::array<bool, kBurstLanes> active{};

  void set_lane(std::size_t l, const detail::BurstState& s) noexcept {
    loss[l] = s.loss;
    base_rtt_ms[l] = s.base_rtt_ms;
    excess_median_ms[l] = s.excess_median_ms;
    latency_scale[l] = s.latency_scale;
    offset_ms[l] = s.offset_ms;
    median_ms[l] = s.median_ms;
    bloat_probability[l] = s.bloat_probability;
    bloat_scale_ms[l] = s.bloat_scale_ms;
    log_spread[l] = s.log_spread;
    active[l] = true;
  }
};

/// Samples one `packets`-echo burst per active lane. Lane l consumes
/// exactly kDrawsPerPacket * packets draws from its stream (inactive
/// lanes none); out[l] is distributed as the scalar
/// aggregate_burst(sample_ping) result for the same BurstState.
/// `excess_sigma` is the model's hoisted
/// lognormal_sigma_of_spread(config.excess_spread). packets must be in
/// [1, kMaxBatchedPackets].
void sample_burst_lanes(const LatencyModelConfig& config,
                        const BurstStateLanes& lanes, double excess_sigma,
                        int packets, stats::XoshiroLanes& rng,
                        std::array<PingResult, kBurstLanes>& out) noexcept;

}  // namespace shears::net
