// Last-mile access models.
//
// §4.3 of the paper ("Nature of last-mile access") rests on the
// well-established result that the last mile — not the core — is the
// latency bottleneck, and that wireless links add 10-40 ms over wired
// ([65, 66] in the paper) with heavy-tailed bufferbloat episodes on
// cellular ([35]). Each technology is modelled as an additive RTT
// component: a log-normal body around a median plus a rare Weibull
// bufferbloat episode. Country connectivity tier scales the median
// (poorer infrastructure → slower and noisier last mile).
#pragma once

#include <array>
#include <string_view>

#include "geo/country.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace shears::net {

enum class AccessTechnology : unsigned char {
  kEthernet = 0,  ///< enterprise/university wired (probe tag "ethernet")
  kFibre,         ///< FTTH residential
  kCable,         ///< DOCSIS residential
  kDsl,           ///< ADSL/VDSL residential (tag "broadband"/"dsl")
  kWifi,          ///< home WLAN in front of a broadband uplink
  kLte,           ///< 4G cellular
  kFiveG,         ///< early NSA 5G (2019/2020 deployments)
};

inline constexpr std::size_t kAccessTechnologyCount = 7;

inline constexpr std::array<AccessTechnology, kAccessTechnologyCount>
    kAllAccessTechnologies = {
        AccessTechnology::kEthernet, AccessTechnology::kFibre,
        AccessTechnology::kCable,    AccessTechnology::kDsl,
        AccessTechnology::kWifi,     AccessTechnology::kLte,
        AccessTechnology::kFiveG,
};

[[nodiscard]] constexpr bool is_wireless(AccessTechnology t) noexcept {
  return t == AccessTechnology::kWifi || t == AccessTechnology::kLte ||
         t == AccessTechnology::kFiveG;
}

[[nodiscard]] constexpr std::string_view to_string(AccessTechnology t) noexcept {
  switch (t) {
    case AccessTechnology::kEthernet: return "ethernet";
    case AccessTechnology::kFibre: return "fibre";
    case AccessTechnology::kCable: return "cable";
    case AccessTechnology::kDsl: return "dsl";
    case AccessTechnology::kWifi: return "wifi";
    case AccessTechnology::kLte: return "lte";
    case AccessTechnology::kFiveG: return "5g";
  }
  return "unknown";
}

/// Stochastic description of one access technology's RTT contribution.
struct AccessProfile {
  double median_ms = 0.0;        ///< median added round-trip latency
  double spread = 1.0;           ///< log-normal multiplicative spread (>= 1)
  double bloat_probability = 0;  ///< chance a sample hits a bufferbloat episode
  double bloat_scale_ms = 0.0;   ///< Weibull scale of episode severity
  double loss_rate = 0.0;        ///< probability a ping is lost outright
};

/// Baseline (tier-1) profile of a technology. Values calibrated against
/// the literature the paper cites: wired broadband 2-15 ms, WiFi ~+10 ms,
/// LTE +20-40 ms with multi-hundred-ms bufferbloat tail, early 5G ~+12 ms.
[[nodiscard]] AccessProfile base_profile(AccessTechnology t) noexcept;

/// Profile adjusted for the country's connectivity tier. Tier multiplies
/// the median and loss/bloat rates (under-served networks are both slower
/// and burstier).
[[nodiscard]] AccessProfile profile_for(AccessTechnology t,
                                        geo::ConnectivityTier tier) noexcept;

/// Draws the access-latency contribution of one ping (milliseconds).
[[nodiscard]] double sample_access_latency(const AccessProfile& profile,
                                           stats::Xoshiro256& rng) noexcept;

/// Hot-path variant with the profile's log-spread
/// (stats::lognormal_sigma_of_spread(profile.spread)) hoisted out of the
/// per-packet loop. Same draws, bit-identical samples.
[[nodiscard]] double sample_access_latency_presigma(
    const AccessProfile& profile, double log_spread,
    stats::Xoshiro256& rng) noexcept;

/// Lowest-level access sampler over the already load-adjusted fields; the
/// campaign's cached hot path hoists the adjustment out of the packet
/// loop. Same draws, bit-identical samples. Inline: this runs once per
/// simulated packet, tens of millions of times per campaign.
[[nodiscard]] inline double sample_access_latency_raw(
    double median_ms, double log_spread, double bloat_probability,
    double bloat_scale_ms, stats::Xoshiro256& rng) noexcept {
  double latency = stats::sample_lognormal_presigma(rng, median_ms, log_spread);
  if (rng.bernoulli(bloat_probability)) {
    // Bufferbloat episode: shape < 1 gives the heavy upper tail observed
    // on loaded cellular links (occasionally whole seconds).
    latency += stats::sample_weibull(rng, 0.8, bloat_scale_ms);
  }
  // A physical floor: no access technology contributes negative latency,
  // and even ideal ethernet costs a few hundred microseconds round trip.
  return latency < 0.2 ? 0.2 : latency;
}

/// Multiplier applied to a tier-1 median by each connectivity tier.
[[nodiscard]] constexpr double tier_latency_multiplier(
    geo::ConnectivityTier tier) noexcept {
  switch (tier) {
    case geo::ConnectivityTier::kTier1: return 1.0;
    case geo::ConnectivityTier::kTier2: return 1.3;
    case geo::ConnectivityTier::kTier3: return 1.7;
    case geo::ConnectivityTier::kTier4: return 2.2;
  }
  return 1.0;
}

}  // namespace shears::net
