// A measurement vantage point as the network sees it.
#pragma once

#include "geo/country.hpp"
#include "geo/coordinates.hpp"
#include "net/access.hpp"

namespace shears::net {

/// Where a probe sits and how it reaches the Internet. The `atlas` module
/// attaches identity and tags; the latency model only needs this.
struct Endpoint {
  geo::GeoPoint location;
  geo::ConnectivityTier tier = geo::ConnectivityTier::kTier1;
  AccessTechnology access = AccessTechnology::kEthernet;
  /// Operator-quality multiplier on the access-latency median: <1 for a
  /// well-peered incumbent ISP, >1 for a budget carrier (see atlas::isp).
  double access_quality = 1.0;
};

}  // namespace shears::net
