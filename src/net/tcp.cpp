#include "net/tcp.hpp"

#include "stats/distributions.hpp"

namespace shears::net {

TcpConnectResult tcp_connect(const LatencyModel& model, const Endpoint& src,
                             const topology::CloudRegion& dst,
                             stats::Xoshiro256& rng,
                             const TcpProbeConfig& config) {
  TcpConnectResult result;
  double waited = 0.0;
  double rto = config.initial_rto_ms;
  for (int attempt = 0; attempt < config.max_syn_attempts; ++attempt) {
    ++result.syn_attempts;
    // A handshake needs the SYN and the SYN-ACK to survive — two one-way
    // trips, modelled as one ping observation (same loss process).
    const PingObservation obs = model.ping_once(src, dst, rng);
    if (!obs.lost) {
      result.connected = true;
      result.connect_ms = waited + obs.rtt_ms + config.stack_overhead_ms;
      return result;
    }
    waited += rto;
    rto *= 2.0;  // RFC 6298 exponential back-off
  }
  result.connect_ms = waited;
  return result;
}

HttpProbeResult http_ttfb(const LatencyModel& model, const Endpoint& src,
                          const topology::CloudRegion& dst,
                          stats::Xoshiro256& rng,
                          const TcpProbeConfig& config) {
  HttpProbeResult result;
  const TcpConnectResult connect = tcp_connect(model, src, dst, rng, config);
  if (!connect.connected) return result;
  result.connect_ms = connect.connect_ms;

  // Request + first response byte: one more round trip plus server time.
  const PingObservation request = model.ping_once(src, dst, rng);
  if (request.lost) return result;  // treat as probe failure, not retry
  const double server_ms = stats::sample_lognormal_median(
      rng, config.server_time_median_ms, config.server_time_spread);
  result.ok = true;
  result.ttfb_ms = connect.connect_ms + request.rtt_ms + server_ms;
  return result;
}

}  // namespace shears::net
