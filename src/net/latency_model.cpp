#include "net/latency_model.hpp"

#include <algorithm>
#include <cmath>

#include "stats/distributions.hpp"

namespace shears::net {

PathCharacteristics LatencyModel::path_to(
    const Endpoint& src, const topology::CloudRegion& dst) const noexcept {
  const topology::BackboneClass backbone =
      topology::backbone_class(dst.provider);
  if (path_provider_ != nullptr) {
    return characterize_path_with_routed(
        config_.path, geo::haversine_km(src.location, dst.location),
        path_provider_->routed_km(src.location, src.tier, dst.location,
                                  backbone),
        backbone);
  }
  return characterize_path(config_.path, src.location, src.tier, dst.location,
                           backbone);
}

AccessProfile LatencyModel::access_profile_of(
    const Endpoint& src) const noexcept {
  AccessProfile profile = profile_for(src.access, src.tier);
  profile.median_ms *= src.access_quality;
  if (is_wireless(src.access)) {
    profile.median_ms *= config_.wireless_latency_scale;
  }
  return profile;
}

double LatencyModel::baseline_rtt_ms(
    const Endpoint& src, const topology::CloudRegion& dst) const noexcept {
  return path_to(src, dst).base_rtt_ms() + access_profile_of(src).median_ms;
}

double diurnal_weight(double local_hour, double peak_hour) noexcept {
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  const double phase = (local_hour - peak_hour) / 24.0;
  const double raised = 0.5 * (1.0 + std::cos(kTwoPi * phase));
  return raised * raised;  // sharpen: congestion is an evening phenomenon
}

double local_hour_at(double utc_hour, double lon_deg) noexcept {
  double h = utc_hour + lon_deg / 15.0;
  h = std::fmod(h, 24.0);
  return h < 0.0 ? h + 24.0 : h;
}

namespace {

// The pre-cache engine compiled the distribution samplers in their own
// translation unit, so every recomputed packet paid real call boundaries
// here. These wrappers preserve those boundaries for the reference
// sampler below — the cached kernel uses the header-inlined samplers
// instead. Letting the optimiser inline through here would make the
// reference faster than the engine it stands in for and understate the
// recorded speedup.
[[gnu::noinline]] double lognormal_median_call(stats::Xoshiro256& rng,
                                               double median,
                                               double spread) noexcept {
  return stats::sample_lognormal_median(rng, median, spread);
}

[[gnu::noinline]] double pareto_call(stats::Xoshiro256& rng, double min_value,
                                     double alpha) noexcept {
  return stats::sample_pareto(rng, min_value, alpha);
}

/// The recomputing (uncached) sampler — a verbatim replica of the
/// original per-packet engine, kept as the reference the sampling cache
/// is byte-compared and benchmarked against. Same draws, same arithmetic
/// as the cached kernel (the determinism suite pins both to the same
/// golden checksums), and the same per-packet cost as the engine it
/// replaces, so the recorded speedup is the real one.
PingObservation sample_ping(const LatencyModelConfig& config,
                            const LatencyModel& model, const Endpoint& src,
                            const topology::CloudRegion& dst,
                            double load_factor,
                            const Perturbation& perturbation,
                            stats::Xoshiro256& rng) noexcept {
  AccessProfile profile = model.access_profile_of(src);
  profile.median_ms *= load_factor;
  profile.bloat_probability =
      std::min(profile.bloat_probability * load_factor, 1.0);

  double loss =
      profile.loss_rate + config.core_loss_rate -
      profile.loss_rate * config.core_loss_rate;  // independent losses
  loss = loss + perturbation.extra_loss - loss * perturbation.extra_loss;
  if (rng.bernoulli(loss)) return {true, 0.0};

  const PathCharacteristics path = model.path_to(src, dst);
  const double base = path.base_rtt_ms();
  double rtt = base;
  if (config.excess_fraction > 0.0) {
    rtt += lognormal_median_call(rng, base * config.excess_fraction,
                                 config.excess_spread);
  }
  rtt *= perturbation.latency_scale;  // route detour scales transit only
  rtt += sample_access_latency(profile, rng);
  if (rng.bernoulli(config.spike_probability)) {
    rtt += pareto_call(rng, config.spike_min_ms, config.spike_alpha);
  }
  rtt = std::max(0.0, rtt + perturbation.offset_ms);
  return {false, rtt};
}

}  // namespace

CachedPath LatencyModel::cache_path(
    const Endpoint& src, const topology::CloudRegion& dst) const noexcept {
  CachedPath c;
  c.path = path_to(src, dst);
  c.base_rtt_ms = c.path.base_rtt_ms();
  c.excess_median_ms = c.base_rtt_ms * config_.excess_fraction;
  return c;
}

CachedProfile LatencyModel::cache_profile(
    const Endpoint& src) const noexcept {
  CachedProfile c;
  c.profile = access_profile_of(src);
  c.combined_loss =
      c.profile.loss_rate + config_.core_loss_rate -
      c.profile.loss_rate * config_.core_loss_rate;  // independent losses
  c.log_spread = stats::lognormal_sigma_of_spread(c.profile.spread);
  return c;
}

PingObservation LatencyModel::ping_once(const Endpoint& src,
                                        const topology::CloudRegion& dst,
                                        stats::Xoshiro256& rng) const noexcept {
  return sample_ping(config_, *this, src, dst, 1.0, {}, rng);
}

double LatencyModel::diurnal_load(const Endpoint& src,
                                  double utc_hour) const noexcept {
  return 1.0 + config_.diurnal_amplitude *
                   diurnal_weight(
                       local_hour_at(utc_hour, src.location.lon_deg),
                       config_.diurnal_peak_hour);
}

PingObservation LatencyModel::ping_once_at(
    const Endpoint& src, const topology::CloudRegion& dst, double utc_hour,
    stats::Xoshiro256& rng) const noexcept {
  return sample_ping(config_, *this, src, dst, diurnal_load(src, utc_hour),
                     {}, rng);
}

CongestionState::CongestionState(const LatencyModelConfig& config,
                                 stats::Xoshiro256& rng) {
  if (config.temporal_sigma > 0.0 && config.temporal_rho < 1.0) {
    // Stationary distribution of the AR(1): N(0, sigma^2 / (1 - rho^2)).
    const double stationary_sd =
        config.temporal_sigma /
        std::sqrt(1.0 - config.temporal_rho * config.temporal_rho);
    c_ = stats::sample_normal(rng, 0.0, stationary_sd);
  }
}

double CongestionState::step(const LatencyModelConfig& config,
                             stats::Xoshiro256& rng) {
  if (config.temporal_sigma <= 0.0) return 1.0;
  c_ = config.temporal_rho * c_ +
       stats::sample_normal(rng, 0.0, config.temporal_sigma);
  return load();
}

double CongestionState::load() const noexcept { return std::exp(c_); }

using detail::aggregate_burst;

PingResult LatencyModel::ping(const Endpoint& src,
                              const topology::CloudRegion& dst, int packets,
                              stats::Xoshiro256& rng) const noexcept {
  return aggregate_burst(packets,
                         [&] { return ping_once(src, dst, rng); });
}

PingResult LatencyModel::ping_at(const Endpoint& src,
                                 const topology::CloudRegion& dst, int packets,
                                 double utc_hour,
                                 stats::Xoshiro256& rng) const noexcept {
  return aggregate_burst(
      packets, [&] { return ping_once_at(src, dst, utc_hour, rng); });
}

PingResult LatencyModel::ping_loaded(const Endpoint& src,
                                     const topology::CloudRegion& dst,
                                     int packets, double load_factor,
                                     stats::Xoshiro256& rng) const noexcept {
  return aggregate_burst(packets, [&] {
    return sample_ping(config_, *this, src, dst, load_factor, {}, rng);
  });
}

PingResult LatencyModel::ping_perturbed(const Endpoint& src,
                                        const topology::CloudRegion& dst,
                                        int packets, double load_factor,
                                        const Perturbation& perturbation,
                                        stats::Xoshiro256& rng) const noexcept {
  return aggregate_burst(packets, [&] {
    return sample_ping(config_, *this, src, dst, load_factor, perturbation,
                       rng);
  });
}

}  // namespace shears::net
