#include "net/path.hpp"

#include <algorithm>

namespace shears::net {

double stretch_for(const PathModelConfig& config, geo::ConnectivityTier tier,
                   topology::BackboneClass backbone) noexcept {
  const auto idx = static_cast<std::size_t>(tier) - 1;  // tiers are 1-based
  return backbone == topology::BackboneClass::kPrivate
             ? config.stretch_private[idx]
             : config.stretch_public[idx];
}

double effective_stretch(const PathModelConfig& config,
                         geo::ConnectivityTier tier,
                         topology::BackboneClass backbone,
                         double geodesic_km) noexcept {
  const double regional = stretch_for(config, tier, backbone);
  if (regional <= config.long_haul_stretch) return regional;
  const double k =
      config.stretch_decay_km[static_cast<std::size_t>(tier) - 1];
  return config.long_haul_stretch +
         (regional - config.long_haul_stretch) * k / (k + geodesic_km);
}

PathCharacteristics characterize_path_with_routed(
    const PathModelConfig& config, double geodesic_km, double routed_km,
    topology::BackboneClass backbone) noexcept {
  PathCharacteristics path;
  path.geodesic_km = geodesic_km;
  path.routed_km = std::max(routed_km, config.min_routed_km);
  // Round-trip propagation: twice the one-way routed distance.
  path.propagation_ms = 2.0 * path.routed_km * config.fibre_us_per_km / 1000.0;
  path.hop_count = config.base_hops + path.routed_km / config.km_per_hop +
                   (backbone == topology::BackboneClass::kPublic
                        ? config.extra_public_hops
                        : 0.0);
  path.processing_ms = path.hop_count * config.per_hop_ms;
  return path;
}

PathCharacteristics characterize_path(const PathModelConfig& config,
                                      const geo::GeoPoint& src,
                                      geo::ConnectivityTier src_tier,
                                      const geo::GeoPoint& dst,
                                      topology::BackboneClass backbone) noexcept {
  const double geodesic_km = geo::haversine_km(src, dst);
  const double stretch =
      effective_stretch(config, src_tier, backbone, geodesic_km);
  return characterize_path_with_routed(config, geodesic_km,
                                       geodesic_km * stretch, backbone);
}

}  // namespace shears::net
