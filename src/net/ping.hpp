// ICMP-echo measurement semantics, mirroring RIPE Atlas built-in pings:
// a small burst of packets per scheduled measurement, reported as
// min / avg / max over the received replies plus a loss count.
#pragma once

namespace shears::net {

/// One echo request/reply observation.
struct PingObservation {
  bool lost = false;
  double rtt_ms = 0.0;  ///< valid only when !lost
};

/// Aggregate of one scheduled ping burst.
struct PingResult {
  int sent = 0;
  int received = 0;
  double min_ms = 0.0;  ///< valid only when received > 0
  double avg_ms = 0.0;
  double max_ms = 0.0;

  [[nodiscard]] bool all_lost() const noexcept { return received == 0; }
  [[nodiscard]] double loss_rate() const noexcept {
    return sent > 0 ? 1.0 - static_cast<double>(received) / sent : 0.0;
  }
};

/// RIPE Atlas built-in pings send three packets per measurement.
inline constexpr int kDefaultPacketsPerPing = 3;

}  // namespace shears::net
