// Wide-area path model: propagation, path stretch, and transit hops.
//
// The dominant deterministic component of a cloud RTT is light-in-fibre
// propagation over the *routed* path, which exceeds the geodesic by a
// path-stretch factor that shrinks with infrastructure quality (dense
// fibre + IXPs → near-geodesic routes; under-served regions trombone
// through remote exchange points). On top of that sit per-hop processing
// and queueing. Providers with private backbones (§4.1) carry traffic on
// their own WAN from a nearby edge PoP, reducing both stretch and hop
// queueing relative to public-transit providers.
#pragma once

#include "geo/country.hpp"
#include "geo/coordinates.hpp"
#include "topology/provider.hpp"

namespace shears::net {

/// Tunable constants of the path model. Defaults reproduce the calibration
/// anchors in DESIGN.md §4; ablations perturb individual fields.
struct PathModelConfig {
  /// One-way propagation in fibre, microseconds per kilometre
  /// (speed of light / refractive index ~1.468).
  double fibre_us_per_km = 4.9;

  /// Geodesic→routed stretch per connectivity tier, public transit, for
  /// *regional* (short) paths where tromboning through distant exchange
  /// points dominates.
  double stretch_public[4] = {1.80, 2.60, 3.40, 4.50};
  /// Same, when the destination provider operates a private backbone that
  /// picks traffic up at a nearby edge PoP.
  double stretch_private[4] = {1.55, 2.20, 2.80, 3.60};

  /// Long-haul asymptote: submarine cables and transcontinental fibre are
  /// comparatively direct, so effective stretch decays from the tier value
  /// toward this as geodesic distance grows (never below the tier value
  /// when the tier is already better).
  double long_haul_stretch = 1.5;
  /// Decay scale per tier (km): effective = long + (tier - long) *
  /// k / (k + d). Under-served networks keep their detours much longer —
  /// a landlocked tier-4 country trombones even on intercontinental paths
  /// (reaching the cable landing is the bottleneck).
  double stretch_decay_km[4] = {1500.0, 2000.0, 3000.0, 4000.0};

  /// Minimum effective routed distance (km): metro rings, CO backhaul and
  /// peering detours dominate very short paths.
  double min_routed_km = 80.0;

  /// Router hops: base plus one per `km_per_hop` of routed distance.
  double base_hops = 4.0;
  double km_per_hop = 600.0;
  /// Extra hops on public transit paths (more AS boundaries).
  double extra_public_hops = 3.0;

  /// Mean per-hop processing + serialisation cost (ms, round trip).
  double per_hop_ms = 0.10;
};

/// Deterministic description of one source→region path.
struct PathCharacteristics {
  double geodesic_km = 0.0;    ///< great-circle distance
  double routed_km = 0.0;      ///< after stretch and the metro floor
  double hop_count = 0.0;      ///< modelled router hops (fractional)
  double propagation_ms = 0.0; ///< round-trip light-in-fibre time
  double processing_ms = 0.0;  ///< round-trip per-hop processing budget
  /// Propagation + processing: the congestion-free path RTT, excluding
  /// the last mile.
  [[nodiscard]] double base_rtt_ms() const noexcept {
    return propagation_ms + processing_ms;
  }
};

/// Pluggable source of routed distance. The default path model derives
/// routed km from a tier/backbone stretch of the geodesic; an alternative
/// provider (e.g. the explicit transport graph in shears::route) can
/// supply measured/graph-routed distances instead.
class PathProvider {
 public:
  virtual ~PathProvider() = default;
  /// Routed distance in km for one source→destination pair.
  [[nodiscard]] virtual double routed_km(
      const geo::GeoPoint& src, geo::ConnectivityTier src_tier,
      const geo::GeoPoint& dst,
      topology::BackboneClass backbone) const = 0;
};

/// Computes the deterministic path between a vantage point in a country of
/// the given tier and a datacenter reached through the given backbone.
[[nodiscard]] PathCharacteristics characterize_path(
    const PathModelConfig& config, const geo::GeoPoint& src,
    geo::ConnectivityTier src_tier, const geo::GeoPoint& dst,
    topology::BackboneClass backbone) noexcept;

/// Same, but with the routed distance supplied externally (a PathProvider)
/// rather than derived via stretch. The metro floor still applies.
[[nodiscard]] PathCharacteristics characterize_path_with_routed(
    const PathModelConfig& config, double geodesic_km, double routed_km,
    topology::BackboneClass backbone) noexcept;

/// Regional (short-path) stretch factor for a tier/backbone combination.
[[nodiscard]] double stretch_for(const PathModelConfig& config,
                                 geo::ConnectivityTier tier,
                                 topology::BackboneClass backbone) noexcept;

/// Distance-aware effective stretch: decays from the regional value toward
/// the long-haul asymptote as the geodesic grows.
[[nodiscard]] double effective_stretch(const PathModelConfig& config,
                                       geo::ConnectivityTier tier,
                                       topology::BackboneClass backbone,
                                       double geodesic_km) noexcept;

}  // namespace shears::net
