// Path-segment decomposition and traceroute semantics — the machinery
// behind §4.3's "Where is the Delay?".
//
// An end-to-end RTT decomposes into: the last mile (access technology),
// the access/metro network, long-haul transit, the peering hand-off or
// provider backbone, and the datacenter fabric. The paper's two §4.3
// findings map onto this decomposition directly:
//   * insufficient infrastructure → the transit share dominates in
//     under-served regions (long stretched paths to remote DCs);
//   * the wireless last mile → the last-mile share dominates for
//     wireless users in well-served regions.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "net/latency_model.hpp"

namespace shears::net {

enum class PathSegment : unsigned char {
  kLastMile = 0,       ///< the access link (DSL/LTE/...)
  kAccessNetwork,      ///< aggregation + metro ring of the access ISP
  kTransit,            ///< long-haul propagation
  kPeeringOrBackbone,  ///< AS hand-offs / provider WAN
  kDatacenter,         ///< provider edge + DC fabric
};

inline constexpr std::size_t kPathSegmentCount = 5;

[[nodiscard]] constexpr std::string_view to_string(PathSegment s) noexcept {
  switch (s) {
    case PathSegment::kLastMile: return "last-mile";
    case PathSegment::kAccessNetwork: return "access-network";
    case PathSegment::kTransit: return "transit";
    case PathSegment::kPeeringOrBackbone: return "peering/backbone";
    case PathSegment::kDatacenter: return "datacenter";
  }
  return "unknown";
}

/// Median (congestion-free) RTT contribution of each segment, ms.
struct SegmentBreakdown {
  std::array<double, kPathSegmentCount> ms{};

  [[nodiscard]] double total() const noexcept {
    double sum = 0.0;
    for (const double v : ms) sum += v;
    return sum;
  }
  [[nodiscard]] double share(PathSegment s) const noexcept {
    const double t = total();
    return t > 0.0 ? ms[static_cast<std::size_t>(s)] / t : 0.0;
  }
  [[nodiscard]] double& operator[](PathSegment s) noexcept {
    return ms[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double operator[](PathSegment s) const noexcept {
    return ms[static_cast<std::size_t>(s)];
  }
};

/// Deterministic decomposition of the expected RTT between an endpoint
/// and a region. Consistent with the latency model:
/// total() == baseline_rtt_ms(src, dst) up to floating rounding.
[[nodiscard]] SegmentBreakdown decompose_path(const LatencyModel& model,
                                              const Endpoint& src,
                                              const topology::CloudRegion& dst);

/// One hop of a simulated traceroute.
struct TracerouteHop {
  int ttl = 0;                 ///< 1-based hop index
  PathSegment segment = PathSegment::kLastMile;
  double rtt_ms = 0.0;         ///< cumulative RTT observed at this hop
  bool responded = true;       ///< hops occasionally drop TTL-expired probes
  std::string label;           ///< synthetic router name, e.g. "transit3.as"
};

/// Samples a traceroute: hop labels/segments follow the decomposition,
/// cumulative RTTs are sampled consistently with ping_once (monotone in
/// expectation, jittered per hop; silent hops happen).
[[nodiscard]] std::vector<TracerouteHop> traceroute(
    const LatencyModel& model, const Endpoint& src,
    const topology::CloudRegion& dst, stats::Xoshiro256& rng);

}  // namespace shears::net
