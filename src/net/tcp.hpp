// TCP-based probing — the measurement extension the paper plans in §5
// ("we plan to extend our measurements to include TCP-based probing
// techniques that may better reflect behavior of application traffic").
//
// Models the latency application traffic actually observes:
//   * TCP connect time: one handshake RTT plus stack overhead, with
//     SYN-retransmission semantics (exponential RTO back-off) on loss;
//   * HTTP time-to-first-byte: connect + request round trip + server
//     processing.
// The shape claim these probes support: TCP-measured latencies track
// ICMP plus a small additive overhead, so ping-based conclusions carry
// over to application traffic.
#pragma once

#include "net/latency_model.hpp"

namespace shears::net {

struct TcpProbeConfig {
  /// Kernel + NIC overhead added to the handshake RTT (ms).
  double stack_overhead_ms = 0.3;
  /// Initial retransmission timeout (RFC 6298 initial RTO), ms.
  double initial_rto_ms = 1000.0;
  /// Give up after this many SYN attempts.
  int max_syn_attempts = 4;
  /// Median server processing time for the first byte (ms) and its
  /// log-normal spread.
  double server_time_median_ms = 8.0;
  double server_time_spread = 1.8;
};

struct TcpConnectResult {
  bool connected = false;
  double connect_ms = 0.0;  ///< includes retransmission waits
  int syn_attempts = 0;
};

/// Samples one TCP connection establishment.
[[nodiscard]] TcpConnectResult tcp_connect(const LatencyModel& model,
                                           const Endpoint& src,
                                           const topology::CloudRegion& dst,
                                           stats::Xoshiro256& rng,
                                           const TcpProbeConfig& config = {});

struct HttpProbeResult {
  bool ok = false;
  double connect_ms = 0.0;
  double ttfb_ms = 0.0;  ///< connect + request RTT + server processing
};

/// Samples one HTTP request's time-to-first-byte over a fresh connection.
[[nodiscard]] HttpProbeResult http_ttfb(const LatencyModel& model,
                                        const Endpoint& src,
                                        const topology::CloudRegion& dst,
                                        stats::Xoshiro256& rng,
                                        const TcpProbeConfig& config = {});

}  // namespace shears::net
