// Edge-deployment modelling — the other side of the paper's comparison.
//
// §5 leans on two published reality checks: Hadzic et al. and Cartas et
// al. found that an edge server colocated with an LTE basestation gains
// little over a datacenter ~1000 km away, because the (wireless) last
// mile dominates. §5's "Economies of scale" further argues that edge
// latency gains require a wide, expensive deployment. This module makes
// both arguments computable:
//   * edge RTT for a user, by placement tier (basestation / central
//     office / metro PoP / regional site),
//   * the gain analysis edge-vs-nearest-cloud for any endpoint, and
//   * a site-count estimator: how many edge sites a country needs so its
//     users meet a latency target, and whether the target is reachable
//     at all over a given access technology.
#pragma once

#include <array>
#include <optional>
#include <string_view>
#include <vector>

#include "atlas/placement.hpp"
#include "geo/country.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::edge {

/// Where the edge server sits, from deepest (basestation) to shallowest.
enum class EdgePlacement : unsigned char {
  kBasestation = 0,   ///< colocated with the cell site / access node
  kCentralOffice,     ///< the access ISP's CO / aggregation site
  kMetroPop,          ///< a metro exchange point
  kRegionalSite,      ///< a regional mini-datacenter
};

inline constexpr std::size_t kEdgePlacementCount = 4;

[[nodiscard]] constexpr std::string_view to_string(EdgePlacement p) noexcept {
  switch (p) {
    case EdgePlacement::kBasestation: return "basestation";
    case EdgePlacement::kCentralOffice: return "central-office";
    case EdgePlacement::kMetroPop: return "metro-pop";
    case EdgePlacement::kRegionalSite: return "regional-site";
  }
  return "unknown";
}

/// Network RTT between the access node and the edge server for a
/// placement, excluding the last mile itself (ms, tier-1 baseline —
/// scaled by the country tier like everything else).
[[nodiscard]] double placement_backhaul_ms(EdgePlacement p) noexcept;

/// Default serviceable radius (km) of one site at a placement: how far a
/// user can sit and still be served by it over metro/regional fibre.
/// Deeper placements serve small cells; a regional mini-datacenter covers
/// a whole region. The footprint optimizer's candidate generator uses
/// these as its coverage discs (overridable per candidate).
[[nodiscard]] double placement_serve_radius_km(EdgePlacement p) noexcept;

/// Expected (congestion-free) RTT from a user to an edge server at the
/// given placement: last-mile median + placement backhaul, tier-scaled.
[[nodiscard]] double edge_baseline_rtt_ms(const net::LatencyModel& model,
                                          const net::Endpoint& user,
                                          EdgePlacement placement) noexcept;

/// The Hadzic/Cartas comparison for one endpoint.
struct EdgeGain {
  double edge_rtt_ms = 0.0;
  double cloud_rtt_ms = 0.0;       ///< nearest region, §4.1 continent rule
  double absolute_gain_ms = 0.0;   ///< cloud - edge
  double relative_gain = 0.0;      ///< absolute / cloud, in [0, 1] if gain
  const topology::CloudRegion* nearest_region = nullptr;
};

/// Gain of a basestation-grade edge over the nearest cloud region for a
/// user in `country` on `access`. Cloud candidates follow the same
/// continent(+fallback) scoping as the measurement campaign.
[[nodiscard]] EdgeGain analyze_gain(const net::LatencyModel& model,
                                    const geo::Country& country,
                                    net::AccessTechnology access,
                                    const topology::CloudRegistry& cloud,
                                    EdgePlacement placement);

/// Site-count estimate for one country at a latency target.
struct SiteEstimate {
  const geo::Country* country = nullptr;
  bool feasible = false;      ///< the access link alone may exceed the target
  double radius_km = 0.0;     ///< serviceable radius per site
  std::size_t sites = 0;      ///< sites to cover the country's populated area
};

/// Estimates, per country, how many edge sites of the given placement are
/// needed so a user on `access` meets `target_rtt_ms`. The populated area
/// is approximated from the probe-scatter radius (2 sigma). Infeasible
/// countries (access latency alone exceeds the target) report 0 sites.
[[nodiscard]] std::vector<SiteEstimate> sites_for_target(
    const net::LatencyModel& model, double target_rtt_ms,
    net::AccessTechnology access, EdgePlacement placement);

/// Sum of sites over all feasible countries; nullopt when *no* country is
/// feasible at this target/access combination.
[[nodiscard]] std::optional<std::size_t> total_sites(
    const std::vector<SiteEstimate>& estimates) noexcept;

/// The counterfactual campaign: what Figs. 5/6 would look like in an
/// edge-deployed world. Every probe pings its (ubiquitous) edge server at
/// the given placement instead of the cloud; samples group by continent.
struct EdgeCampaignResult {
  /// Per-burst RTT samples by probe continent.
  std::array<std::vector<double>, geo::kContinentCount> samples;
  /// Per-probe campaign minima by continent (the Fig. 5 analogue).
  std::array<std::vector<double>, geo::kContinentCount> minima;
};

/// Simulates `bursts_per_probe` edge pings per non-privileged probe.
/// Deterministic for a given seed.
[[nodiscard]] EdgeCampaignResult simulate_edge_campaign(
    const atlas::ProbeFleet& fleet, const net::LatencyModel& model,
    EdgePlacement placement, int bursts_per_probe, std::uint64_t seed);

}  // namespace shears::edge
