#include "edge/deployment.hpp"

#include <algorithm>
#include <cmath>

#include "net/access.hpp"

namespace shears::edge {

double placement_backhaul_ms(EdgePlacement p) noexcept {
  // Round-trip access-node→server figures for a tier-1 network; deeper
  // placements cost less backhaul but need many more sites.
  switch (p) {
    case EdgePlacement::kBasestation: return 0.5;
    case EdgePlacement::kCentralOffice: return 1.5;
    case EdgePlacement::kMetroPop: return 4.0;
    case EdgePlacement::kRegionalSite: return 9.0;
  }
  return 0.0;
}

double placement_serve_radius_km(EdgePlacement p) noexcept {
  // A site is useful while the metro fibre to it stays small against its
  // backhaul saving; the discs widen with placement depth like the §5
  // economies-of-scale argument expects (few regional sites vs very many
  // basestations).
  switch (p) {
    case EdgePlacement::kBasestation: return 25.0;
    case EdgePlacement::kCentralOffice: return 60.0;
    case EdgePlacement::kMetroPop: return 150.0;
    case EdgePlacement::kRegionalSite: return 400.0;
  }
  return 0.0;
}

double edge_baseline_rtt_ms(const net::LatencyModel& model,
                            const net::Endpoint& user,
                            EdgePlacement placement) noexcept {
  const double access = model.access_profile_of(user).median_ms;
  return access + placement_backhaul_ms(placement) *
                      net::tier_latency_multiplier(user.tier);
}

EdgeGain analyze_gain(const net::LatencyModel& model,
                      const geo::Country& country,
                      net::AccessTechnology access,
                      const topology::CloudRegistry& cloud,
                      EdgePlacement placement) {
  const net::Endpoint user{country.site, country.tier, access};
  EdgeGain gain;
  gain.edge_rtt_ms = edge_baseline_rtt_ms(model, user, placement);

  double best = 0.0;
  for (const topology::CloudRegion* region : cloud.regions()) {
    const geo::Continent rc = topology::region_continent(*region);
    if (rc != country.continent &&
        geo::measurement_fallback(country.continent) != rc) {
      continue;
    }
    const double rtt = model.baseline_rtt_ms(user, *region);
    if (gain.nearest_region == nullptr || rtt < best) {
      gain.nearest_region = region;
      best = rtt;
    }
  }
  if (gain.nearest_region == nullptr) {
    // No reachable cloud under the campaign scoping: the gain is the
    // whole cloud RTT, reported as unbounded via a zero-cloud sentinel.
    gain.cloud_rtt_ms = 0.0;
    return gain;
  }
  gain.cloud_rtt_ms = best;
  gain.absolute_gain_ms = gain.cloud_rtt_ms - gain.edge_rtt_ms;
  gain.relative_gain =
      gain.cloud_rtt_ms > 0.0 ? gain.absolute_gain_ms / gain.cloud_rtt_ms : 0.0;
  return gain;
}

std::vector<SiteEstimate> sites_for_target(const net::LatencyModel& model,
                                           double target_rtt_ms,
                                           net::AccessTechnology access,
                                           EdgePlacement placement) {
  std::vector<SiteEstimate> out;
  const double fibre_us_per_km = model.config().path.fibre_us_per_km;
  for (const geo::Country& country : geo::all_countries()) {
    const net::Endpoint user{country.site, country.tier, access};
    SiteEstimate estimate;
    estimate.country = &country;

    // Budget left for metro propagation after the access link and the
    // placement backhaul.
    const double fixed = edge_baseline_rtt_ms(model, user, placement);
    const double budget_ms = target_rtt_ms - fixed;
    if (budget_ms <= 0.0) {
      out.push_back(estimate);  // infeasible: the access link eats it all
      continue;
    }
    estimate.feasible = true;
    // Round-trip budget → one-way serviceable radius, with the country's
    // regional stretch applied (edge traffic rides the same metro fibre).
    const double stretch = net::stretch_for(
        model.config().path, country.tier, topology::BackboneClass::kPublic);
    estimate.radius_km =
        budget_ms * 1000.0 / (2.0 * fibre_us_per_km * stretch);

    // Populated-area proxy: a disc of two scatter radii around the hub.
    const double populated_radius_km = 2.0 * country.scatter_km;
    const double ratio = populated_radius_km / estimate.radius_km;
    estimate.sites = static_cast<std::size_t>(
        std::max(1.0, std::ceil(ratio * ratio)));
    out.push_back(estimate);
  }
  return out;
}

EdgeCampaignResult simulate_edge_campaign(const atlas::ProbeFleet& fleet,
                                          const net::LatencyModel& model,
                                          EdgePlacement placement,
                                          int bursts_per_probe,
                                          std::uint64_t seed) {
  EdgeCampaignResult result;
  stats::Xoshiro256 root(seed);
  for (const atlas::Probe& probe : fleet.probes()) {
    if (probe.privileged()) continue;
    stats::Xoshiro256 rng = root.fork(probe.id);
    const double backhaul = placement_backhaul_ms(placement) *
                            net::tier_latency_multiplier(probe.endpoint.tier);
    const net::AccessProfile profile =
        model.access_profile_of(probe.endpoint);
    const auto continent = geo::index_of(probe.country->continent);
    double best = 0.0;
    bool any = false;
    for (int burst = 0; burst < bursts_per_probe; ++burst) {
      // An edge ping crosses only the last mile and the placement
      // backhaul — there is no wide-area path to queue on.
      const double rtt =
          net::sample_access_latency(profile, rng) + backhaul;
      result.samples[continent].push_back(rtt);
      if (!any || rtt < best) {
        best = rtt;
        any = true;
      }
    }
    if (any) result.minima[continent].push_back(best);
  }
  return result;
}

std::optional<std::size_t> total_sites(
    const std::vector<SiteEstimate>& estimates) noexcept {
  std::size_t total = 0;
  bool any = false;
  for (const SiteEstimate& e : estimates) {
    if (!e.feasible) continue;
    any = true;
    total += e.sites;
  }
  if (!any) return std::nullopt;
  return total;
}

}  // namespace shears::edge
