// Deterministic fault injection for measurement campaigns.
//
// The paper's nine-month dataset survived probe reboots, ISP route flaps,
// datacenter maintenance and whole-region outages; a clean simulation
// validates the analyses against an Internet that never breaks. This
// module generates a seedable *fault schedule* — who is broken, how, and
// when, on the campaign's tick clock — that the campaign engine queries
// per burst and composes with net::LatencyModel through the perturbation
// hook (net::Perturbation).
//
// Taxonomy (one bit each in Measurement::faults):
//   * region outage      — a cloud region is dark for a window; every
//                          burst against it loses all packets;
//   * route flap         — an access AS loses its good path; transit
//                          latency multiplies and packets drop;
//   * congestion storm   — a country's last mile (optionally wireless
//                          only) runs hot; load multiplies;
//   * probe hang         — firmware wedge: the probe schedules nothing
//                          (records are absent, like churn);
//   * clock skew         — firmware bug biases the reported RTTs by a
//                          constant; values are wrong, not missing;
//   * country blackout   — correlated national outage; every burst from
//                          the country loses all packets.
//
// Determinism: windows are a pure function of (seed, fault kind, entity,
// epoch) via SplitMix64 — no mutable state, no allocation on the query
// path, identical answers from any thread. An empty schedule answers
// "no fault" everywhere and costs one branch in the campaign loop.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "stats/rng.hpp"

namespace shears::faults {

enum class FaultKind : std::uint8_t {
  kRegionOutage = 0,
  kRouteFlap,
  kCongestionStorm,
  kProbeHang,
  kClockSkew,
  kCountryBlackout,
};

inline constexpr std::size_t kFaultKindCount = 6;

/// Bit of a fault kind inside Measurement::faults / exposure masks.
[[nodiscard]] constexpr std::uint8_t fault_bit(FaultKind k) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(k));
}

[[nodiscard]] constexpr std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kRegionOutage: return "region-outage";
    case FaultKind::kRouteFlap: return "route-flap";
    case FaultKind::kCongestionStorm: return "congestion-storm";
    case FaultKind::kProbeHang: return "probe-hang";
    case FaultKind::kClockSkew: return "clock-skew";
    case FaultKind::kCountryBlackout: return "country-blackout";
  }
  return "unknown";
}

/// Per-kind fault-activation counters — the observability face of the
/// fault layer. The campaign bumps one instance per worker from each
/// recorded burst's exposure mask and merges them with the rest of its
/// telemetry, so the counts are deterministic per (seed, schedule) like
/// the dataset itself.
struct FaultKindCounts {
  std::array<std::uint64_t, kFaultKindCount> activations{};

  /// Bumps every kind set in `mask` (a fault_bit() union). Callers only
  /// invoke this for non-zero masks, keeping the clean path untouched.
  void record(std::uint8_t mask) noexcept;

  void merge(const FaultKindCounts& other) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept;

  [[nodiscard]] std::uint64_t of(FaultKind kind) const noexcept {
    return activations[static_cast<std::size_t>(kind)];
  }
};

/// Procedural schedule knobs. Each fault class activates independently
/// per (entity, epoch) with the given probability; an active fault
/// occupies one window inside that epoch whose length is exponential
/// with the given mean (clamped to the epoch). All rates default to 0 —
/// a default-constructed config produces no faults.
struct FaultScheduleConfig {
  std::uint64_t seed = 2020;
  /// Epoch granularity in campaign ticks (56 = one week of 3 h ticks).
  std::uint32_t epoch_ticks = 56;

  double region_outage_rate = 0.0;  ///< per (region, epoch)
  double region_outage_mean_ticks = 8.0;

  double route_flap_rate = 0.0;  ///< per (AS, epoch)
  double route_flap_mean_ticks = 4.0;
  double route_flap_latency_multiplier = 1.8;  ///< on transit RTT
  double route_flap_extra_loss = 0.02;         ///< extra per-packet loss

  double storm_rate = 0.0;  ///< per (country, epoch)
  double storm_mean_ticks = 6.0;
  double storm_load_multiplier = 2.5;  ///< on last-mile load
  bool storm_wireless_only = true;

  double probe_hang_rate = 0.0;  ///< per (probe, epoch)
  double probe_hang_mean_ticks = 16.0;

  double clock_skew_rate = 0.0;  ///< per (probe, epoch)
  double clock_skew_mean_ticks = 24.0;
  double clock_skew_ms = 30.0;  ///< additive RTT bias while skewed

  double blackout_rate = 0.0;  ///< per (country, epoch)
  double blackout_mean_ticks = 4.0;

  [[nodiscard]] bool any_rate() const noexcept;
  /// Throws std::invalid_argument on rates outside [0,1], non-positive
  /// epoch/window lengths, or multipliers <= 0.
  void validate() const;
};

/// What the schedule needs to know about a probe; built once per probe by
/// the campaign (faults does not depend on atlas).
struct ProbeContext {
  std::uint32_t probe_id = 0;
  std::uint32_t asn = 0;          ///< 0 = unattributed: no flap exposure
  std::uint64_t country_key = 0;  ///< FaultSchedule::country_key(iso2)
  bool wireless = false;
};

/// Fault state of a probe at a tick, independent of the burst target.
struct ProbeExposure {
  std::uint8_t mask = 0;         ///< fault_bit() union of active kinds
  bool probe_down = false;       ///< firmware hang: emit nothing
  bool blackout = false;         ///< country dark: bursts fully lost
  double load_multiplier = 1.0;  ///< congestion storm
  double skew_ms = 0.0;          ///< clock-skew bias
};

/// Fault state of one (probe, region) burst; includes the probe part.
struct BurstExposure {
  std::uint8_t mask = 0;
  bool lost = false;  ///< region outage or country blackout
  double latency_multiplier = 1.0;
  double load_multiplier = 1.0;
  double skew_ms = 0.0;
  double extra_loss = 0.0;
};

/// A scripted fault window [start_tick, end_tick), for tests and
/// hand-written incident replays. Scope fields are read per kind.
struct FaultEvent {
  FaultKind kind = FaultKind::kRegionOutage;
  std::uint32_t start_tick = 0;
  std::uint32_t end_tick = 0;
  std::uint16_t region_index = 0xFFFF;  ///< kRegionOutage
  std::uint32_t asn = 0;                ///< kRouteFlap
  std::uint64_t country_key = 0;  ///< blackout / storm; 0 = every country
  bool wireless_only = true;      ///< kCongestionStorm
  std::uint32_t probe_id = 0;     ///< kProbeHang / kClockSkew
  double latency_multiplier = 1.8;
  double extra_loss = 0.02;
  double load_multiplier = 2.5;
  double skew_ms = 30.0;
};

class FaultSchedule {
 public:
  /// Empty schedule: no faults, ever.
  FaultSchedule() = default;
  /// Procedural schedule; validates the config.
  explicit FaultSchedule(FaultScheduleConfig config);

  /// Adds a scripted window on top of the procedural ones.
  void add_event(const FaultEvent& event);

  /// True when no procedural rate is set and no event was added; the
  /// campaign skips every fault query on an empty schedule.
  [[nodiscard]] bool empty() const noexcept {
    return !procedural_ && events_.empty();
  }

  [[nodiscard]] const FaultScheduleConfig& config() const noexcept {
    return config_;
  }

  /// Probe-level faults at a tick (hang, skew, storm, blackout).
  [[nodiscard]] ProbeExposure probe_exposure(const ProbeContext& probe,
                                             std::uint32_t tick) const noexcept;

  /// Burst-level faults: folds region outage and route flap into the
  /// probe-level exposure computed for the same tick.
  [[nodiscard]] BurstExposure burst_exposure(const ProbeContext& probe,
                                             const ProbeExposure& base,
                                             std::uint16_t region_index,
                                             std::uint32_t tick) const noexcept;

  /// Stable country scope key (FNV-1a of the ISO2 code).
  [[nodiscard]] static std::uint64_t country_key(
      std::string_view iso2) noexcept {
    return stats::fnv1a64(iso2.data(), iso2.size());
  }

 private:
  /// True when the procedural window of (kind, entity) covers `tick`.
  [[nodiscard]] bool active(FaultKind kind, std::uint64_t entity_key,
                            std::uint32_t tick, double rate,
                            double mean_ticks) const noexcept;

  FaultScheduleConfig config_{};
  bool procedural_ = false;
  std::vector<FaultEvent> events_;
};

}  // namespace shears::faults
