#include "faults/resilience.hpp"

#include <bit>
#include <stdexcept>

namespace shears::faults {

void RetryPolicy::validate() const {
  if (max_retries < 0) {
    throw std::invalid_argument("RetryPolicy: max_retries must be >= 0");
  }
  if (max_retries > 0 && backoff_cap_ticks == 0) {
    throw std::invalid_argument("RetryPolicy: backoff_cap_ticks must be >= 1");
  }
}

std::uint32_t retry_backoff_ticks(int attempt,
                                  const RetryPolicy& policy) noexcept {
  if (attempt <= 0) return 0;
  // 2^(attempt-1), saturating well before overflow; then capped.
  const std::uint32_t uncapped =
      attempt - 1 >= 31 ? 0x80000000u : (1u << (attempt - 1));
  return uncapped < policy.backoff_cap_ticks ? uncapped
                                             : policy.backoff_cap_ticks;
}

void QuarantinePolicy::validate() const {
  if (!enabled) return;
  if (window_bursts < 2 || window_bursts > 64) {
    throw std::invalid_argument(
        "QuarantinePolicy: window_bursts must lie in [2, 64]");
  }
  if (loss_threshold <= 0.0 || loss_threshold > 1.0) {
    throw std::invalid_argument(
        "QuarantinePolicy: loss_threshold must lie in (0, 1]");
  }
  if (cooldown_ticks == 0) {
    throw std::invalid_argument(
        "QuarantinePolicy: cooldown_ticks must be >= 1");
  }
}

void QuarantineTracker::record_burst(std::uint32_t tick, bool fully_lost,
                                     bool skewed) noexcept {
  if (in_quarantine_) return;  // sidelined probes observe nothing
  const bool bad = fully_lost || (policy_->skew_counts && skewed);
  const int window = policy_->window_bursts;
  history_ = (history_ << 1) | (bad ? 1u : 0u);
  if (window < 64) history_ &= (1ULL << window) - 1;
  if (filled_ < window) {
    ++filled_;
    if (filled_ < window) return;  // judge only full windows
  }
  const int bad_count = std::popcount(history_);
  if (static_cast<double>(bad_count) >=
      policy_->loss_threshold * static_cast<double>(window)) {
    in_quarantine_ = true;
    release_tick_ = tick + policy_->cooldown_ticks;
    ++entries_;
  }
}

}  // namespace shears::faults
