#include "faults/fault_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace shears::faults {

void FaultKindCounts::record(std::uint8_t mask) noexcept {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    if ((mask & (1u << k)) != 0) ++activations[k];
  }
}

void FaultKindCounts::merge(const FaultKindCounts& other) noexcept {
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    activations[k] += other.activations[k];
  }
}

std::uint64_t FaultKindCounts::total() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t a : activations) n += a;
  return n;
}

bool FaultScheduleConfig::any_rate() const noexcept {
  return region_outage_rate > 0.0 || route_flap_rate > 0.0 ||
         storm_rate > 0.0 || probe_hang_rate > 0.0 || clock_skew_rate > 0.0 ||
         blackout_rate > 0.0;
}

void FaultScheduleConfig::validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument(std::string("FaultScheduleConfig: ") + what);
    }
  };
  check(epoch_ticks > 0, "epoch_ticks must be positive");
  for (const double rate : {region_outage_rate, route_flap_rate, storm_rate,
                            probe_hang_rate, clock_skew_rate, blackout_rate}) {
    check(rate >= 0.0 && rate <= 1.0, "rates must lie in [0, 1]");
  }
  for (const double mean :
       {region_outage_mean_ticks, route_flap_mean_ticks, storm_mean_ticks,
        probe_hang_mean_ticks, clock_skew_mean_ticks, blackout_mean_ticks}) {
    check(mean > 0.0, "mean window lengths must be positive");
  }
  check(route_flap_latency_multiplier >= 1.0,
        "route_flap_latency_multiplier must be >= 1");
  check(route_flap_extra_loss >= 0.0 && route_flap_extra_loss < 1.0,
        "route_flap_extra_loss must lie in [0, 1)");
  check(storm_load_multiplier >= 1.0, "storm_load_multiplier must be >= 1");
}

FaultSchedule::FaultSchedule(FaultScheduleConfig config)
    : config_(config), procedural_(config.any_rate()) {
  config_.validate();
}

void FaultSchedule::add_event(const FaultEvent& event) {
  if (event.end_tick <= event.start_tick) {
    throw std::invalid_argument("FaultEvent: end_tick must exceed start_tick");
  }
  events_.push_back(event);
}

bool FaultSchedule::active(FaultKind kind, std::uint64_t entity_key,
                          std::uint32_t tick, double rate,
                          double mean_ticks) const noexcept {
  if (rate <= 0.0) return false;
  const std::uint32_t epoch = tick / config_.epoch_ticks;
  // One hash stream per (seed, kind, entity, epoch); the first draw
  // decides activation, the next two place the window inside the epoch.
  stats::SplitMix64 sm(
      config_.seed ^
      (static_cast<std::uint64_t>(kind) + 1) * 0x9e3779b97f4a7c15ULL ^
      entity_key * 0xbf58476d1ce4e5b9ULL ^
      (static_cast<std::uint64_t>(epoch) + 1) * 0x94d049bb133111ebULL);
  const double u_active =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  if (u_active >= rate) return false;
  const std::uint32_t start_offset =
      static_cast<std::uint32_t>(sm.next() % config_.epoch_ticks);
  const double u_len = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  // Exponential window length with the configured mean, at least one
  // tick; windows never spill into the next epoch.
  const double drawn = -mean_ticks * std::log1p(-u_len);
  const std::uint32_t len = std::min<std::uint32_t>(
      config_.epoch_ticks,
      1u + static_cast<std::uint32_t>(std::min(drawn, 1e9)));
  const std::uint32_t epoch_start = epoch * config_.epoch_ticks;
  const std::uint32_t start = epoch_start + start_offset;
  const std::uint32_t end =
      std::min(start + len, epoch_start + config_.epoch_ticks);
  return tick >= start && tick < end;
}

ProbeExposure FaultSchedule::probe_exposure(const ProbeContext& probe,
                                            std::uint32_t tick) const noexcept {
  ProbeExposure e;
  if (procedural_) {
    const auto probe_key = static_cast<std::uint64_t>(probe.probe_id) + 1;
    if (active(FaultKind::kProbeHang, probe_key, tick, config_.probe_hang_rate,
               config_.probe_hang_mean_ticks)) {
      e.mask |= fault_bit(FaultKind::kProbeHang);
      e.probe_down = true;
    }
    if (active(FaultKind::kClockSkew, probe_key, tick, config_.clock_skew_rate,
               config_.clock_skew_mean_ticks)) {
      e.mask |= fault_bit(FaultKind::kClockSkew);
      e.skew_ms += config_.clock_skew_ms;
    }
    if ((probe.wireless || !config_.storm_wireless_only) &&
        active(FaultKind::kCongestionStorm, probe.country_key, tick,
               config_.storm_rate, config_.storm_mean_ticks)) {
      e.mask |= fault_bit(FaultKind::kCongestionStorm);
      e.load_multiplier *= config_.storm_load_multiplier;
    }
    if (active(FaultKind::kCountryBlackout, probe.country_key, tick,
               config_.blackout_rate, config_.blackout_mean_ticks)) {
      e.mask |= fault_bit(FaultKind::kCountryBlackout);
      e.blackout = true;
    }
  }
  for (const FaultEvent& ev : events_) {
    if (tick < ev.start_tick || tick >= ev.end_tick) continue;
    switch (ev.kind) {
      case FaultKind::kProbeHang:
        if (ev.probe_id == probe.probe_id) {
          e.mask |= fault_bit(FaultKind::kProbeHang);
          e.probe_down = true;
        }
        break;
      case FaultKind::kClockSkew:
        if (ev.probe_id == probe.probe_id) {
          e.mask |= fault_bit(FaultKind::kClockSkew);
          e.skew_ms += ev.skew_ms;
        }
        break;
      case FaultKind::kCongestionStorm:
        if ((ev.country_key == 0 || ev.country_key == probe.country_key) &&
            (probe.wireless || !ev.wireless_only)) {
          e.mask |= fault_bit(FaultKind::kCongestionStorm);
          e.load_multiplier *= ev.load_multiplier;
        }
        break;
      case FaultKind::kCountryBlackout:
        if (ev.country_key == 0 || ev.country_key == probe.country_key) {
          e.mask |= fault_bit(FaultKind::kCountryBlackout);
          e.blackout = true;
        }
        break;
      case FaultKind::kRegionOutage:
      case FaultKind::kRouteFlap:
        break;  // burst-scoped; handled in burst_exposure
    }
  }
  return e;
}

BurstExposure FaultSchedule::burst_exposure(
    const ProbeContext& probe, const ProbeExposure& base,
    std::uint16_t region_index, std::uint32_t tick) const noexcept {
  BurstExposure e;
  e.mask = base.mask;
  e.lost = base.blackout;
  e.load_multiplier = base.load_multiplier;
  e.skew_ms = base.skew_ms;
  if (procedural_) {
    if (active(FaultKind::kRegionOutage,
               static_cast<std::uint64_t>(region_index) + 1, tick,
               config_.region_outage_rate, config_.region_outage_mean_ticks)) {
      e.mask |= fault_bit(FaultKind::kRegionOutage);
      e.lost = true;
    }
    if (probe.asn != 0 &&
        active(FaultKind::kRouteFlap, static_cast<std::uint64_t>(probe.asn),
               tick, config_.route_flap_rate, config_.route_flap_mean_ticks)) {
      e.mask |= fault_bit(FaultKind::kRouteFlap);
      e.latency_multiplier *= config_.route_flap_latency_multiplier;
      e.extra_loss = e.extra_loss + config_.route_flap_extra_loss -
                     e.extra_loss * config_.route_flap_extra_loss;
    }
  }
  for (const FaultEvent& ev : events_) {
    if (tick < ev.start_tick || tick >= ev.end_tick) continue;
    if (ev.kind == FaultKind::kRegionOutage &&
        ev.region_index == region_index) {
      e.mask |= fault_bit(FaultKind::kRegionOutage);
      e.lost = true;
    } else if (ev.kind == FaultKind::kRouteFlap && ev.asn == probe.asn &&
               probe.asn != 0) {
      e.mask |= fault_bit(FaultKind::kRouteFlap);
      e.latency_multiplier *= ev.latency_multiplier;
      e.extra_loss =
          e.extra_loss + ev.extra_loss - e.extra_loss * ev.extra_loss;
    }
  }
  return e;
}

}  // namespace shears::faults
