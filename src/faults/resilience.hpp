// Campaign-side resilience: retry backoff and probe quarantine.
//
// RIPE Atlas survives a broken Internet by re-scheduling failed
// measurements and by operators sidelining misbehaving probes. The
// campaign engine mirrors both: fully-lost bursts are retried on later
// ticks with capped exponential backoff, and probes whose recent bursts
// are mostly lost (or clock-skew-tainted) enter quarantine — they stop
// producing records until a cooldown elapses, keeping systematic garbage
// out of the dataset instead of letting analyses average over it.
//
// Both policies default to *off*, which keeps a resilience-free campaign
// byte-identical to the pre-fault engine.
#pragma once

#include <cstdint>

namespace shears::faults {

struct RetryPolicy {
  /// Extra attempts after a fully-lost burst; 0 disables retries.
  int max_retries = 0;
  /// Cap on the per-attempt backoff: attempt k waits
  /// min(2^(k-1), backoff_cap_ticks) ticks after the previous attempt.
  std::uint32_t backoff_cap_ticks = 8;

  /// Throws std::invalid_argument on negative retries or a zero cap.
  void validate() const;
};

/// Ticks between attempt `attempt - 1` and attempt `attempt` (1-based):
/// 1, 2, 4, ... capped at policy.backoff_cap_ticks.
[[nodiscard]] std::uint32_t retry_backoff_ticks(
    int attempt, const RetryPolicy& policy) noexcept;

struct QuarantinePolicy {
  bool enabled = false;
  /// Sliding window of recent bursts judged for health (2..64).
  int window_bursts = 16;
  /// Enter quarantine when the windowed bad-burst fraction reaches this.
  double loss_threshold = 0.5;
  /// Whether a clock-skew-flagged burst counts as bad (its RTTs are
  /// wrong, not missing).
  bool skew_counts = true;
  /// Ticks a probe stays sidelined before release.
  std::uint32_t cooldown_ticks = 56;

  /// Throws std::invalid_argument on a window outside [2, 64], a
  /// threshold outside (0, 1], or a zero cooldown.
  void validate() const;
};

/// Per-probe quarantine state machine. The campaign owns one per probe
/// inside a worker, so the tracker is single-threaded by construction;
/// determinism across thread counts follows from per-probe state only.
class QuarantineTracker {
 public:
  explicit QuarantineTracker(const QuarantinePolicy& policy) noexcept
      : policy_(&policy) {}

  /// True while the probe is sidelined at `tick`; releases (and resets
  /// the health window) once the cooldown has elapsed.
  [[nodiscard]] bool quarantined(std::uint32_t tick) noexcept {
    if (in_quarantine_ && tick >= release_tick_) {
      in_quarantine_ = false;
      history_ = 0;
      filled_ = 0;
    }
    return in_quarantine_;
  }

  /// Feeds one burst outcome observed at `tick`; trips the probe into
  /// quarantine when the full window's bad fraction reaches the
  /// threshold.
  void record_burst(std::uint32_t tick, bool fully_lost, bool skewed) noexcept;

  /// Times this probe entered quarantine.
  [[nodiscard]] std::uint32_t entries() const noexcept { return entries_; }

 private:
  const QuarantinePolicy* policy_;
  std::uint64_t history_ = 0;  ///< newest outcome in bit 0; 1 = bad burst
  int filled_ = 0;             ///< outcomes currently in the window
  bool in_quarantine_ = false;
  std::uint32_t release_tick_ = 0;
  std::uint32_t entries_ = 0;
};

}  // namespace shears::faults
