// AVX2 scan kernels. This TU is compiled with -mavx2 via
// shears_simd_kernel unless SHEARS_DISABLE_SIMD is ON, in which case
// __AVX2__ is not defined and the family degrades to nullptr — the
// dispatcher (scan.cpp) then serves the scalar kernels. Both primitives
// are bit-exact with the scalar reference: min over finite non-NaN
// floats is order-insensitive, and count_le is an integer reduction.
#include "serve/scan.hpp"

#ifdef __AVX2__

#include <immintrin.h>

#include <bit>
#include <cstdint>

namespace shears::serve {
namespace {

float avx2_min(const float* data, std::size_t n) {
  std::size_t i = 0;
  float m = data[0];
  if (n >= 8) {
    __m256 acc = _mm256_loadu_ps(data);
    for (i = 8; i + 8 <= n; i += 8) {
      acc = _mm256_min_ps(acc, _mm256_loadu_ps(data + i));
    }
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 r = _mm_min_ps(lo, hi);
    r = _mm_min_ps(r, _mm_movehl_ps(r, r));
    r = _mm_min_ss(r, _mm_shuffle_ps(r, r, 1));
    m = _mm_cvtss_f32(r);
  }
  for (; i < n; ++i) {
    m = data[i] < m ? data[i] : m;
  }
  return m;
}

std::size_t avx2_count_le(const float* data, std::size_t n, float threshold) {
  std::size_t count = 0;
  const __m256 thr = _mm256_set1_ps(threshold);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 cmp = _mm256_cmp_ps(_mm256_loadu_ps(data + i), thr,
                                     _CMP_LE_OQ);
    count += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(_mm256_movemask_ps(cmp))));
  }
  for (; i < n; ++i) {
    count += data[i] <= threshold ? 1 : 0;
  }
  return count;
}

constexpr ScanKernels kAvx2Kernels{"avx2", avx2_min, avx2_count_le};

}  // namespace

namespace detail {
const ScanKernels* avx2_scan_kernels() noexcept { return &kAvx2Kernels; }
}  // namespace detail

}  // namespace shears::serve

#else  // !__AVX2__ (SHEARS_DISABLE_SIMD build)

namespace shears::serve::detail {
const ScanKernels* avx2_scan_kernels() noexcept { return nullptr; }
}  // namespace shears::serve::detail

#endif
