#include "serve/snapshot.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <utility>
#include <vector>

#include "geo/country.hpp"
#include "net/access.hpp"

namespace shears::serve {

// Bulk columns (u32/u16/f32 arrays, f64 scalars) are memcpy'd in native
// byte order; the container doc pins the format to little-endian, so
// refuse to build a writer that would emit something else.
static_assert(std::endian::native == std::endian::little,
              "snapshot format is little-endian; big-endian hosts need a "
              "byte-swapping serialiser");

/// The one door into ColumnarStore's representation (befriended in
/// columnar.hpp): snapshot save reads the raw columns and counters,
/// load writes them back and marks the rebuilt shards dirty.
struct SnapshotAccess {
  using KeyGroup = ColumnarStore::KeyGroup;

  static const std::vector<KeyGroup>& groups(const ColumnarStore& s) {
    return s.groups_;
  }
  static std::vector<KeyGroup>& groups(ColumnarStore& s) { return s.groups_; }
  static const std::vector<std::uint32_t>& probe_key(const ColumnarStore& s) {
    return s.probe_key_;
  }
  static const std::vector<std::vector<RegionStats>>& country_stats(
      const ColumnarStore& s) {
    return s.country_stats_;
  }
  static std::vector<bool>& country_dirty(ColumnarStore& s) {
    return s.country_dirty_;
  }
  static void set_counters(ColumnarStore& s, std::size_t stored,
                           std::size_t dropped) {
    s.rows_stored_ = stored;
    s.rows_dropped_ = dropped;
  }
  static void set_fresh(ColumnarStore& s, bool fresh) { s.fresh_ = fresh; }
};

namespace {

constexpr std::uint32_t kMetaTag = io::fourcc("META");
constexpr std::uint32_t kShardTag = io::fourcc("SHRD");
constexpr std::uint32_t kShardStatsTag = io::fourcc("SSTA");
constexpr std::uint32_t kCountryStatsTag = io::fourcc("CSTA");
constexpr std::uint32_t kDeltaMetaTag = io::fourcc("DMET");
constexpr std::uint32_t kSegmentTag = io::fourcc("DSEG");

constexpr std::uint32_t kSkipKey = 0xffffffffu;
constexpr std::uint64_t kMaxShardRows = 0xffffffffu;

/// Serialised atlas::Measurement: fields in declaration order, packed
/// (the in-memory struct has alignment padding the format must not).
constexpr std::size_t kRecordBytes = 26;

// ---------------------------------------------------------------------------
// Payload building / parsing.

class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return bytes_;
  }
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over one block payload; any overrun or
/// leftover bytes is a precise SnapshotError, never UB.
class Cursor {
 public:
  Cursor(std::span<const std::uint8_t> bytes, std::string what)
      : bytes_(bytes), what_(std::move(what)) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return scalar<std::uint16_t>(); }
  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  float f32() { return scalar<float>(); }
  double f64() { return scalar<double>(); }

  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > bytes_.size() - at_) {
      throw SnapshotError(what_ + ": payload truncated (wanted " +
                          std::to_string(n) + " more bytes, " +
                          std::to_string(bytes_.size() - at_) + " left)");
    }
    const std::span<const std::uint8_t> out = bytes_.subspan(at_, n);
    at_ += n;
    return out;
  }

  /// Every payload must be consumed exactly — trailing bytes mean the
  /// writer and reader disagree about the layout.
  void require_done() const {
    if (at_ != bytes_.size()) {
      throw SnapshotError(what_ + ": " + std::to_string(bytes_.size() - at_) +
                          " unexpected trailing payload bytes");
    }
  }

 private:
  template <typename T>
  T scalar() {
    T v;
    std::memcpy(&v, take(sizeof(T)).data(), sizeof(T));
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
  std::string what_;
};

// ---------------------------------------------------------------------------
// Fingerprints.

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h = (h ^ p[i]) * 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof(v)); }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) noexcept {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

/// Bit-exact scalar comparison; the cells never hold NaN (empty cells
/// keep their 0.0 defaults), so bit equality is the right notion.
[[nodiscard]] bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// One cell's derived scalars as recorded in SSTA/CSTA blocks.
struct CellScalars {
  std::uint64_t count = 0;
  double min_ms = 0.0;
  double median_ms = 0.0;
  double p95_ms = 0.0;
};

void write_cells(PayloadWriter& payload, std::span<const RegionStats> cells) {
  payload.u32(static_cast<std::uint32_t>(cells.size()));
  for (const RegionStats& cell : cells) {
    payload.u64(cell.count);
    payload.f64(cell.min_ms);
    payload.f64(cell.median_ms);
    payload.f64(cell.p95_ms);
  }
}

[[nodiscard]] std::vector<CellScalars> read_cells(Cursor& cursor,
                                                  std::size_t regions,
                                                  const std::string& what) {
  const std::uint32_t n = cursor.u32();
  if (n != regions) {
    throw SnapshotError(what + ": summary covers " + std::to_string(n) +
                        " regions, registry has " + std::to_string(regions));
  }
  std::vector<CellScalars> cells(n);
  for (CellScalars& cell : cells) {
    cell.count = cursor.u64();
    cell.min_ms = cursor.f64();
    cell.median_ms = cursor.f64();
    cell.p95_ms = cursor.f64();
  }
  return cells;
}

void verify_cells(std::span<const RegionStats> rebuilt,
                  std::span<const CellScalars> stored,
                  const std::string& what) {
  for (std::size_t r = 0; r < rebuilt.size(); ++r) {
    const RegionStats& a = rebuilt[r];
    const CellScalars& b = stored[r];
    if (a.count != b.count || !same_bits(a.min_ms, b.min_ms) ||
        !same_bits(a.median_ms, b.median_ms) ||
        !same_bits(a.p95_ms, b.p95_ms)) {
      throw SnapshotError(
          what + ": summary of region " + std::to_string(r) +
          " rebuilt from the columns does not match the scalars recorded "
          "at save time — snapshot is corrupt or was written by an "
          "incompatible build");
    }
  }
}

void encode_record(PayloadWriter& payload, const atlas::Measurement& m) {
  payload.u32(m.probe_id);
  payload.u16(m.region_index);
  payload.u32(m.tick);
  payload.f32(m.min_ms);
  payload.f32(m.avg_ms);
  payload.f32(m.max_ms);
  payload.u8(m.sent);
  payload.u8(m.received);
  payload.u8(m.retries);
  payload.u8(m.faults);
}

[[nodiscard]] atlas::Measurement decode_record(Cursor& cursor) {
  atlas::Measurement m;
  m.probe_id = cursor.u32();
  m.region_index = cursor.u16();
  m.tick = cursor.u32();
  m.min_ms = cursor.f32();
  m.avg_ms = cursor.f32();
  m.max_ms = cursor.f32();
  m.sent = cursor.u8();
  m.received = cursor.u8();
  m.retries = cursor.u8();
  m.faults = cursor.u8();
  return m;
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fingerprints.

std::uint64_t fleet_fingerprint(const atlas::ProbeFleet& fleet) {
  Fnv1a f;
  f.u64(fleet.size());
  for (const atlas::Probe& probe : fleet.probes()) {
    f.u64(probe.id);
    f.str(probe.country != nullptr ? probe.country->iso2 : std::string_view{});
    f.u64(static_cast<std::uint64_t>(probe.endpoint.access));
    f.u64(static_cast<std::uint64_t>(probe.environment));
    f.u64(probe.privileged() ? 1 : 0);
    f.f64(probe.endpoint.location.lat_deg);
    f.f64(probe.endpoint.location.lon_deg);
  }
  return f.h;
}

std::uint64_t registry_fingerprint(const topology::CloudRegistry& registry) {
  Fnv1a f;
  f.u64(registry.size());
  for (const topology::CloudRegion* region : registry.regions()) {
    f.u64(static_cast<std::uint64_t>(region->provider));
    f.str(region->region_id);
    f.f64(region->location.lat_deg);
    f.f64(region->location.lon_deg);
    f.u64(static_cast<std::uint64_t>(region->launch_year));
  }
  return f.h;
}

// ---------------------------------------------------------------------------
// Save.

void save_snapshot(const ColumnarStore& store, std::ostream& os) {
  if (!store.fresh()) {
    throw std::logic_error(
        "save_snapshot: refresh() the store first — snapshots record the "
        "summary scalars for load-time verification");
  }
  const auto& groups = SnapshotAccess::groups(store);
  const auto& country_stats = SnapshotAccess::country_stats(store);

  std::uint32_t group_count = 0;
  for (const auto& group : groups) {
    if (!group.rtt_ms.empty()) ++group_count;
  }
  std::uint32_t rollup_count = 0;
  for (const auto& rollup : country_stats) {
    if (!rollup.empty()) ++rollup_count;
  }

  io::BlockWriter writer(os, kSnapshotTag, "snapshot");
  PayloadWriter payload;
  payload.u32(kSnapshotVersion);
  payload.u64(fleet_fingerprint(store.fleet()));
  payload.u64(registry_fingerprint(store.registry()));
  payload.u64(store.rows_stored());
  payload.u64(store.rows_dropped());
  payload.u32(static_cast<std::uint32_t>(geo::country_count()));
  payload.u32(static_cast<std::uint32_t>(net::kAccessTechnologyCount));
  payload.u32(static_cast<std::uint32_t>(store.registry().size()));
  payload.u32(group_count);
  payload.u32(rollup_count);
  writer.add(kMetaTag, payload.span());

  for (std::size_t key = 0; key < groups.size(); ++key) {
    const auto& group = groups[key];
    if (group.rtt_ms.empty()) continue;
    const std::size_t n = group.rtt_ms.size();

    payload.clear();
    payload.u32(static_cast<std::uint32_t>(key));
    payload.u64(n);
    payload.raw(group.probe_ids.data(), n * sizeof(std::uint32_t));
    payload.raw(group.region_index.data(), n * sizeof(std::uint16_t));
    payload.raw(group.ticks.data(), n * sizeof(std::uint32_t));
    payload.raw(group.rtt_ms.data(), n * sizeof(float));
    writer.add(kShardTag, payload.span());

    payload.clear();
    payload.u32(static_cast<std::uint32_t>(key));
    write_cells(payload, group.stats);
    writer.add(kShardStatsTag, payload.span());
  }

  for (std::size_t c = 0; c < country_stats.size(); ++c) {
    if (country_stats[c].empty()) continue;
    payload.clear();
    payload.u32(static_cast<std::uint32_t>(c));
    write_cells(payload, country_stats[c]);
    writer.add(kCountryStatsTag, payload.span());
  }

  writer.finish();
}

void save_snapshot(const ColumnarStore& store, const std::string& path) {
  io::AtomicFileWriter file(path);
  save_snapshot(store, file.stream());
  file.commit();
}

// ---------------------------------------------------------------------------
// Load.

ColumnarStore load_snapshot(std::span<const std::uint8_t> bytes,
                            const atlas::ProbeFleet* fleet,
                            const topology::CloudRegistry* registry,
                            StoreConfig config, SnapshotLoadOptions options) {
  ColumnarStore store(fleet, registry, config);
  auto& groups = SnapshotAccess::groups(store);
  const auto& probe_key = SnapshotAccess::probe_key(store);
  auto& country_dirty = SnapshotAccess::country_dirty(store);
  const std::size_t regions = registry->size();

  io::BlockReader reader(bytes, kSnapshotTag, "snapshot");

  // META — identity first: nothing row-sized is parsed until the
  // snapshot is known to describe this exact fleet/registry pair.
  std::optional<io::Block> block = reader.next();
  if (!block || block->tag != kMetaTag) {
    throw SnapshotError("snapshot: first block must be META");
  }
  Cursor meta(block->payload, "snapshot META");
  const std::uint32_t version = meta.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("snapshot: unsupported snapshot version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint64_t want_fleet = meta.u64();
  const std::uint64_t have_fleet = fleet_fingerprint(*fleet);
  if (want_fleet != have_fleet) {
    throw SnapshotError(
        "snapshot: fleet fingerprint mismatch — snapshot was written "
        "against " +
        hex64(want_fleet) + ", this fleet is " + hex64(have_fleet));
  }
  const std::uint64_t want_registry = meta.u64();
  const std::uint64_t have_registry = registry_fingerprint(*registry);
  if (want_registry != have_registry) {
    throw SnapshotError(
        "snapshot: registry fingerprint mismatch — snapshot was written "
        "against " +
        hex64(want_registry) + ", this registry is " + hex64(have_registry));
  }
  const std::uint64_t rows_stored = meta.u64();
  const std::uint64_t rows_dropped = meta.u64();
  const std::uint32_t country_count = meta.u32();
  const std::uint32_t access_count = meta.u32();
  const std::uint32_t region_count = meta.u32();
  if (country_count != geo::country_count() ||
      access_count != net::kAccessTechnologyCount || region_count != regions) {
    throw SnapshotError(
        "snapshot: dimension mismatch (countries/accesses/regions " +
        std::to_string(country_count) + "/" + std::to_string(access_count) +
        "/" + std::to_string(region_count) + " vs " +
        std::to_string(geo::country_count()) + "/" +
        std::to_string(net::kAccessTechnologyCount) + "/" +
        std::to_string(regions) + ")");
  }
  const std::uint32_t group_count = meta.u32();
  const std::uint32_t rollup_count = meta.u32();
  meta.require_done();

  // SHRD + SSTA pairs, one per non-empty shard.
  std::vector<std::pair<std::uint32_t, std::vector<CellScalars>>> shard_cells;
  shard_cells.reserve(group_count);
  std::uint64_t total_rows = 0;
  for (std::uint32_t g = 0; g < group_count; ++g) {
    block = reader.next();
    if (!block || block->tag != kShardTag) {
      throw SnapshotError("snapshot: expected SHRD block " +
                          std::to_string(g + 1) + " of " +
                          std::to_string(group_count));
    }
    Cursor shard(block->payload, "snapshot SHRD");
    const std::uint32_t key = shard.u32();
    if (key >= groups.size()) {
      throw SnapshotError("snapshot: shard key " + std::to_string(key) +
                          " out of range (" + std::to_string(groups.size()) +
                          " shards)");
    }
    auto& group = groups[key];
    if (!group.rtt_ms.empty()) {
      throw SnapshotError("snapshot: duplicate shard key " +
                          std::to_string(key));
    }
    const std::uint64_t n = shard.u64();
    if (n == 0 || n > kMaxShardRows) {
      throw SnapshotError("snapshot: shard " + std::to_string(key) +
                          " row count " + std::to_string(n) +
                          " outside [1, 2^32 - 1]");
    }
    // Size the payload against the claimed row count *before* resizing
    // the columns: a crafted count field must produce an error, not a
    // multi-gigabyte allocation.
    const std::uint64_t want_bytes =
        sizeof(std::uint32_t) + sizeof(std::uint64_t) +
        n * (sizeof(std::uint32_t) + sizeof(std::uint16_t) +
             sizeof(std::uint32_t) + sizeof(float));
    if (block->payload.size() != want_bytes) {
      throw SnapshotError("snapshot: shard " + std::to_string(key) +
                          " payload holds " +
                          std::to_string(block->payload.size()) +
                          " bytes but its row count implies " +
                          std::to_string(want_bytes));
    }
    const std::size_t rows = static_cast<std::size_t>(n);
    group.probe_ids.resize(rows);
    group.region_index.resize(rows);
    group.ticks.resize(rows);
    group.rtt_ms.resize(rows);
    std::memcpy(group.probe_ids.data(),
                shard.take(rows * sizeof(std::uint32_t)).data(),
                rows * sizeof(std::uint32_t));
    std::memcpy(group.region_index.data(),
                shard.take(rows * sizeof(std::uint16_t)).data(),
                rows * sizeof(std::uint16_t));
    std::memcpy(group.ticks.data(),
                shard.take(rows * sizeof(std::uint32_t)).data(),
                rows * sizeof(std::uint32_t));
    std::memcpy(group.rtt_ms.data(), shard.take(rows * sizeof(float)).data(),
                rows * sizeof(float));
    shard.require_done();

    // Row validation: every stored row must still resolve, against this
    // fleet, to exactly the shard it sits in.
    for (std::size_t i = 0; i < rows; ++i) {
      const std::uint32_t probe = group.probe_ids[i];
      if (probe >= probe_key.size() || probe_key[probe] != key) {
        throw SnapshotError("snapshot: shard " + std::to_string(key) +
                            " row " + std::to_string(i) + ": probe " +
                            std::to_string(probe) +
                            " does not map to this shard");
      }
      if (group.region_index[i] >= regions) {
        throw SnapshotError("snapshot: shard " + std::to_string(key) +
                            " row " + std::to_string(i) + ": region " +
                            std::to_string(group.region_index[i]) +
                            " out of range");
      }
      const float rtt = group.rtt_ms[i];
      if (!std::isfinite(rtt) || rtt < 0.0f) {
        throw SnapshotError("snapshot: shard " + std::to_string(key) +
                            " row " + std::to_string(i) +
                            ": non-finite or negative RTT");
      }
    }
    group.dirty = true;
    country_dirty[key / net::kAccessTechnologyCount] = true;
    total_rows += n;

    block = reader.next();
    if (!block || block->tag != kShardStatsTag) {
      throw SnapshotError("snapshot: shard " + std::to_string(key) +
                          " is missing its SSTA summary block");
    }
    Cursor ssta(block->payload, "snapshot SSTA");
    if (ssta.u32() != key) {
      throw SnapshotError("snapshot: SSTA block does not follow its shard (" +
                          std::to_string(key) + ")");
    }
    shard_cells.emplace_back(key, read_cells(ssta, regions, "snapshot SSTA"));
    ssta.require_done();
  }
  if (total_rows != rows_stored) {
    throw SnapshotError("snapshot: shard rows sum to " +
                        std::to_string(total_rows) + " but META records " +
                        std::to_string(rows_stored) + " stored rows");
  }

  // CSTA country rollups, then the END. terminator (enforced by the
  // reader draining to nullopt).
  std::vector<std::pair<std::uint32_t, std::vector<CellScalars>>> rollup_cells;
  rollup_cells.reserve(rollup_count);
  std::vector<bool> rollup_seen(geo::country_count(), false);
  while ((block = reader.next())) {
    if (block->tag != kCountryStatsTag) {
      throw SnapshotError("snapshot: unexpected block '" +
                          io::fourcc_name(block->tag) +
                          "' after the shard list");
    }
    Cursor csta(block->payload, "snapshot CSTA");
    const std::uint32_t country = csta.u32();
    if (country >= geo::country_count()) {
      throw SnapshotError("snapshot: rollup country index " +
                          std::to_string(country) + " out of range");
    }
    if (rollup_seen[country]) {
      throw SnapshotError("snapshot: duplicate rollup for country " +
                          std::to_string(country));
    }
    if (!country_dirty[country]) {
      throw SnapshotError("snapshot: rollup for country " +
                          std::to_string(country) + " which has no shards");
    }
    rollup_seen[country] = true;
    rollup_cells.emplace_back(country,
                              read_cells(csta, regions, "snapshot CSTA"));
    csta.require_done();
  }
  if (rollup_cells.size() != rollup_count) {
    throw SnapshotError("snapshot: " + std::to_string(rollup_cells.size()) +
                        " rollup blocks but META records " +
                        std::to_string(rollup_count));
  }
  for (std::size_t c = 0; c < country_dirty.size(); ++c) {
    if (country_dirty[c] && !rollup_seen[c]) {
      throw SnapshotError("snapshot: country " + std::to_string(c) +
                          " has shards but no rollup block");
    }
  }

  SnapshotAccess::set_counters(store, static_cast<std::size_t>(rows_stored),
                               static_cast<std::size_t>(rows_dropped));
  SnapshotAccess::set_fresh(store, total_rows == 0);

  if (!options.lazy_summaries && total_rows != 0) {
    // Rebuild the summaries through the store's own machinery, then
    // cross-check against the scalars recorded at save time: columns are
    // authoritative, scalars are the tripwire.
    store.refresh();
    for (const auto& [key, cells] : shard_cells) {
      verify_cells(groups[key].stats, cells,
                   "snapshot: shard " + std::to_string(key));
    }
    const auto& country_stats = SnapshotAccess::country_stats(store);
    for (const auto& [country, cells] : rollup_cells) {
      verify_cells(country_stats[country], cells,
                   "snapshot: country " + std::to_string(country));
    }
  }
  return store;
}

ColumnarStore load_snapshot(const std::string& path,
                            const atlas::ProbeFleet* fleet,
                            const topology::CloudRegistry* registry,
                            StoreConfig config, SnapshotLoadOptions options) {
  const io::FileBytes file = io::FileBytes::open(
      path, options.mmap ? io::FileBytes::Mode::kMmap
                         : io::FileBytes::Mode::kRead);
  return load_snapshot(file.bytes(), fleet, registry, config, options);
}

// ---------------------------------------------------------------------------
// Delta log.

struct DeltaLog::Impl {
  std::ofstream out;
};

DeltaLog::DeltaLog(ColumnarStore* store, std::string path, Open open)
    : store_(store), path_(std::move(path)), impl_(new Impl) {
  try {
    if (open == Open::kTruncate) {
      write_header();
      return;
    }

    // kExtend: the existing log must be a valid continuation of the
    // store — same fleet/registry, and its base counters plus the
    // logged rows must land exactly on the store's current counters.
    const io::FileBytes file =
        io::FileBytes::open(path_, io::FileBytes::Mode::kRead);
    io::BlockReader reader(file.bytes(), kDeltaTag, "delta log",
                           /*require_end=*/false);
    std::optional<io::Block> block = reader.next();
    if (!block || block->tag != kDeltaMetaTag) {
      throw SnapshotError("delta log: first block must be DMET");
    }
    Cursor dmet(block->payload, "delta log DMET");
    const std::uint32_t version = dmet.u32();
    if (version != kSnapshotVersion) {
      throw SnapshotError("delta log: unsupported version " +
                          std::to_string(version) + " (this build reads " +
                          std::to_string(kSnapshotVersion) + ")");
    }
    if (dmet.u64() != fleet_fingerprint(store_->fleet()) ||
        dmet.u64() != registry_fingerprint(store_->registry())) {
      throw SnapshotError(
          "delta log: fleet/registry fingerprint mismatch — log belongs to "
          "a different world");
    }
    const std::uint64_t base_stored = dmet.u64();
    const std::uint64_t base_dropped = dmet.u64();
    dmet.require_done();

    const auto& probe_key = SnapshotAccess::probe_key(*store_);
    std::uint64_t stored = 0;
    std::uint64_t dropped = 0;
    std::size_t segments = 0;
    while ((block = reader.next())) {
      if (block->tag != kSegmentTag) {
        throw SnapshotError("delta log: unexpected block '" +
                            io::fourcc_name(block->tag) + "'");
      }
      Cursor seg(block->payload, "delta log DSEG");
      const std::uint64_t count = seg.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        const atlas::Measurement m = decode_record(seg);
        if (m.probe_id >= probe_key.size()) {
          throw SnapshotError("delta log: probe " +
                              std::to_string(m.probe_id) + " out of range");
        }
        if (!m.lost() && probe_key[m.probe_id] != kSkipKey) {
          ++stored;
        } else {
          ++dropped;
        }
      }
      seg.require_done();
      ++segments;
    }
    if (base_stored + stored != store_->rows_stored() ||
        base_dropped + dropped != store_->rows_dropped()) {
      throw SnapshotError(
          "delta log: row accounting does not match the store (base " +
          std::to_string(base_stored) + "+" + std::to_string(stored) +
          " stored vs " + std::to_string(store_->rows_stored()) +
          ") — restore the base snapshot and apply_delta_log(), or start a "
          "fresh log");
    }
    segments_ = segments;

    impl_->out.open(path_, std::ios::binary | std::ios::app);
    if (!impl_->out) {
      throw SnapshotError(path_ + ": cannot reopen delta log for append");
    }
  } catch (...) {
    delete impl_;
    impl_ = nullptr;
    throw;
  }
}

DeltaLog::~DeltaLog() {
  delete impl_;
}

void DeltaLog::write_header() {
  impl_->out.close();
  impl_->out.clear();
  impl_->out.open(path_, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    throw SnapshotError(path_ + ": cannot open delta log for writing");
  }
  io::BlockWriter writer(impl_->out, kDeltaTag, "delta log");
  PayloadWriter payload;
  payload.u32(kSnapshotVersion);
  payload.u64(fleet_fingerprint(store_->fleet()));
  payload.u64(registry_fingerprint(store_->registry()));
  payload.u64(store_->rows_stored());
  payload.u64(store_->rows_dropped());
  writer.add(kDeltaMetaTag, payload.span());
  // No finish(): the log is append-only; clean EOF at a block boundary
  // is its valid end.
  impl_->out.flush();
  if (!impl_->out) {
    throw SnapshotError(path_ + ": delta log header write failed");
  }
}

void DeltaLog::publish(std::span<const atlas::Measurement> rows) {
  if (rows.empty()) return;
  // Store first: an append that throws (unresolvable row, shard
  // capacity) must not leave rows in the log that never reached the
  // store.
  store_->append(rows);
  PayloadWriter payload;
  payload.u64(rows.size());
  for (const atlas::Measurement& m : rows) encode_record(payload, m);
  io::append_block(impl_->out, kSegmentTag, payload.span(), "delta log");
  impl_->out.flush();
  if (!impl_->out) {
    throw SnapshotError(path_ +
                        ": delta segment flush failed (disk full?)");
  }
  ++segments_;
}

void DeltaLog::compact(const std::string& base_path) {
  save_snapshot(*store_, base_path);
  write_header();
  segments_ = 0;
}

std::size_t apply_delta_log(ColumnarStore& store, const std::string& path) {
  const io::FileBytes file =
      io::FileBytes::open(path, io::FileBytes::Mode::kRead);
  io::BlockReader reader(file.bytes(), kDeltaTag, "delta log",
                         /*require_end=*/false);
  std::optional<io::Block> block = reader.next();
  if (!block || block->tag != kDeltaMetaTag) {
    throw SnapshotError("delta log: first block must be DMET");
  }
  Cursor dmet(block->payload, "delta log DMET");
  const std::uint32_t version = dmet.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("delta log: unsupported version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(kSnapshotVersion) + ")");
  }
  if (dmet.u64() != fleet_fingerprint(store.fleet()) ||
      dmet.u64() != registry_fingerprint(store.registry())) {
    throw SnapshotError(
        "delta log: fleet/registry fingerprint mismatch — log belongs to a "
        "different world");
  }
  const std::uint64_t base_stored = dmet.u64();
  const std::uint64_t base_dropped = dmet.u64();
  dmet.require_done();
  if (base_stored != store.rows_stored() ||
      base_dropped != store.rows_dropped()) {
    throw SnapshotError(
        "delta log: base rows " + std::to_string(base_stored) + "/" +
        std::to_string(base_dropped) + " (stored/dropped) but the store is "
        "at " +
        std::to_string(store.rows_stored()) + "/" +
        std::to_string(store.rows_dropped()) +
        " — load the matching base snapshot first");
  }

  // Two phases: decode and validate the whole log, then apply. A torn
  // tail or bad record throws before the store is touched — replay is
  // all-or-nothing, like snapshot load.
  const std::size_t probe_limit = store.fleet().size();
  const std::size_t region_limit = store.registry().size();
  std::vector<std::vector<atlas::Measurement>> segments;
  while ((block = reader.next())) {
    if (block->tag != kSegmentTag) {
      throw SnapshotError("delta log: unexpected block '" +
                          io::fourcc_name(block->tag) + "'");
    }
    Cursor seg(block->payload, "delta log DSEG");
    const std::uint64_t count = seg.u64();
    if (count == 0 ||
        count != (block->payload.size() - sizeof(std::uint64_t)) /
                     kRecordBytes) {
      throw SnapshotError("delta log: segment record count " +
                          std::to_string(count) +
                          " does not match its payload size");
    }
    std::vector<atlas::Measurement> rows;
    rows.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      const atlas::Measurement m = decode_record(seg);
      if (m.probe_id >= probe_limit || m.region_index >= region_limit) {
        throw SnapshotError("delta log: segment " +
                            std::to_string(segments.size()) + " row " +
                            std::to_string(i) +
                            " does not resolve against the fleet/registry");
      }
      rows.push_back(m);
    }
    seg.require_done();
    segments.push_back(std::move(rows));
  }

  // Replay per segment, exactly as publish() chunked it. Append order
  // and chunking never change the stored bytes, so the recovered store
  // equals the one the log was written against.
  for (const std::vector<atlas::Measurement>& rows : segments) {
    store.append(rows);
  }
  return segments.size();
}

}  // namespace shears::serve
