// The latency oracle: batched feasibility queries over the columnar
// store — the paper's punchline ("is the cloud already fast enough from
// here?") as a service.
//
// Three query kinds cover the questions Fig. 4 / Fig. 8 answer in batch
// form:
//   * kBestRtt     — best observed cloud RTT from a location (or a
//                    country) over a given access technology, plus the
//                    winning region's median/p95;
//   * kFeasibility — the §5 edge-vs-cloud verdict for one application
//                    class from one country (core::classify against the
//                    measured country minimum);
//   * kTopK        — the k best regions whose observed minimum meets a
//                    latency budget, ascending.
//
// Locations resolve to countries through the probe spatial index: the
// nearest vantage point (optionally restricted to the queried access
// technology) stands in for the user, exactly as the paper's probes
// stand in for populations. Batches fan out across query shards with
// core/parallel.hpp; answers are deterministic and byte-identical to
// the brute-force full-scan reference (serve/reference.hpp) for any
// thread count — the serve test suite and bench gate pin both.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "apps/application.hpp"
#include "core/feasibility.hpp"
#include "geo/coordinates.hpp"
#include "geo/country.hpp"
#include "geo/spatial_index.hpp"
#include "net/access.hpp"
#include "serve/columnar.hpp"
#include "topology/region.hpp"

namespace shears::obs {
class Counter;
class LatencyHistogram;
class MetricsRegistry;
}  // namespace shears::obs

namespace shears::serve {

enum class QueryKind : unsigned char { kBestRtt, kFeasibility, kTopK };

[[nodiscard]] constexpr std::string_view to_string(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kBestRtt: return "best-rtt";
    case QueryKind::kFeasibility: return "feasibility";
    case QueryKind::kTopK: return "top-k";
  }
  return "unknown";
}

struct Query {
  QueryKind kind = QueryKind::kBestRtt;
  /// Where the user is. Ignored when `country_iso2` is set.
  geo::GeoPoint where{};
  /// ISO-2 country override; empty = resolve via nearest probe to
  /// `where`.
  std::string_view country_iso2{};
  /// Access filter; ignored when any_access (the country rollup answers).
  net::AccessTechnology access = net::AccessTechnology::kEthernet;
  bool any_access = true;
  /// kFeasibility: application slug (apps::find_application).
  std::string_view app_id{};
  /// kTopK: RTT budget (ms) and result cap.
  double budget_ms = 0.0;
  std::uint32_t k = 0;
};

/// One ranked region of a kTopK answer.
struct RegionAnswer {
  const topology::CloudRegion* region = nullptr;
  double rtt_ms = 0.0;

  friend bool operator==(const RegionAnswer&, const RegionAnswer&) = default;
};

struct Answer {
  /// The query resolved to a country with data in scope (and, for
  /// kFeasibility, a known application). All payload below is zero/null
  /// when false.
  bool ok = false;
  const geo::Country* country = nullptr;
  /// kBestRtt / kFeasibility: the region behind the best observed RTT.
  const topology::CloudRegion* best_region = nullptr;
  double best_ms = 0.0;
  double median_ms = 0.0;  ///< of the best region's samples in scope
  double p95_ms = 0.0;
  /// kFeasibility payload.
  core::EdgeVerdict verdict = core::EdgeVerdict::kNoEdgeCase;
  bool in_zone = false;
  /// kTopK payload, ascending by (rtt, region index).
  std::vector<RegionAnswer> regions;

  friend bool operator==(const Answer&, const Answer&) = default;
};

struct OracleConfig {
  /// Threads a batch fans out over (0 = hardware concurrency). Answers
  /// are identical for any value.
  std::size_t threads = 0;
  /// Feasibility-zone geometry for kFeasibility verdicts.
  core::FeasibilityConfig feasibility{};
  /// With a mutable store (the non-const constructor), answer() calls
  /// refresh() on unrefreshed appends instead of failing — what a
  /// long-lived server in front of a live MeasurementSink wants.
  /// Ignored when the oracle only holds a const store.
  bool auto_refresh = false;
};

/// Outcome of a non-throwing batch. kStale is recoverable: refresh the
/// store (or build the oracle with auto_refresh) and ask again.
enum class BatchStatus : unsigned char { kOk, kStale };

/// What-if overlay seam: a scenario delta (new edge sites, 5G wireless
/// scaling, a routing change) substitutes the summary tables of exactly
/// the scopes it changes, and the oracle answers from base summaries plus
/// the overlay — the store is never rebuilt. Implementations (the
/// optimizer's opt::OverlayEvaluator is the heaviest client) must return
/// tables with the store's own shape — dense by region index — built from
/// the same Ecdf machinery, so an overlay-answered batch is bit-exact to
/// one answered over a store rebuilt with the delta applied (the `opt`
/// differential suite pins this).
class SummaryOverlay {
 public:
  virtual ~SummaryOverlay() = default;

  /// Replacement per-region summary table for one scope: a country's
  /// all-access rollup (access == nullopt) or a (country, access) shard.
  /// Return nullopt to fall through to the base store (the common case —
  /// a delta touches few scopes). Spans must stay valid for the lifetime
  /// of the overlay object.
  [[nodiscard]] virtual std::optional<std::span<const RegionStats>> stats(
      std::size_t country_index,
      std::optional<net::AccessTechnology> access) const = 0;
};

/// Result of a weighted coverage fan-out (see Oracle::weighted_coverage).
struct CoverageResult {
  /// Σ weight over queries that resolved to a country with data in scope.
  double answered_weight = 0.0;
  /// Σ weight[i] * covered_fraction[i]: each query contributes the
  /// fraction of its scope's pooled samples at or below the budget.
  double covered_weight = 0.0;
  std::uint64_t answered = 0;  ///< queries that resolved
  std::uint64_t queries = 0;

  /// Weighted covered fraction over the answered queries (0 when none).
  [[nodiscard]] double fraction() const noexcept {
    return answered_weight > 0.0 ? covered_weight / answered_weight : 0.0;
  }

  friend bool operator==(const CoverageResult&, const CoverageResult&) =
      default;
};

class Oracle {
 public:
  /// `store` must be refresh()ed and outlive the oracle. Builds the
  /// probe and region spatial indexes once (per-access probe indexes
  /// included, so filtered location queries stay O(log n)).
  explicit Oracle(const ColumnarStore* store, OracleConfig config = {});

  /// Mutable-store overload: additionally allows config.auto_refresh to
  /// absorb live appends inside answer(). Refreshing is not thread-safe
  /// against concurrent answer() calls — serialise batches (the serving
  /// front-end's single event loop does).
  explicit Oracle(ColumnarStore* store, OracleConfig config = {});

  /// Answers a batch in place; out.size() must equal queries.size().
  /// Throws std::logic_error when the store has unrefreshed appends
  /// (unless auto_refresh absorbs them).
  void answer(std::span<const Query> queries, std::span<Answer> out) const;

  /// Non-throwing lifecycle variant: returns kStale (touching nothing)
  /// when the store has unrefreshed appends and auto-refresh is
  /// unavailable, kOk once every answer has been written.
  [[nodiscard]] BatchStatus try_answer(std::span<const Query> queries,
                                       std::span<Answer> out) const;

  [[nodiscard]] std::vector<Answer> answer(
      std::span<const Query> queries) const;

  [[nodiscard]] Answer answer_one(const Query& query) const;

  /// What-if variants: identical to answer()/try_answer() except that
  /// scopes the overlay substitutes are answered from its tables instead
  /// of the base store's. nullptr behaves exactly like the plain batch.
  void answer(std::span<const Query> queries, std::span<Answer> out,
              const SummaryOverlay* overlay) const;
  [[nodiscard]] BatchStatus try_answer(std::span<const Query> queries,
                                       std::span<Answer> out,
                                       const SummaryOverlay* overlay) const;

  /// Population-weighted coverage in one fan-out: for each query, the
  /// fraction of its scope's pooled samples (all regions merged) at or
  /// below `budget_ms`, folded as Σ weight·fraction / Σ weight over the
  /// queries that resolved to data. Empty `weights` means all 1.0;
  /// otherwise weights.size() must equal queries.size(). Per-query counts
  /// are integers computed independently, and the weighted fold runs
  /// sequentially on the calling thread in query order — the result is
  /// byte-identical for any thread count. Query kinds are ignored; only
  /// the scope fields (where/country_iso2/access/any_access) matter.
  /// Throws std::logic_error on a stale store (unless auto_refresh).
  [[nodiscard]] CoverageResult weighted_coverage(
      std::span<const Query> queries, double budget_ms,
      std::span<const double> weights = {},
      const SummaryOverlay* overlay = nullptr) const;

  /// Geodesic region lookups over the footprint's spatial index — the
  /// "where is the nearest datacenter" side of the serving surface.
  [[nodiscard]] std::vector<geo::SpatialHit> nearest_regions(
      const geo::GeoPoint& where, std::size_t n) const;
  [[nodiscard]] std::vector<geo::SpatialHit> regions_within_km(
      const geo::GeoPoint& where, double radius_km) const;

  [[nodiscard]] const ColumnarStore& store() const noexcept {
    return *store_;
  }

  /// Publishes serve.queries / serve.batches / serve.answers_ok /
  /// serve.queries.<kind> counters and the serve.batch_ms histogram.
  /// Counters accumulate per batch in locals and publish once, so the
  /// per-query path touches no atomics. Observational only; nullptr
  /// detaches. `metrics` must outlive the oracle.
  void attach_metrics(obs::MetricsRegistry* metrics);

 private:
  void answer_into(const Query& query, Answer& out,
                   const SummaryOverlay* overlay) const;
  /// Country of the query, resolved via iso2 or the spatial index;
  /// nullptr when unresolvable.
  [[nodiscard]] const geo::Country* resolve_country(const Query& q) const;
  /// Summary table for the query's scope: the overlay's substitution if
  /// it has one, the base store's otherwise.
  [[nodiscard]] std::span<const RegionStats> stats_in_scope(
      const Query& q, const geo::Country* country,
      const SummaryOverlay* overlay) const;
  /// Shared staleness guard: refreshes via auto_refresh when possible,
  /// returns false when the batch must report kStale.
  [[nodiscard]] bool ensure_fresh() const;

  const ColumnarStore* store_;
  /// Set only by the mutable-store constructor; enables auto_refresh.
  ColumnarStore* mutable_store_ = nullptr;
  OracleConfig config_;
  geo::SpatialIndex region_index_;
  geo::SpatialIndex probe_index_;  ///< analysis-eligible probes
  std::vector<std::uint32_t> probe_of_hit_;  ///< index hit id -> probe id
  /// Per-access filtered probe indexes (same id indirection).
  std::array<geo::SpatialIndex, net::kAccessTechnologyCount> access_index_;
  std::array<std::vector<std::uint32_t>, net::kAccessTechnologyCount>
      access_probe_of_hit_;
  /// Metric handles resolved once at attach time; all null when detached.
  struct Instruments {
    obs::Counter* queries = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* answers_ok = nullptr;
    std::array<obs::Counter*, 3> by_kind{};
    obs::LatencyHistogram* batch_ms = nullptr;
  };
  Instruments instruments_{};
};

namespace detail {

/// Shared answer assembly over a per-region summary table (dense by
/// region index). Both the indexed oracle and the full-scan reference
/// feed it, so the two paths can only diverge where it matters — in how
/// the country was resolved and how the summaries were computed.
void answer_from_stats(const Query& query, const geo::Country* country,
                       std::span<const RegionStats> stats,
                       const topology::CloudRegistry& registry,
                       const core::FeasibilityConfig& feasibility,
                       Answer& out);

}  // namespace detail

}  // namespace shears::serve
