#include "serve/reference.hpp"

#include <algorithm>
#include <sstream>

namespace shears::serve {

ReferenceOracle::ReferenceOracle(const atlas::MeasurementDataset* dataset,
                                 OracleConfig config)
    : dataset_(dataset), config_(config) {}

const geo::Country* ReferenceOracle::resolve_country(const Query& q) const {
  if (!q.country_iso2.empty()) return geo::find_country(q.country_iso2);
  // Nearest eligible probe by exact geodesic distance; the first (lowest
  // fleet position) wins ties, matching the spatial index's id order.
  const geo::Country* country = nullptr;
  double best = 0.0;
  for (const atlas::Probe& probe : dataset_->fleet().probes()) {
    if (probe.privileged()) continue;
    if (!q.any_access && probe.endpoint.access != q.access) continue;
    const double d = geo::haversine_km(q.where, probe.endpoint.location);
    if (country == nullptr || d < best) {
      country = probe.country;
      best = d;
    }
  }
  return country;
}

std::vector<RegionStats> ReferenceOracle::scan_stats(
    const Query& q, const geo::Country* country) const {
  const std::size_t regions = dataset_->registry().size();
  std::vector<std::vector<double>> samples(regions);
  for (const atlas::Measurement& m : dataset_->records()) {
    if (m.lost()) continue;
    const atlas::Probe& probe = dataset_->probe_of(m);
    if (probe.privileged() || probe.country != country) continue;
    if (!q.any_access && probe.endpoint.access != q.access) continue;
    samples[m.region_index].push_back(static_cast<double>(m.min_ms));
  }
  std::vector<RegionStats> stats(regions);
  for (std::size_t r = 0; r < regions; ++r) {
    if (samples[r].empty()) continue;
    std::sort(samples[r].begin(), samples[r].end());
    RegionStats& cell = stats[r];
    cell.ecdf = stats::Ecdf::from_sorted(std::move(samples[r]));
    cell.count = cell.ecdf.size();
    cell.min_ms = cell.ecdf.min();
    cell.median_ms = cell.ecdf.quantile(0.5);
    cell.p95_ms = cell.ecdf.quantile(0.95);
  }
  return stats;
}

std::vector<Answer> ReferenceOracle::answer(
    std::span<const Query> queries) const {
  std::vector<Answer> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] = answer_one(queries[i]);
  }
  return out;
}

Answer ReferenceOracle::answer_one(const Query& query) const {
  const geo::Country* country = resolve_country(query);
  std::vector<RegionStats> stats;
  if (country != nullptr) stats = scan_stats(query, country);
  Answer out;
  detail::answer_from_stats(query, country, stats, dataset_->registry(),
                            config_.feasibility, out);
  return out;
}

bool answers_identical(std::span<const Answer> a, std::span<const Answer> b,
                       std::string& why) {
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "batch sizes differ: " << a.size() << " vs " << b.size();
    why = os.str();
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    std::ostringstream os;
    os << "answer " << i << " diverges:";
    if (a[i].ok != b[i].ok) os << " ok " << a[i].ok << " vs " << b[i].ok;
    if (a[i].country != b[i].country) {
      os << " country "
         << (a[i].country != nullptr ? a[i].country->iso2 : "null") << " vs "
         << (b[i].country != nullptr ? b[i].country->iso2 : "null");
    }
    if (a[i].best_region != b[i].best_region) {
      os << " best_region "
         << (a[i].best_region != nullptr ? a[i].best_region->region_id
                                         : "null")
         << " vs "
         << (b[i].best_region != nullptr ? b[i].best_region->region_id
                                         : "null");
    }
    if (a[i].best_ms != b[i].best_ms) {
      os << " best_ms " << a[i].best_ms << " vs " << b[i].best_ms;
    }
    if (a[i].median_ms != b[i].median_ms) {
      os << " median_ms " << a[i].median_ms << " vs " << b[i].median_ms;
    }
    if (a[i].p95_ms != b[i].p95_ms) {
      os << " p95_ms " << a[i].p95_ms << " vs " << b[i].p95_ms;
    }
    if (a[i].verdict != b[i].verdict) {
      os << " verdict " << to_string(a[i].verdict) << " vs "
         << to_string(b[i].verdict);
    }
    if (a[i].in_zone != b[i].in_zone) {
      os << " in_zone " << a[i].in_zone << " vs " << b[i].in_zone;
    }
    if (a[i].regions != b[i].regions) {
      os << " top-k lists differ (" << a[i].regions.size() << " vs "
         << b[i].regions.size() << " entries)";
    }
    why = os.str();
    return false;
  }
  why.clear();
  return true;
}

}  // namespace shears::serve
