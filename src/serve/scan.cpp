#include "serve/scan.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace shears::serve {

namespace {

float scalar_min(const float* data, std::size_t n) {
  float m = data[0];
  for (std::size_t i = 1; i < n; ++i) {
    m = data[i] < m ? data[i] : m;
  }
  return m;
}

std::size_t scalar_count_le(const float* data, std::size_t n,
                            float threshold) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    count += data[i] <= threshold ? 1 : 0;
  }
  return count;
}

constexpr ScanKernels kScalarKernels{"scalar", scalar_min, scalar_count_le};

[[nodiscard]] bool force_scalar_env() noexcept {
  const char* v = std::getenv("SHEARS_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

const ScanKernels& scalar_scan_kernels() noexcept { return kScalarKernels; }

const ScanKernels& active_scan_kernels() noexcept {
  static const ScanKernels& chosen = []() -> const ScanKernels& {
    if (force_scalar_env()) return kScalarKernels;
    const ScanKernels* avx2 = detail::avx2_scan_kernels();
    if (avx2 != nullptr && __builtin_cpu_supports("avx2")) return *avx2;
    return kScalarKernels;
  }();
  return chosen;
}

float kth_smallest(const ScanKernels& kernels, const float* data,
                   std::size_t n, std::size_t k) noexcept {
  // For non-negative IEEE floats the unsigned bit pattern orders exactly
  // like the value, so the k-th smallest element is the smallest float f
  // with count_le(f) >= k + 1 — found by bisecting the bit space. The
  // upper bound 0x7F7FFFFF (max finite float) keeps every probe finite;
  // the store's RTT columns never hold inf/NaN.
  std::uint32_t lo = 0;
  std::uint32_t hi = 0x7F7FFFFFu;
  const std::size_t rank = k + 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (kernels.count_le(data, n, std::bit_cast<float>(mid)) >= rank) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return std::bit_cast<float>(lo);
}

double quantile_type7(const ScanKernels& kernels, const float* data,
                      std::size_t n, double q) noexcept {
  // Mirrors stats::Ecdf::quantile over the sorted doubles of this
  // sample: selection replaces sorting, the interpolation arithmetic is
  // identical (float -> double widening is exact).
  if (q <= 0.0) return static_cast<double>(kth_smallest(kernels, data, n, 0));
  if (q >= 1.0) {
    return static_cast<double>(kth_smallest(kernels, data, n, n - 1));
  }
  const double h = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = lo + 1 < n ? lo + 1 : lo;
  const double frac = h - std::floor(h);
  const auto vlo = static_cast<double>(kth_smallest(kernels, data, n, lo));
  const auto vhi = hi == lo
                       ? vlo
                       : static_cast<double>(kth_smallest(kernels, data, n, hi));
  return vlo + frac * (vhi - vlo);
}

}  // namespace shears::serve
