// Vectorized scan kernels over the columnar store's RTT columns.
//
// The store's summaries (RegionStats) are rebuilt by sorting each cell's
// sample; queries that only need min / a percentile / a feasibility
// count over a raw column can instead run these flat-array kernels,
// which reduce without sorting:
//
//   * min        — tree of IEEE min ops; associative and commutative for
//                  the store's finite non-NaN floats, so any reduction
//                  order gives the same bits;
//   * count_le   — exact comparison count (the feasibility scan: how
//                  many samples meet a budget);
//   * kth_smallest / quantile_type7 — exact order statistics by binary
//                  search on the float bit space: for non-negative IEEE
//                  floats, bit-pattern order equals numeric order, so 31
//                  count_le passes pin the k-th smallest *element*
//                  without reassociating anything.
//
// Everything here is exact — no polynomial math, no reordered sums — so
// the kernels are gated by byte-identity against the Ecdf-based
// summaries (test_store_scan), on both the AVX2 and forced-scalar
// builds.
//
// Dispatch: active_scan_kernels() picks the AVX2 implementation when the
// binary carries it (scan_avx2.cpp, compiled with -mavx2 unless
// SHEARS_DISABLE_SIMD) and the CPU supports it, unless the
// SHEARS_FORCE_SCALAR environment variable is set (non-empty, not "0") —
// the runtime half of the scalar-fallback story, which CI's nightly
// scalar job exercises. The scalar kernels are always built and tested.
#pragma once

#include <cstddef>

namespace shears::serve {

/// A kernel family: one function pointer per scan primitive. All
/// implementations must be bit-exact with the scalar reference.
struct ScanKernels {
  const char* name;  ///< "scalar" or "avx2" (diagnostics / tests)
  /// Minimum of n > 0 finite non-NaN floats.
  float (*min)(const float* data, std::size_t n);
  /// Number of elements <= threshold.
  std::size_t (*count_le)(const float* data, std::size_t n, float threshold);
};

/// The portable reference kernels; always available.
[[nodiscard]] const ScanKernels& scalar_scan_kernels() noexcept;

/// The best kernels for this process: AVX2 when compiled in and
/// supported by the CPU, unless SHEARS_FORCE_SCALAR is set in the
/// environment. Resolved once, at first call.
[[nodiscard]] const ScanKernels& active_scan_kernels() noexcept;

/// Exact k-th smallest (0-based, k < n) of n > 0 non-negative finite
/// floats, via bit-space bisection over count_le.
[[nodiscard]] float kth_smallest(const ScanKernels& kernels,
                                 const float* data, std::size_t n,
                                 std::size_t k) noexcept;

/// Type-7 (numpy-default) quantile of n > 0 non-negative finite floats,
/// interpolated in double like stats::Ecdf::quantile — bit-identical to
/// Ecdf over the same sample.
[[nodiscard]] double quantile_type7(const ScanKernels& kernels,
                                    const float* data, std::size_t n,
                                    double q) noexcept;

namespace detail {
/// The AVX2 family, or nullptr when the TU was built without -mavx2
/// (SHEARS_DISABLE_SIMD). Callers still must check CPU support.
[[nodiscard]] const ScanKernels* avx2_scan_kernels() noexcept;
}  // namespace detail

}  // namespace shears::serve
