// The latency oracle's dataset store: a sharded, columnar (struct-of-
// arrays) layout over campaign measurement rows.
//
// The batch pipeline answers "is the cloud close enough from X over Y?"
// by re-scanning the whole dataset per question. The serving layer
// instead ingests rows once into shards keyed by the two dimensions
// every query filters on — (country, access technology) — and keeps
// per-shard pre-aggregated summaries (min / median / p95 RTT per target
// region, exact, via stats::Ecdf) plus per-country rollups across all
// access technologies. A query then touches one shard's summary table
// instead of millions of rows.
//
// Ingestion contract:
//   * append() is incremental — a running atlas::Campaign publishes its
//     records through the MeasurementSink hook and the store absorbs
//     them without a rebuild. Rows are scattered to their shard slots by
//     *global input order*, computed from contiguous-range counts, so
//     the stored columns (and therefore every summary) are byte-
//     identical whatever the chunking or the build thread count.
//   * Lost bursts (received == 0) and rows from privileged probes
//     (datacentre/cloud placement, excluded from every §4 analysis)
//     are dropped at the door and only counted.
//   * Summaries are recomputed lazily: append() marks shards dirty,
//     refresh() rebuilds exactly the dirty ones (in parallel). Because a
//     summary is a pure function of its shard's sample multiset, a store
//     built from N+M rows at once and one built from N then appended M
//     answer identically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "geo/country.hpp"
#include "net/access.hpp"
#include "serve/scan.hpp"
#include "stats/ecdf.hpp"
#include "topology/registry.hpp"

namespace shears::obs {
class MetricsRegistry;
}  // namespace shears::obs

namespace shears::serve {

struct StoreConfig {
  /// Worker threads for append scatter and summary refresh (0 = hardware
  /// concurrency). Stored bytes and summaries are identical for any
  /// value — the serve test suite pins it.
  std::size_t threads = 0;
  /// Upper bound on rows per (country, access) shard. 0 (the default)
  /// means the format's hard ceiling of 2^32 - 1 — the shard columns
  /// index rows with std::uint32_t offsets, so growth past that limit
  /// throws std::length_error instead of silently wrapping the scatter
  /// offsets and corrupting the store. Tests and capacity-capped
  /// deployments lower it; values above the ceiling are clamped to it.
  std::uint64_t max_shard_rows = 0;
};

/// Pre-aggregated latency summary of one (shard, target region) cell.
/// The full sorted sample rides along as an Ecdf, which is what makes
/// cells exactly mergeable into country rollups (stats::Ecdf::merged).
struct RegionStats {
  std::uint64_t count = 0;
  double min_ms = 0.0;
  double median_ms = 0.0;
  double p95_ms = 0.0;
  stats::Ecdf ecdf;

  [[nodiscard]] bool empty() const noexcept { return count == 0; }
};

/// Index of a country inside geo::all_countries(). Throws
/// std::invalid_argument when the pointer is not into the registry table
/// (hand-built Country objects cannot be sharded on).
[[nodiscard]] std::size_t country_index_of(const geo::Country* country);

class ColumnarStore final : public atlas::MeasurementSink {
 public:
  /// An empty store over a fleet/registry pair; both must outlive it.
  /// Probe countries must point into geo::all_countries() (generated and
  /// find_country-built fleets do).
  ColumnarStore(const atlas::ProbeFleet* fleet,
                const topology::CloudRegistry* registry,
                StoreConfig config = {});

  /// Builds from a full dataset and refreshes the summaries.
  [[nodiscard]] static ColumnarStore build(
      const atlas::MeasurementDataset& dataset, StoreConfig config = {});

  /// Ingests rows (any chunking). Throws std::invalid_argument on a row
  /// whose probe id or region index does not resolve against the bound
  /// fleet/registry. Marks affected shards dirty; summaries go stale
  /// until refresh().
  void append(std::span<const atlas::Measurement> rows);

  /// MeasurementSink: a campaign attached via attach_sink() streams its
  /// records straight into the store.
  void publish(std::span<const atlas::Measurement> rows) override {
    append(rows);
  }

  /// Rebuilds the summaries of every dirty shard and country rollup.
  /// Idempotent and cheap when nothing changed.
  void refresh();

  /// True when every summary reflects every appended row.
  [[nodiscard]] bool fresh() const noexcept { return fresh_; }

  [[nodiscard]] const atlas::ProbeFleet& fleet() const noexcept {
    return *fleet_;
  }
  [[nodiscard]] const topology::CloudRegistry& registry() const noexcept {
    return *registry_;
  }

  [[nodiscard]] std::size_t rows_stored() const noexcept {
    return rows_stored_;
  }
  [[nodiscard]] std::size_t rows_dropped() const noexcept {
    return rows_dropped_;
  }
  /// Non-empty (country, access) shards.
  [[nodiscard]] std::size_t shard_count() const noexcept;

  /// Per-region summaries of one (country, access) shard, dense by
  /// region index; empty span when the shard holds no rows. Requires
  /// fresh() — call refresh() after appends.
  [[nodiscard]] std::span<const RegionStats> shard_stats(
      std::size_t country_index, net::AccessTechnology access) const;

  /// Country rollup across all access technologies (exact merge of the
  /// country's shard summaries). Requires fresh().
  [[nodiscard]] std::span<const RegionStats> country_stats(
      std::size_t country_index) const;

  /// Raw columns of one shard, in ingestion order (= dataset order) —
  /// the struct-of-arrays view tests and future scans consume.
  struct ShardView {
    const geo::Country* country = nullptr;
    net::AccessTechnology access = net::AccessTechnology::kEthernet;
    std::span<const std::uint32_t> probe_ids;
    std::span<const std::uint16_t> region_index;
    std::span<const std::uint32_t> ticks;
    std::span<const float> rtt_ms;
  };

  /// Views of every non-empty shard, ordered by (country index, access).
  [[nodiscard]] std::vector<ShardView> shards() const;

  /// Result of a direct kernel scan of one (shard, region) cell — the
  /// scan-kernel face of RegionStats. count / min_ms / median_ms /
  /// p95_ms are bit-identical to the Ecdf-based summary of the same
  /// cell; within_budget is the feasibility count (samples <=
  /// budget_ms).
  struct ScanSummary {
    std::uint64_t count = 0;
    double min_ms = 0.0;
    double median_ms = 0.0;
    double p95_ms = 0.0;
    std::uint64_t within_budget = 0;

    [[nodiscard]] bool empty() const noexcept { return count == 0; }
  };

  /// Scans one (country, access, region) cell straight off the raw RTT
  /// column with the given kernel family — no sort, no Ecdf, no
  /// refresh() required (raw columns are always current). The default
  /// overload uses active_scan_kernels() (AVX2 when available, scalar
  /// under SHEARS_FORCE_SCALAR); passing scalar_scan_kernels()
  /// explicitly is how tests and benches pin the fallback.
  [[nodiscard]] ScanSummary scan_region(std::size_t country_index,
                                        net::AccessTechnology access,
                                        std::uint16_t region,
                                        float budget_ms,
                                        const ScanKernels& kernels) const;
  [[nodiscard]] ScanSummary scan_region(std::size_t country_index,
                                        net::AccessTechnology access,
                                        std::uint16_t region,
                                        float budget_ms) const {
    return scan_region(country_index, access, region, budget_ms,
                       active_scan_kernels());
  }

  /// Publishes serve.store.* counters (rows, dropped, appends, refreshed
  /// shards) and the serve.store.refresh_ms histogram. Observational
  /// only; nullptr detaches. `metrics` must outlive the store.
  void attach_metrics(obs::MetricsRegistry* metrics);

 private:
  /// Snapshot persistence (src/serve/snapshot.cpp) serialises the raw
  /// shard columns and counters and restores them on load; it is the
  /// only code with by-hand access to the representation.
  friend struct SnapshotAccess;

  struct KeyGroup {
    std::vector<std::uint32_t> probe_ids;
    std::vector<std::uint16_t> region_index;
    std::vector<std::uint32_t> ticks;
    std::vector<float> rtt_ms;
    /// Dense by region index; rebuilt by refresh() when dirty.
    std::vector<RegionStats> stats;
    bool dirty = false;
  };

  [[nodiscard]] std::size_t key_count() const noexcept {
    return groups_.size();
  }
  void refresh_group(KeyGroup& group);
  void refresh_country(std::size_t country_idx);

  const atlas::ProbeFleet* fleet_;
  const topology::CloudRegistry* registry_;
  StoreConfig config_;
  /// probe id -> shard key (country * kAccessTechnologyCount + access),
  /// or kSkipKey for privileged probes.
  std::vector<std::uint32_t> probe_key_;
  std::vector<KeyGroup> groups_;  ///< dense key universe
  /// Country rollups, dense by (country index, region index).
  std::vector<std::vector<RegionStats>> country_stats_;
  std::vector<bool> country_dirty_;
  std::size_t rows_stored_ = 0;
  std::size_t rows_dropped_ = 0;
  bool fresh_ = true;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace shears::serve
