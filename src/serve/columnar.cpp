#include "serve/columnar.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace shears::serve {

namespace {

constexpr std::uint32_t kSkipKey = 0xffffffffu;

/// Hard per-shard capacity: the scatter indexes shard slots with
/// std::uint32_t offsets, so a shard can never exceed 2^32 - 1 rows.
constexpr std::uint64_t kMaxShardRows = 0xffffffffu;

/// Worker count for per-shard-heavy work (sorting summaries): unlike the
/// record scans behind core::resolve_threads, each unit here is worth a
/// thread well below 16k items.
[[nodiscard]] std::size_t heavy_threads(std::size_t requested,
                                        std::size_t items) noexcept {
  std::size_t n = requested != 0
                      ? requested
                      : static_cast<std::size_t>(
                            std::thread::hardware_concurrency());
  if (n == 0) n = 1;
  return std::max<std::size_t>(1, std::min(n, items));
}

}  // namespace

std::size_t country_index_of(const geo::Country* country) {
  const std::span<const geo::Country> all = geo::all_countries();
  if (country == nullptr || country < all.data() ||
      country >= all.data() + all.size()) {
    throw std::invalid_argument(
        "serve: probe country is not an entry of geo::all_countries()");
  }
  return static_cast<std::size_t>(country - all.data());
}

ColumnarStore::ColumnarStore(const atlas::ProbeFleet* fleet,
                             const topology::CloudRegistry* registry,
                             StoreConfig config)
    : fleet_(fleet), registry_(registry), config_(config) {
  probe_key_.reserve(fleet_->size());
  for (const atlas::Probe& probe : fleet_->probes()) {
    if (probe.privileged()) {
      probe_key_.push_back(kSkipKey);
      continue;
    }
    const std::size_t country = country_index_of(probe.country);
    probe_key_.push_back(static_cast<std::uint32_t>(
        country * net::kAccessTechnologyCount +
        static_cast<std::size_t>(probe.endpoint.access)));
  }
  groups_.resize(geo::country_count() * net::kAccessTechnologyCount);
  country_stats_.resize(geo::country_count());
  country_dirty_.assign(geo::country_count(), false);
}

ColumnarStore ColumnarStore::build(const atlas::MeasurementDataset& dataset,
                                   StoreConfig config) {
  ColumnarStore store(&dataset.fleet(), &dataset.registry(), config);
  store.append(dataset.records());
  store.refresh();
  return store;
}

void ColumnarStore::append(std::span<const atlas::Measurement> rows) {
  if (rows.empty()) return;
  if (rows.size() > kMaxShardRows) {
    // Keeps every pass-1 per-shard count exact in 32 bits; callers this
    // large must chunk (the sink path already does).
    throw std::length_error(
        "ColumnarStore::append: batch of " + std::to_string(rows.size()) +
        " rows exceeds the 2^32 - 1 per-call limit; split the batch");
  }
  const std::size_t keys = key_count();
  const std::size_t shards = core::resolve_threads(config_.threads,
                                                   rows.size());

  // Pass 1 — per-(shard, key) counts. Workers must not throw (they run on
  // bare std::thread), so validation failures are collected and raised
  // after the join.
  std::vector<std::vector<std::uint32_t>> counts(
      shards, std::vector<std::uint32_t>(keys, 0));
  std::atomic<std::size_t> first_bad{rows.size()};
  const std::uint16_t region_limit =
      static_cast<std::uint16_t>(registry_->size());
  core::parallel_shards(rows.size(), shards,
                        [&](std::size_t s, std::size_t begin,
                            std::size_t end) {
    std::vector<std::uint32_t>& local = counts[s];
    for (std::size_t i = begin; i < end; ++i) {
      const atlas::Measurement& m = rows[i];
      if (m.probe_id >= probe_key_.size() || m.region_index >= region_limit) {
        std::size_t expected = first_bad.load(std::memory_order_relaxed);
        while (i < expected &&
               !first_bad.compare_exchange_weak(expected, i)) {
        }
        return;
      }
      const std::uint32_t key = probe_key_[m.probe_id];
      if (key == kSkipKey || m.lost()) continue;
      ++local[key];
    }
  });
  if (first_bad.load() != rows.size()) {
    throw std::invalid_argument(
        "ColumnarStore::append: row " + std::to_string(first_bad.load()) +
        " does not resolve against the bound fleet/registry");
  }

  // Capacity check, in 64 bits and *before* any group is touched: the
  // scatter below indexes shard slots with std::uint32_t offsets, so
  // growth past 2^32 - 1 rows per shard (or past the configured cap)
  // would silently wrap the offsets and corrupt the store. A violation
  // throws here and leaves the store exactly as it was.
  const std::uint64_t shard_limit =
      config_.max_shard_rows == 0
          ? kMaxShardRows
          : std::min(config_.max_shard_rows, kMaxShardRows);
  for (std::size_t key = 0; key < keys; ++key) {
    std::uint64_t incoming = 0;
    for (std::size_t s = 0; s < shards; ++s) incoming += counts[s][key];
    if (incoming == 0) continue;
    const std::uint64_t grown = groups_[key].rtt_ms.size() + incoming;
    if (grown > shard_limit) {
      const geo::Country& country =
          geo::all_countries()[key / net::kAccessTechnologyCount];
      const auto access = static_cast<net::AccessTechnology>(
          key % net::kAccessTechnologyCount);
      throw std::length_error(
          "ColumnarStore::append: shard (" + std::string(country.iso2) +
          ", " + std::string(net::to_string(access)) + ") would grow to " +
          std::to_string(grown) + " rows, past its capacity of " +
          std::to_string(shard_limit) +
          " (u32 scatter offsets); no rows were appended");
    }
  }

  // Offsets: slot of a row = shard base + rows of its key in earlier
  // shards + local running count. Shards are contiguous input ranges, so
  // the slot equals the row's global rank within its key — independent
  // of the shard count.
  std::size_t appended = 0;
  std::vector<std::vector<std::uint32_t>> offsets = std::move(counts);
  for (std::size_t key = 0; key < keys; ++key) {
    std::uint32_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::uint32_t c = offsets[s][key];
      offsets[s][key] = total;
      total += c;
    }
    if (total == 0) continue;
    KeyGroup& group = groups_[key];
    const std::size_t base = group.rtt_ms.size();
    for (std::size_t s = 0; s < shards; ++s) {
      offsets[s][key] += static_cast<std::uint32_t>(base);
    }
    const std::size_t grown = base + total;
    group.probe_ids.resize(grown);
    group.region_index.resize(grown);
    group.ticks.resize(grown);
    group.rtt_ms.resize(grown);
    group.dirty = true;
    country_dirty_[key / net::kAccessTechnologyCount] = true;
    appended += total;
  }

  // Pass 2 — scatter. Every slot is written by exactly one worker.
  core::parallel_shards(rows.size(), shards,
                        [&](std::size_t s, std::size_t begin,
                            std::size_t end) {
    std::vector<std::uint32_t>& slot = offsets[s];
    for (std::size_t i = begin; i < end; ++i) {
      const atlas::Measurement& m = rows[i];
      const std::uint32_t key = probe_key_[m.probe_id];
      if (key == kSkipKey || m.lost()) continue;
      KeyGroup& group = groups_[key];
      const std::uint32_t at = slot[key]++;
      group.probe_ids[at] = m.probe_id;
      group.region_index[at] = m.region_index;
      group.ticks[at] = m.tick;
      group.rtt_ms[at] = m.min_ms;
    }
  });

  rows_stored_ += appended;
  rows_dropped_ += rows.size() - appended;
  if (appended != 0) fresh_ = false;
  if (metrics_ != nullptr) {
    metrics_->counter("serve.store.rows").add(appended);
    metrics_->counter("serve.store.dropped").add(rows.size() - appended);
    metrics_->counter("serve.store.appends").increment();
  }
}

void ColumnarStore::refresh_group(KeyGroup& group) {
  const std::size_t regions = registry_->size();
  std::vector<std::vector<double>> samples(regions);
  for (std::size_t i = 0; i < group.rtt_ms.size(); ++i) {
    samples[group.region_index[i]].push_back(
        static_cast<double>(group.rtt_ms[i]));
  }
  group.stats.assign(regions, RegionStats{});
  for (std::size_t r = 0; r < regions; ++r) {
    if (samples[r].empty()) continue;
    std::sort(samples[r].begin(), samples[r].end());
    RegionStats& cell = group.stats[r];
    cell.ecdf = stats::Ecdf::from_sorted(std::move(samples[r]));
    cell.count = cell.ecdf.size();
    cell.min_ms = cell.ecdf.min();
    cell.median_ms = cell.ecdf.quantile(0.5);
    cell.p95_ms = cell.ecdf.quantile(0.95);
  }
  group.dirty = false;
}

void ColumnarStore::refresh_country(std::size_t country_idx) {
  const std::size_t regions = registry_->size();
  std::vector<RegionStats>& rollup = country_stats_[country_idx];
  rollup.assign(regions, RegionStats{});
  for (std::size_t r = 0; r < regions; ++r) {
    std::array<const stats::Ecdf*, net::kAccessTechnologyCount> parts{};
    std::size_t used = 0;
    for (std::size_t a = 0; a < net::kAccessTechnologyCount; ++a) {
      const KeyGroup& group =
          groups_[country_idx * net::kAccessTechnologyCount + a];
      if (group.stats.empty() || group.stats[r].empty()) continue;
      parts[used++] = &group.stats[r].ecdf;
    }
    if (used == 0) continue;
    RegionStats& cell = rollup[r];
    cell.ecdf = stats::Ecdf::merged(
        std::span<const stats::Ecdf* const>(parts.data(), used));
    cell.count = cell.ecdf.size();
    cell.min_ms = cell.ecdf.min();
    cell.median_ms = cell.ecdf.quantile(0.5);
    cell.p95_ms = cell.ecdf.quantile(0.95);
  }
}

void ColumnarStore::refresh() {
  if (fresh_) return;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::uint32_t> dirty;
  for (std::uint32_t key = 0; key < key_count(); ++key) {
    if (groups_[key].dirty) dirty.push_back(key);
  }
  const std::size_t threads = heavy_threads(config_.threads, dirty.size());
  core::parallel_shards(dirty.size(), threads,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      refresh_group(groups_[dirty[i]]);
    }
  });

  std::vector<std::uint32_t> dirty_countries;
  for (std::uint32_t c = 0; c < country_dirty_.size(); ++c) {
    if (country_dirty_[c]) dirty_countries.push_back(c);
  }
  const std::size_t country_threads =
      heavy_threads(config_.threads, dirty_countries.size());
  core::parallel_shards(dirty_countries.size(), country_threads,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      refresh_country(dirty_countries[i]);
    }
  });
  country_dirty_.assign(country_dirty_.size(), false);
  fresh_ = true;

  if (metrics_ != nullptr) {
    metrics_->counter("serve.store.refreshed_shards").add(dirty.size());
    metrics_->histogram("serve.store.refresh_ms")
        .record(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count());
  }
}

std::size_t ColumnarStore::shard_count() const noexcept {
  std::size_t n = 0;
  for (const KeyGroup& group : groups_) {
    if (!group.rtt_ms.empty()) ++n;
  }
  return n;
}

std::span<const RegionStats> ColumnarStore::shard_stats(
    std::size_t country_index, net::AccessTechnology access) const {
  if (!fresh_) {
    throw std::logic_error("ColumnarStore: refresh() before reading stats");
  }
  if (country_index >= geo::country_count()) return {};
  const KeyGroup& group =
      groups_[country_index * net::kAccessTechnologyCount +
              static_cast<std::size_t>(access)];
  return group.stats;
}

std::span<const RegionStats> ColumnarStore::country_stats(
    std::size_t country_index) const {
  if (!fresh_) {
    throw std::logic_error("ColumnarStore: refresh() before reading stats");
  }
  if (country_index >= geo::country_count()) return {};
  return country_stats_[country_index];
}

ColumnarStore::ScanSummary ColumnarStore::scan_region(
    std::size_t country_index, net::AccessTechnology access,
    std::uint16_t region, float budget_ms,
    const ScanKernels& kernels) const {
  ScanSummary out;
  if (country_index >= geo::country_count()) return out;
  const KeyGroup& group =
      groups_[country_index * net::kAccessTechnologyCount +
              static_cast<std::size_t>(access)];
  // Gather the cell's samples off the region-filtered column. Ingestion
  // order, like refresh_group's bucketing — the value multiset (and so
  // every kernel result) matches the Ecdf summary exactly.
  std::vector<float> values;
  values.reserve(group.rtt_ms.size());
  for (std::size_t i = 0; i < group.rtt_ms.size(); ++i) {
    if (group.region_index[i] == region) values.push_back(group.rtt_ms[i]);
  }
  if (values.empty()) return out;
  const float* data = values.data();
  const std::size_t n = values.size();
  out.count = n;
  out.min_ms = static_cast<double>(kernels.min(data, n));
  out.median_ms = quantile_type7(kernels, data, n, 0.5);
  out.p95_ms = quantile_type7(kernels, data, n, 0.95);
  out.within_budget = kernels.count_le(data, n, budget_ms);
  return out;
}

std::vector<ColumnarStore::ShardView> ColumnarStore::shards() const {
  std::vector<ShardView> views;
  const std::span<const geo::Country> all = geo::all_countries();
  for (std::size_t key = 0; key < key_count(); ++key) {
    const KeyGroup& group = groups_[key];
    if (group.rtt_ms.empty()) continue;
    views.push_back(ShardView{
        &all[key / net::kAccessTechnologyCount],
        static_cast<net::AccessTechnology>(key % net::kAccessTechnologyCount),
        group.probe_ids,
        group.region_index,
        group.ticks,
        group.rtt_ms,
    });
  }
  return views;
}

void ColumnarStore::attach_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
}

}  // namespace shears::serve
