// Brute-force reference implementation of the latency oracle.
//
// Every query re-scans the entire measurement dataset: country
// resolution is a linear sweep over the eligible probes comparing exact
// haversine distances, and the per-region summary table is rebuilt from
// scratch by filtering every record against the query's (country,
// access) scope. O(probes + records) per query — hopeless as a serving
// path, unbeatable as ground truth.
//
// The indexed Oracle must produce byte-identical Answers (operator== on
// every field, RTTs compared as exact doubles) for any store shard
// count, append chunking, and query thread count. The serve test suite
// and the bench gate both pin this via answers_identical().
#pragma once

#include <span>
#include <string>
#include <vector>

#include "atlas/measurement.hpp"
#include "serve/oracle.hpp"

namespace shears::serve {

class ReferenceOracle {
 public:
  /// `dataset` must outlive the oracle. `config.threads` is ignored —
  /// the reference is deliberately sequential.
  explicit ReferenceOracle(const atlas::MeasurementDataset* dataset,
                           OracleConfig config = {});

  [[nodiscard]] std::vector<Answer> answer(
      std::span<const Query> queries) const;

  [[nodiscard]] Answer answer_one(const Query& query) const;

 private:
  [[nodiscard]] const geo::Country* resolve_country(const Query& q) const;
  /// Dense per-region summaries over the records in the query's scope.
  [[nodiscard]] std::vector<RegionStats> scan_stats(
      const Query& q, const geo::Country* country) const;

  const atlas::MeasurementDataset* dataset_;
  OracleConfig config_;
};

/// True when the two answer batches match element-for-element. On the
/// first divergence, fills `why` with the index and a short field-level
/// description (for test failure messages) and returns false.
[[nodiscard]] bool answers_identical(std::span<const Answer> a,
                                     std::span<const Answer> b,
                                     std::string& why);

}  // namespace shears::serve
