#include "serve/oracle.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/parallel.hpp"
#include "obs/metrics.hpp"

namespace shears::serve {

namespace detail {

void answer_from_stats(const Query& query, const geo::Country* country,
                       std::span<const RegionStats> stats,
                       const topology::CloudRegistry& registry,
                       const core::FeasibilityConfig& feasibility,
                       Answer& out) {
  out = Answer{};
  out.country = country;
  if (country == nullptr) return;

  // Best observed region in scope: strict (min RTT, region index) order,
  // the same rule every batch analysis uses.
  std::size_t best = stats.size();
  for (std::size_t r = 0; r < stats.size(); ++r) {
    if (stats[r].empty()) continue;
    if (best == stats.size() || stats[r].min_ms < stats[best].min_ms) {
      best = r;
    }
  }
  if (best == stats.size()) return;  // resolved, but no data in scope

  out.best_region = registry.regions()[best];
  out.best_ms = stats[best].min_ms;
  out.median_ms = stats[best].median_ms;
  out.p95_ms = stats[best].p95_ms;

  switch (query.kind) {
    case QueryKind::kBestRtt:
      out.ok = true;
      break;
    case QueryKind::kFeasibility: {
      const apps::Application* app = apps::find_application(query.app_id);
      if (app == nullptr) return;
      out.verdict = core::classify(*app, out.best_ms, feasibility);
      out.in_zone = core::in_feasibility_zone(*app, feasibility);
      out.ok = true;
      break;
    }
    case QueryKind::kTopK: {
      for (std::size_t r = 0; r < stats.size(); ++r) {
        if (stats[r].empty() || stats[r].min_ms > query.budget_ms) continue;
        out.regions.push_back(RegionAnswer{registry.regions()[r],
                                           stats[r].min_ms});
      }
      // Entries were pushed in registry order; stable sort keeps that as
      // the tie-break.
      std::stable_sort(out.regions.begin(), out.regions.end(),
                       [](const RegionAnswer& a, const RegionAnswer& b) {
                         return a.rtt_ms < b.rtt_ms;
                       });
      if (out.regions.size() > query.k) out.regions.resize(query.k);
      out.ok = true;
      break;
    }
  }
}

}  // namespace detail

Oracle::Oracle(ColumnarStore* store, OracleConfig config)
    : Oracle(static_cast<const ColumnarStore*>(store), config) {
  mutable_store_ = store;
}

Oracle::Oracle(const ColumnarStore* store, OracleConfig config)
    : store_(store), config_(config) {
  const topology::CloudRegistry& registry = store_->registry();
  std::vector<geo::GeoPoint> region_points;
  region_points.reserve(registry.size());
  for (const topology::CloudRegion* region : registry.regions()) {
    region_points.push_back(region->location);
  }
  region_index_ = geo::SpatialIndex(region_points);

  // Analysis-eligible probes only (privileged vantage points never stand
  // in for users), all-access plus one filtered index per technology.
  std::vector<geo::GeoPoint> probe_points;
  std::array<std::vector<geo::GeoPoint>, net::kAccessTechnologyCount>
      access_points;
  for (const atlas::Probe& probe : store_->fleet().probes()) {
    if (probe.privileged()) continue;
    probe_points.push_back(probe.endpoint.location);
    probe_of_hit_.push_back(probe.id);
    const auto a = static_cast<std::size_t>(probe.endpoint.access);
    access_points[a].push_back(probe.endpoint.location);
    access_probe_of_hit_[a].push_back(probe.id);
  }
  probe_index_ = geo::SpatialIndex(probe_points);
  for (std::size_t a = 0; a < net::kAccessTechnologyCount; ++a) {
    access_index_[a] = geo::SpatialIndex(access_points[a]);
  }
}

const geo::Country* Oracle::resolve_country(const Query& q) const {
  if (!q.country_iso2.empty()) return geo::find_country(q.country_iso2);
  const auto a = static_cast<std::size_t>(q.access);
  const geo::SpatialIndex& index = q.any_access ? probe_index_
                                                : access_index_[a];
  const auto hit = index.nearest(q.where);
  if (!hit.has_value()) return nullptr;
  const std::uint32_t probe_id = q.any_access
                                     ? probe_of_hit_[hit->id]
                                     : access_probe_of_hit_[a][hit->id];
  return store_->fleet().probe(probe_id).country;
}

std::span<const RegionStats> Oracle::stats_in_scope(
    const Query& q, const geo::Country* country,
    const SummaryOverlay* overlay) const {
  const std::size_t index = country_index_of(country);
  if (overlay != nullptr) {
    const auto substituted = overlay->stats(
        index, q.any_access ? std::nullopt
                            : std::optional<net::AccessTechnology>(q.access));
    if (substituted.has_value()) return *substituted;
  }
  return q.any_access ? store_->country_stats(index)
                      : store_->shard_stats(index, q.access);
}

void Oracle::answer_into(const Query& query, Answer& out,
                         const SummaryOverlay* overlay) const {
  const geo::Country* country = resolve_country(query);
  std::span<const RegionStats> stats;
  if (country != nullptr) stats = stats_in_scope(query, country, overlay);
  detail::answer_from_stats(query, country, stats, store_->registry(),
                            config_.feasibility, out);
}

void Oracle::answer(std::span<const Query> queries,
                    std::span<Answer> out) const {
  answer(queries, out, nullptr);
}

void Oracle::answer(std::span<const Query> queries, std::span<Answer> out,
                    const SummaryOverlay* overlay) const {
  if (try_answer(queries, out, overlay) == BatchStatus::kStale) {
    throw std::logic_error(
        "Oracle::answer: store has unrefreshed appends (call refresh())");
  }
}

bool Oracle::ensure_fresh() const {
  if (store_->fresh()) return true;
  if (!config_.auto_refresh || mutable_store_ == nullptr) return false;
  mutable_store_->refresh();
  return true;
}

BatchStatus Oracle::try_answer(std::span<const Query> queries,
                               std::span<Answer> out) const {
  return try_answer(queries, out, nullptr);
}

BatchStatus Oracle::try_answer(std::span<const Query> queries,
                               std::span<Answer> out,
                               const SummaryOverlay* overlay) const {
  if (queries.size() != out.size()) {
    throw std::invalid_argument("Oracle::answer: out.size() != queries.size()");
  }
  if (!ensure_fresh()) return BatchStatus::kStale;
  const auto start = std::chrono::steady_clock::now();

  // A query costs ~1-2us; a worker fork/join costs tens of us. The old
  // 256-query cutoff still fanned a 4096-query batch across 8 threads —
  // ~512 queries (~1ms of work) per worker, which thread overhead ate
  // whole (bench_serve showed t8 *slower* than t1 at b4096). Each shard
  // now has to carry a few thousand queries before forking pays.
  constexpr std::size_t kMinQueriesPerShard = 4096;
  const std::size_t shards = core::resolve_threads(
      config_.threads, queries.size(), kMinQueriesPerShard);
  core::parallel_shards(queries.size(), shards,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      answer_into(queries[i], out[i], overlay);
    }
  });

  if (instruments_.queries != nullptr) {
    instruments_.queries->add(queries.size());
    instruments_.batches->increment();
    std::uint64_t ok = 0;
    for (const Answer& a : out) ok += a.ok ? 1 : 0;
    instruments_.answers_ok->add(ok);
    std::array<std::uint64_t, 3> by_kind{};
    for (const Query& q : queries) ++by_kind[static_cast<std::size_t>(q.kind)];
    for (std::size_t k = 0; k < by_kind.size(); ++k) {
      if (by_kind[k] != 0) instruments_.by_kind[k]->add(by_kind[k]);
    }
    instruments_.batch_ms->record(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  return BatchStatus::kOk;
}

std::vector<Answer> Oracle::answer(std::span<const Query> queries) const {
  std::vector<Answer> out(queries.size());
  answer(queries, out);
  return out;
}

Answer Oracle::answer_one(const Query& query) const {
  Answer out;
  answer(std::span<const Query>(&query, 1), std::span<Answer>(&out, 1));
  return out;
}

CoverageResult Oracle::weighted_coverage(std::span<const Query> queries,
                                         double budget_ms,
                                         std::span<const double> weights,
                                         const SummaryOverlay* overlay) const {
  if (!weights.empty() && weights.size() != queries.size()) {
    throw std::invalid_argument(
        "Oracle::weighted_coverage: weights.size() != queries.size()");
  }
  if (!ensure_fresh()) {
    throw std::logic_error(
        "Oracle::weighted_coverage: store has unrefreshed appends");
  }

  // Per-query pooled counts, computed independently into a dense vector.
  // Counts are integers (rank of budget_ms in each cell's sorted sample),
  // so no arithmetic here can depend on evaluation order.
  struct Counts {
    std::uint64_t covered = 0;
    std::uint64_t total = 0;
  };
  std::vector<Counts> counts(queries.size());
  constexpr std::size_t kMinQueriesPerShard = 512;
  const std::size_t shards = core::resolve_threads(
      config_.threads, queries.size(), kMinQueriesPerShard);
  core::parallel_shards(queries.size(), shards,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const geo::Country* country = resolve_country(queries[i]);
      if (country == nullptr) continue;
      for (const RegionStats& cell :
           stats_in_scope(queries[i], country, overlay)) {
        if (cell.empty()) continue;
        const std::vector<double>& samples = cell.ecdf.sorted();
        counts[i].total += samples.size();
        counts[i].covered += static_cast<std::uint64_t>(
            std::upper_bound(samples.begin(), samples.end(), budget_ms) -
            samples.begin());
      }
    }
  });

  // The weighted fold runs sequentially in query order on the calling
  // thread — the one float accumulation, and it never crosses a thread
  // boundary, so the result is byte-identical for any thread count.
  CoverageResult result;
  result.queries = queries.size();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (counts[i].total == 0) continue;
    const double w = weights.empty() ? 1.0 : weights[i];
    ++result.answered;
    result.answered_weight += w;
    result.covered_weight += w * (static_cast<double>(counts[i].covered) /
                                  static_cast<double>(counts[i].total));
  }
  return result;
}

std::vector<geo::SpatialHit> Oracle::nearest_regions(
    const geo::GeoPoint& where, std::size_t n) const {
  return region_index_.nearest_n(where, n);
}

std::vector<geo::SpatialHit> Oracle::regions_within_km(
    const geo::GeoPoint& where, double radius_km) const {
  return region_index_.within_radius(where, radius_km);
}

void Oracle::attach_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  instruments_.queries = &metrics->counter("serve.queries");
  instruments_.batches = &metrics->counter("serve.batches");
  instruments_.answers_ok = &metrics->counter("serve.answers_ok");
  instruments_.by_kind = {
      &metrics->counter("serve.queries.best_rtt"),
      &metrics->counter("serve.queries.feasibility"),
      &metrics->counter("serve.queries.top_k"),
  };
  instruments_.batch_ms = &metrics->histogram("serve.batch_ms");
}

}  // namespace shears::serve
