// Snapshot persistence for serve::ColumnarStore — the durable form of
// the serving dataset.
//
// The paper's nine-month campaign exists only in RAM: every serving
// restart replays the whole simulation before the oracle can answer a
// query. A snapshot serialises the store once — raw shard columns,
// per-region summary scalars, country rollups and row counters — into a
// versioned, CRC-checksummed block container (io::block_file), and a
// restart loads it back orders of magnitude faster than the replay.
//
// Exactness contract: a store loaded from a snapshot is byte-identical
// to the live-built store it was saved from. Only the raw columns and
// counters are authoritative on disk; the Ecdf summaries are a pure
// function of the columns, so load rebuilds them through the store's
// own refresh() machinery and then cross-checks the rebuilt scalars
// against the scalars recorded at save time, bit for bit. Any
// divergence — corruption the CRC missed, or a quantile-algorithm
// change that silently re-interprets old data — fails the load.
//
// Error confinement mirrors the serving front-end's frame codec: a
// damaged file (truncation, flipped bits, wrong version, wrong fleet)
// throws SnapshotError with a precise message, and the caller never
// observes a partially-populated store — loads build into a local
// store and only return it whole.
//
// Incremental persistence rides the MeasurementSink hook: a DeltaLog
// attached to a campaign appends every published batch to the store
// AND to an append-only segment log keyed to a base snapshot. On
// restart, load the base and apply_delta_log() — append chunking never
// changes the stored bytes, so the recovered store equals the one that
// crashed. compact() folds the log back into a fresh base.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>

#include "atlas/campaign.hpp"
#include "io/block_file.hpp"
#include "serve/columnar.hpp"

namespace shears::serve {

/// Application tags of the two container formats (io::block_file
/// header field).
inline constexpr std::uint32_t kSnapshotTag = io::fourcc("SNP1");
inline constexpr std::uint32_t kDeltaTag = io::fourcc("SND1");

/// Version of the snapshot payload layout (bumped when block payloads
/// change shape; the container itself is versioned separately).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Any snapshot/delta-log failure: damaged file, version or fingerprint
/// mismatch, store/log inconsistency. Loads that throw leave no
/// partially-populated store behind.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Order-sensitive FNV-1a identity of a fleet: size plus, per probe,
/// id, country, access technology, environment, privileged bit and
/// location. A snapshot records it at save time and a load against a
/// fleet with a different fingerprint fails — shard keys and per-row
/// probe ids are only meaningful against the exact fleet.
[[nodiscard]] std::uint64_t fleet_fingerprint(const atlas::ProbeFleet& fleet);

/// Same for the cloud registry (region order defines region_index).
[[nodiscard]] std::uint64_t registry_fingerprint(
    const topology::CloudRegistry& registry);

/// Serialises a fresh store (refresh() first; throws std::logic_error on
/// a stale one) into a checksummed snapshot container. The stream
/// overload writes to any sink (tests fuzz in-memory images); the path
/// overload writes atomically (tmp + rename), so a failed save never
/// replaces an existing snapshot with a torn one. Throws SnapshotError /
/// io::BlockError on write failure.
void save_snapshot(const ColumnarStore& store, std::ostream& os);
void save_snapshot(const ColumnarStore& store, const std::string& path);

struct SnapshotLoadOptions {
  /// Path overload only: map the file instead of reading it — pages
  /// fault in as they are parsed and ride the OS page cache across
  /// restarts. Falls back to a buffered read where mapping fails.
  bool mmap = false;
  /// Skip the summary rebuild and verification: the load returns a
  /// stale store (fresh() == false) carrying only columns and counters,
  /// and the caller runs refresh() when it first needs stats. The lazy
  /// path still validates every checksum, fingerprint and row.
  bool lazy_summaries = false;
};

/// Rebuilds a store from a snapshot image. Validates the container
/// (magic, version, every block CRC), the snapshot version, the
/// fleet/registry fingerprints, and every row (probe resolves to the
/// recorded shard, region in range, RTT finite and non-negative);
/// unless lazy, rebuilds the summaries and verifies them bit-exact
/// against the scalars recorded at save time. Throws SnapshotError (or
/// io::BlockError for container-level damage); on throw, no store is
/// returned — never a partial one. `fleet` and `registry` must outlive
/// the returned store.
[[nodiscard]] ColumnarStore load_snapshot(
    std::span<const std::uint8_t> bytes, const atlas::ProbeFleet* fleet,
    const topology::CloudRegistry* registry, StoreConfig config = {},
    SnapshotLoadOptions options = {});
[[nodiscard]] ColumnarStore load_snapshot(
    const std::string& path, const atlas::ProbeFleet* fleet,
    const topology::CloudRegistry* registry, StoreConfig config = {},
    SnapshotLoadOptions options = {});

/// Append-only measurement log tied to a base snapshot — the
/// incremental half of persistence. Attach one to a campaign
/// (attach_sink) or call publish() directly: each batch is appended to
/// the store first (so validation failures never pollute the log) and
/// then written as one checksummed segment and flushed. The log header
/// records the fleet/registry fingerprints and the store's row counters
/// at attach time; apply_delta_log() replays the segments onto a store
/// restored to exactly that base state.
class DeltaLog final : public atlas::MeasurementSink {
 public:
  enum class Open {
    kTruncate,  ///< start a fresh log for the store's current state
    kExtend,    ///< reopen an existing log; validates it matches the store
  };

  /// Throws SnapshotError when the file cannot be opened/written, or —
  /// in kExtend mode — when the existing log's fingerprints or row
  /// accounting do not line up with `store` (replaying it would
  /// diverge). `store` must outlive the log.
  DeltaLog(ColumnarStore* store, std::string path,
           Open open = Open::kTruncate);
  ~DeltaLog() override;
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// store->append(rows), then one DSEG segment, flushed and checked.
  void publish(std::span<const atlas::Measurement> rows) override;

  /// Folds the log into a fresh base: saves `store` (must be fresh())
  /// atomically to `base_path`, then resets this log to empty against
  /// the new base. After compact(), load_snapshot(base_path) +
  /// apply_delta_log() recovers the current store.
  void compact(const std::string& base_path);

  /// Segments written against the current base (0 right after open in
  /// kTruncate mode or after compact()).
  [[nodiscard]] std::size_t segments() const noexcept { return segments_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void write_header();

  ColumnarStore* store_;
  std::string path_;
  struct Impl;
  Impl* impl_;
  std::size_t segments_ = 0;
};

/// Replays a delta log onto a store restored to the log's base state
/// (typically: load_snapshot of the matching base, or an empty store
/// when the log was started from scratch). Validates the log header
/// against the store's fleet/registry/counters and every segment's
/// checksum; a torn tail (crash mid-write) fails with a precise error.
/// Returns the number of segments applied; the store is left stale —
/// refresh() before reading stats.
std::size_t apply_delta_log(ColumnarStore& store, const std::string& path);

}  // namespace shears::serve
