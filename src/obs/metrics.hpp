// Low-overhead observability for the measurement platform.
//
// RIPE Atlas itself surfaces the operational health behind a nine-month
// dataset — probe status, credit accounting, per-measurement metadata.
// This module gives the simulated platform the same telemetry surface:
// a MetricsRegistry of named counters, gauges, and streaming latency
// histograms that the campaign engine, the fault layer, and the §4
// analyses feed, with snapshot export to JSONL/CSV for dashboards and
// regression tooling.
//
// Cost model (the burst-path contract):
//   * Counter::add is one relaxed fetch-add; the campaign engine goes
//     further and accumulates per-shard locals, publishing once per
//     worker — the per-burst cost of compiled-in instrumentation is
//     zero atomics.
//   * Gauge::set is one relaxed store.
//   * LatencyHistogram::record takes a mutex and is for *phase-level*
//     spans (per-shard scans, per-run wall time) — never per burst.
//
// Determinism contract: metrics never consume RNG draws and never feed
// back into sampling, so an instrumented campaign is byte-identical to
// an uninstrumented one (test_obs pins the golden checksum). Counter
// values derived from the dataset are themselves deterministic; wall
// times are not, and live only in gauges/histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "stats/p2_quantile.hpp"

namespace shears::obs {

/// Monotonic event counter; add() is a single relaxed fetch-add.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value; set() is a single relaxed store.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming latency summary: count/sum/min/max plus P² estimates of the
/// median, p90 and p99 (stats::P2Quantile — O(1) memory, no sample
/// retention). record() is mutex-guarded: it serves phase-level Span
/// timers, a handful of calls per analysis, never the per-burst path.
class LatencyHistogram {
 public:
  struct Summary {
    std::uint64_t count = 0;
    double sum_ms = 0.0;
    double min_ms = 0.0;  ///< 0 when empty
    double max_ms = 0.0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
  };

  LatencyHistogram();

  void record(double ms);

  [[nodiscard]] Summary summary() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
  stats::P2Quantile p50_;
  stats::P2Quantile p90_;
  stats::P2Quantile p99_;
};

enum class MetricKind : unsigned char { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

/// One exported metric. Counter values live in `count`, gauge values in
/// `value`, histogram summaries in the *_ms fields (count = samples).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;
  double value = 0.0;
  double sum_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;

  [[nodiscard]] bool operator==(const MetricSample&) const = default;
};

/// Point-in-time export of a registry, ordered by (name, kind) so two
/// snapshots of the same state serialize identically.
class Snapshot {
 public:
  Snapshot() = default;
  explicit Snapshot(std::vector<MetricSample> samples);

  [[nodiscard]] const std::vector<MetricSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// First sample with this name, nullptr when absent.
  [[nodiscard]] const MetricSample* find(std::string_view name) const noexcept;

  /// Counter value by name; 0 when the counter was never registered.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;

  /// Gauge value by name; 0 when absent.
  [[nodiscard]] double gauge(std::string_view name) const noexcept;

  /// One JSON object per line:
  ///   {"metric":"campaign.bursts","kind":"counter","count":6144}
  ///   {"metric":"...","kind":"gauge","value":1.25}
  ///   {"metric":"...","kind":"histogram","count":8,"sum_ms":...,...}
  /// Doubles print with max_digits10 so read_jsonl round-trips exactly.
  void write_jsonl(std::ostream& os) const;

  /// "metric,kind,count,value,sum_ms,min_ms,max_ms,p50_ms,p90_ms,p99_ms"
  /// rows; unused fields print as 0.
  void write_csv(std::ostream& os) const;

  /// Round-trip counterpart of write_jsonl; throws std::runtime_error on
  /// malformed lines (with line numbers, like the dataset readers).
  static Snapshot read_jsonl(std::istream& is);

 private:
  std::vector<MetricSample> samples_;
};

/// Named metric registry. Registration (the name lookup) takes a mutex
/// and is meant for setup / per-phase code; the returned references are
/// stable for the registry's lifetime, so hot paths resolve a metric
/// once and then touch only its atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] LatencyHistogram& histogram(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // Node-based maps: references handed out stay valid across inserts.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram, std::less<>> histograms_;
};

}  // namespace shears::obs
