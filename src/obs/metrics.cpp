#include "obs/metrics.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace shears::obs {

LatencyHistogram::LatencyHistogram() : p50_(0.5), p90_(0.9), p99_(0.99) {}

void LatencyHistogram::record(double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0 || ms < min_ms_) min_ms_ = ms;
  if (count_ == 0 || ms > max_ms_) max_ms_ = ms;
  ++count_;
  sum_ms_ += ms;
  p50_.add(ms);
  p90_.add(ms);
  p99_.add(ms);
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Summary s;
  s.count = count_;
  s.sum_ms = sum_ms_;
  s.min_ms = min_ms_;
  s.max_ms = max_ms_;
  s.p50_ms = p50_.value();
  s.p90_ms = p90_.value();
  s.p99_ms = p99_.value();
  return s;
}

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

Snapshot::Snapshot(std::vector<MetricSample> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return static_cast<unsigned>(a.kind) <
                     static_cast<unsigned>(b.kind);
            });
}

const MetricSample* Snapshot::find(std::string_view name) const noexcept {
  for (const MetricSample& s : samples_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::uint64_t Snapshot::counter(std::string_view name) const noexcept {
  const MetricSample* s = find(name);
  return s != nullptr && s->kind == MetricKind::kCounter ? s->count : 0;
}

double Snapshot::gauge(std::string_view name) const noexcept {
  const MetricSample* s = find(name);
  return s != nullptr && s->kind == MetricKind::kGauge ? s->value : 0.0;
}

namespace {

/// Shortest decimal that reads back to the same double.
void put_double(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(std::numeric_limits<double>::max_digits10);
  tmp << v;
  os << tmp.str();
}

}  // namespace

void Snapshot::write_jsonl(std::ostream& os) const {
  for (const MetricSample& s : samples_) {
    os << "{\"metric\":\"" << s.name << "\",\"kind\":\"" << to_string(s.kind)
       << '"';
    switch (s.kind) {
      case MetricKind::kCounter:
        os << ",\"count\":" << s.count;
        break;
      case MetricKind::kGauge:
        os << ",\"value\":";
        put_double(os, s.value);
        break;
      case MetricKind::kHistogram:
        os << ",\"count\":" << s.count << ",\"sum_ms\":";
        put_double(os, s.sum_ms);
        os << ",\"min_ms\":";
        put_double(os, s.min_ms);
        os << ",\"max_ms\":";
        put_double(os, s.max_ms);
        os << ",\"p50_ms\":";
        put_double(os, s.p50_ms);
        os << ",\"p90_ms\":";
        put_double(os, s.p90_ms);
        os << ",\"p99_ms\":";
        put_double(os, s.p99_ms);
        break;
    }
    os << "}\n";
  }
}

void Snapshot::write_csv(std::ostream& os) const {
  os << "metric,kind,count,value,sum_ms,min_ms,max_ms,p50_ms,p90_ms,p99_ms\n";
  for (const MetricSample& s : samples_) {
    os << s.name << ',' << to_string(s.kind) << ',' << s.count << ',';
    put_double(os, s.value);
    os << ',';
    put_double(os, s.sum_ms);
    os << ',';
    put_double(os, s.min_ms);
    os << ',';
    put_double(os, s.max_ms);
    os << ',';
    put_double(os, s.p50_ms);
    os << ',';
    put_double(os, s.p90_ms);
    os << ',';
    put_double(os, s.p99_ms);
    os << '\n';
  }
}

namespace {

/// Pulls `"key":` out of one of our own JSONL lines — the writer controls
/// the format, like the dataset readers in atlas/measurement.cpp.
std::string_view json_field(std::string_view line, std::string_view key,
                            bool required, std::size_t line_no) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) {
    if (!required) return {};
    throw std::runtime_error("Snapshot::read_jsonl: missing \"" +
                             std::string(key) + "\" at line " +
                             std::to_string(line_no));
  }
  std::size_t begin = at + needle.size();
  std::size_t end;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string_view::npos) {
      throw std::runtime_error(
          "Snapshot::read_jsonl: unterminated string at line " +
          std::to_string(line_no));
    }
  } else {
    end = line.find_first_of(",}", begin);
    if (end == std::string_view::npos) {
      throw std::runtime_error("Snapshot::read_jsonl: malformed line " +
                               std::to_string(line_no));
    }
  }
  return line.substr(begin, end - begin);
}

std::uint64_t parse_u64(std::string_view text, const char* key,
                        std::size_t line_no) {
  try {
    std::size_t used = 0;
    const unsigned long long value = std::stoull(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("Snapshot::read_jsonl: bad " + std::string(key) +
                             " at line " + std::to_string(line_no));
  }
}

double parse_double(std::string_view text, const char* key,
                    std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("Snapshot::read_jsonl: bad " + std::string(key) +
                             " at line " + std::to_string(line_no));
  }
}

}  // namespace

Snapshot Snapshot::read_jsonl(std::istream& is) {
  std::vector<MetricSample> samples;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.front() != '{' || line.back() != '}') {
      throw std::runtime_error("Snapshot::read_jsonl: malformed line " +
                               std::to_string(line_no));
    }
    MetricSample s;
    s.name = std::string(json_field(line, "metric", true, line_no));
    const std::string_view kind = json_field(line, "kind", true, line_no);
    if (kind == "counter") {
      s.kind = MetricKind::kCounter;
      s.count = parse_u64(json_field(line, "count", true, line_no), "count",
                          line_no);
    } else if (kind == "gauge") {
      s.kind = MetricKind::kGauge;
      s.value = parse_double(json_field(line, "value", true, line_no), "value",
                             line_no);
    } else if (kind == "histogram") {
      s.kind = MetricKind::kHistogram;
      s.count = parse_u64(json_field(line, "count", true, line_no), "count",
                          line_no);
      s.sum_ms = parse_double(json_field(line, "sum_ms", true, line_no),
                              "sum_ms", line_no);
      s.min_ms = parse_double(json_field(line, "min_ms", true, line_no),
                              "min_ms", line_no);
      s.max_ms = parse_double(json_field(line, "max_ms", true, line_no),
                              "max_ms", line_no);
      s.p50_ms = parse_double(json_field(line, "p50_ms", true, line_no),
                              "p50_ms", line_no);
      s.p90_ms = parse_double(json_field(line, "p90_ms", true, line_no),
                              "p90_ms", line_no);
      s.p99_ms = parse_double(json_field(line, "p99_ms", true, line_no),
                              "p99_ms", line_no);
    } else {
      throw std::runtime_error("Snapshot::read_jsonl: unknown kind at line " +
                               std::to_string(line_no));
    }
    samples.push_back(std::move(s));
  }
  return Snapshot(std::move(samples));
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.count = counter.value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = gauge.value();
    samples.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram::Summary sum = histogram.summary();
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = sum.count;
    s.sum_ms = sum.sum_ms;
    s.min_ms = sum.min_ms;
    s.max_ms = sum.max_ms;
    s.p50_ms = sum.p50_ms;
    s.p90_ms = sum.p90_ms;
    s.p99_ms = sum.p99_ms;
    samples.push_back(std::move(s));
  }
  return Snapshot(std::move(samples));
}

}  // namespace shears::obs
