// RAII phase timers feeding obs::LatencyHistogram.
#pragma once

#include <chrono>
#include <string_view>

#include "obs/metrics.hpp"

namespace shears::obs {

/// Wall-clock span: records the elapsed milliseconds into a histogram
/// when destroyed (or at stop(), whichever comes first). A null histogram
/// disables the span entirely — call sites instrument unconditionally and
/// pay nothing when no registry is attached. Spans time *phases* (a shard
/// scan, a campaign run), not bursts: record() takes a mutex.
class Span {
 public:
  explicit Span(LatencyHistogram* histogram) noexcept
      : histogram_(histogram),
        start_(histogram != nullptr ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{}) {
  }

  /// Convenience: resolves `name` in `registry` (null registry = no-op).
  Span(MetricsRegistry* registry, std::string_view name)
      : Span(registry != nullptr ? &registry->histogram(name) : nullptr) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { stop(); }

  /// Records the elapsed time once; later calls (and the destructor after
  /// a stop) are no-ops.
  void stop() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record(
        std::chrono::duration<double, std::milli>(elapsed).count());
    histogram_ = nullptr;
  }

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace shears::obs
