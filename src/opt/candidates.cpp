#include "opt/candidates.hpp"

#include <algorithm>

#include "geo/city.hpp"

namespace shears::opt {

std::vector<CandidateSite> generate_candidates(const CandidateConfig& config) {
  std::vector<CandidateSite> out;
  for (const geo::Country& country : geo::all_countries()) {
    if (config.min_population_share > 0.0 &&
        geo::population_share(country) < config.min_population_share) {
      continue;
    }

    // Anchor locations: the country's biggest metros first, national hub
    // as the fallback so small or city-less countries stay in play.
    struct Anchor {
      std::string_view name;
      geo::GeoPoint where;
    };
    std::vector<Anchor> anchors;
    if (config.max_cities_per_country > 0) {
      std::vector<const geo::City*> cities = geo::cities_in(country.iso2);
      std::stable_sort(cities.begin(), cities.end(),
                       [](const geo::City* a, const geo::City* b) {
                         return a->metro_population_m > b->metro_population_m;
                       });
      for (const geo::City* city : cities) {
        if (city->metro_population_m < config.min_metro_population_m) continue;
        if (anchors.size() >= config.max_cities_per_country) break;
        anchors.push_back(Anchor{city->name, city->location});
      }
    }
    if (anchors.empty() && config.include_country_hubs) {
      anchors.push_back(Anchor{"hub", country.site});
    }

    for (const Anchor& anchor : anchors) {
      for (edge::EdgePlacement placement : config.placements) {
        CandidateSite site;
        site.id = static_cast<std::uint32_t>(out.size());
        site.label.append(edge::to_string(placement))
            .append("@")
            .append(country.iso2)
            .append("/")
            .append(anchor.name);
        site.country = &country;
        site.where = anchor.where;
        site.placement = placement;
        site.radius_km = config.radius_km > 0.0
                             ? config.radius_km
                             : edge::placement_serve_radius_km(placement);
        out.push_back(std::move(site));
      }
    }
  }
  return out;
}

}  // namespace shears::opt
