#include "opt/overlay.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.hpp"
#include "net/access.hpp"
#include "stats/ecdf.hpp"

namespace shears::opt {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr std::size_t kAccess = net::kAccessTechnologyCount;

/// Scope key of OverlayView: rollup first, then cells in access order,
/// so assembling per country in ascending index yields sorted keys.
[[nodiscard]] std::uint64_t rollup_key(std::size_t country_index) noexcept {
  return static_cast<std::uint64_t>(country_index) * (kAccess + 1);
}
[[nodiscard]] std::uint64_t cell_key(std::size_t country_index,
                                     std::size_t access) noexcept {
  return rollup_key(country_index) + 1 + access;
}

void finish_cell(serve::RegionStats& cell) {
  cell.count = cell.ecdf.size();
  cell.min_ms = cell.ecdf.min();
  cell.median_ms = cell.ecdf.quantile(0.5);
  cell.p95_ms = cell.ecdf.quantile(0.95);
}

}  // namespace

std::optional<std::span<const serve::RegionStats>> OverlayView::stats(
    std::size_t country_index,
    std::optional<net::AccessTechnology> access) const {
  const std::uint64_t key =
      access.has_value()
          ? cell_key(country_index, static_cast<std::size_t>(*access))
          : rollup_key(country_index);
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return std::nullopt;
  return std::span<const serve::RegionStats>(
      tables_[static_cast<std::size_t>(it - keys_.begin())]);
}

std::size_t OverlayView::affected_cells() const noexcept {
  return cell_entries_;
}

std::size_t OverlayView::affected_countries() const noexcept {
  return keys_.size() - cell_entries_;
}

OverlayEvaluator::OverlayEvaluator(const serve::ColumnarStore* store,
                                   OverlayConfig config)
    : store_(store), config_(config) {
  if (!store_->fresh()) {
    throw std::logic_error(
        "OverlayEvaluator: store has unrefreshed appends (call refresh())");
  }
  shards_ = store_->shards();

  const std::span<const atlas::Probe> fleet = store_->fleet().probes();
  probes_.resize(fleet.size());
  std::vector<geo::GeoPoint> points;
  for (const atlas::Probe& probe : fleet) {
    if (probe.privileged()) continue;  // excluded from every analysis
    ProbeInfo& info = probes_[probe.id];
    info.country = probe.country;
    info.cell = static_cast<std::uint32_t>(
        serve::country_index_of(probe.country) * kAccess +
        static_cast<std::size_t>(probe.endpoint.access));
    info.access_median_ms =
        net::profile_for(probe.endpoint.access, probe.country->tier).median_ms;
    info.wireless = net::is_wireless(probe.endpoint.access);
    points.push_back(probe.endpoint.location);
    probe_of_hit_.push_back(probe.id);
  }
  probe_index_ = geo::SpatialIndex(points);
}

float OverlayEvaluator::edge_rtt_ms(std::uint32_t probe_id,
                                    const SiteSpec& site, double distance_km,
                                    double wireless_scale) const {
  const ProbeInfo& p = probes_[probe_id];
  if (p.cell == kNoCell) return kInf;
  // Last mile (the 5G knob applies to it too — an edge user still
  // crosses their own access link), tier-scaled backhaul to the
  // placement, and metro fibre at the country's short-path stretch.
  const double access =
      p.access_median_ms * (p.wireless ? wireless_scale : 1.0);
  const double backhaul = edge::placement_backhaul_ms(site.placement) *
                          net::tier_latency_multiplier(p.country->tier);
  const double stretch = net::stretch_for(config_.path, p.country->tier,
                                          topology::BackboneClass::kPublic);
  const double metro_ms =
      2.0 * distance_km * stretch * config_.path.fibre_us_per_km / 1000.0;
  return static_cast<float>(access + backhaul + metro_ms);
}

std::vector<geo::SpatialHit> OverlayEvaluator::probes_within(
    const geo::GeoPoint& where, double radius_km) const {
  std::vector<geo::SpatialHit> hits =
      probe_index_.within_radius(where, radius_km);
  for (geo::SpatialHit& hit : hits) hit.id = probe_of_hit_[hit.id];
  return hits;
}

std::vector<float> OverlayEvaluator::best_edge_ms(
    std::span<const SiteSpec> sites, double wireless_scale) const {
  std::vector<float> best(probes_.size(), kInf);
  for (const SiteSpec& site : sites) {
    // min() is exact and order-independent, so site order cannot matter.
    for (const geo::SpatialHit& hit :
         probes_within(site.where, site.effective_radius_km())) {
      const float rtt =
          edge_rtt_ms(hit.id, site, hit.distance_km, wireless_scale);
      if (rtt < best[hit.id]) best[hit.id] = rtt;
    }
  }
  return best;
}

float OverlayEvaluator::relief_for(
    const serve::ColumnarStore::ShardView& shard,
    double wireless_scale) const {
  if (!net::is_wireless(shard.access) || wireless_scale == 1.0) return 0.0f;
  const double median =
      net::profile_for(shard.access, shard.country->tier).median_ms;
  return static_cast<float>((1.0 - wireless_scale) * median);
}

std::vector<std::uint8_t> OverlayEvaluator::affected_shards(
    const ScenarioDelta& delta, std::span<const float> best_edge) const {
  std::vector<std::uint8_t> affected(shards_.size(), 0);
  // Cells holding at least one site-covered probe.
  std::vector<std::uint8_t> cell_hit;
  if (!best_edge.empty()) {
    cell_hit.assign(geo::country_count() * kAccess, 0);
    for (std::size_t id = 0; id < probes_.size(); ++id) {
      if (best_edge[id] < kInf && probes_[id].cell != kNoCell) {
        cell_hit[probes_[id].cell] = 1;
      }
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const serve::ColumnarStore::ShardView& shard = shards_[i];
    if (delta.route_scale != 1.0) {
      affected[i] = 1;
    } else if (delta.wireless_scale != 1.0 && net::is_wireless(shard.access)) {
      affected[i] = 1;
    } else if (!cell_hit.empty()) {
      const std::size_t cell =
          serve::country_index_of(shard.country) * kAccess +
          static_cast<std::size_t>(shard.access);
      affected[i] = cell_hit[cell];
    }
  }
  return affected;
}

OverlayView OverlayEvaluator::evaluate(const ScenarioDelta& delta) const {
  OverlayView view;
  if (delta.identity()) return view;  // nothing to substitute

  const std::vector<float> best_edge =
      delta.sites.empty() ? std::vector<float>{}
                          : best_edge_ms(delta.sites, delta.wireless_scale);
  const std::vector<std::uint8_t> affected =
      affected_shards(delta, best_edge);

  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (affected[i] != 0) todo.push_back(i);
  }
  if (todo.empty()) return view;

  // Recompute each affected cell from its raw columns with the same
  // bucket → sort → from_sorted pipeline as ColumnarStore::refresh —
  // the first half of the bit-exactness contract.
  const std::size_t regions = store_->registry().size();
  const float route = static_cast<float>(delta.route_scale);
  std::vector<std::vector<serve::RegionStats>> cells(todo.size());
  const std::size_t shard_workers =
      core::resolve_threads(config_.threads, todo.size(), 1);
  core::parallel_shards(todo.size(), shard_workers,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const serve::ColumnarStore::ShardView& shard = shards_[todo[k]];
      const float relief = relief_for(shard, delta.wireless_scale);
      std::vector<std::vector<double>> samples(regions);
      for (std::size_t i = 0; i < shard.rtt_ms.size(); ++i) {
        const float be =
            best_edge.empty() ? kInf : best_edge[shard.probe_ids[i]];
        samples[shard.region_index[i]].push_back(static_cast<double>(
            transform_rtt(shard.rtt_ms[i], relief, route, be)));
      }
      cells[k].assign(regions, serve::RegionStats{});
      for (std::size_t r = 0; r < regions; ++r) {
        if (samples[r].empty()) continue;
        std::sort(samples[r].begin(), samples[r].end());
        serve::RegionStats& cell = cells[k][r];
        cell.ecdf = stats::Ecdf::from_sorted(std::move(samples[r]));
        finish_cell(cell);
      }
    }
  });

  // Affected-country rollups: merge per-access cell ecdfs in access
  // order exactly like ColumnarStore::refresh_country, pulling the
  // transformed table where the cell changed and the base table where
  // it did not.
  std::vector<std::size_t> substituted_cell(geo::country_count() * kAccess,
                                            todo.size());
  std::vector<std::size_t> countries;  // ascending country index
  for (std::size_t k = 0; k < todo.size(); ++k) {
    const serve::ColumnarStore::ShardView& shard = shards_[todo[k]];
    const std::size_t ci = serve::country_index_of(shard.country);
    const std::size_t cell = ci * kAccess + static_cast<std::size_t>(shard.access);
    substituted_cell[cell] = k;
    if (countries.empty() || countries.back() != ci) countries.push_back(ci);
  }

  std::vector<std::vector<serve::RegionStats>> rollups(countries.size());
  const std::size_t rollup_workers =
      core::resolve_threads(config_.threads, countries.size(), 1);
  core::parallel_shards(countries.size(), rollup_workers,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t ci = countries[k];
      std::array<std::span<const serve::RegionStats>, kAccess> tables;
      for (std::size_t a = 0; a < kAccess; ++a) {
        const std::size_t sub = substituted_cell[ci * kAccess + a];
        tables[a] = sub < todo.size()
                        ? std::span<const serve::RegionStats>(cells[sub])
                        : store_->shard_stats(
                              ci, static_cast<net::AccessTechnology>(a));
      }
      rollups[k].assign(regions, serve::RegionStats{});
      for (std::size_t r = 0; r < regions; ++r) {
        std::array<const stats::Ecdf*, kAccess> parts{};
        std::size_t used = 0;
        for (std::size_t a = 0; a < kAccess; ++a) {
          if (tables[a].empty() || tables[a][r].empty()) continue;
          parts[used++] = &tables[a][r].ecdf;
        }
        if (used == 0) continue;
        serve::RegionStats& cell = rollups[k][r];
        cell.ecdf = stats::Ecdf::merged(
            std::span<const stats::Ecdf* const>(parts.data(), used));
        finish_cell(cell);
      }
    }
  });

  // Assemble sorted (key, table) entries: countries ascend, and within a
  // country the rollup key precedes its cell keys.
  std::size_t next_cell = 0;
  for (std::size_t k = 0; k < countries.size(); ++k) {
    const std::size_t ci = countries[k];
    view.keys_.push_back(rollup_key(ci));
    view.tables_.push_back(std::move(rollups[k]));
    while (next_cell < todo.size() &&
           serve::country_index_of(shards_[todo[next_cell]].country) == ci) {
      view.keys_.push_back(cell_key(
          ci, static_cast<std::size_t>(shards_[todo[next_cell]].access)));
      view.tables_.push_back(std::move(cells[next_cell]));
      ++next_cell;
      ++view.cell_entries_;
    }
  }
  return view;
}

serve::ColumnarStore OverlayEvaluator::rebuild_reference(
    const ScenarioDelta& delta) const {
  const std::vector<float> best_edge =
      delta.sites.empty() ? std::vector<float>{}
                          : best_edge_ms(delta.sites, delta.wireless_scale);
  const float route = static_cast<float>(delta.route_scale);

  std::vector<atlas::Measurement> rows;
  rows.reserve(store_->rows_stored());
  for (const serve::ColumnarStore::ShardView& shard : shards_) {
    const float relief = relief_for(shard, delta.wireless_scale);
    for (std::size_t i = 0; i < shard.rtt_ms.size(); ++i) {
      const float be =
          best_edge.empty() ? kInf : best_edge[shard.probe_ids[i]];
      atlas::Measurement m;
      m.probe_id = shard.probe_ids[i];
      m.region_index = shard.region_index[i];
      m.tick = shard.ticks[i];
      m.min_ms = transform_rtt(shard.rtt_ms[i], relief, route, be);
      m.avg_ms = m.min_ms;
      m.max_ms = m.min_ms;
      m.sent = 1;
      m.received = 1;
      rows.push_back(m);
    }
  }
  const atlas::MeasurementDataset dataset(&store_->fleet(),
                                          &store_->registry(),
                                          std::move(rows));
  serve::StoreConfig config;
  config.threads = config_.threads;
  return serve::ColumnarStore::build(dataset, config);
}

CoverageReport OverlayEvaluator::coverage(const ScenarioDelta& delta,
                                          double threshold_ms) const {
  const std::vector<float> best_edge =
      delta.sites.empty() ? std::vector<float>{}
                          : best_edge_ms(delta.sites, delta.wireless_scale);
  const float route = static_cast<float>(delta.route_scale);

  // Exact integer counts per shard, in parallel; shards are disjoint.
  struct ShardCounts {
    std::uint64_t rows = 0;
    std::uint64_t covered = 0;
  };
  std::vector<ShardCounts> counts(shards_.size());
  const std::size_t workers =
      core::resolve_threads(config_.threads, shards_.size(), 1);
  core::parallel_shards(shards_.size(), workers,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const serve::ColumnarStore::ShardView& shard = shards_[s];
      const float relief = relief_for(shard, delta.wireless_scale);
      ShardCounts& c = counts[s];
      c.rows = shard.rtt_ms.size();
      for (std::size_t i = 0; i < shard.rtt_ms.size(); ++i) {
        const float be =
            best_edge.empty() ? kInf : best_edge[shard.probe_ids[i]];
        const float v = transform_rtt(shard.rtt_ms[i], relief, route, be);
        c.covered += static_cast<double>(v) <= threshold_ms ? 1 : 0;
      }
    }
  });

  // Sequential folds from here on: shard counts into country counts in
  // shard order, countries into the report in registry order.
  std::vector<ShardCounts> by_country(geo::country_count());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardCounts& c = by_country[serve::country_index_of(shards_[s].country)];
    c.rows += counts[s].rows;
    c.covered += counts[s].covered;
  }

  CoverageReport report;
  const std::span<const geo::Country> all = geo::all_countries();
  for (std::size_t ci = 0; ci < all.size(); ++ci) {
    if (by_country[ci].rows == 0) continue;
    CountryCoverage country;
    country.country = &all[ci];
    country.rows = by_country[ci].rows;
    country.covered = by_country[ci].covered;
    country.fraction = static_cast<double>(country.covered) /
                       static_cast<double>(country.rows);
    country.weight = geo::population_share(all[ci]);
    report.weight_with_data += country.weight;
    report.weighted_fraction += country.weight * country.fraction;
    report.countries.push_back(country);
  }
  if (report.weight_with_data > 0.0) {
    report.weighted_fraction /= report.weight_with_data;
  }
  return report;
}

}  // namespace shears::opt
