#include "opt/search.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "core/parallel.hpp"

namespace shears::opt {

namespace {
constexpr float kInf = std::numeric_limits<float>::infinity();
}  // namespace

FootprintSearch::FootprintSearch(const serve::ColumnarStore* store,
                                 std::vector<CandidateSite> candidates,
                                 SearchConfig config, OverlayConfig overlay)
    : evaluator_(store, overlay),
      candidates_(std::move(candidates)),
      config_(config) {
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].id != i) {
      throw std::invalid_argument(
          "FootprintSearch: candidate ids must be their indexes");
    }
  }

  // Reduce the objective once. Base pass: per-shard covered/uncovered
  // counts under the delta without sites. Shards partition probes, so
  // the per-probe uncovered counters are race-free across workers, and
  // everything written in parallel is an integer.
  const std::vector<serve::ColumnarStore::ShardView> shards =
      evaluator_.store().shards();
  const std::size_t probe_count = store->fleet().probes().size();
  std::vector<std::uint32_t> uncovered_rows(probe_count, 0);
  struct Counts {
    std::uint64_t rows = 0;
    std::uint64_t covered = 0;
  };
  std::vector<Counts> by_shard(shards.size());
  const float route = static_cast<float>(config_.route_scale);
  const std::size_t workers =
      core::resolve_threads(config_.threads, shards.size(), 1);
  core::parallel_shards(shards.size(), workers,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      const serve::ColumnarStore::ShardView& shard = shards[s];
      const float relief =
          evaluator_.relief_for(shard, config_.wireless_scale);
      by_shard[s].rows = shard.rtt_ms.size();
      for (std::size_t i = 0; i < shard.rtt_ms.size(); ++i) {
        const float v = transform_rtt(shard.rtt_ms[i], relief, route, kInf);
        if (static_cast<double>(v) <= config_.threshold_ms) {
          ++by_shard[s].covered;
        } else {
          ++uncovered_rows[shard.probe_ids[i]];
        }
      }
    }
  });

  std::vector<Counts> by_country(geo::country_count());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    Counts& c = by_country[serve::country_index_of(shards[s].country)];
    c.rows += by_shard[s].rows;
    c.covered += by_shard[s].covered;
  }
  // Registry-order folds mirroring OverlayEvaluator::coverage().
  const std::span<const geo::Country> all = geo::all_countries();
  double weight_with_data = 0.0;
  for (std::size_t ci = 0; ci < all.size(); ++ci) {
    if (by_country[ci].rows > 0) {
      weight_with_data += geo::population_share(all[ci]);
    }
  }
  base_internal_ = 0.0;
  for (std::size_t ci = 0; ci < all.size(); ++ci) {
    if (by_country[ci].rows == 0) continue;
    base_internal_ += geo::population_share(all[ci]) *
                      (static_cast<double>(by_country[ci].covered) /
                       static_cast<double>(by_country[ci].rows));
  }
  if (weight_with_data > 0.0) base_internal_ /= weight_with_data;

  // Serving probe p within threshold converts its uncovered rows: worth
  // weight_c / W * uncovered_p / rows_c of objective, exactly.
  probe_value_.assign(probe_count, 0.0);
  for (const atlas::Probe& probe : store->fleet().probes()) {
    if (probe.privileged() || uncovered_rows[probe.id] == 0) continue;
    const std::size_t ci = serve::country_index_of(probe.country);
    probe_value_[probe.id] =
        geo::population_share(*probe.country) / weight_with_data *
        (static_cast<double>(uncovered_rows[probe.id]) /
         static_cast<double>(by_country[ci].rows));
  }

  // Per-candidate coverage lists: the probes it would newly serve.
  covers_.resize(candidates_.size());
  const std::size_t cand_workers =
      core::resolve_threads(config_.threads, candidates_.size(), 1);
  core::parallel_shards(candidates_.size(), cand_workers,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      const SiteSpec spec = to_spec(candidates_[c]);
      std::vector<std::uint32_t> list;
      for (const geo::SpatialHit& hit : evaluator_.probes_within(
               candidates_[c].where, spec.effective_radius_km())) {
        if (probe_value_[hit.id] <= 0.0) continue;  // nothing left to gain
        const float edge = evaluator_.edge_rtt_ms(
            hit.id, spec, hit.distance_km, config_.wireless_scale);
        if (static_cast<double>(edge) <= config_.threshold_ms) {
          list.push_back(hit.id);
        }
      }
      std::sort(list.begin(), list.end());  // the fixed fold order
      covers_[c] = std::move(list);
    }
  });
}

double FootprintSearch::gain_of(std::uint32_t candidate,
                                std::span<const std::uint8_t> covered) const {
  double gain = 0.0;
  for (std::uint32_t p : covers_[candidate]) {
    if (covered[p] == 0) gain += probe_value_[p];
  }
  return gain;
}

double FootprintSearch::internal_objective(
    std::span<const std::uint32_t> sites) const {
  std::vector<std::uint8_t> covered(probe_value_.size(), 0);
  for (std::uint32_t id : sites) {
    for (std::uint32_t p : covers_[id]) covered[p] = 1;
  }
  double sum = base_internal_;
  for (std::size_t p = 0; p < covered.size(); ++p) {
    if (covered[p] != 0) sum += probe_value_[p];
  }
  return sum;
}

void FootprintSearch::greedy(std::vector<std::uint32_t>& sites,
                             std::vector<PlanStep>& steps) const {
  // CELF: submodularity means a gain computed at an earlier round is an
  // upper bound now, so an entry whose round-stamp is current can be
  // selected without looking at the rest of the heap. Only candidates
  // that float to the top get re-scored — the incremental
  // re-evaluation the bench gate measures.
  struct Entry {
    double gain = 0.0;
    std::uint32_t id = 0;
    std::uint32_t round = 0;
  };
  struct Less {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.gain != b.gain) return a.gain < b.gain;
      return a.id > b.id;  // equal gains: smaller id on top
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Less> heap;

  // Initial round in parallel into dense slots; heap pushes sequential.
  std::vector<double> initial(candidates_.size(), 0.0);
  std::vector<std::uint8_t> covered(probe_value_.size(), 0);
  const std::size_t workers =
      core::resolve_threads(config_.threads, candidates_.size(), 1);
  core::parallel_shards(candidates_.size(), workers,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      initial[c] = gain_of(static_cast<std::uint32_t>(c), covered);
    }
  });
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    heap.push(Entry{initial[c], static_cast<std::uint32_t>(c), 0});
  }

  std::uint32_t round = 0;
  double objective = base_internal_;
  while (sites.size() < config_.max_sites && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round != round) {
      top.gain = gain_of(top.id, covered);
      top.round = round;
      heap.push(top);
      continue;
    }
    if (top.gain <= config_.min_gain) break;
    sites.push_back(top.id);
    objective += top.gain;
    steps.push_back(PlanStep{top.id, top.gain, objective});
    for (std::uint32_t p : covers_[top.id]) covered[p] = 1;
    ++round;
  }
}

void FootprintSearch::refine(std::vector<std::uint32_t>& sites) const {
  if (sites.empty()) return;
  double current = internal_objective(sites);
  for (std::size_t pass = 0; pass < config_.swap_passes; ++pass) {
    bool improved = false;
    for (std::size_t pos = 0; pos < sites.size(); ++pos) {
      std::vector<std::uint8_t> in_set(candidates_.size(), 0);
      for (std::uint32_t id : sites) in_set[id] = 1;

      // Score every replacement for this slot in parallel; each
      // evaluation is a pure fixed-order fold.
      constexpr double kUnscored = -1.0;
      std::vector<double> objective(candidates_.size(), kUnscored);
      std::vector<std::uint32_t> trial(sites.begin(), sites.end());
      const std::size_t workers =
          core::resolve_threads(config_.threads, candidates_.size(), 1);
      core::parallel_shards(
          candidates_.size(), workers,
          [&](std::size_t, std::size_t begin, std::size_t end) {
            std::vector<std::uint32_t> local = trial;
            for (std::size_t c = begin; c < end; ++c) {
              if (in_set[c] != 0) continue;
              local[pos] = static_cast<std::uint32_t>(c);
              objective[c] = internal_objective(local);
            }
          });

      std::size_t best = candidates_.size();
      for (std::size_t c = 0; c < candidates_.size(); ++c) {
        if (objective[c] == kUnscored) continue;
        if (best == candidates_.size() || objective[c] > objective[best]) {
          best = c;  // strict >: equal objectives keep the smaller id
        }
      }
      if (best < candidates_.size() && objective[best] > current) {
        sites[pos] = static_cast<std::uint32_t>(best);
        current = objective[best];
        improved = true;
      }
    }
    if (!improved) break;
  }
}

FootprintPlan FootprintSearch::plan() const {
  std::vector<std::uint32_t> sites;
  std::vector<PlanStep> steps;
  greedy(sites, steps);
  refine(sites);
  return finish(std::move(sites), std::move(steps));
}

FootprintPlan FootprintSearch::exhaustive() const {
  if (candidates_.size() > kExhaustiveLimit) {
    throw std::invalid_argument(
        "FootprintSearch::exhaustive: too many candidates");
  }

  // Depth-first lexicographic enumeration with incremental coverage
  // counts. Strict > acceptance means the first-visited maximum wins;
  // a set is always visited before its supersets, so zero-gain sites
  // are never part of the reported optimum.
  struct Enumerator {
    const FootprintSearch& search;
    std::vector<std::uint32_t> count;    ///< covering sites per probe
    std::vector<std::uint32_t> chosen;
    std::vector<std::uint32_t> best_sites;
    double best;

    void visit(std::size_t from, double objective) {
      for (std::size_t c = from; c < search.candidates_.size(); ++c) {
        double gain = 0.0;
        for (std::uint32_t p : search.covers_[c]) {
          if (count[p] == 0) gain += search.probe_value_[p];
        }
        const double with = objective + gain;
        chosen.push_back(static_cast<std::uint32_t>(c));
        if (with > best) {
          best = with;
          best_sites = chosen;
        }
        if (chosen.size() < search.config_.max_sites) {
          for (std::uint32_t p : search.covers_[c]) ++count[p];
          visit(c + 1, with);
          for (std::uint32_t p : search.covers_[c]) --count[p];
        }
        chosen.pop_back();
      }
    }
  };
  Enumerator e{*this,
               std::vector<std::uint32_t>(probe_value_.size(), 0),
               {},
               {},
               base_internal_};
  if (config_.max_sites > 0) e.visit(0, base_internal_);
  return finish(std::move(e.best_sites), {});
}

ScenarioDelta FootprintSearch::delta_for(
    std::span<const std::uint32_t> sites) const {
  ScenarioDelta delta;
  delta.wireless_scale = config_.wireless_scale;
  delta.route_scale = config_.route_scale;
  for (std::uint32_t id : sites) {
    delta.sites.push_back(to_spec(candidates_.at(id)));
  }
  return delta;
}

FootprintPlan FootprintSearch::finish(std::vector<std::uint32_t> sites,
                                      std::vector<PlanStep> steps) const {
  FootprintPlan plan;
  plan.sites = std::move(sites);
  plan.steps = std::move(steps);
  plan.coverage =
      evaluator_.coverage(delta_for(plan.sites), config_.threshold_ms);
  plan.objective = plan.coverage.weighted_fraction;
  plan.base_objective =
      evaluator_.coverage(delta_for({}), config_.threshold_ms)
          .weighted_fraction;
  return plan;
}

}  // namespace shears::opt
