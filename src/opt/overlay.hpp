// Scenario-overlay evaluation: answer "what if?" against the columnar
// store without rebuilding it.
//
// A ScenarioDelta perturbs the measured world in three ways — new edge
// sites (users within a site's disc are served at edge RTT when that
// beats their cloud RTT), a wireless last-mile scaling (the 5G
// counterfactual of §5), and a routing change (a whole-RTT multiplier
// approximating better peering). The evaluator answers queries under a
// delta by substituting summary tables for exactly the (country, access)
// cells the delta touches, leaving every other scope on the base store's
// tables — the overlay seam serve::SummaryOverlay carries the
// substitution into the oracle.
//
// Determinism contract (the differential suite pins all three):
//   * Every transformed sample is produced by one shared per-row float
//     transform (transform_rtt). The overlay recomputes affected cells
//     from the store's raw shard columns with the same bucket → sort →
//     Ecdf::from_sorted pipeline as ColumnarStore::refresh; the rebuild
//     reference materialises transformed measurement rows and runs the
//     store's own build. Same multiset, same machinery → bit-exact
//     summaries, so an overlay-answered batch equals a rebuilt-store
//     batch byte for byte.
//   * The identity delta is a bitwise no-op: rtt * 1.0f == rtt,
//     v - 0.0f == v, and stored samples already sit on or above the
//     0.2 ms access floor.
//   * Coverage reports fold per-country integer counts sequentially in
//     registry order on the calling thread; worker threads only ever
//     produce independent per-shard integers — byte-identical results
//     for any thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "geo/spatial_index.hpp"
#include "net/path.hpp"
#include "opt/candidates.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"

namespace shears::opt {

/// One edge site of a scenario (a chosen CandidateSite, or any ad-hoc
/// location a scenario wants to probe).
struct SiteSpec {
  geo::GeoPoint where{};
  edge::EdgePlacement placement = edge::EdgePlacement::kMetroPop;
  /// Serviceable disc (km); 0 = edge::placement_serve_radius_km default.
  double radius_km = 0.0;

  [[nodiscard]] double effective_radius_km() const noexcept {
    return radius_km > 0.0 ? radius_km
                           : edge::placement_serve_radius_km(placement);
  }
};

[[nodiscard]] inline SiteSpec to_spec(const CandidateSite& c) noexcept {
  return SiteSpec{c.where, c.placement, c.radius_km};
}

/// The what-if: applied on top of the base store's measured world.
struct ScenarioDelta {
  std::vector<SiteSpec> sites;
  /// Multiplier on the wireless (WiFi/LTE/5G) last-mile median — the §5
  /// "what does 5G buy" knob. Applied as a per-cell constant relief
  /// (1 - scale) * tier-scaled access median subtracted from each
  /// sample; wired cells are untouched bitwise.
  double wireless_scale = 1.0;
  /// Whole-RTT multiplier approximating a routing/peering change. A
  /// coarse model — real routing changes move path stretch, not access
  /// latency — but it is monotone, cheap, and exactly invertible for
  /// the differential tests.
  double route_scale = 1.0;

  [[nodiscard]] bool identity() const noexcept {
    return sites.empty() && wireless_scale == 1.0 && route_scale == 1.0;
  }
};

/// The shared per-row transform. Float in, float out, double-free: both
/// the overlay path and the rebuild reference call exactly this, which
/// is what makes them bit-exact to each other. `relief_ms` is the
/// per-cell wireless relief (0.0f for wired cells), `route_scale` the
/// delta's multiplier narrowed once per evaluation, `best_edge_ms` the
/// row's probe's best edge RTT under the delta's sites (+inf when no
/// site covers the probe).
[[nodiscard]] inline float transform_rtt(float rtt, float relief_ms,
                                         float route_scale,
                                         float best_edge_ms) noexcept {
  float v = rtt * route_scale;
  v -= relief_ms;
  if (v < 0.2f) v = 0.2f;  // the access-layer physical floor
  return best_edge_ms < v ? best_edge_ms : v;
}

struct OverlayConfig {
  /// Path model for the metro fibre leg user → edge site.
  net::PathModelConfig path{};
  /// Worker threads for cell materialisation and coverage scans
  /// (0 = hardware concurrency). Results identical for any value.
  std::size_t threads = 0;
};

/// Per-country slice of a coverage report.
struct CountryCoverage {
  const geo::Country* country = nullptr;
  std::uint64_t rows = 0;     ///< stored samples of the country
  std::uint64_t covered = 0;  ///< samples with transformed RTT <= threshold
  double fraction = 0.0;      ///< covered / rows
  double weight = 0.0;        ///< geo::population_share(country)

  friend bool operator==(const CountryCoverage&,
                         const CountryCoverage&) = default;
};

/// Population-weighted latency coverage of a scenario — the optimizer's
/// objective, reported per country and folded deterministically.
struct CoverageReport {
  /// Countries with stored data, registry order.
  std::vector<CountryCoverage> countries;
  /// Sum of weights over `countries` (the reachable population mass).
  double weight_with_data = 0.0;
  /// Σ weight · fraction / weight_with_data (0 when no data at all).
  double weighted_fraction = 0.0;

  friend bool operator==(const CoverageReport&,
                         const CoverageReport&) = default;
};

/// Materialised summary substitution for one delta: the overlay the
/// oracle consults. Owns its tables; keep it alive across the batches
/// that use it. Move-only by value semantics of the tables (copying is
/// allowed but pointless).
class OverlayView final : public serve::SummaryOverlay {
 public:
  [[nodiscard]] std::optional<std::span<const serve::RegionStats>> stats(
      std::size_t country_index,
      std::optional<net::AccessTechnology> access) const override;

  /// Number of (country, access) cells the delta touched.
  [[nodiscard]] std::size_t affected_cells() const noexcept;
  /// Number of country rollups the delta touched.
  [[nodiscard]] std::size_t affected_countries() const noexcept;

 private:
  friend class OverlayEvaluator;
  /// Scope key: country_index * (kAccessTechnologyCount + 1); +0 is the
  /// country rollup, +1+access a shard cell. Sorted ascending for
  /// binary-search lookup.
  std::vector<std::uint64_t> keys_;
  std::vector<std::vector<serve::RegionStats>> tables_;
  std::size_t cell_entries_ = 0;
};

/// Binds a refreshed store and answers deltas against it. Construction
/// caches per-probe facts (location, cell, access median, wireless
/// flag) and a spatial index over analysis-eligible probes; each
/// evaluate()/coverage() call then touches only what its delta affects.
class OverlayEvaluator {
 public:
  /// `store` must be fresh() and outlive the evaluator.
  explicit OverlayEvaluator(const serve::ColumnarStore* store,
                            OverlayConfig config = {});

  /// Materialises the delta's summary substitution.
  [[nodiscard]] OverlayView evaluate(const ScenarioDelta& delta) const;

  /// The brute-force referee: a fresh store built from the transformed
  /// rows. Expensive (full rebuild) — differential tests and the bench
  /// gate's naive baseline only.
  [[nodiscard]] serve::ColumnarStore rebuild_reference(
      const ScenarioDelta& delta) const;

  /// Population-weighted coverage at `threshold_ms` under the delta,
  /// counted exactly from the raw shard columns (no summaries needed).
  [[nodiscard]] CoverageReport coverage(const ScenarioDelta& delta,
                                        double threshold_ms) const;

  /// Best edge RTT per probe under the delta's sites: +inf for probes no
  /// site covers, indexed by probe id. The search engine's ground truth
  /// for candidate coverage lists.
  [[nodiscard]] std::vector<float> best_edge_ms(
      std::span<const SiteSpec> sites, double wireless_scale) const;

  /// Eligible probes within `radius_km` of a point, ascending by
  /// (distance, probe id). Hit ids are probe ids.
  [[nodiscard]] std::vector<geo::SpatialHit> probes_within(
      const geo::GeoPoint& where, double radius_km) const;

  /// RTT user-at-probe → edge site: (wireless-scaled) access median +
  /// tier-scaled placement backhaul + metro fibre at the country's
  /// public stretch, narrowed to float once.
  [[nodiscard]] float edge_rtt_ms(std::uint32_t probe_id,
                                  const SiteSpec& site, double distance_km,
                                  double wireless_scale) const;

  /// Per-cell wireless relief constant of the transform:
  /// (1 - wireless_scale) * tier-scaled wireless median, narrowed to
  /// float once; 0.0f for wired cells or an unscaled delta. Public so
  /// the search engine's incremental model applies the exact same
  /// constant the overlay does.
  [[nodiscard]] float relief_for(const serve::ColumnarStore::ShardView& shard,
                                 double wireless_scale) const;

  [[nodiscard]] const serve::ColumnarStore& store() const noexcept {
    return *store_;
  }
  [[nodiscard]] const OverlayConfig& config() const noexcept {
    return config_;
  }

 private:
  struct ProbeInfo {
    const geo::Country* country = nullptr;
    /// country_index * kAccessTechnologyCount + access; kNoCell for
    /// privileged (analysis-excluded) probes.
    std::uint32_t cell = kNoCell;
    double access_median_ms = 0.0;  ///< tier-scaled access median
    bool wireless = false;
  };
  static constexpr std::uint32_t kNoCell = 0xffffffffu;

  /// Marks the cells the delta touches; returns true per shard index.
  [[nodiscard]] std::vector<std::uint8_t> affected_shards(
      const ScenarioDelta& delta, std::span<const float> best_edge) const;

  const serve::ColumnarStore* store_;
  OverlayConfig config_;
  std::vector<serve::ColumnarStore::ShardView> shards_;
  std::vector<ProbeInfo> probes_;        ///< by probe id
  geo::SpatialIndex probe_index_;        ///< eligible probes only
  std::vector<std::uint32_t> probe_of_hit_;
};

}  // namespace shears::opt
