// Footprint search: pick the edge sites that buy the most
// population-weighted latency coverage.
//
// Objective. For a candidate set S, f(S) is the coverage report's
// weighted fraction: per country, the share of its stored samples whose
// transformed RTT (base delta + best edge over S) meets the threshold,
// weighted by population share. Because a row is covered iff its base
// transform meets the threshold OR some selected site serves its probe
// within budget, f is a weighted set-coverage function over probes:
// monotone and submodular. That is what licenses the lazy-greedy
// engine — marginal gains only shrink as S grows, so a stale heap
// entry is always an upper bound — and gives the classic (1 - 1/e)
// guarantee, which the test suite pins empirically against the
// exhaustive optimum on small instances.
//
// Incremental model. The constructor reduces the problem exactly once:
// per-probe uncovered-row counts under the base delta, per-candidate
// lists of probes the candidate newly serves within threshold, and a
// per-probe scalar value (its country's population weight times its
// share of the country's rows). A marginal gain is then a short pure
// fold over one candidate's list — no store scan, no overlay rebuild —
// which is what the bench gate's >= 10x speedup over per-candidate
// store rebuilds measures. The reduction is exact in coverage counts:
// plan objectives are re-reported through a fresh
// OverlayEvaluator::coverage() fold, so the numbers in a plan are
// bit-identical to evaluating the chosen delta from scratch.
//
// Determinism. Candidate scoring fans out with core/parallel.hpp into
// dense per-candidate slots; every fold that mixes floats runs
// sequentially on the calling thread in a fixed order (probe id, then
// candidate id), and ties break to the smaller candidate id. Chosen
// sites, steps, and coverage reports are byte-identical for any thread
// count — the opt test suite pins 1 vs 8.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "opt/candidates.hpp"
#include "opt/overlay.hpp"

namespace shears::opt {

struct SearchConfig {
  /// A sample is covered when its transformed RTT is <= this (ms).
  double threshold_ms = 50.0;
  /// Site budget (the k of the coverage maximisation).
  std::size_t max_sites = 8;
  /// Stop early once the best marginal gain drops to or below this.
  double min_gain = 0.0;
  /// Local-search passes after greedy (0 = plain greedy).
  std::size_t swap_passes = 1;
  /// Base-delta knobs the search optimises under (see ScenarioDelta).
  double wireless_scale = 1.0;
  double route_scale = 1.0;
  /// Worker threads for candidate scoring (0 = hardware concurrency).
  /// Plans are byte-identical for any value.
  std::size_t threads = 0;
};

struct PlanStep {
  std::uint32_t candidate = 0;
  /// Marginal objective gain when selected (internal model).
  double gain = 0.0;
  /// Internal objective after the step.
  double objective = 0.0;

  friend bool operator==(const PlanStep&, const PlanStep&) = default;
};

struct FootprintPlan {
  /// Chosen candidate ids in selection order (exhaustive: ascending).
  std::vector<std::uint32_t> sites;
  /// Greedy selection trace (empty for exhaustive plans).
  std::vector<PlanStep> steps;
  /// Weighted coverage of the base delta without any site, from a fresh
  /// evaluator fold.
  double base_objective = 0.0;
  /// Weighted coverage of the final footprint, from a fresh fold —
  /// bit-identical to OverlayEvaluator::coverage() of delta_for(sites).
  double objective = 0.0;
  CoverageReport coverage;

  friend bool operator==(const FootprintPlan&, const FootprintPlan&) = default;
};

class FootprintSearch {
 public:
  /// `store` must be fresh() and outlive the search. Candidate ids must
  /// be their indexes (generate_candidates output qualifies).
  FootprintSearch(const serve::ColumnarStore* store,
                  std::vector<CandidateSite> candidates,
                  SearchConfig config = {}, OverlayConfig overlay = {});

  /// Lazy-greedy (CELF) selection, then `swap_passes` rounds of local
  /// search (replace one chosen site by one unchosen candidate while it
  /// strictly improves the objective).
  [[nodiscard]] FootprintPlan plan() const;

  /// Exact optimum by subset enumeration; ties resolve to the first
  /// maximum in depth-first lexicographic order (a set is visited before
  /// its supersets, so zero-gain sites never pad the optimum). Throws
  /// std::invalid_argument above kExhaustiveLimit candidates.
  [[nodiscard]] FootprintPlan exhaustive() const;
  static constexpr std::size_t kExhaustiveLimit = 24;

  /// The delta a chosen footprint denotes (base knobs + those sites).
  [[nodiscard]] ScenarioDelta delta_for(
      std::span<const std::uint32_t> sites) const;

  [[nodiscard]] const std::vector<CandidateSite>& candidates() const noexcept {
    return candidates_;
  }
  [[nodiscard]] const OverlayEvaluator& evaluator() const noexcept {
    return evaluator_;
  }
  [[nodiscard]] const SearchConfig& config() const noexcept { return config_; }

 private:
  /// Marginal internal gain of a candidate against a covered-probe mask.
  [[nodiscard]] double gain_of(std::uint32_t candidate,
                               std::span<const std::uint8_t> covered) const;
  /// Internal objective of a full candidate set (fixed-order fold).
  [[nodiscard]] double internal_objective(
      std::span<const std::uint32_t> sites) const;
  /// Greedy selection (no swaps); fills sites + steps.
  void greedy(std::vector<std::uint32_t>& sites,
              std::vector<PlanStep>& steps) const;
  /// Local-search swap refinement in place.
  void refine(std::vector<std::uint32_t>& sites) const;
  /// Fresh-fold plan assembly for a chosen site list.
  [[nodiscard]] FootprintPlan finish(std::vector<std::uint32_t> sites,
                                     std::vector<PlanStep> steps) const;

  OverlayEvaluator evaluator_;
  std::vector<CandidateSite> candidates_;
  SearchConfig config_;

  /// Internal model, reduced once at construction:
  /// f(S) = base_internal_ + sum of probe_value_ over probes served
  /// within threshold by S.
  double base_internal_ = 0.0;
  std::vector<double> probe_value_;  ///< by probe id; 0 when nothing to gain
  /// Per candidate: probe ids it serves within threshold that still have
  /// uncovered rows, ascending (the fixed fold order).
  std::vector<std::vector<std::uint32_t>> covers_;
};

}  // namespace shears::opt
