// Candidate-site generation for the footprint optimizer.
//
// The paper's shears cut *against* edge deployments: most applications
// tolerate the cloud. The optimizer inverts the question — given that
// some budget of edge sites will be built anyway, where do they buy the
// most population-weighted latency coverage? The first ingredient is the
// candidate universe: concrete (location, placement) pairs a deployment
// could actually occupy. We derive them from the data the repo already
// embeds — the city registry (metro population centres, where Atlas
// probes cluster) crossed with the edge placement tiers — instead of
// inventing a synthetic grid, so every candidate is a place a CDN or
// telco could plausibly rack servers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "edge/deployment.hpp"
#include "geo/coordinates.hpp"
#include "geo/country.hpp"

namespace shears::opt {

/// One place the footprint search may open a site.
struct CandidateSite {
  /// Dense [0, N) generation index — the search engine's identity and
  /// its deterministic tie-break (ties in gain resolve to the smaller
  /// id, i.e. the earlier candidate in generation order).
  std::uint32_t id = 0;
  std::string label;  ///< "metro-pop@DE/Berlin", "regional-site@KE/hub"
  const geo::Country* country = nullptr;
  geo::GeoPoint where{};
  edge::EdgePlacement placement = edge::EdgePlacement::kMetroPop;
  /// Serviceable disc of the site (km); defaults to
  /// edge::placement_serve_radius_km(placement).
  double radius_km = 0.0;
};

struct CandidateConfig {
  /// Placement tiers to cross with each anchor location.
  std::vector<edge::EdgePlacement> placements{edge::EdgePlacement::kMetroPop};
  /// Largest-first cap on city anchors per country (0 = no cities).
  std::size_t max_cities_per_country = 4;
  /// Cities below this metro population (millions) are not anchors.
  double min_metro_population_m = 0.0;
  /// When a country contributes no city anchor, fall back to its
  /// national hub coordinate so the country is still representable.
  bool include_country_hubs = true;
  /// Skip countries below this share of world population (0 = keep all).
  double min_population_share = 0.0;
  /// Override the serviceable radius for every candidate (0 = per
  /// placement default).
  double radius_km = 0.0;
};

/// Generates the candidate universe: countries in registry order; within
/// a country, city anchors by descending metro population (stable on the
/// city registry for equal populations), hub fallback last; each anchor
/// crossed with `config.placements` in the given order. Ids are assigned
/// in that exact sequence, so the universe — and therefore every
/// deterministic tie-break downstream — is a pure function of the config.
[[nodiscard]] std::vector<CandidateSite> generate_candidates(
    const CandidateConfig& config = {});

}  // namespace shears::opt
