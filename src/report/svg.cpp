#include "report/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "report/table.hpp"

namespace shears::report {

namespace {

/// Colour-blind-safe categorical palette (Okabe-Ito).
constexpr const char* kPalette[] = {
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#E69F00", "#56B4E9", "#F0E442", "#000000",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 36;
constexpr int kMarginBottom = 48;

double transform(double x, bool log_x) {
  return log_x ? std::log10(std::max(x, 1e-9)) : x;
}

std::string escape_xml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_svg_cdf(const std::vector<Series>& series,
                           const std::vector<Marker>& markers,
                           const SvgPlotOptions& options) {
  double x_min = options.x_min;
  double x_max = options.x_max;
  if (x_min == 0.0 && x_max == 0.0) {
    bool any = false;
    for (const Series& s : series) {
      for (const auto& [x, y] : s.points) {
        if (!any) {
          x_min = x_max = x;
          any = true;
        } else {
          x_min = std::min(x_min, x);
          x_max = std::max(x_max, x);
        }
      }
    }
    if (!any) {
      x_min = 0.0;
      x_max = 1.0;
    }
  }
  if (options.log_x) x_min = std::max(x_min, 0.1);
  const double t0 = transform(x_min, options.log_x);
  const double t1 = transform(x_max, options.log_x);
  const double t_span = t1 > t0 ? t1 - t0 : 1.0;

  const int plot_w = options.width - kMarginLeft - kMarginRight;
  const int plot_h = options.height - kMarginTop - kMarginBottom;
  auto px = [&](double x) {
    return kMarginLeft +
           (transform(x, options.log_x) - t0) / t_span * plot_w;
  };
  auto py = [&](double y) { return kMarginTop + (1.0 - y) * plot_h; };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\" font-family=\"sans-serif\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  if (!options.title.empty()) {
    svg << "<text x=\"" << options.width / 2 << "\" y=\"20\" "
        << "text-anchor=\"middle\" font-size=\"14\" font-weight=\"bold\">"
        << escape_xml(options.title) << "</text>\n";
  }

  // Frame and y grid.
  svg << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\""
      << plot_w << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#444\"/>\n";
  for (int i = 0; i <= 4; ++i) {
    const double y = i / 4.0;
    svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << py(y) << "\" x2=\""
        << kMarginLeft + plot_w << "\" y2=\"" << py(y)
        << "\" stroke=\"#ddd\"/>\n"
        << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << py(y) + 4
        << "\" text-anchor=\"end\" font-size=\"11\">" << fmt(y, 2)
        << "</text>\n";
  }
  // X ticks: decades when log, else 5 linear ticks.
  if (options.log_x) {
    for (double decade = std::pow(10.0, std::floor(std::log10(x_min)));
         decade <= x_max * 1.0001; decade *= 10.0) {
      if (decade < x_min) continue;
      svg << "<line x1=\"" << px(decade) << "\" y1=\"" << kMarginTop
          << "\" x2=\"" << px(decade) << "\" y2=\"" << kMarginTop + plot_h
          << "\" stroke=\"#eee\"/>\n"
          << "<text x=\"" << px(decade) << "\" y=\""
          << kMarginTop + plot_h + 16 << "\" text-anchor=\"middle\" "
          << "font-size=\"11\">" << fmt(decade, 0) << "</text>\n";
    }
  } else {
    for (int i = 0; i <= 5; ++i) {
      const double x = x_min + (x_max - x_min) * i / 5.0;
      svg << "<text x=\"" << px(x) << "\" y=\"" << kMarginTop + plot_h + 16
          << "\" text-anchor=\"middle\" font-size=\"11\">" << fmt(x, 0)
          << "</text>\n";
    }
  }
  svg << "<text x=\"" << kMarginLeft + plot_w / 2 << "\" y=\""
      << options.height - 10 << "\" text-anchor=\"middle\" font-size=\"12\">"
      << escape_xml(options.x_label) << "</text>\n";

  // Markers.
  for (const Marker& m : markers) {
    if (m.x < x_min || m.x > x_max) continue;
    svg << "<line x1=\"" << px(m.x) << "\" y1=\"" << kMarginTop << "\" x2=\""
        << px(m.x) << "\" y2=\"" << kMarginTop + plot_h
        << "\" stroke=\"#999\" stroke-dasharray=\"4 3\"/>\n"
        << "<text x=\"" << px(m.x) + 3 << "\" y=\"" << kMarginTop + 12
        << "\" font-size=\"11\" fill=\"#666\">" << escape_xml(m.label)
        << "</text>\n";
  }

  // Series.
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char* colour = kPalette[si % kPaletteSize];
    std::ostringstream path;
    bool first = true;
    for (const auto& [x, y] : series[si].points) {
      if (x < x_min || x > x_max) continue;
      path << (first ? "M" : "L") << fmt(px(x), 1) << ',' << fmt(py(y), 1)
           << ' ';
      first = false;
    }
    svg << "<path d=\"" << path.str() << "\" fill=\"none\" stroke=\"" << colour
        << "\" stroke-width=\"1.8\"/>\n";
    // Legend swatch.
    const int lx = kMarginLeft + 10;
    const int ly = kMarginTop + 14 + static_cast<int>(si) * 16;
    svg << "<rect x=\"" << lx << "\" y=\"" << ly - 9
        << "\" width=\"12\" height=\"4\" fill=\"" << colour << "\"/>\n"
        << "<text x=\"" << lx + 18 << "\" y=\"" << ly
        << "\" font-size=\"11\">" << escape_xml(series[si].name)
        << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string render_svg_bars(
    const std::vector<std::pair<std::string, double>>& values,
    const std::string& title, const std::string& unit) {
  const int row_h = 22;
  const int width = 720;
  const int label_w = 180;
  const int top = title.empty() ? 10 : 34;
  const int height = top + static_cast<int>(values.size()) * row_h + 12;

  double max_v = 0.0;
  for (const auto& [label, v] : values) max_v = std::max(max_v, v);
  if (max_v <= 0.0) max_v = 1.0;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!title.empty()) {
    svg << "<text x=\"" << width / 2 << "\" y=\"20\" text-anchor=\"middle\" "
        << "font-size=\"14\" font-weight=\"bold\">" << escape_xml(title)
        << "</text>\n";
  }
  const int bar_area = width - label_w - 90;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int y = top + static_cast<int>(i) * row_h;
    const double w = values[i].second / max_v * bar_area;
    svg << "<text x=\"" << label_w - 8 << "\" y=\"" << y + 14
        << "\" text-anchor=\"end\" font-size=\"12\">"
        << escape_xml(values[i].first) << "</text>\n"
        << "<rect x=\"" << label_w << "\" y=\"" << y + 3 << "\" width=\""
        << fmt(std::max(w, 1.0), 1) << "\" height=\"14\" fill=\""
        << kPalette[0] << "\"/>\n"
        << "<text x=\"" << label_w + w + 6 << "\" y=\"" << y + 14
        << "\" font-size=\"11\">" << fmt(values[i].second, 1) << ' '
        << escape_xml(unit) << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string render_svg_map(const std::vector<MapLayer>& layers,
                           const std::string& title, int width) {
  const int map_h = width / 2;  // equirectangular aspect
  const int top = title.empty() ? 8 : 30;
  const int legend_h = 18 * static_cast<int>(layers.size());
  const int height = top + map_h + legend_h + 10;
  auto px = [&](double lon) { return (lon + 180.0) / 360.0 * width; };
  auto py = [&](double lat) { return top + (90.0 - lat) / 180.0 * map_h; };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!title.empty()) {
    svg << "<text x=\"" << width / 2 << "\" y=\"20\" text-anchor=\"middle\" "
        << "font-size=\"14\" font-weight=\"bold\">" << escape_xml(title)
        << "</text>\n";
  }
  svg << "<rect x=\"0\" y=\"" << top << "\" width=\"" << width
      << "\" height=\"" << map_h << "\" fill=\"#f7fbff\" stroke=\"#999\"/>\n";
  // Graticule.
  for (int lon = -150; lon <= 150; lon += 30) {
    svg << "<line x1=\"" << px(lon) << "\" y1=\"" << top << "\" x2=\""
        << px(lon) << "\" y2=\"" << top + map_h
        << "\" stroke=\"#e0e8f0\"/>\n";
  }
  for (int lat = -60; lat <= 60; lat += 30) {
    svg << "<line x1=\"0\" y1=\"" << py(lat) << "\" x2=\"" << width
        << "\" y2=\"" << py(lat) << "\" stroke=\"#e0e8f0\"/>\n";
  }

  for (std::size_t li = 0; li < layers.size(); ++li) {
    const MapLayer& layer = layers[li];
    const std::string colour =
        layer.colour.empty() ? kPalette[li % kPaletteSize] : layer.colour;
    for (const auto& [lon, lat] : layer.lon_lat) {
      const double x = px(lon);
      const double y = py(lat);
      if (layer.diamond) {
        const double r = layer.radius * 2.2;
        svg << "<polygon points=\"" << fmt(x, 1) << ',' << fmt(y - r, 1) << ' '
            << fmt(x + r, 1) << ',' << fmt(y, 1) << ' ' << fmt(x, 1) << ','
            << fmt(y + r, 1) << ' ' << fmt(x - r, 1) << ',' << fmt(y, 1)
            << "\" fill=\"" << colour << "\"/>\n";
      } else {
        svg << "<circle cx=\"" << fmt(x, 1) << "\" cy=\"" << fmt(y, 1)
            << "\" r=\"" << fmt(layer.radius, 1) << "\" fill=\"" << colour
            << "\" fill-opacity=\"0.55\"/>\n";
      }
    }
    const int ly = top + map_h + 14 + static_cast<int>(li) * 18;
    svg << "<circle cx=\"12\" cy=\"" << ly - 4 << "\" r=\"4\" fill=\""
        << colour << "\"/>\n"
        << "<text x=\"22\" y=\"" << ly << "\" font-size=\"12\">"
        << escape_xml(layer.name) << " (" << layer.lon_lat.size()
        << ")</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  // The insert above only fills the stream buffer; a full disk or
  // yanked volume surfaces at flush/close. Check after both, or a
  // truncated file would report success.
  out.flush();
  if (!out) return false;
  out.close();
  return !out.fail();
}

}  // namespace shears::report
