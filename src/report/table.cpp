#include "report/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace shears::report {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  // Column widths over header + rows.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) grow(header_);
  for (const auto& row : rows_) grow(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << "  ";
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size(), ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (const char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    q += '"';
    return q;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << quote(row[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

}  // namespace shears::report
