#include "report/resilience.hpp"

#include <string>

#include "geo/continent.hpp"

namespace shears::report {

TextTable telemetry_table(const atlas::CampaignTelemetry& t) {
  TextTable table;
  table.set_header({"counter", "value"});
  table.add_row({"bursts recorded", std::to_string(t.bursts)});
  table.add_row({"bursts retried", std::to_string(t.bursts_retried)});
  table.add_row({"retry attempts", std::to_string(t.retries)});
  table.add_row({"bursts recovered", std::to_string(t.bursts_recovered)});
  table.add_row({"bursts fault-flagged", std::to_string(t.bursts_faulted)});
  table.add_row({"probe-ticks hung", std::to_string(t.hang_ticks)});
  table.add_row({"quarantine entries", std::to_string(t.quarantine_entries)});
  table.add_row({"probe-ticks quarantined",
                 std::to_string(t.quarantined_ticks)});
  return table;
}

TextTable quality_table(const core::QualityReport& r) {
  TextTable table;
  table.set_header({"guard", "records dropped", "note"});
  table.add_row({"fault mask", std::to_string(r.dropped_faulted),
                 "skew-tainted or masked records"});
  table.add_row({"lossy probes", std::to_string(r.dropped_lossy_probes),
                 std::to_string(r.probes_dropped) + " probes over threshold"});
  table.add_row({"thin cells", std::to_string(r.dropped_thin_cells),
                 std::to_string(r.cells_dropped) + " of " +
                     std::to_string(r.cells_total) +
                     " (country, provider) cells"});
  table.add_row({"kept", std::to_string(r.records_out),
                 "of " + std::to_string(r.records_in) + " records"});
  return table;
}

TextTable degradation_table(const core::DegradationReport& r) {
  TextTable table;
  table.set_header({"continent", "clean median ms", "faulted median ms",
                    "verdicts changed"});
  for (const core::VerdictShift& row : r.rows) {
    table.add_row({std::string(geo::to_string(row.continent)),
                   fmt(row.clean_median_ms, 1),
                   fmt(row.faulted_median_ms, 1),
                   std::to_string(row.changed) + " / " +
                       std::to_string(row.apps)});
  }
  table.add_row({"TOTAL", "", "",
                 std::to_string(r.changed_total) + " / " +
                     std::to_string(r.apps_total)});
  return table;
}

}  // namespace shears::report
