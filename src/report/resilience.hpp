// Fault / resilience summary tables: campaign telemetry, quality-guard
// accounting, and the clean-vs-faulted degradation report, rendered with
// the same TextTable plumbing every bench uses.
#pragma once

#include "atlas/campaign.hpp"
#include "core/quality.hpp"
#include "report/table.hpp"

namespace shears::report {

/// Retry / quarantine / fault-exposure counters of one campaign run.
[[nodiscard]] TextTable telemetry_table(const atlas::CampaignTelemetry& t);

/// What the data-quality guards dropped, and why.
[[nodiscard]] TextTable quality_table(const core::QualityReport& r);

/// Per-continent feasibility-verdict shifts between a clean and a
/// faulted run.
[[nodiscard]] TextTable degradation_table(const core::DegradationReport& r);

}  // namespace shears::report
