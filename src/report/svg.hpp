// Self-contained SVG rendering of the figure data — the publication-
// quality counterpart of the ASCII plots. No dependencies: the writer
// emits plain SVG 1.1 with inline styling, one file per figure.
#pragma once

#include <string>
#include <vector>

#include "report/plot.hpp"

namespace shears::report {

struct SvgPlotOptions {
  int width = 760;           ///< pixel width of the whole image
  int height = 420;
  bool log_x = false;
  double x_min = 0.0;        ///< 0/0 = auto from the data
  double x_max = 0.0;
  std::string title;
  std::string x_label = "RTT (ms)";
  std::string y_label = "CDF";
};

/// Renders CDF-style series (y in [0, 1]) with threshold markers as an
/// SVG document string. Each series gets a distinct colour and a legend
/// entry; markers draw as labelled dashed verticals.
[[nodiscard]] std::string render_svg_cdf(const std::vector<Series>& series,
                                         const std::vector<Marker>& markers,
                                         const SvgPlotOptions& options = {});

/// Renders a horizontal bar chart as SVG.
[[nodiscard]] std::string render_svg_bars(
    const std::vector<std::pair<std::string, double>>& values,
    const std::string& title, const std::string& unit = "ms");

/// One layer of a world scatter map. Points are (lon, lat) degrees; the
/// renderer applies an equirectangular projection. Used for the Fig. 3
/// infrastructure map (probes as dots, regions as diamonds).
struct MapLayer {
  std::string name;
  std::vector<std::pair<double, double>> lon_lat;
  double radius = 1.5;            ///< marker size in px
  bool diamond = false;           ///< diamonds instead of circles
  std::string colour;             ///< empty = palette colour by index
};

/// Renders layered world scatter as SVG (graticule every 30 degrees).
[[nodiscard]] std::string render_svg_map(const std::vector<MapLayer>& layers,
                                         const std::string& title,
                                         int width = 880);

/// Writes a string to a file; returns false (and leaves no partial file
/// guarantees) on I/O failure. Failure is checked through flush and
/// close, so a full disk cannot silently truncate the file — callers
/// must consume the result.
[[nodiscard]] bool write_text_file(const std::string& path,
                                   const std::string& content);

}  // namespace shears::report
