#include "report/plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "report/table.hpp"

namespace shears::report {

namespace {

constexpr const char kGlyphs[] = "*o+x#@%&";

double transform(double x, bool log_x) {
  return log_x ? std::log10(std::max(x, 1e-9)) : x;
}

}  // namespace

std::string render_cdf_plot(const std::vector<Series>& series,
                            const std::vector<Marker>& markers,
                            const CdfPlotOptions& options) {
  const int w = std::max(options.width, 16);
  const int h = std::max(options.height, 6);

  // X range: explicit or from the data.
  double x_min = options.x_min;
  double x_max = options.x_max;
  if (x_min == 0.0 && x_max == 0.0) {
    bool any = false;
    for (const Series& s : series) {
      for (const auto& [x, y] : s.points) {
        if (!any) {
          x_min = x_max = x;
          any = true;
        } else {
          x_min = std::min(x_min, x);
          x_max = std::max(x_max, x);
        }
      }
    }
    if (!any) return "(empty plot)\n";
  }
  if (options.log_x) x_min = std::max(x_min, 0.1);
  const double t0 = transform(x_min, options.log_x);
  const double t1 = transform(x_max, options.log_x);
  const double span = t1 > t0 ? t1 - t0 : 1.0;

  auto col_of = [&](double x) {
    const double t = transform(x, options.log_x);
    const int c = static_cast<int>(std::round((t - t0) / span * (w - 1)));
    return std::clamp(c, 0, w - 1);
  };
  auto row_of = [&](double y) {
    const int r = static_cast<int>(std::round((1.0 - y) * (h - 1)));
    return std::clamp(r, 0, h - 1);
  };

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  // Markers first so curves draw over them.
  std::string marker_line(static_cast<std::size_t>(w), ' ');
  for (const Marker& m : markers) {
    if (m.x < x_min || m.x > x_max) continue;
    const int c = col_of(m.x);
    for (auto& row : grid) row[static_cast<std::size_t>(c)] = '|';
    // Stamp the label onto the marker line (clipped, right-shifted on
    // collision).
    std::size_t pos = static_cast<std::size_t>(c);
    for (std::size_t i = 0; i < m.label.size() && pos + i < marker_line.size();
         ++i) {
      marker_line[pos + i] = m.label[i];
    }
  }

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    for (const auto& [x, y] : series[si].points) {
      if (x < x_min || x > x_max) continue;
      grid[static_cast<std::size_t>(row_of(y))]
          [static_cast<std::size_t>(col_of(x))] = glyph;
    }
  }

  std::ostringstream out;
  out << "      " << marker_line << '\n';
  for (int r = 0; r < h; ++r) {
    const double y = 1.0 - static_cast<double>(r) / (h - 1);
    out << (r % 3 == 0 ? fmt(y, 2) : std::string(4, ' ')) << " |"
        << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << "     +" << std::string(static_cast<std::size_t>(w), '-') << '\n';
  out << "      " << fmt(x_min, 0) << std::string(static_cast<std::size_t>(
                        std::max(1, w - 12)), ' ')
      << fmt(x_max, 0) << "  " << options.x_label
      << (options.log_x ? " [log]" : "") << '\n';
  out << "      legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << ' ' << kGlyphs[si % (sizeof(kGlyphs) - 1)] << '=' << series[si].name;
  }
  out << '\n';
  return out.str();
}

std::string render_bars(
    const std::vector<std::pair<std::string, double>>& values, int width) {
  double max_v = 0.0;
  std::size_t max_label = 0;
  for (const auto& [label, v] : values) {
    max_v = std::max(max_v, v);
    max_label = std::max(max_label, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, v] : values) {
    const int len = max_v > 0.0
                        ? static_cast<int>(std::round(v / max_v * width))
                        : 0;
    out << label << std::string(max_label - label.size(), ' ') << " | "
        << std::string(static_cast<std::size_t>(std::max(len, 0)), '#') << ' '
        << fmt(v, 1) << '\n';
  }
  return out.str();
}

}  // namespace shears::report
