// ASCII plot rendering for the figure benches: multi-series CDF plots with
// threshold markers (MTP / PL / HRT vertical rules), and horizontal bar
// charts for banded counts. Pure text; the series data is also emitted as
// CSV so real plots can be regenerated offline.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace shears::report {

/// One named (x, y) series, y in [0, 1] for CDFs.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// A labelled vertical marker (e.g. "MTP" at x = 20).
struct Marker {
  std::string label;
  double x = 0.0;
};

struct CdfPlotOptions {
  int width = 72;        ///< plot area columns
  int height = 18;       ///< plot area rows
  bool log_x = false;    ///< logarithmic x axis (requires positive xs)
  double x_min = 0.0;    ///< 0/0 = auto range from data
  double x_max = 0.0;
  std::string x_label = "RTT (ms)";
};

/// Renders CDF curves (y in [0,1]) as a character grid; each series uses a
/// distinct glyph, markers draw as vertical '|' rules with labels on top.
[[nodiscard]] std::string render_cdf_plot(const std::vector<Series>& series,
                                          const std::vector<Marker>& markers,
                                          const CdfPlotOptions& options = {});

/// Renders a horizontal bar chart: one row per (label, value).
[[nodiscard]] std::string render_bars(
    const std::vector<std::pair<std::string, double>>& values, int width = 50);

}  // namespace shears::report
