// Plain-text table rendering shared by the bench binaries: every "table"
// of the paper (and each figure's underlying series) is printed as an
// aligned text table plus an optional CSV dump.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace shears::report {

class TextTable {
 public:
  /// Sets the header row; resets column count.
  void set_header(std::vector<std::string> header);

  /// Appends a row; must match the header arity when a header is set.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with padded columns, a rule under the header.
  [[nodiscard]] std::string to_string() const;

  /// Writes RFC-4180-ish CSV (values with commas/quotes get quoted).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimals (locale-independent).
[[nodiscard]] std::string fmt(double value, int decimals = 1);

/// Formats a fraction as a percentage string, e.g. 0.753 -> "75.3%".
[[nodiscard]] std::string fmt_percent(double fraction, int decimals = 1);

}  // namespace shears::report
