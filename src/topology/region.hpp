// Cloud regions: the measurement end-points (§4.1, Fig. 3a).
//
// One entry per compute region targeted by the study: 101 regions of seven
// providers in 21 countries, reconstructed from public provider
// documentation for the 2019/2020 campaign window. Launch years enable the
// historical-footprint ablation (cloud expansion 2010 → 2020).
#pragma once

#include <span>
#include <string_view>

#include "geo/coordinates.hpp"
#include "topology/provider.hpp"

namespace shears::topology {

struct CloudRegion {
  CloudProvider provider;
  std::string_view region_id;   ///< provider-native id, e.g. "eu-central-1"
  std::string_view city;
  std::string_view country_iso2;
  geo::GeoPoint location;
  int launch_year;              ///< year the region went generally available
};

/// The full embedded registry (101 regions), grouped by provider.
[[nodiscard]] std::span<const CloudRegion> all_regions() noexcept;

/// Number of embedded regions.
[[nodiscard]] std::size_t region_count() noexcept;

}  // namespace shears::topology
