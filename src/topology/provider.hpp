// The seven cloud providers of the study (§4.1) and their network class.
//
// The paper distinguishes providers with *private* wide-area backbones and
// wide ISP peering (Amazon, Google, Microsoft — and Alibaba within Asia)
// from providers that "largely rely on the public Internet for
// connectivity" (Linode, Digital Ocean, Vultr). The backbone class feeds
// the path model: private backbones shave path stretch and per-hop
// queueing once traffic enters the provider edge.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace shears::topology {

enum class CloudProvider : unsigned char {
  kAmazon = 0,
  kGoogle,
  kAzure,
  kDigitalOcean,
  kLinode,
  kAlibaba,
  kVultr,
};

inline constexpr std::size_t kProviderCount = 7;

inline constexpr std::array<CloudProvider, kProviderCount> kAllProviders = {
    CloudProvider::kAmazon,       CloudProvider::kGoogle,
    CloudProvider::kAzure,        CloudProvider::kDigitalOcean,
    CloudProvider::kLinode,       CloudProvider::kAlibaba,
    CloudProvider::kVultr,
};

enum class BackboneClass : unsigned char {
  kPrivate,  ///< provider-owned WAN with broad ISP peering
  kPublic,   ///< transit over the public Internet
};

[[nodiscard]] constexpr std::string_view to_string(CloudProvider p) noexcept {
  switch (p) {
    case CloudProvider::kAmazon: return "Amazon";
    case CloudProvider::kGoogle: return "Google";
    case CloudProvider::kAzure: return "Microsoft Azure";
    case CloudProvider::kDigitalOcean: return "Digital Ocean";
    case CloudProvider::kLinode: return "Linode";
    case CloudProvider::kAlibaba: return "Alibaba";
    case CloudProvider::kVultr: return "Vultr";
  }
  return "Unknown";
}

[[nodiscard]] constexpr BackboneClass backbone_class(CloudProvider p) noexcept {
  switch (p) {
    case CloudProvider::kAmazon:
    case CloudProvider::kGoogle:
    case CloudProvider::kAzure:
    case CloudProvider::kAlibaba:
      return BackboneClass::kPrivate;
    case CloudProvider::kDigitalOcean:
    case CloudProvider::kLinode:
    case CloudProvider::kVultr:
      return BackboneClass::kPublic;
  }
  return BackboneClass::kPublic;
}

[[nodiscard]] constexpr std::optional<CloudProvider> provider_from_string(
    std::string_view name) noexcept {
  for (const CloudProvider p : kAllProviders) {
    if (to_string(p) == name) return p;
  }
  return std::nullopt;
}

[[nodiscard]] constexpr std::size_t index_of(CloudProvider p) noexcept {
  return static_cast<std::size_t>(p);
}

}  // namespace shears::topology
