// Embedded registry of the 101 cloud regions targeted by the campaign.
//
// Locations are city coordinates (datacenter metro), launch years from
// public provider announcements. The set spans exactly 21 countries,
// matching the paper's "101 datacenters in 21 countries".
#include "topology/region.hpp"

#include <array>

namespace shears::topology {

namespace {

using enum CloudProvider;

constexpr std::array kRegions = {
    // ------------------------------------------------------- Amazon (20) --
    CloudRegion{kAmazon, "us-east-1", "Ashburn", "US", {39.04, -77.49}, 2006},
    CloudRegion{kAmazon, "us-east-2", "Columbus", "US", {40.00, -83.00}, 2016},
    CloudRegion{kAmazon, "us-west-1", "San Jose", "US", {37.35, -121.96}, 2009},
    CloudRegion{kAmazon, "us-west-2", "Boardman", "US", {45.84, -119.70}, 2011},
    CloudRegion{kAmazon, "ca-central-1", "Montreal", "CA", {45.50, -73.57}, 2016},
    CloudRegion{kAmazon, "sa-east-1", "Sao Paulo", "BR", {-23.55, -46.63}, 2011},
    CloudRegion{kAmazon, "eu-west-1", "Dublin", "IE", {53.35, -6.26}, 2007},
    CloudRegion{kAmazon, "eu-west-2", "London", "GB", {51.51, -0.13}, 2016},
    CloudRegion{kAmazon, "eu-west-3", "Paris", "FR", {48.86, 2.35}, 2017},
    CloudRegion{kAmazon, "eu-central-1", "Frankfurt", "DE", {50.11, 8.68}, 2014},
    CloudRegion{kAmazon, "eu-north-1", "Stockholm", "SE", {59.33, 18.07}, 2018},
    CloudRegion{kAmazon, "ap-south-1", "Mumbai", "IN", {19.08, 72.88}, 2016},
    CloudRegion{kAmazon, "ap-southeast-1", "Singapore", "SG", {1.35, 103.82}, 2010},
    CloudRegion{kAmazon, "ap-southeast-2", "Sydney", "AU", {-33.87, 151.21}, 2012},
    CloudRegion{kAmazon, "ap-northeast-1", "Tokyo", "JP", {35.68, 139.69}, 2011},
    CloudRegion{kAmazon, "ap-northeast-2", "Seoul", "KR", {37.57, 126.98}, 2016},
    CloudRegion{kAmazon, "ap-east-1", "Hong Kong", "HK", {22.32, 114.17}, 2019},
    CloudRegion{kAmazon, "cn-north-1", "Beijing", "CN", {39.90, 116.41}, 2014},
    CloudRegion{kAmazon, "cn-northwest-1", "Ningxia", "CN", {38.47, 106.26}, 2017},
    CloudRegion{kAmazon, "af-south-1", "Cape Town", "ZA", {-33.92, 18.42}, 2020},
    // ------------------------------------------------------- Google (16) --
    CloudRegion{kGoogle, "us-central1", "Council Bluffs", "US", {41.26, -95.86}, 2009},
    CloudRegion{kGoogle, "us-east1", "Moncks Corner", "US", {33.20, -80.00}, 2015},
    CloudRegion{kGoogle, "us-west1", "The Dalles", "US", {45.60, -121.20}, 2016},
    CloudRegion{kGoogle, "northamerica-northeast1", "Montreal", "CA", {45.50, -73.57}, 2018},
    CloudRegion{kGoogle, "southamerica-east1", "Sao Paulo", "BR", {-23.55, -46.63}, 2017},
    CloudRegion{kGoogle, "europe-west1", "St. Ghislain", "BE", {50.45, 3.82}, 2015},
    CloudRegion{kGoogle, "europe-west2", "London", "GB", {51.51, -0.13}, 2017},
    CloudRegion{kGoogle, "europe-west3", "Frankfurt", "DE", {50.11, 8.68}, 2017},
    CloudRegion{kGoogle, "europe-west4", "Eemshaven", "NL", {53.44, 6.84}, 2018},
    CloudRegion{kGoogle, "europe-west6", "Zurich", "CH", {47.38, 8.54}, 2019},
    CloudRegion{kGoogle, "europe-north1", "Hamina", "FI", {60.57, 27.19}, 2018},
    CloudRegion{kGoogle, "asia-south1", "Mumbai", "IN", {19.08, 72.88}, 2017},
    CloudRegion{kGoogle, "asia-southeast1", "Jurong West", "SG", {1.35, 103.82}, 2017},
    CloudRegion{kGoogle, "asia-east2", "Hong Kong", "HK", {22.32, 114.17}, 2018},
    CloudRegion{kGoogle, "asia-northeast1", "Tokyo", "JP", {35.68, 139.69}, 2016},
    CloudRegion{kGoogle, "australia-southeast1", "Sydney", "AU", {-33.87, 151.21}, 2017},
    // -------------------------------------------------------- Azure (23) --
    CloudRegion{kAzure, "eastus", "Richmond", "US", {37.37, -79.80}, 2012},
    CloudRegion{kAzure, "centralus", "Des Moines", "US", {41.59, -93.62}, 2014},
    CloudRegion{kAzure, "southcentralus", "San Antonio", "US", {29.42, -98.49}, 2010},
    CloudRegion{kAzure, "westus", "San Jose", "US", {37.35, -121.96}, 2012},
    CloudRegion{kAzure, "westus2", "Quincy", "US", {47.23, -119.85}, 2016},
    CloudRegion{kAzure, "canadacentral", "Toronto", "CA", {43.65, -79.38}, 2016},
    CloudRegion{kAzure, "canadaeast", "Quebec City", "CA", {46.81, -71.21}, 2016},
    CloudRegion{kAzure, "brazilsouth", "Sao Paulo", "BR", {-23.55, -46.63}, 2014},
    CloudRegion{kAzure, "northeurope", "Dublin", "IE", {53.35, -6.26}, 2010},
    CloudRegion{kAzure, "westeurope", "Amsterdam", "NL", {52.37, 4.90}, 2010},
    CloudRegion{kAzure, "uksouth", "London", "GB", {51.51, -0.13}, 2016},
    CloudRegion{kAzure, "francecentral", "Paris", "FR", {48.86, 2.35}, 2018},
    CloudRegion{kAzure, "germanywestcentral", "Frankfurt", "DE", {50.11, 8.68}, 2019},
    CloudRegion{kAzure, "switzerlandnorth", "Zurich", "CH", {47.38, 8.54}, 2019},
    CloudRegion{kAzure, "uaenorth", "Dubai", "AE", {25.20, 55.27}, 2019},
    CloudRegion{kAzure, "southafricanorth", "Johannesburg", "ZA", {-26.20, 28.05}, 2019},
    CloudRegion{kAzure, "centralindia", "Pune", "IN", {18.52, 73.86}, 2015},
    CloudRegion{kAzure, "southindia", "Chennai", "IN", {13.08, 80.27}, 2015},
    CloudRegion{kAzure, "southeastasia", "Singapore", "SG", {1.35, 103.82}, 2010},
    CloudRegion{kAzure, "eastasia", "Hong Kong", "HK", {22.32, 114.17}, 2010},
    CloudRegion{kAzure, "japaneast", "Tokyo", "JP", {35.68, 139.69}, 2014},
    CloudRegion{kAzure, "koreacentral", "Seoul", "KR", {37.57, 126.98}, 2017},
    CloudRegion{kAzure, "australiaeast", "Sydney", "AU", {-33.87, 151.21}, 2014},
    // ------------------------------------------------- Digital Ocean (8) --
    CloudRegion{kDigitalOcean, "nyc1", "New York", "US", {40.71, -74.01}, 2011},
    CloudRegion{kDigitalOcean, "sfo2", "San Francisco", "US", {37.77, -122.42}, 2017},
    CloudRegion{kDigitalOcean, "tor1", "Toronto", "CA", {43.65, -79.38}, 2015},
    CloudRegion{kDigitalOcean, "lon1", "London", "GB", {51.51, -0.13}, 2014},
    CloudRegion{kDigitalOcean, "ams3", "Amsterdam", "NL", {52.37, 4.90}, 2015},
    CloudRegion{kDigitalOcean, "fra1", "Frankfurt", "DE", {50.11, 8.68}, 2015},
    CloudRegion{kDigitalOcean, "sgp1", "Singapore", "SG", {1.35, 103.82}, 2014},
    CloudRegion{kDigitalOcean, "blr1", "Bangalore", "IN", {12.97, 77.59}, 2016},
    // ------------------------------------------------------- Linode (10) --
    CloudRegion{kLinode, "us-east", "Newark", "US", {40.73, -74.17}, 2008},
    CloudRegion{kLinode, "us-west", "Fremont", "US", {37.55, -121.99}, 2004},
    CloudRegion{kLinode, "us-central", "Dallas", "US", {32.78, -96.80}, 2004},
    CloudRegion{kLinode, "ca-central", "Toronto", "CA", {43.65, -79.38}, 2019},
    CloudRegion{kLinode, "eu-west", "London", "GB", {51.51, -0.13}, 2009},
    CloudRegion{kLinode, "eu-central", "Frankfurt", "DE", {50.11, 8.68}, 2015},
    CloudRegion{kLinode, "ap-west", "Mumbai", "IN", {19.08, 72.88}, 2019},
    CloudRegion{kLinode, "ap-south", "Singapore", "SG", {1.35, 103.82}, 2015},
    CloudRegion{kLinode, "ap-northeast", "Tokyo", "JP", {35.68, 139.69}, 2016},
    CloudRegion{kLinode, "ap-southeast", "Sydney", "AU", {-33.87, 151.21}, 2019},
    // ------------------------------------------------------ Alibaba (12) --
    CloudRegion{kAlibaba, "cn-hangzhou", "Hangzhou", "CN", {30.27, 120.16}, 2011},
    CloudRegion{kAlibaba, "cn-beijing", "Beijing", "CN", {39.90, 116.41}, 2013},
    CloudRegion{kAlibaba, "cn-shanghai", "Shanghai", "CN", {31.23, 121.47}, 2015},
    CloudRegion{kAlibaba, "cn-hongkong", "Hong Kong", "HK", {22.32, 114.17}, 2014},
    CloudRegion{kAlibaba, "ap-southeast-1", "Singapore", "SG", {1.35, 103.82}, 2015},
    CloudRegion{kAlibaba, "ap-south-1", "Mumbai", "IN", {19.08, 72.88}, 2018},
    CloudRegion{kAlibaba, "ap-northeast-1", "Tokyo", "JP", {35.68, 139.69}, 2016},
    CloudRegion{kAlibaba, "ap-southeast-2", "Sydney", "AU", {-33.87, 151.21}, 2016},
    CloudRegion{kAlibaba, "eu-central-1", "Frankfurt", "DE", {50.11, 8.68}, 2016},
    CloudRegion{kAlibaba, "eu-west-1", "London", "GB", {51.51, -0.13}, 2018},
    CloudRegion{kAlibaba, "me-east-1", "Dubai", "AE", {25.20, 55.27}, 2016},
    CloudRegion{kAlibaba, "us-west-1", "San Jose", "US", {37.35, -121.96}, 2014},
    // -------------------------------------------------------- Vultr (12) --
    CloudRegion{kVultr, "ewr", "New Jersey", "US", {40.86, -74.06}, 2014},
    CloudRegion{kVultr, "ord", "Chicago", "US", {41.88, -87.63}, 2014},
    CloudRegion{kVultr, "sea", "Seattle", "US", {47.61, -122.33}, 2014},
    CloudRegion{kVultr, "sjc", "Silicon Valley", "US", {37.35, -121.96}, 2014},
    CloudRegion{kVultr, "yto", "Toronto", "CA", {43.65, -79.38}, 2015},
    CloudRegion{kVultr, "lhr", "London", "GB", {51.51, -0.13}, 2014},
    CloudRegion{kVultr, "cdg", "Paris", "FR", {48.86, 2.35}, 2015},
    CloudRegion{kVultr, "fra", "Frankfurt", "DE", {50.11, 8.68}, 2014},
    CloudRegion{kVultr, "ams", "Amsterdam", "NL", {52.37, 4.90}, 2014},
    CloudRegion{kVultr, "nrt", "Tokyo", "JP", {35.68, 139.69}, 2014},
    CloudRegion{kVultr, "sgp", "Singapore", "SG", {1.35, 103.82}, 2015},
    CloudRegion{kVultr, "syd", "Sydney", "AU", {-33.87, 151.21}, 2015},
};

static_assert(kRegions.size() == 101,
              "the study targets exactly 101 cloud regions");

}  // namespace

std::span<const CloudRegion> all_regions() noexcept { return kRegions; }

std::size_t region_count() noexcept { return kRegions.size(); }

}  // namespace shears::topology
