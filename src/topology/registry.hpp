// Queryable view over the cloud-region dataset.
//
// A CloudRegistry is an immutable snapshot of the cloud footprint — either
// the full 2019/2020 campaign set or a historical subset (launch year <= Y)
// for the expansion ablation. All §4 analyses and the measurement
// scheduler consume a registry rather than the raw table.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "geo/continent.hpp"
#include "geo/coordinates.hpp"
#include "topology/region.hpp"

namespace shears::topology {

/// A region together with its distance from a query point.
struct RankedRegion {
  const CloudRegion* region = nullptr;
  double distance_km = 0.0;
};

class CloudRegistry {
 public:
  /// Snapshot of the full campaign-era footprint (all 101 regions).
  static CloudRegistry campaign_footprint();

  /// Snapshot of regions generally available by the end of `year`.
  static CloudRegistry footprint_as_of(int year);

  /// Snapshot restricted to a provider subset.
  static CloudRegistry for_providers(const std::vector<CloudProvider>& providers);

  /// Builds from an explicit region list (for tests / what-if scenarios).
  explicit CloudRegistry(std::vector<const CloudRegion*> regions);

  [[nodiscard]] const std::vector<const CloudRegion*>& regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return regions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return regions_.empty(); }

  /// Regions located on the given continent (continent of the hosting
  /// country per the geo registry).
  [[nodiscard]] std::vector<const CloudRegion*> in_continent(
      geo::Continent c) const;

  /// Regions of one provider.
  [[nodiscard]] std::vector<const CloudRegion*> of_provider(
      CloudProvider p) const;

  /// Distinct ISO-2 codes of hosting countries, sorted.
  [[nodiscard]] std::vector<std::string_view> hosting_countries() const;

  /// The region nearest to `point`, or nullopt when empty.
  [[nodiscard]] std::optional<RankedRegion> nearest(
      const geo::GeoPoint& point) const;

  /// The `n` nearest regions to `point`, ascending by distance.
  [[nodiscard]] std::vector<RankedRegion> nearest_n(const geo::GeoPoint& point,
                                                    std::size_t n) const;

  /// Great-circle distance from `point` to the nearest region, or +inf when
  /// the registry is empty.
  [[nodiscard]] double nearest_distance_km(const geo::GeoPoint& point) const;

 private:
  std::vector<const CloudRegion*> regions_;
};

/// Continent a region sits on, resolved through the country registry.
/// Every embedded region's hosting country is present in the country table.
[[nodiscard]] geo::Continent region_continent(const CloudRegion& region);

}  // namespace shears::topology
