#include "topology/registry.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "geo/country.hpp"

namespace shears::topology {

CloudRegistry::CloudRegistry(std::vector<const CloudRegion*> regions)
    : regions_(std::move(regions)) {
  for (const CloudRegion* r : regions_) {
    if (r == nullptr) throw std::invalid_argument("CloudRegistry: null region");
  }
}

CloudRegistry CloudRegistry::campaign_footprint() {
  std::vector<const CloudRegion*> out;
  for (const CloudRegion& r : all_regions()) out.push_back(&r);
  return CloudRegistry(std::move(out));
}

CloudRegistry CloudRegistry::footprint_as_of(int year) {
  std::vector<const CloudRegion*> out;
  for (const CloudRegion& r : all_regions()) {
    if (r.launch_year <= year) out.push_back(&r);
  }
  return CloudRegistry(std::move(out));
}

CloudRegistry CloudRegistry::for_providers(
    const std::vector<CloudProvider>& providers) {
  std::vector<const CloudRegion*> out;
  for (const CloudRegion& r : all_regions()) {
    if (std::find(providers.begin(), providers.end(), r.provider) !=
        providers.end()) {
      out.push_back(&r);
    }
  }
  return CloudRegistry(std::move(out));
}

std::vector<const CloudRegion*> CloudRegistry::in_continent(
    geo::Continent c) const {
  std::vector<const CloudRegion*> out;
  for (const CloudRegion* r : regions_) {
    if (region_continent(*r) == c) out.push_back(r);
  }
  return out;
}

std::vector<const CloudRegion*> CloudRegistry::of_provider(
    CloudProvider p) const {
  std::vector<const CloudRegion*> out;
  for (const CloudRegion* r : regions_) {
    if (r->provider == p) out.push_back(r);
  }
  return out;
}

std::vector<std::string_view> CloudRegistry::hosting_countries() const {
  std::vector<std::string_view> out;
  out.reserve(regions_.size());
  for (const CloudRegion* r : regions_) out.push_back(r->country_iso2);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<RankedRegion> CloudRegistry::nearest(
    const geo::GeoPoint& point) const {
  std::optional<RankedRegion> best;
  for (const CloudRegion* r : regions_) {
    const double d = geo::haversine_km(point, r->location);
    if (!best || d < best->distance_km) best = RankedRegion{r, d};
  }
  return best;
}

std::vector<RankedRegion> CloudRegistry::nearest_n(const geo::GeoPoint& point,
                                                   std::size_t n) const {
  std::vector<RankedRegion> ranked;
  ranked.reserve(regions_.size());
  for (const CloudRegion* r : regions_) {
    ranked.push_back({r, geo::haversine_km(point, r->location)});
  }
  const std::size_t k = std::min(n, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(k),
                    ranked.end(), [](const RankedRegion& a, const RankedRegion& b) {
                      return a.distance_km < b.distance_km;
                    });
  ranked.resize(k);
  return ranked;
}

double CloudRegistry::nearest_distance_km(const geo::GeoPoint& point) const {
  const auto best = nearest(point);
  return best ? best->distance_km : std::numeric_limits<double>::infinity();
}

geo::Continent region_continent(const CloudRegion& region) {
  const geo::Country* c = geo::find_country(region.country_iso2);
  if (c == nullptr) {
    throw std::logic_error("region hosted in unknown country: " +
                           std::string(region.country_iso2));
  }
  return c->continent;
}

}  // namespace shears::topology
