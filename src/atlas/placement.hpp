// Probe fleet generation: reproduces the RIPE Atlas vantage-point
// population of §4.1 / Fig. 3b — 3200+ probes across ~166+ countries with
// the platform's characteristic Europe/North-America density skew, mixed
// access technologies, and a small privileged (datacentre-hosted) share.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atlas/probe.hpp"
#include "geo/continent.hpp"

namespace shears::atlas {

struct PlacementConfig {
  /// Total probes to generate (the paper uses 3200+).
  std::size_t probe_count = 3200;
  /// Seed for the placement RNG; the fleet is a pure function of config.
  std::uint64_t seed = 42;
  /// Fraction of probes whose hosts attached useful access-type tags.
  /// RIPE Atlas tag coverage is partial; untagged probes still measure but
  /// drop out of the tag-filtered Fig. 7 analysis.
  double tagged_fraction = 0.55;
  /// Fraction of probes in privileged locations (datacentre / cloud),
  /// filtered from every analysis.
  double privileged_fraction = 0.04;
  /// Fraction of probes placed in listed cities (population-weighted,
  /// tight urban scatter); the rest use the Gaussian national scatter.
  /// Countries without listed cities always use the scatter model.
  double urban_fraction = 0.75;
  /// Scatter radius (km) around a chosen city centre.
  double urban_scatter_km = 30.0;
};

/// An immutable generated fleet. Probe ids equal their index.
class ProbeFleet {
 public:
  /// Deterministically generates a fleet: every country in the registry
  /// receives at least one probe (coverage), the rest follow the
  /// probe-density weights (largest-remainder apportionment), and each
  /// probe gets a scattered location, an access technology drawn from its
  /// country's tier mix, an environment, and tags.
  static ProbeFleet generate(const PlacementConfig& config);

  /// Builds a fleet from explicit probes (tests, bespoke scenarios).
  /// Probe ids must equal their index and countries must be non-null.
  static ProbeFleet from_probes(std::vector<Probe> probes);

  [[nodiscard]] std::span<const Probe> probes() const noexcept {
    return probes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return probes_.size(); }
  [[nodiscard]] const Probe& probe(ProbeId id) const { return probes_.at(id); }

  /// Probes whose country lies on the given continent.
  [[nodiscard]] std::vector<const Probe*> in_continent(geo::Continent c) const;

  /// Number of distinct countries hosting at least one probe.
  [[nodiscard]] std::size_t country_count() const;

 private:
  explicit ProbeFleet(std::vector<Probe> probes) : probes_(std::move(probes)) {}

  std::vector<Probe> probes_;
};

}  // namespace shears::atlas
