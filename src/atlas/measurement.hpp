// Measurement records and the immutable campaign dataset.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "atlas/placement.hpp"
#include "topology/registry.hpp"

namespace shears::atlas {

/// One scheduled ping burst result, stored compactly: a nine-month
/// campaign produces millions of these (the paper's dataset holds 3.2M).
struct Measurement {
  ProbeId probe_id = 0;
  std::uint16_t region_index = 0;  ///< index into the registry's region list
  std::uint32_t tick = 0;          ///< schedule tick (interval_hours apart)
  float min_ms = 0.0f;             ///< valid only when received > 0
  float avg_ms = 0.0f;
  float max_ms = 0.0f;
  std::uint8_t sent = 0;
  std::uint8_t received = 0;
  /// Retry attempts the engine spent before recording this burst (0 when
  /// the scheduled attempt went through, or retries are disabled).
  std::uint8_t retries = 0;
  /// faults::FaultKind bitmask active when the recorded attempt was
  /// sampled; 0 = clean. Data-quality guards key off this.
  std::uint8_t faults = 0;

  [[nodiscard]] bool lost() const noexcept { return received == 0; }
  [[nodiscard]] bool faulted() const noexcept { return faults != 0; }
};

/// The dataset a campaign produces: records plus the fleet and footprint
/// they refer to. Non-owning of fleet/registry — both must outlive it.
class MeasurementDataset {
 public:
  MeasurementDataset(const ProbeFleet* fleet,
                     const topology::CloudRegistry* registry,
                     std::vector<Measurement> records);

  [[nodiscard]] std::span<const Measurement> records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const ProbeFleet& fleet() const noexcept { return *fleet_; }
  [[nodiscard]] const topology::CloudRegistry& registry() const noexcept {
    return *registry_;
  }

  [[nodiscard]] const Probe& probe_of(const Measurement& m) const {
    return fleet_->probe(m.probe_id);
  }
  [[nodiscard]] const topology::CloudRegion& region_of(
      const Measurement& m) const {
    return *registry_->regions().at(m.region_index);
  }

  /// Share of ping bursts that lost every packet.
  [[nodiscard]] double loss_fraction() const noexcept;

  /// Share of records carrying any fault-exposure flag.
  [[nodiscard]] double faulted_fraction() const noexcept;

  /// Writes "probe_id,country,continent,access,provider,region,tick,
  /// min_ms,avg_ms,max_ms,sent,received,retries,faults" rows; the
  /// public-dataset format.
  void write_csv(std::ostream& os) const;

  /// Writes one JSON object per line in the RIPE-Atlas result style
  /// ("prb_id", "dst_name", "timestamp" in seconds from campaign start,
  /// "min"/"avg"/"max", "sent"/"rcvd", plus probe metadata). Lost bursts
  /// emit min/avg/max of -1 like the real API; non-zero retry counts and
  /// fault masks ride along as "retries"/"faults".
  void write_jsonl(std::ostream& os, int interval_hours = 3) const;

  /// Loads a dataset previously written by write_csv, resolving probe ids
  /// against `fleet` and (provider, region) pairs against `registry`.
  /// Accepts both the current 14-column header and the legacy 12-column
  /// one (retries/faults fill as 0). Consistency-checks each row's
  /// country/access metadata against the fleet and throws
  /// std::runtime_error on mismatch or malformed input — loading a
  /// dataset against the wrong fleet seed must fail loudly.
  static MeasurementDataset read_csv(std::istream& is, const ProbeFleet* fleet,
                                     const topology::CloudRegistry* registry);

  /// Round-trip counterpart of write_jsonl: loads Atlas-style JSONL lines
  /// produced by this class, with the same fleet/registry consistency
  /// checks and std::runtime_error on malformed lines. `interval_hours`
  /// must match the value used when writing (it maps timestamps back to
  /// ticks).
  static MeasurementDataset read_jsonl(std::istream& is,
                                       const ProbeFleet* fleet,
                                       const topology::CloudRegistry* registry,
                                       int interval_hours = 3);

 private:
  const ProbeFleet* fleet_;
  const topology::CloudRegistry* registry_;
  std::vector<Measurement> records_;
};

}  // namespace shears::atlas
