// The RIPE Atlas credit economy — the resource constraint that shaped the
// paper's schedule. Atlas users spend credits per measurement result and
// earn them by hosting probes; daily spending caps bound how much a
// campaign can measure (the paper's acknowledgements thank the Atlas team
// for "increased quota limits"). This module makes the economics
// computable: what does a campaign cost, and what schedule does a given
// budget afford?
#pragma once

#include <cstdint>

#include "atlas/campaign.hpp"

namespace shears::atlas {

struct CreditPolicy {
  /// Credits a connected probe earns its host per day (RIPE: 21600 —
  /// one per 4 seconds online).
  double daily_earn_per_hosted_probe = 21600.0;
  /// Cost of one ping result (RIPE: 10 credits per packet).
  double cost_per_ping_packet = 10.0;
  /// Platform cap on one user's daily spend (default RIPE quota: 1M).
  double daily_spend_cap = 1e6;
};

/// Running balance of one measurement campaign's sponsor.
class CreditLedger {
 public:
  explicit CreditLedger(CreditPolicy policy, double initial_balance = 0.0)
      : policy_(policy), balance_(initial_balance) {}

  [[nodiscard]] const CreditPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] double balance() const noexcept { return balance_; }
  [[nodiscard]] double spent_today() const noexcept { return spent_today_; }

  /// Accrues hosting income for a day and resets the daily spend.
  void start_day(std::size_t hosted_probes) noexcept {
    balance_ += policy_.daily_earn_per_hosted_probe *
                static_cast<double>(hosted_probes);
    spent_today_ = 0.0;
  }

  /// Attempts to pay for one ping burst; false when the balance or the
  /// daily cap refuses it (the measurement is simply not scheduled).
  [[nodiscard]] bool charge_ping(int packets) noexcept {
    const double cost = policy_.cost_per_ping_packet * packets;
    if (cost > balance_ || spent_today_ + cost > policy_.daily_spend_cap) {
      return false;
    }
    balance_ -= cost;
    spent_today_ += cost;
    return true;
  }

 private:
  CreditPolicy policy_;
  double balance_ = 0.0;
  double spent_today_ = 0.0;
};

/// Total credit cost of running `config` over `probes` vantage points
/// (every probe measures targets_per_tick bursts per tick).
[[nodiscard]] double campaign_cost_credits(const CreditPolicy& policy,
                                           const CampaignConfig& config,
                                           std::size_t probes) noexcept;

/// The largest targets_per_tick a daily budget affords for a fleet and
/// schedule; 0 when even one target per tick exceeds the budget.
[[nodiscard]] int affordable_targets_per_tick(const CreditPolicy& policy,
                                              double daily_budget,
                                              std::size_t probes,
                                              int interval_hours,
                                              int packets) noexcept;

}  // namespace shears::atlas
