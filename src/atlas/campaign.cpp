#include "atlas/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "stats/rng.hpp"

namespace shears::atlas {

Campaign::Campaign(const ProbeFleet& fleet,
                   const topology::CloudRegistry& registry,
                   const net::LatencyModel& model, CampaignConfig config)
    : fleet_(&fleet), registry_(&registry), model_(&model), config_(config) {
  if (config_.duration_days <= 0 || config_.interval_hours <= 0 ||
      config_.packets_per_ping <= 0 || config_.targets_per_tick <= 0) {
    throw std::invalid_argument("CampaignConfig: all knobs must be positive");
  }
  if (config_.probe_uptime <= 0.0 || config_.probe_uptime > 1.0) {
    throw std::invalid_argument("CampaignConfig: probe_uptime must be (0, 1]");
  }
  if (registry.size() > 0xFFFF) {
    throw std::invalid_argument("Campaign: registry too large for index type");
  }
  // Precompute the per-continent target lists once.
  const auto& regions = registry_->regions();
  for (const geo::Continent c : geo::kAllContinents) {
    auto& targets = targets_by_continent_[geo::index_of(c)];
    for (std::size_t i = 0; i < regions.size(); ++i) {
      if (topology::region_continent(*regions[i]) == c) {
        targets.push_back(static_cast<std::uint16_t>(i));
      }
    }
    if (const auto fallback = geo::measurement_fallback(c)) {
      for (std::size_t i = 0; i < regions.size(); ++i) {
        if (topology::region_continent(*regions[i]) == *fallback) {
          targets.push_back(static_cast<std::uint16_t>(i));
        }
      }
    }
  }
}

std::uint32_t Campaign::tick_count() const noexcept {
  return static_cast<std::uint32_t>(config_.duration_days * 24 /
                                    config_.interval_hours);
}

std::vector<std::uint16_t> Campaign::targets_for(const Probe& p) const {
  return targets_by_continent_[geo::index_of(p.country->continent)];
}

std::size_t Campaign::expected_record_count() const {
  std::size_t total = 0;
  const std::size_t ticks = tick_count();
  const auto per_tick = static_cast<std::size_t>(config_.targets_per_tick);
  for (const Probe& p : fleet_->probes()) {
    const auto& targets = targets_by_continent_[geo::index_of(p.country->continent)];
    if (targets.empty()) continue;
    total += ticks * std::min(per_tick, targets.size());
  }
  return total;
}

void Campaign::run_probe_range(std::size_t begin, std::size_t end,
                               std::vector<Measurement>& out) const {
  stats::Xoshiro256 root(config_.seed);
  const std::uint32_t ticks = tick_count();
  const auto probes = fleet_->probes();
  const auto& regions = registry_->regions();

  for (std::size_t pi = begin; pi < end; ++pi) {
    const Probe& probe = probes[pi];
    const auto& targets =
        targets_by_continent_[geo::index_of(probe.country->continent)];
    if (targets.empty()) continue;
    // One independent stream per probe: identical results regardless of
    // sharding, and adding probes does not disturb existing streams.
    stats::Xoshiro256 rng = root.fork(probe.id);
    const std::size_t per_tick = std::min(
        static_cast<std::size_t>(config_.targets_per_tick), targets.size());
    const std::size_t rotation = rng.bounded(targets.size());
    // The probe's last mile carries a temporally-correlated congestion
    // level, advanced once per tick.
    net::CongestionState congestion(model_->config(), rng);

    for (std::uint32_t tick = 0; tick < ticks; ++tick) {
      const double temporal_load = congestion.step(model_->config(), rng);
      if (config_.probe_uptime < 1.0 && !rng.bernoulli(config_.probe_uptime)) {
        continue;  // probe offline this tick
      }
      for (std::size_t j = 0; j < per_tick; ++j) {
        const std::size_t slot =
            (rotation + static_cast<std::size_t>(tick) * per_tick + j) %
            targets.size();
        const std::uint16_t region_index = targets[slot];
        // Scheduled time of this tick; drives the diurnal load cycle.
        const double utc_hour = static_cast<double>(
            (static_cast<std::uint64_t>(tick) * config_.interval_hours) % 24);
        const double load =
            model_->diurnal_load(probe.endpoint, utc_hour) * temporal_load;
        const net::PingResult ping = model_->ping_loaded(
            probe.endpoint, *regions[region_index], config_.packets_per_ping,
            load, rng);
        Measurement m;
        m.probe_id = probe.id;
        m.region_index = region_index;
        m.tick = tick;
        m.sent = static_cast<std::uint8_t>(ping.sent);
        m.received = static_cast<std::uint8_t>(ping.received);
        if (ping.received > 0) {
          m.min_ms = static_cast<float>(ping.min_ms);
          m.avg_ms = static_cast<float>(ping.avg_ms);
          m.max_ms = static_cast<float>(ping.max_ms);
        }
        out.push_back(m);
      }
    }
  }
}

MeasurementDataset Campaign::run() const {
  const std::size_t n = fleet_->size();
  unsigned threads = config_.threads != 0 ? config_.threads
                                          : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n > 0 ? n : 1));

  std::vector<std::vector<Measurement>> shards(threads);
  if (threads == 1) {
    shards[0].reserve(expected_record_count());
    run_probe_range(0, n, shards[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (n + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      workers.emplace_back([this, begin, end, &shard = shards[t]] {
        run_probe_range(begin, end, shard);
      });
    }
    for (std::thread& w : workers) w.join();
  }

  std::vector<Measurement> records;
  records.reserve(expected_record_count());
  for (auto& shard : shards) {
    records.insert(records.end(), shard.begin(), shard.end());
  }
  return MeasurementDataset(fleet_, registry_, std::move(records));
}

}  // namespace shears::atlas
