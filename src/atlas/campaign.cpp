#include "atlas/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "stats/rng.hpp"

namespace shears::atlas {

namespace {

/// Salt separating the retry RNG stream from a probe's scheduled stream:
/// enabling retries must not perturb the scheduled draws.
constexpr std::uint64_t kRetryStreamSalt = 0x9d5c0f1b2e6a8374ULL;

net::PingResult lost_burst(int packets) noexcept {
  net::PingResult result;
  result.sent = packets;
  return result;
}

}  // namespace

void CampaignConfig::validate() const {
  if (duration_days <= 0) {
    throw std::invalid_argument("CampaignConfig: duration_days must be > 0");
  }
  if (interval_hours <= 0) {
    throw std::invalid_argument("CampaignConfig: interval_hours must be > 0");
  }
  if (packets_per_ping <= 0) {
    throw std::invalid_argument("CampaignConfig: packets_per_ping must be > 0");
  }
  if (packets_per_ping > 255) {
    throw std::invalid_argument(
        "CampaignConfig: packets_per_ping exceeds the record counter (255)");
  }
  if (targets_per_tick <= 0) {
    throw std::invalid_argument("CampaignConfig: targets_per_tick must be > 0");
  }
  if (probe_uptime <= 0.0 || probe_uptime > 1.0) {
    throw std::invalid_argument("CampaignConfig: probe_uptime must be (0, 1]");
  }
  retry.validate();
  quarantine.validate();
}

void CampaignTelemetry::merge(const CampaignTelemetry& other) noexcept {
  bursts += other.bursts;
  bursts_retried += other.bursts_retried;
  retries += other.retries;
  bursts_recovered += other.bursts_recovered;
  bursts_faulted += other.bursts_faulted;
  hang_ticks += other.hang_ticks;
  quarantine_entries += other.quarantine_entries;
  quarantined_ticks += other.quarantined_ticks;
}

Campaign::Campaign(const ProbeFleet& fleet,
                   const topology::CloudRegistry& registry,
                   const net::LatencyModel& model, CampaignConfig config)
    : Campaign(fleet, registry, model, config, nullptr) {}

Campaign::Campaign(const ProbeFleet& fleet,
                   const topology::CloudRegistry& registry,
                   const net::LatencyModel& model, CampaignConfig config,
                   const faults::FaultSchedule* schedule)
    : fleet_(&fleet), registry_(&registry), model_(&model), config_(config),
      schedule_(schedule) {
  config_.validate();
  if (registry.size() > 0xFFFF) {
    throw std::invalid_argument("Campaign: registry too large for index type");
  }
  // Precompute the per-continent target lists once.
  const auto& regions = registry_->regions();
  for (const geo::Continent c : geo::kAllContinents) {
    auto& targets = targets_by_continent_[geo::index_of(c)];
    for (std::size_t i = 0; i < regions.size(); ++i) {
      if (topology::region_continent(*regions[i]) == c) {
        targets.push_back(static_cast<std::uint16_t>(i));
      }
    }
    if (const auto fallback = geo::measurement_fallback(c)) {
      for (std::size_t i = 0; i < regions.size(); ++i) {
        if (topology::region_continent(*regions[i]) == *fallback) {
          targets.push_back(static_cast<std::uint16_t>(i));
        }
      }
    }
  }
}

std::uint32_t Campaign::tick_count() const noexcept {
  return static_cast<std::uint32_t>(config_.duration_days * 24 /
                                    config_.interval_hours);
}

std::vector<std::uint16_t> Campaign::targets_for(const Probe& p) const {
  return targets_by_continent_[geo::index_of(p.country->continent)];
}

std::size_t Campaign::expected_record_count() const {
  std::size_t total = 0;
  const std::size_t ticks = tick_count();
  const auto per_tick = static_cast<std::size_t>(config_.targets_per_tick);
  for (const Probe& p : fleet_->probes()) {
    const auto& targets = targets_by_continent_[geo::index_of(p.country->continent)];
    if (targets.empty()) continue;
    total += ticks * std::min(per_tick, targets.size());
  }
  return total;
}

void Campaign::run_probe_range(std::size_t begin, std::size_t end,
                               std::vector<Measurement>& out,
                               CampaignTelemetry& telemetry) const {
  stats::Xoshiro256 root(config_.seed);
  const std::uint32_t ticks = tick_count();
  const auto probes = fleet_->probes();
  const auto& regions = registry_->regions();
  const bool has_faults = schedule_ != nullptr && !schedule_->empty();
  const bool has_retry = config_.retry.max_retries > 0;
  const bool has_quarantine = config_.quarantine.enabled;
  const std::uint8_t skew_bit = faults::fault_bit(faults::FaultKind::kClockSkew);

  for (std::size_t pi = begin; pi < end; ++pi) {
    const Probe& probe = probes[pi];
    const auto& targets =
        targets_by_continent_[geo::index_of(probe.country->continent)];
    if (targets.empty()) continue;
    // One independent stream per probe: identical results regardless of
    // sharding, and adding probes does not disturb existing streams.
    stats::Xoshiro256 rng = root.fork(probe.id);
    // Retries draw from a separate per-probe stream so that enabling
    // them leaves the scheduled draws untouched.
    stats::Xoshiro256 retry_rng = root.fork(probe.id ^ kRetryStreamSalt);
    const faults::ProbeContext fault_ctx{
        probe.id, probe.isp != nullptr ? probe.isp->asn : 0u,
        faults::FaultSchedule::country_key(probe.country->iso2),
        net::is_wireless(probe.endpoint.access)};
    faults::QuarantineTracker quarantine(config_.quarantine);
    const std::size_t per_tick = std::min(
        static_cast<std::size_t>(config_.targets_per_tick), targets.size());
    const std::size_t rotation = rng.bounded(targets.size());
    // The probe's last mile carries a temporally-correlated congestion
    // level, advanced once per tick.
    net::CongestionState congestion(model_->config(), rng);

    for (std::uint32_t tick = 0; tick < ticks; ++tick) {
      const double temporal_load = congestion.step(model_->config(), rng);
      if (config_.probe_uptime < 1.0 && !rng.bernoulli(config_.probe_uptime)) {
        continue;  // probe offline this tick
      }
      faults::ProbeExposure probe_exposure;
      if (has_faults) {
        probe_exposure = schedule_->probe_exposure(fault_ctx, tick);
        if (probe_exposure.probe_down) {
          ++telemetry.hang_ticks;  // firmware wedge: schedules nothing
          continue;
        }
      }
      if (has_quarantine && quarantine.quarantined(tick)) {
        ++telemetry.quarantined_ticks;
        continue;
      }
      // Samples one burst attempt at `attempt_tick` (the scheduled tick,
      // or a later one for backed-off retries) against `region`.
      const auto sample_attempt = [&](std::uint32_t attempt_tick,
                                      std::uint16_t region_index,
                                      stats::Xoshiro256& stream,
                                      std::uint8_t& mask) -> net::PingResult {
        faults::BurstExposure exposure;
        if (has_faults) {
          const faults::ProbeExposure pe =
              attempt_tick == tick
                  ? probe_exposure
                  : schedule_->probe_exposure(fault_ctx, attempt_tick);
          if (pe.probe_down) {
            // The probe is hung at the retry tick: attempt produces
            // nothing; count it as fully lost.
            mask = pe.mask;
            return lost_burst(config_.packets_per_ping);
          }
          exposure = schedule_->burst_exposure(fault_ctx, pe, region_index,
                                               attempt_tick);
          mask = exposure.mask;
          if (exposure.lost) return lost_burst(config_.packets_per_ping);
        } else {
          mask = 0;
        }
        const double utc_hour = static_cast<double>(
            (static_cast<std::uint64_t>(attempt_tick) *
             config_.interval_hours) % 24);
        const double load = model_->diurnal_load(probe.endpoint, utc_hour) *
                            temporal_load * exposure.load_multiplier;
        if (!has_faults) {
          return model_->ping_loaded(probe.endpoint, *regions[region_index],
                                     config_.packets_per_ping, load, stream);
        }
        const net::Perturbation perturbation{exposure.latency_multiplier,
                                             exposure.skew_ms,
                                             exposure.extra_loss};
        return model_->ping_perturbed(probe.endpoint, *regions[region_index],
                                      config_.packets_per_ping, load,
                                      perturbation, stream);
      };

      for (std::size_t j = 0; j < per_tick; ++j) {
        const std::size_t slot =
            (rotation + static_cast<std::size_t>(tick) * per_tick + j) %
            targets.size();
        const std::uint16_t region_index = targets[slot];
        std::uint8_t mask = 0;
        net::PingResult ping = sample_attempt(tick, region_index, rng, mask);
        std::uint8_t retries = 0;
        if (has_retry && ping.all_lost()) {
          std::uint32_t attempt_tick = tick;
          for (int attempt = 1; attempt <= config_.retry.max_retries;
               ++attempt) {
            attempt_tick +=
                faults::retry_backoff_ticks(attempt, config_.retry);
            if (attempt_tick >= ticks) break;  // campaign over: give up
            ++retries;
            ping = sample_attempt(attempt_tick, region_index, retry_rng, mask);
            if (!ping.all_lost()) break;
          }
          if (retries > 0) {
            ++telemetry.bursts_retried;
            telemetry.retries += retries;
            if (!ping.all_lost()) ++telemetry.bursts_recovered;
          }
        }
        Measurement m;
        m.probe_id = probe.id;
        m.region_index = region_index;
        m.tick = tick;
        m.sent = static_cast<std::uint8_t>(ping.sent);
        m.received = static_cast<std::uint8_t>(ping.received);
        if (ping.received > 0) {
          m.min_ms = static_cast<float>(ping.min_ms);
          m.avg_ms = static_cast<float>(ping.avg_ms);
          m.max_ms = static_cast<float>(ping.max_ms);
        }
        m.retries = retries;
        m.faults = mask;
        out.push_back(m);
        ++telemetry.bursts;
        if (mask != 0) ++telemetry.bursts_faulted;
        if (has_quarantine) {
          quarantine.record_burst(tick, ping.all_lost(),
                                  (mask & skew_bit) != 0);
        }
      }
    }
    telemetry.quarantine_entries += quarantine.entries();
  }
}

MeasurementDataset Campaign::run() const {
  CampaignTelemetry telemetry;
  return run(telemetry);
}

MeasurementDataset Campaign::run(CampaignTelemetry& telemetry) const {
  const std::size_t n = fleet_->size();
  unsigned threads = config_.threads != 0 ? config_.threads
                                          : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n > 0 ? n : 1));

  std::vector<std::vector<Measurement>> shards(threads);
  std::vector<CampaignTelemetry> shard_telemetry(threads);
  if (threads == 1) {
    shards[0].reserve(expected_record_count());
    run_probe_range(0, n, shards[0], shard_telemetry[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (n + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      workers.emplace_back([this, begin, end, &shard = shards[t],
                            &tel = shard_telemetry[t]] {
        run_probe_range(begin, end, shard, tel);
      });
    }
    for (std::thread& w : workers) w.join();
  }

  telemetry = CampaignTelemetry{};
  std::vector<Measurement> records;
  records.reserve(expected_record_count());
  for (unsigned t = 0; t < shards.size(); ++t) {
    records.insert(records.end(), shards[t].begin(), shards[t].end());
    telemetry.merge(shard_telemetry[t]);
  }
  return MeasurementDataset(fleet_, registry_, std::move(records));
}

}  // namespace shears::atlas
