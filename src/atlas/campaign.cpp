#include "atlas/campaign.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "net/burst_lanes.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "stats/rng.hpp"

namespace shears::atlas {

namespace {

/// Salt separating the retry RNG stream from a probe's scheduled stream:
/// enabling retries must not perturb the scheduled draws.
constexpr std::uint64_t kRetryStreamSalt = 0x9d5c0f1b2e6a8374ULL;

net::PingResult lost_burst(int packets) noexcept {
  net::PingResult result;
  result.sent = packets;
  return result;
}

}  // namespace

void CampaignConfig::validate() const {
  if (duration_days <= 0) {
    throw std::invalid_argument("CampaignConfig: duration_days must be > 0");
  }
  if (interval_hours <= 0) {
    throw std::invalid_argument("CampaignConfig: interval_hours must be > 0");
  }
  if (interval_hours > 24 * duration_days) {
    throw std::invalid_argument(
        "CampaignConfig: interval_hours exceeds the campaign duration "
        "(schedule would have zero ticks)");
  }
  if (packets_per_ping <= 0) {
    throw std::invalid_argument("CampaignConfig: packets_per_ping must be > 0");
  }
  if (packets_per_ping > 255) {
    throw std::invalid_argument(
        "CampaignConfig: packets_per_ping exceeds the record counter (255)");
  }
  if (targets_per_tick <= 0) {
    throw std::invalid_argument("CampaignConfig: targets_per_tick must be > 0");
  }
  if (probe_uptime <= 0.0 || probe_uptime > 1.0) {
    throw std::invalid_argument("CampaignConfig: probe_uptime must be (0, 1]");
  }
  retry.validate();
  quarantine.validate();
}

void CampaignTelemetry::merge(const CampaignTelemetry& other) noexcept {
  bursts += other.bursts;
  bursts_retried += other.bursts_retried;
  retries += other.retries;
  bursts_recovered += other.bursts_recovered;
  bursts_faulted += other.bursts_faulted;
  bursts_cached += other.bursts_cached;
  bursts_batched += other.bursts_batched;
  hang_ticks += other.hang_ticks;
  quarantine_entries += other.quarantine_entries;
  quarantined_ticks += other.quarantined_ticks;
  fault_kinds.merge(other.fault_kinds);
}

Campaign::Campaign(const ProbeFleet& fleet,
                   const topology::CloudRegistry& registry,
                   const net::LatencyModel& model, CampaignConfig config)
    : Campaign(fleet, registry, model, config, nullptr) {}

Campaign::Campaign(const ProbeFleet& fleet,
                   const topology::CloudRegistry& registry,
                   const net::LatencyModel& model, CampaignConfig config,
                   const faults::FaultSchedule* schedule)
    : fleet_(&fleet), registry_(&registry), model_(&model), config_(config),
      schedule_(schedule) {
  config_.validate();
  if (registry.size() > 0xFFFF) {
    throw std::invalid_argument("Campaign: registry too large for index type");
  }
  // Precompute the per-continent target lists once.
  const auto& regions = registry_->regions();
  for (const geo::Continent c : geo::kAllContinents) {
    auto& targets = targets_by_continent_[geo::index_of(c)];
    for (std::size_t i = 0; i < regions.size(); ++i) {
      if (topology::region_continent(*regions[i]) == c) {
        targets.push_back(static_cast<std::uint16_t>(i));
      }
    }
    if (const auto fallback = geo::measurement_fallback(c)) {
      for (std::size_t i = 0; i < regions.size(); ++i) {
        if (topology::region_continent(*regions[i]) == *fallback) {
          targets.push_back(static_cast<std::uint16_t>(i));
        }
      }
    }
  }
  if (config_.sampling_cache) {
    cache_ = PathCache(fleet, registry, model, config_.threads);
  }
}

std::uint32_t Campaign::tick_count() const noexcept {
  return static_cast<std::uint32_t>(config_.duration_days * 24 /
                                    config_.interval_hours);
}

std::span<const std::uint16_t> Campaign::targets_for(
    const Probe& p) const noexcept {
  return targets_by_continent_[geo::index_of(p.country->continent)];
}

std::size_t Campaign::expected_record_count() const {
  std::size_t total = 0;
  const std::size_t ticks = tick_count();
  const auto per_tick = static_cast<std::size_t>(config_.targets_per_tick);
  for (const Probe& p : fleet_->probes()) {
    const auto& targets = targets_by_continent_[geo::index_of(p.country->continent)];
    if (targets.empty()) continue;
    total += ticks * std::min(per_tick, targets.size());
  }
  return total;
}

bool Campaign::batched_eligible() const noexcept {
  return config_.batched && !cache_.empty() &&
         config_.retry.max_retries == 0 && !config_.quarantine.enabled &&
         config_.packets_per_ping <= net::kMaxBatchedPackets;
}

void Campaign::run_probe_range(std::size_t begin, std::size_t end,
                               std::vector<Measurement>& out,
                               CampaignTelemetry& telemetry) const {
  if (batched_eligible()) {
    run_probe_range_batched(begin, end, out, telemetry);
    return;
  }
  stats::Xoshiro256 root(config_.seed);
  const std::uint32_t ticks = tick_count();
  const auto probes = fleet_->probes();
  const auto& regions = registry_->regions();
  const bool has_faults = schedule_ != nullptr && !schedule_->empty();
  const bool has_retry = config_.retry.max_retries > 0;
  const bool has_quarantine = config_.quarantine.enabled;
  const std::uint8_t skew_bit = faults::fault_bit(faults::FaultKind::kClockSkew);
  const bool use_cache = !cache_.empty();
  // The UTC hour repeats with the tick phase: (tick * interval) mod 24
  // cycles with period 24 / gcd(interval, 24) <= 24, so cached runs look
  // the diurnal load up from a small per-probe table instead of
  // re-evaluating the raised cosine per burst.
  const auto diurnal_period = static_cast<std::uint32_t>(
      24 / std::gcd(config_.interval_hours, 24));

  for (std::size_t pi = begin; pi < end; ++pi) {
    const Probe& probe = probes[pi];
    const auto& targets =
        targets_by_continent_[geo::index_of(probe.country->continent)];
    if (targets.empty()) continue;
    // One independent stream per probe: identical results regardless of
    // sharding, and adding probes does not disturb existing streams.
    stats::Xoshiro256 rng = root.fork(probe.id);
    // Retries draw from a separate per-probe stream so that enabling
    // them leaves the scheduled draws untouched.
    stats::Xoshiro256 retry_rng = root.fork(probe.id ^ kRetryStreamSalt);
    const faults::ProbeContext fault_ctx{
        probe.id, probe.isp != nullptr ? probe.isp->asn : 0u,
        faults::FaultSchedule::country_key(probe.country->iso2),
        net::is_wireless(probe.endpoint.access)};
    faults::QuarantineTracker quarantine(config_.quarantine);
    const std::size_t per_tick = std::min(
        static_cast<std::size_t>(config_.targets_per_tick), targets.size());
    const std::size_t rotation = rng.bounded(targets.size());
    // The probe's last mile carries a temporally-correlated congestion
    // level, advanced once per tick.
    net::CongestionState congestion(model_->config(), rng);
    const net::CachedProfile* cached_profile =
        use_cache ? &cache_.profile(probe.id) : nullptr;
    std::array<double, 24> diurnal_by_phase{};
    if (use_cache) {
      for (std::uint32_t k = 0; k < diurnal_period; ++k) {
        const double utc_hour = static_cast<double>(
            (static_cast<std::uint64_t>(k) * config_.interval_hours) % 24);
        diurnal_by_phase[k] = model_->diurnal_load(probe.endpoint, utc_hour);
      }
    }

    // Rolling rotation cursor: (rotation + tick * per_tick) % targets.size()
    // maintained incrementally — same slots as the modulo form without a
    // 64-bit division per burst. per_tick <= targets.size(), so a single
    // conditional subtract wraps it. Advanced in the increment clause so
    // offline / hung / quarantined ticks still rotate past their slots.
    std::size_t slot_base = rotation;
    const auto advance_rotation = [&slot_base, per_tick, &targets] {
      slot_base += per_tick;
      if (slot_base >= targets.size()) slot_base -= targets.size();
    };

    if (use_cache && !has_faults && !has_retry && !has_quarantine &&
        config_.probe_uptime >= 1.0) {
      // Fault-free cached fast path — the perf-critical configuration (the
      // paper's campaigns inject no faults). Skipping the exposure /
      // perturbation / retry plumbing is exact: a neutral Perturbation and
      // a unit load multiplier are arithmetic identities (x * 1.0 == x,
      // p + 0.0 - p * 0.0 == p), so this loop is byte-identical to the
      // generic one below — test_sampling_cache holds both to the same
      // golden checksums.
      const net::CachedPath* paths = cache_.paths(probe.id);
      const net::LatencyModel& model = *model_;
      const net::LatencyModelConfig& model_config = model.config();
      const std::uint16_t* target_ptr = targets.data();
      const std::size_t target_count = targets.size();
      const int packets = config_.packets_per_ping;
      std::uint32_t phase = 0;
      for (std::uint32_t tick = 0; tick < ticks; ++tick, advance_rotation()) {
        const double temporal_load = congestion.step(model_config, rng);
        const double tick_load = diurnal_by_phase[phase] * temporal_load;
        if (++phase == diurnal_period) phase = 0;
        for (std::size_t j = 0; j < per_tick; ++j) {
          std::size_t slot = slot_base + j;
          if (slot >= target_count) slot -= target_count;
          const std::uint16_t region_index = target_ptr[slot];
          const net::PingResult ping =
              model.ping_cached(paths[region_index], *cached_profile, packets,
                                tick_load, rng);
          Measurement m;
          m.probe_id = probe.id;
          m.region_index = region_index;
          m.tick = tick;
          m.sent = static_cast<std::uint8_t>(ping.sent);
          m.received = static_cast<std::uint8_t>(ping.received);
          if (ping.received > 0) {
            m.min_ms = static_cast<float>(ping.min_ms);
            m.avg_ms = static_cast<float>(ping.avg_ms);
            m.max_ms = static_cast<float>(ping.max_ms);
          }
          out.push_back(m);
        }
      }
      const std::size_t produced = static_cast<std::size_t>(ticks) * per_tick;
      telemetry.bursts += produced;  // no skipped ticks here
      telemetry.bursts_cached += produced;
      continue;
    }

    for (std::uint32_t tick = 0; tick < ticks; ++tick, advance_rotation()) {
      const double temporal_load = congestion.step(model_->config(), rng);
      if (config_.probe_uptime < 1.0 && !rng.bernoulli(config_.probe_uptime)) {
        continue;  // probe offline this tick
      }
      faults::ProbeExposure probe_exposure;
      if (has_faults) {
        probe_exposure = schedule_->probe_exposure(fault_ctx, tick);
        if (probe_exposure.probe_down) {
          ++telemetry.hang_ticks;  // firmware wedge: schedules nothing
          continue;
        }
      }
      if (has_quarantine && quarantine.quarantined(tick)) {
        ++telemetry.quarantined_ticks;
        continue;
      }
      // Samples one burst attempt at `attempt_tick` (the scheduled tick,
      // or a later one for backed-off retries) against `region`.
      const auto sample_attempt = [&](std::uint32_t attempt_tick,
                                      std::uint16_t region_index,
                                      stats::Xoshiro256& stream,
                                      std::uint8_t& mask) -> net::PingResult {
        faults::BurstExposure exposure;
        if (has_faults) {
          const faults::ProbeExposure pe =
              attempt_tick == tick
                  ? probe_exposure
                  : schedule_->probe_exposure(fault_ctx, attempt_tick);
          if (pe.probe_down) {
            // The probe is hung at the retry tick: attempt produces
            // nothing; count it as fully lost.
            mask = pe.mask;
            return lost_burst(config_.packets_per_ping);
          }
          exposure = schedule_->burst_exposure(fault_ctx, pe, region_index,
                                               attempt_tick);
          mask = exposure.mask;
          if (exposure.lost) return lost_burst(config_.packets_per_ping);
        } else {
          mask = 0;
        }
        const net::Perturbation perturbation =
            has_faults ? net::Perturbation{exposure.latency_multiplier,
                                           exposure.skew_ms,
                                           exposure.extra_loss}
                       : net::Perturbation{};
        if (use_cache) {
          // Same diurnal value as the recomputed one: the phase table
          // holds model_->diurnal_load for every reachable utc_hour.
          ++telemetry.bursts_cached;
          const double load = diurnal_by_phase[attempt_tick % diurnal_period] *
                              temporal_load * exposure.load_multiplier;
          return model_->ping_cached(cache_.path(probe.id, region_index),
                                     *cached_profile, config_.packets_per_ping,
                                     load, perturbation, stream);
        }
        const double utc_hour = static_cast<double>(
            (static_cast<std::uint64_t>(attempt_tick) *
             config_.interval_hours) % 24);
        const double load = model_->diurnal_load(probe.endpoint, utc_hour) *
                            temporal_load * exposure.load_multiplier;
        if (!has_faults) {
          return model_->ping_loaded(probe.endpoint, *regions[region_index],
                                     config_.packets_per_ping, load, stream);
        }
        return model_->ping_perturbed(probe.endpoint, *regions[region_index],
                                      config_.packets_per_ping, load,
                                      perturbation, stream);
      };

      for (std::size_t j = 0; j < per_tick; ++j) {
        std::size_t slot;
        if (use_cache) {
          slot = slot_base + j;
          if (slot >= targets.size()) slot -= targets.size();
        } else {
          // The uncached engine is the benchmark baseline: it keeps the
          // original modulo addressing (one 64-bit division per burst)
          // that the rolling cursor above replaces. Equal by construction
          // — slot_base == (rotation + tick * per_tick) mod size — so this
          // only preserves the pre-change cost, not different slots.
          slot = (rotation + static_cast<std::size_t>(tick) * per_tick + j) %
                 targets.size();
        }
        const std::uint16_t region_index = targets[slot];
        std::uint8_t mask = 0;
        net::PingResult ping = sample_attempt(tick, region_index, rng, mask);
        std::uint8_t retries = 0;
        if (has_retry && ping.all_lost()) {
          std::uint32_t attempt_tick = tick;
          for (int attempt = 1; attempt <= config_.retry.max_retries;
               ++attempt) {
            attempt_tick +=
                faults::retry_backoff_ticks(attempt, config_.retry);
            if (attempt_tick >= ticks) break;  // campaign over: give up
            ++retries;
            ping = sample_attempt(attempt_tick, region_index, retry_rng, mask);
            if (!ping.all_lost()) break;
          }
          if (retries > 0) {
            ++telemetry.bursts_retried;
            telemetry.retries += retries;
            if (!ping.all_lost()) ++telemetry.bursts_recovered;
          }
        }
        Measurement m;
        m.probe_id = probe.id;
        m.region_index = region_index;
        m.tick = tick;
        m.sent = static_cast<std::uint8_t>(ping.sent);
        m.received = static_cast<std::uint8_t>(ping.received);
        if (ping.received > 0) {
          m.min_ms = static_cast<float>(ping.min_ms);
          m.avg_ms = static_cast<float>(ping.avg_ms);
          m.max_ms = static_cast<float>(ping.max_ms);
        }
        m.retries = retries;
        m.faults = mask;
        out.push_back(m);
        ++telemetry.bursts;
        if (mask != 0) {
          ++telemetry.bursts_faulted;
          telemetry.fault_kinds.record(mask);
        }
        if (has_quarantine) {
          quarantine.record_burst(tick, ping.all_lost(),
                                  (mask & skew_bit) != 0);
        }
      }
    }
    telemetry.quarantine_entries += quarantine.entries();
  }
}

MeasurementDataset Campaign::run() const {
  CampaignTelemetry telemetry;
  return run(telemetry);
}

MeasurementDataset Campaign::run(CampaignTelemetry& telemetry) const {
  const auto run_start = std::chrono::steady_clock::now();
  // Resolve the shard histogram once, outside the workers; a null pointer
  // turns every Span into a no-op, so the unobserved campaign pays one
  // branch per shard and nothing per burst.
  obs::LatencyHistogram* shard_hist =
      metrics_ != nullptr ? &metrics_->histogram("campaign.shard_wall_ms")
                          : nullptr;
  const std::size_t n = fleet_->size();
  unsigned threads = config_.threads != 0 ? config_.threads
                                          : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n > 0 ? n : 1));

  std::vector<std::vector<Measurement>> shards(threads);
  std::vector<CampaignTelemetry> shard_telemetry(threads);
  if (threads == 1) {
    shards[0].reserve(expected_record_count());
    obs::Span span(shard_hist);
    run_probe_range(0, n, shards[0], shard_telemetry[0]);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (n + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      workers.emplace_back([this, begin, end, shard_hist, &shard = shards[t],
                            &tel = shard_telemetry[t]] {
        obs::Span span(shard_hist);
        run_probe_range(begin, end, shard, tel);
      });
    }
    for (std::thread& w : workers) w.join();
  }

  telemetry = CampaignTelemetry{};
  if (!cache_.empty()) {
    // Single-shard runs hand their buffer over wholesale; a nine-month
    // fleet dataset is ~110 MB, not worth copying.
    std::vector<Measurement> records = std::move(shards[0]);
    telemetry.merge(shard_telemetry[0]);
    if (shards.size() > 1) {
      records.reserve(expected_record_count());
      for (unsigned t = 1; t < shards.size(); ++t) {
        records.insert(records.end(), shards[t].begin(), shards[t].end());
        telemetry.merge(shard_telemetry[t]);
      }
    }
    publish_metrics(telemetry, run_start);
    if (sink_ != nullptr) sink_->publish(records);
    return MeasurementDataset(fleet_, registry_, std::move(records));
  }
  // Uncached runs are the benchmark baseline and keep the pre-change
  // assembly (reserve + copy every shard) so the recorded speedup compares
  // against what the engine actually cost before this optimisation.
  std::vector<Measurement> records;
  records.reserve(expected_record_count());
  for (unsigned t = 0; t < shards.size(); ++t) {
    records.insert(records.end(), shards[t].begin(), shards[t].end());
    telemetry.merge(shard_telemetry[t]);
  }
  publish_metrics(telemetry, run_start);
  if (sink_ != nullptr) sink_->publish(records);
  return MeasurementDataset(fleet_, registry_, std::move(records));
}

void Campaign::publish_metrics(
    const CampaignTelemetry& telemetry,
    std::chrono::steady_clock::time_point run_start) const {
  if (metrics_ == nullptr) return;
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - run_start)
                             .count();
  obs::MetricsRegistry& m = *metrics_;
  m.counter("campaign.bursts").add(telemetry.bursts);
  m.counter("campaign.bursts_retried").add(telemetry.bursts_retried);
  m.counter("campaign.retries").add(telemetry.retries);
  m.counter("campaign.bursts_recovered").add(telemetry.bursts_recovered);
  m.counter("campaign.bursts_faulted").add(telemetry.bursts_faulted);
  m.counter("campaign.path_cache_hits").add(telemetry.bursts_cached);
  if (telemetry.bursts_batched != 0) {
    // Conditional like the fault rows below: scalar-engine snapshots
    // stay free of batched-kernel counters.
    m.counter("campaign.bursts_batched").add(telemetry.bursts_batched);
  }
  m.counter("campaign.hang_ticks").add(telemetry.hang_ticks);
  m.counter("campaign.quarantine_entries").add(telemetry.quarantine_entries);
  m.counter("campaign.quarantined_ticks").add(telemetry.quarantined_ticks);
  for (std::size_t k = 0; k < faults::kFaultKindCount; ++k) {
    const auto kind = static_cast<faults::FaultKind>(k);
    const std::uint64_t hits = telemetry.fault_kinds.of(kind);
    if (hits == 0) continue;  // keep clean-run snapshots free of fault rows
    std::string name = "faults.activations.";
    name += faults::to_string(kind);
    m.counter(name).add(hits);
  }
  m.gauge("campaign.wall_ms").set(wall_ms);
  m.gauge("campaign.wall_ms_per_day").set(
      wall_ms / static_cast<double>(config_.duration_days));
}

}  // namespace shears::atlas
