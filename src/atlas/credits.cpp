#include "atlas/credits.hpp"

namespace shears::atlas {

double campaign_cost_credits(const CreditPolicy& policy,
                             const CampaignConfig& config,
                             std::size_t probes) noexcept {
  const double ticks =
      static_cast<double>(config.duration_days) * 24.0 / config.interval_hours;
  const double bursts = ticks * config.targets_per_tick *
                        static_cast<double>(probes) * config.probe_uptime;
  return bursts * policy.cost_per_ping_packet * config.packets_per_ping;
}

int affordable_targets_per_tick(const CreditPolicy& policy,
                                double daily_budget, std::size_t probes,
                                int interval_hours, int packets) noexcept {
  if (probes == 0 || interval_hours <= 0 || packets <= 0) return 0;
  const double ticks_per_day = 24.0 / interval_hours;
  const double cost_per_target_per_day = ticks_per_day *
                                         static_cast<double>(probes) *
                                         policy.cost_per_ping_packet * packets;
  if (cost_per_target_per_day <= 0.0) return 0;
  const double cap = std::min(daily_budget, policy.daily_spend_cap);
  return static_cast<int>(cap / cost_per_target_per_day);
}

}  // namespace shears::atlas
