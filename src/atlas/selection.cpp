#include "atlas/selection.hpp"

#include <algorithm>

namespace shears::atlas {

namespace {

bool matches(const Probe& probe, const ProbeFilter& filter) {
  if (filter.exclude_privileged && probe.privileged()) return false;
  if (filter.continent && probe.country->continent != *filter.continent) {
    return false;
  }
  if (filter.country_iso2 && probe.country->iso2 != *filter.country_iso2) {
    return false;
  }
  for (const std::string_view tag : filter.require_tags) {
    if (std::find(probe.tags.begin(), probe.tags.end(), tag) ==
        probe.tags.end()) {
      return false;
    }
  }
  for (const std::string_view tag : filter.exclude_tags) {
    if (std::find(probe.tags.begin(), probe.tags.end(), tag) !=
        probe.tags.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<const Probe*> select_probes(const ProbeFleet& fleet,
                                        const ProbeFilter& filter) {
  std::vector<const Probe*> out;
  for (const Probe& probe : fleet.probes()) {
    if (!matches(probe, filter)) continue;
    out.push_back(&probe);
    if (filter.limit != 0 && out.size() >= filter.limit) break;
  }
  return out;
}

std::size_t count_probes(const ProbeFleet& fleet, const ProbeFilter& filter) {
  std::size_t count = 0;
  for (const Probe& probe : fleet.probes()) {
    if (matches(probe, filter)) {
      ++count;
      if (filter.limit != 0 && count >= filter.limit) break;
    }
  }
  return count;
}

}  // namespace shears::atlas
