// The measurement campaign engine (§4.1 "Experiment").
//
// Mirrors the paper's design: every probe pings cloud datacenters on a
// fixed interval (every three hours) for months. Targets are the regions
// on the probe's own continent; probes in Africa and South America — whose
// continents are under-served — additionally target Europe and North
// America respectively. Quota limits (RIPE Atlas credits) are modelled by
// rotating each tick through the probe's target list rather than pinging
// every region every tick; over a long campaign every probe still covers
// its whole target set many times.
#pragma once

#include <cstdint>
#include <vector>

#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::atlas {

struct CampaignConfig {
  /// Campaign length; the paper draws on nine months (~270 days).
  int duration_days = 270;
  /// Scheduling interval between ping bursts per probe.
  int interval_hours = 3;
  /// Packets per ping burst (Atlas default 3).
  int packets_per_ping = 3;
  /// Targets each probe measures per tick (credit-quota rotation).
  int targets_per_tick = 1;
  /// Probability a probe is online at a given tick. Real Atlas probes
  /// disconnect, reboot and move; 1.0 disables churn. Offline ticks
  /// produce no records (they are absent, not lost bursts).
  double probe_uptime = 1.0;
  /// Campaign RNG seed; the dataset is a pure function of
  /// (fleet, registry, model, config).
  std::uint64_t seed = 7;
  /// Worker threads; 0 = hardware concurrency. Results are identical
  /// regardless of thread count.
  unsigned threads = 0;
};

class Campaign {
 public:
  /// `fleet`, `registry`, and `model` must outlive the campaign and any
  /// dataset it produces.
  Campaign(const ProbeFleet& fleet, const topology::CloudRegistry& registry,
           const net::LatencyModel& model, CampaignConfig config);

  /// Total scheduler ticks ( duration / interval ).
  [[nodiscard]] std::uint32_t tick_count() const noexcept;

  /// Region indices (into registry.regions()) a probe targets: its own
  /// continent plus the §4.1 fallback continent for AF/SA probes. May be
  /// empty when a footprint snapshot has no reachable region.
  [[nodiscard]] std::vector<std::uint16_t> targets_for(const Probe& p) const;

  /// Runs the whole campaign deterministically and returns the dataset.
  [[nodiscard]] MeasurementDataset run() const;

  /// Number of records run() produces at full uptime; an upper bound when
  /// probe_uptime < 1.
  [[nodiscard]] std::size_t expected_record_count() const;

 private:
  void run_probe_range(std::size_t begin, std::size_t end,
                       std::vector<Measurement>& out) const;

  const ProbeFleet* fleet_;
  const topology::CloudRegistry* registry_;
  const net::LatencyModel* model_;
  CampaignConfig config_;
  /// Per-continent target lists, fallback included, precomputed once.
  std::vector<std::uint16_t> targets_by_continent_[geo::kContinentCount];
};

}  // namespace shears::atlas
