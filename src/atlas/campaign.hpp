// The measurement campaign engine (§4.1 "Experiment").
//
// Mirrors the paper's design: every probe pings cloud datacenters on a
// fixed interval (every three hours) for months. Targets are the regions
// on the probe's own continent; probes in Africa and South America — whose
// continents are under-served — additionally target Europe and North
// America respectively. Quota limits (RIPE Atlas credits) are modelled by
// rotating each tick through the probe's target list rather than pinging
// every region every tick; over a long campaign every probe still covers
// its whole target set many times.
//
// The engine is *resilient* the way the real platform is: an optional
// fault schedule (src/faults) injects outages, flaps, storms, hangs,
// skew and blackouts; fully-lost bursts can be retried with capped
// exponential backoff; probes whose recent bursts are mostly bad enter
// quarantine until a cooldown elapses. All resilience features default
// to off, and a campaign without them is byte-identical to the
// pre-fault engine. Determinism holds per (seed, fault schedule) and is
// independent of the thread count.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "atlas/measurement.hpp"
#include "atlas/path_cache.hpp"
#include "atlas/placement.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/resilience.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::obs {
class MetricsRegistry;
}  // namespace shears::obs

namespace shears::atlas {

struct CampaignConfig {
  /// Campaign length; the paper draws on nine months (~270 days).
  int duration_days = 270;
  /// Scheduling interval between ping bursts per probe.
  int interval_hours = 3;
  /// Packets per ping burst (Atlas default 3).
  int packets_per_ping = 3;
  /// Targets each probe measures per tick (credit-quota rotation).
  int targets_per_tick = 1;
  /// Probability a probe is online at a given tick. Real Atlas probes
  /// disconnect, reboot and move; 1.0 disables churn. Offline ticks
  /// produce no records (they are absent, not lost bursts).
  double probe_uptime = 1.0;
  /// Campaign RNG seed; the dataset is a pure function of
  /// (fleet, registry, model, fault schedule, config).
  std::uint64_t seed = 7;
  /// Worker threads; 0 = hardware concurrency. Results are identical
  /// regardless of thread count.
  unsigned threads = 0;
  /// Precompute the probe × region sampling cache (path characteristics +
  /// access profiles) at construction and sample through it. The cache
  /// consumes no RNG draws, so output is byte-identical either way; off
  /// recomputes the invariants per packet like the original engine
  /// (kept for byte-identity tests and the perf-regression bench).
  bool sampling_cache = true;
  /// Sample through the lane-batched SIMD kernel (net/burst_lanes.hpp):
  /// up to 8 probes advance together, with the transcendental math
  /// evaluated as vectorized array ops. Draw-for-draw aligned with the
  /// scalar engine — every record's structure (losses, counts, fault
  /// masks) is identical — but RTT values go through polynomial exp/log
  /// and drift within a bounded epsilon, so batched datasets are gated
  /// by the scalar-vs-batched differential suite (src/check), not the
  /// golden byte-identity checksums. Off by default. Requires the
  /// sampling cache; configurations the kernel does not cover (retries,
  /// quarantine, packets_per_ping > net::kMaxBatchedPackets) silently
  /// fall back to the scalar engine — see batched_eligible().
  bool batched = false;
  /// Retry policy for fully-lost bursts; off by default.
  faults::RetryPolicy retry{};
  /// Probe quarantine policy; off by default.
  faults::QuarantinePolicy quarantine{};

  /// Throws std::invalid_argument on non-positive knobs, probe_uptime
  /// outside (0, 1], packets that overflow the record's counters, an
  /// interval longer than the whole campaign (zero ticks), or an
  /// invalid retry/quarantine policy — a misconfigured campaign must
  /// fail loudly instead of producing an empty or garbage dataset.
  void validate() const;
};

/// Aggregate resilience counters of one campaign run; deterministic for
/// a given (seed, fault schedule) like the dataset itself.
struct CampaignTelemetry {
  std::size_t bursts = 0;           ///< records produced
  std::size_t bursts_retried = 0;   ///< records needing >= 1 retry
  std::size_t retries = 0;          ///< total retry attempts spent
  std::size_t bursts_recovered = 0; ///< lost at first attempt, then delivered
  std::size_t bursts_faulted = 0;   ///< records with fault exposure flags
  std::size_t bursts_cached = 0;    ///< attempts served by the path cache
  std::size_t bursts_batched = 0;   ///< bursts sampled by the lane kernel
  std::size_t hang_ticks = 0;       ///< probe-ticks lost to firmware hangs
  std::size_t quarantine_entries = 0;
  std::size_t quarantined_ticks = 0;  ///< probe-ticks sidelined
  /// Per-kind fault activations across recorded bursts.
  faults::FaultKindCounts fault_kinds{};

  void merge(const CampaignTelemetry& other) noexcept;
};

/// Receives a campaign's committed records — the serving layer's burst
/// publication hook (serve::ColumnarStore implements it, so a running
/// campaign streams into a live store without a rebuild). Rows arrive in
/// dataset order, once per run, after the per-probe shards are merged;
/// the span is only valid for the duration of the call.
class MeasurementSink {
 public:
  virtual ~MeasurementSink() = default;
  virtual void publish(std::span<const Measurement> rows) = 0;
};

class Campaign {
 public:
  /// `fleet`, `registry`, and `model` must outlive the campaign and any
  /// dataset it produces.
  Campaign(const ProbeFleet& fleet, const topology::CloudRegistry& registry,
           const net::LatencyModel& model, CampaignConfig config);

  /// As above, with fault injection: `schedule` (may be null or empty for
  /// a clean run) must outlive the campaign.
  Campaign(const ProbeFleet& fleet, const topology::CloudRegistry& registry,
           const net::LatencyModel& model, CampaignConfig config,
           const faults::FaultSchedule* schedule);

  /// Total scheduler ticks ( duration / interval ).
  [[nodiscard]] std::uint32_t tick_count() const noexcept;

  /// Region indices (into registry.regions()) a probe targets: its own
  /// continent plus the §4.1 fallback continent for AF/SA probes. May be
  /// empty when a footprint snapshot has no reachable region. The span
  /// views the precomputed per-continent list and stays valid as long as
  /// the campaign does.
  [[nodiscard]] std::span<const std::uint16_t> targets_for(
      const Probe& p) const noexcept;

  /// Runs the whole campaign deterministically and returns the dataset.
  [[nodiscard]] MeasurementDataset run() const;

  /// As run(), also filling the resilience telemetry counters.
  [[nodiscard]] MeasurementDataset run(CampaignTelemetry& telemetry) const;

  /// Number of records run() produces at full uptime with no faults; an
  /// upper bound under churn, hangs, or quarantine.
  [[nodiscard]] std::size_t expected_record_count() const;

  /// Whether run() will use the lane-batched kernel: config.batched is
  /// set and the configuration is one the kernel covers (sampling cache
  /// on, no retries, no quarantine, burst size within
  /// net::kMaxBatchedPackets). Churn and fault schedules *are* covered —
  /// the SoA fault path keeps perturbed windows on the kernel.
  [[nodiscard]] bool batched_eligible() const noexcept;

  /// Publishes per-run telemetry into `metrics` after every run():
  /// campaign.* counters (bursts, retries, quarantines, path-cache hits),
  /// faults.activations.* per kind, the campaign.wall_* gauges, and the
  /// campaign.shard_wall_ms histogram. Counters are accumulated in the
  /// per-shard CampaignTelemetry and published once per run, so the
  /// per-burst hot loop never touches an atomic or lock, and the dataset
  /// bytes are untouched — the registry only observes, it never feeds
  /// back into sampling. Pass nullptr to detach. `metrics` must outlive
  /// the campaign.
  void attach_metrics(obs::MetricsRegistry* metrics) noexcept {
    metrics_ = metrics;
  }

  /// Publishes every run()'s records into `sink` (dataset order, after
  /// shard merge) — how a live serving store ingests fresh campaigns.
  /// Purely observational: the dataset bytes are identical with or
  /// without a sink. Pass nullptr to detach; `sink` must outlive the
  /// campaign.
  void attach_sink(MeasurementSink* sink) noexcept { sink_ = sink; }

 private:
  void run_probe_range(std::size_t begin, std::size_t end,
                       std::vector<Measurement>& out,
                       CampaignTelemetry& telemetry) const;

  /// Lane-batched twin of run_probe_range (campaign_batched.cpp): groups
  /// the range's probes into 8-lane blocks per continent and samples
  /// them through net::sample_burst_lanes. Per-probe output is
  /// independent of block composition (each lane consumes only its own
  /// stream), so sharding and thread count still do not change the
  /// dataset.
  void run_probe_range_batched(std::size_t begin, std::size_t end,
                               std::vector<Measurement>& out,
                               CampaignTelemetry& telemetry) const;

  /// Pushes one run's telemetry into metrics_; no-op when detached.
  void publish_metrics(const CampaignTelemetry& telemetry,
                       std::chrono::steady_clock::time_point run_start) const;

  const ProbeFleet* fleet_;
  const topology::CloudRegistry* registry_;
  const net::LatencyModel* model_;
  CampaignConfig config_;
  const faults::FaultSchedule* schedule_ = nullptr;  ///< may be null
  obs::MetricsRegistry* metrics_ = nullptr;          ///< may be null
  MeasurementSink* sink_ = nullptr;                  ///< may be null
  /// Per-continent target lists, fallback included, precomputed once.
  std::vector<std::uint16_t> targets_by_continent_[geo::kContinentCount];
  /// Probe × region sampling cache; empty when config.sampling_cache is
  /// off.
  PathCache cache_;
};

}  // namespace shears::atlas
