// Probe tags, mirroring RIPE Atlas's user/system tag vocabulary (§4.1,
// §4.3). The study uses tags for two filters:
//   * dropping probes in privileged locations (datacentre / cloud tags),
//   * splitting wired (ethernet, broadband, dsl, cable, fibre) from
//     wireless (wifi, wlan, lte, 5g) last miles for Fig. 7.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "net/access.hpp"

namespace shears::atlas {

/// Where a probe is installed; drives the privileged-location filter and
/// part of the tag set.
enum class Environment : unsigned char {
  kHome = 0,
  kOffice,
  kCoreNetwork,   ///< ISP core / IXP — well connected but not privileged
  kDatacenter,    ///< privileged: inside a DC or cloud network
};

[[nodiscard]] constexpr std::string_view to_string(Environment e) noexcept {
  switch (e) {
    case Environment::kHome: return "home";
    case Environment::kOffice: return "office";
    case Environment::kCoreNetwork: return "core";
    case Environment::kDatacenter: return "datacentre";
  }
  return "unknown";
}

/// Tags that mark a probe as sitting in a privileged location; such probes
/// are excluded from all §4 analyses.
[[nodiscard]] std::span<const std::string_view> privileged_tags() noexcept;

/// Tag keywords indicating a wired last mile.
[[nodiscard]] std::span<const std::string_view> wired_tags() noexcept;

/// Tag keywords indicating a wireless last mile.
[[nodiscard]] std::span<const std::string_view> wireless_tags() noexcept;

/// The tag a probe host would typically attach for an access technology
/// (RIPE Atlas tag vocabulary: "ethernet", "dsl", "cable", "fibre",
/// "wifi" / "wlan", "lte", "5g"; generic "broadband" also appears).
[[nodiscard]] std::string_view primary_tag_for(net::AccessTechnology t) noexcept;

/// Builds the full tag set of a probe. `tagged` models the reality that
/// only part of the probe population carries useful user tags — untagged
/// probes get an empty access vocabulary and drop out of Fig. 7 (but not
/// of Figs. 4-6).
[[nodiscard]] std::vector<std::string_view> make_tags(
    net::AccessTechnology access, Environment env, bool tagged);

/// True when any tag of `tags` appears in `vocabulary`.
[[nodiscard]] bool has_any_tag(std::span<const std::string_view> tags,
                               std::span<const std::string_view> vocabulary) noexcept;

}  // namespace shears::atlas
