#include "atlas/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

#include "geo/city.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace shears::atlas {

namespace {

using geo::ConnectivityTier;
using net::AccessTechnology;

/// Access-technology mix per connectivity tier. Columns follow
/// kAllAccessTechnologies order: ethernet, fibre, cable, dsl, wifi, lte, 5g.
/// RIPE Atlas probes are predominantly wired-attached; the wireless share
/// grows where fixed broadband is scarce. 5G host uplinks existed only in
/// tier-1 countries during the campaign window.
constexpr double kAccessMix[4][net::kAccessTechnologyCount] = {
    /* T1 */ {0.32, 0.24, 0.17, 0.12, 0.08, 0.05, 0.02},
    /* T2 */ {0.26, 0.15, 0.15, 0.24, 0.10, 0.10, 0.00},
    /* T3 */ {0.20, 0.08, 0.10, 0.30, 0.13, 0.19, 0.00},
    /* T4 */ {0.15, 0.03, 0.05, 0.32, 0.16, 0.29, 0.00},
};

/// Environment mix (home, office, core, datacenter); the datacenter column
/// is overridden by PlacementConfig::privileged_fraction.
constexpr double kEnvMixBase[3] = {0.72, 0.18, 0.10};

/// Largest-remainder apportionment of `total` probes over country weights,
/// guaranteeing at least one probe per country when total allows.
std::vector<std::size_t> apportion(std::span<const geo::Country> countries,
                                   std::size_t total) {
  const std::size_t n = countries.size();
  if (total < n) {
    throw std::invalid_argument(
        "ProbeFleet: probe_count must cover every country at least once");
  }
  std::vector<std::size_t> counts(n, 1);
  std::size_t remaining = total - n;

  double weight_sum = 0.0;
  for (const geo::Country& c : countries) weight_sum += c.probe_weight;

  std::vector<double> remainders(n, 0.0);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double share =
        static_cast<double>(remaining) * countries[i].probe_weight / weight_sum;
    const auto whole = static_cast<std::size_t>(std::floor(share));
    counts[i] += whole;
    assigned += whole;
    remainders[i] = share - std::floor(share);
  }
  // Hand out the leftovers to the largest remainders (ties by index for
  // determinism).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainders[a] > remainders[b];
  });
  for (std::size_t k = 0; assigned < remaining; ++k) {
    counts[order[k % n]] += 1;
    ++assigned;
  }
  return counts;
}

/// Offsets a site by (dx, dy) kilometres; good enough at probe-placement
/// scale and keeps coordinates valid.
geo::GeoPoint scatter_around(const geo::GeoPoint& site, double sigma_km,
                             stats::Xoshiro256& rng) {
  const double dx = stats::sample_normal(rng, 0.0, sigma_km);
  const double dy = stats::sample_normal(rng, 0.0, sigma_km);
  constexpr double kKmPerDegLat = 111.32;
  geo::GeoPoint p = site;
  p.lat_deg += dy / kKmPerDegLat;
  const double cos_lat = std::cos(geo::deg_to_rad(p.lat_deg));
  p.lon_deg += cos_lat > 0.05 ? dx / (kKmPerDegLat * cos_lat) : 0.0;
  p.lat_deg = std::clamp(p.lat_deg, -85.0, 85.0);
  while (p.lon_deg > 180.0) p.lon_deg -= 360.0;
  while (p.lon_deg < -180.0) p.lon_deg += 360.0;
  return p;
}

AccessTechnology draw_access(ConnectivityTier tier, stats::Xoshiro256& rng) {
  const auto row = static_cast<std::size_t>(tier) - 1;
  const std::size_t idx = stats::sample_weighted(
      rng, kAccessMix[row], net::kAccessTechnologyCount);
  return net::kAllAccessTechnologies[idx];
}

Environment draw_environment(double privileged_fraction,
                             stats::Xoshiro256& rng) {
  if (rng.bernoulli(privileged_fraction)) return Environment::kDatacenter;
  const std::size_t idx = stats::sample_weighted(rng, kEnvMixBase, 3);
  switch (idx) {
    case 0: return Environment::kHome;
    case 1: return Environment::kOffice;
    default: return Environment::kCoreNetwork;
  }
}

}  // namespace

ProbeFleet ProbeFleet::generate(const PlacementConfig& config) {
  const auto countries = geo::all_countries();
  const std::vector<std::size_t> counts =
      apportion(countries, config.probe_count);

  std::vector<Probe> probes;
  probes.reserve(config.probe_count);
  stats::Xoshiro256 root(config.seed);

  ProbeId next_id = 0;
  for (std::size_t ci = 0; ci < countries.size(); ++ci) {
    const geo::Country& country = countries[ci];
    // Per-country stream: fleets of different sizes keep per-country draws
    // aligned as far as counts allow.
    stats::Xoshiro256 rng = root.fork(
        stats::fnv1a64(country.iso2.data(), country.iso2.size()));
    // Urban placement candidates, weighted by metro population.
    const std::vector<const geo::City*> cities =
        geo::cities_in(country.iso2);
    std::vector<double> city_weights;
    city_weights.reserve(cities.size());
    for (const geo::City* city : cities) {
      city_weights.push_back(city->metro_population_m);
    }
    for (std::size_t k = 0; k < counts[ci]; ++k) {
      Probe p;
      p.id = next_id++;
      p.country = &country;
      if (!cities.empty() && rng.bernoulli(config.urban_fraction)) {
        const std::size_t pick = stats::sample_weighted(
            rng, city_weights.data(), city_weights.size());
        p.endpoint.location = scatter_around(
            cities[pick]->location, config.urban_scatter_km, rng);
      } else {
        p.endpoint.location =
            scatter_around(country.site, country.scatter_km, rng);
      }
      p.endpoint.tier = country.tier;
      p.environment = draw_environment(config.privileged_fraction, rng);
      if (p.environment == Environment::kCoreNetwork ||
          p.environment == Environment::kDatacenter) {
        // Infrastructure probes hang off switch fabric, not consumer links.
        p.endpoint.access = AccessTechnology::kEthernet;
      } else {
        p.endpoint.access = draw_access(country.tier, rng);
      }
      // Attribute the probe to an access operator (mobile operators host
      // the cellular probes) and inherit its latency quality.
      const auto segment =
          isps_in_segment(country, net::is_wireless(p.endpoint.access) &&
                                       p.endpoint.access !=
                                           net::AccessTechnology::kWifi);
      if (!segment.empty()) {
        std::vector<double> shares;
        shares.reserve(segment.size());
        for (const IspProfile* isp : segment) {
          shares.push_back(isp->market_share);
        }
        p.isp = segment[stats::sample_weighted(rng, shares.data(),
                                               shares.size())];
        p.endpoint.access_quality = p.isp->quality;
      }
      const bool tagged = rng.bernoulli(config.tagged_fraction);
      p.tags = make_tags(p.endpoint.access, p.environment, tagged);
      probes.push_back(std::move(p));
    }
  }
  return ProbeFleet(std::move(probes));
}

ProbeFleet ProbeFleet::from_probes(std::vector<Probe> probes) {
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (probes[i].id != i) {
      throw std::invalid_argument("ProbeFleet: probe ids must equal indices");
    }
    if (probes[i].country == nullptr) {
      throw std::invalid_argument("ProbeFleet: probe without a country");
    }
  }
  return ProbeFleet(std::move(probes));
}

std::vector<const Probe*> ProbeFleet::in_continent(geo::Continent c) const {
  std::vector<const Probe*> out;
  for (const Probe& p : probes_) {
    if (p.country->continent == c) out.push_back(&p);
  }
  return out;
}

std::size_t ProbeFleet::country_count() const {
  std::set<std::string_view> seen;
  for (const Probe& p : probes_) seen.insert(p.country->iso2);
  return seen.size();
}

}  // namespace shears::atlas
