#include "atlas/isp.hpp"

#include <map>
#include <mutex>

#include "stats/rng.hpp"

namespace shears::atlas {

namespace {

/// Operators per (tier, segment): tier 1 markets are competitive; tier 4
/// markets are duopolies at best.
int fixed_count(geo::ConnectivityTier tier) {
  switch (tier) {
    case geo::ConnectivityTier::kTier1: return 4;
    case geo::ConnectivityTier::kTier2: return 3;
    case geo::ConnectivityTier::kTier3: return 3;
    case geo::ConnectivityTier::kTier4: return 2;
  }
  return 2;
}

int mobile_count(geo::ConnectivityTier tier) {
  return tier == geo::ConnectivityTier::kTier1 ? 3 : 2;
}

/// Quality ladder: the incumbent is slightly better than the country
/// baseline, later entrants get progressively worse, with the spread
/// widening on poorer tiers.
double quality_of(int rank, geo::ConnectivityTier tier,
                  stats::Xoshiro256& rng) {
  const double tier_spread =
      0.08 * static_cast<double>(static_cast<int>(tier));
  const double base = 0.88 + 0.14 * rank;
  return base + rng.uniform(0.0, tier_spread);
}

std::vector<IspProfile> build_market(const geo::Country& country) {
  std::vector<IspProfile> market;
  stats::Xoshiro256 rng(
      stats::fnv1a64(country.iso2.data(), country.iso2.size()) ^
      0xa5a5a5a5ULL);

  const auto add_segment = [&](bool mobile, int count, const char* stem) {
    // Zipf-ish shares: 1, 1/2, 1/3, ... normalised.
    double total = 0.0;
    for (int i = 1; i <= count; ++i) total += 1.0 / i;
    for (int i = 0; i < count; ++i) {
      IspProfile isp;
      isp.name = std::string(country.iso2) + "-" + stem +
                 std::to_string(i + 1);
      isp.asn = static_cast<std::uint32_t>(
          64512 + (stats::fnv1a64(isp.name.data(), isp.name.size()) % 400000));
      isp.market_share = (1.0 / (i + 1)) / total;
      isp.quality = quality_of(i, country.tier, rng);
      isp.mobile = mobile;
      market.push_back(std::move(isp));
    }
  };
  add_segment(false, fixed_count(country.tier), "NET");
  add_segment(true, mobile_count(country.tier), "MOB");
  return market;
}

}  // namespace

const std::vector<IspProfile>& isp_market(const geo::Country& country) {
  static std::map<std::string_view, std::vector<IspProfile>> cache;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(country.iso2);
  if (it == cache.end()) {
    it = cache.emplace(country.iso2, build_market(country)).first;
  }
  return it->second;
}

std::vector<const IspProfile*> isps_in_segment(const geo::Country& country,
                                               bool mobile) {
  std::vector<const IspProfile*> out;
  for (const IspProfile& isp : isp_market(country)) {
    if (isp.mobile == mobile) out.push_back(&isp);
  }
  return out;
}

}  // namespace shears::atlas
