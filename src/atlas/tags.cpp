#include "atlas/tags.hpp"

#include <array>

namespace shears::atlas {

namespace {

constexpr std::array<std::string_view, 3> kPrivileged = {"datacentre",
                                                         "cloud", "hosting"};
constexpr std::array<std::string_view, 5> kWired = {"ethernet", "broadband",
                                                    "dsl", "cable", "fibre"};
constexpr std::array<std::string_view, 4> kWireless = {"wifi", "wlan", "lte",
                                                       "5g"};

}  // namespace

std::span<const std::string_view> privileged_tags() noexcept {
  return kPrivileged;
}
std::span<const std::string_view> wired_tags() noexcept { return kWired; }
std::span<const std::string_view> wireless_tags() noexcept { return kWireless; }

std::string_view primary_tag_for(net::AccessTechnology t) noexcept {
  switch (t) {
    case net::AccessTechnology::kEthernet: return "ethernet";
    case net::AccessTechnology::kFibre: return "fibre";
    case net::AccessTechnology::kCable: return "cable";
    case net::AccessTechnology::kDsl: return "dsl";
    case net::AccessTechnology::kWifi: return "wifi";
    case net::AccessTechnology::kLte: return "lte";
    case net::AccessTechnology::kFiveG: return "5g";
  }
  return "unknown";
}

std::vector<std::string_view> make_tags(net::AccessTechnology access,
                                        Environment env, bool tagged) {
  std::vector<std::string_view> tags;
  if (env == Environment::kDatacenter) tags.push_back("datacentre");
  if (!tagged) return tags;
  tags.push_back(primary_tag_for(access));
  // Hosts tag generously: wired broadband flavours usually also carry the
  // generic keyword, and WiFi probes frequently carry both spellings.
  if (access == net::AccessTechnology::kDsl ||
      access == net::AccessTechnology::kCable ||
      access == net::AccessTechnology::kFibre) {
    tags.push_back("broadband");
  }
  if (access == net::AccessTechnology::kWifi) tags.push_back("wlan");
  tags.push_back(to_string(env));
  return tags;
}

bool has_any_tag(std::span<const std::string_view> tags,
                 std::span<const std::string_view> vocabulary) noexcept {
  for (const std::string_view t : tags) {
    for (const std::string_view v : vocabulary) {
      if (t == v) return true;
    }
  }
  return false;
}

}  // namespace shears::atlas
