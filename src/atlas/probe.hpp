// Probe model: identity + placement + network attachment + tags.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "atlas/isp.hpp"
#include "atlas/tags.hpp"
#include "geo/country.hpp"
#include "net/endpoint.hpp"

namespace shears::atlas {

using ProbeId = std::uint32_t;

struct Probe {
  ProbeId id = 0;
  const geo::Country* country = nullptr;  ///< never null in a valid fleet
  net::Endpoint endpoint;                 ///< location, tier, access tech
  Environment environment = Environment::kHome;
  /// The access operator hosting this probe (nullptr only for hand-built
  /// test probes); quality is mirrored into endpoint.access_quality.
  const IspProfile* isp = nullptr;
  std::vector<std::string_view> tags;

  /// Privileged probes (datacentre / cloud placement) are filtered from
  /// every analysis, as in §4.1.
  [[nodiscard]] bool privileged() const noexcept {
    return environment == Environment::kDatacenter ||
           has_any_tag(tags, privileged_tags());
  }

  /// Fig. 7 split: a probe participates only when its tags carry a wired
  /// or wireless keyword.
  [[nodiscard]] bool tagged_wired() const noexcept {
    return has_any_tag(tags, wired_tags());
  }
  [[nodiscard]] bool tagged_wireless() const noexcept {
    return has_any_tag(tags, wireless_tags());
  }
};

}  // namespace shears::atlas
