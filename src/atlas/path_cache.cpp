#include "atlas/path_cache.hpp"

#include <algorithm>
#include <thread>

namespace shears::atlas {

PathCache::PathCache(const ProbeFleet& fleet,
                     const topology::CloudRegistry& registry,
                     const net::LatencyModel& model, unsigned threads) {
  const auto probes = fleet.probes();
  const auto& regions = registry.regions();
  region_count_ = regions.size();
  paths_.resize(probes.size() * region_count_);
  profiles_.resize(probes.size());

  const auto fill_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t pi = begin; pi < end; ++pi) {
      const net::Endpoint& src = probes[pi].endpoint;
      profiles_[pi] = model.cache_profile(src);
      net::CachedPath* row = paths_.data() + pi * region_count_;
      for (std::size_t ri = 0; ri < region_count_; ++ri) {
        row[ri] = model.cache_path(src, *regions[ri]);
      }
    }
  };

  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, probes.empty() ? 1 : probes.size()));
  if (threads <= 1) {
    fill_range(0, probes.size());
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t chunk = (probes.size() + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    const std::size_t end = std::min(probes.size(), begin + chunk);
    workers.emplace_back([&fill_range, begin, end] { fill_range(begin, end); });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace shears::atlas
