// ISP markets: the network-operator dimension of the vantage points.
//
// §4.1 stresses that Atlas probes sit "in varying network environments";
// a large share of that variance is the access ISP — incumbents with
// dense peering vs budget carriers that trombone through transit. Each
// country gets a deterministic synthetic ISP market (no real-world ASN
// table is shipped): a handful of fixed-line and mobile operators with
// Zipf-ish market shares and a quality multiplier on last-mile latency.
// Probes are attributed to an operator at placement time, enabling
// per-ASN analyses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/country.hpp"

namespace shears::atlas {

struct IspProfile {
  std::string name;      ///< synthetic, stable: "DE-NET1", "DE-MOB1", ...
  std::uint32_t asn;     ///< synthetic, stable, unique across the registry
  double market_share;   ///< within (country, fixed/mobile segment)
  /// Multiplier on the access-latency median: <1 = well-peered incumbent,
  /// >1 = budget operator riding distant transit.
  double quality;
  bool mobile;           ///< mobile operators host the wireless probes
};

/// The deterministic ISP market of a country: richer tiers have more
/// operators and a tighter quality spread; under-served tiers have fewer
/// operators with worse and more variable quality. Pure function of the
/// country (cached internally).
[[nodiscard]] const std::vector<IspProfile>& isp_market(
    const geo::Country& country);

/// Operators of one segment (fixed or mobile), preserving order.
[[nodiscard]] std::vector<const IspProfile*> isps_in_segment(
    const geo::Country& country, bool mobile);

}  // namespace shears::atlas
