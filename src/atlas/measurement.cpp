#include "atlas/measurement.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace shears::atlas {

MeasurementDataset::MeasurementDataset(const ProbeFleet* fleet,
                                       const topology::CloudRegistry* registry,
                                       std::vector<Measurement> records)
    : fleet_(fleet), registry_(registry), records_(std::move(records)) {
  if (fleet_ == nullptr || registry_ == nullptr) {
    throw std::invalid_argument("MeasurementDataset: null fleet or registry");
  }
}

double MeasurementDataset::loss_fraction() const noexcept {
  if (records_.empty()) return 0.0;
  std::size_t lost = 0;
  for (const Measurement& m : records_) {
    if (m.lost()) ++lost;
  }
  return static_cast<double>(lost) / static_cast<double>(records_.size());
}

void MeasurementDataset::write_jsonl(std::ostream& os,
                                     int interval_hours) const {
  for (const Measurement& m : records_) {
    const Probe& p = probe_of(m);
    const topology::CloudRegion& r = region_of(m);
    const long long timestamp =
        static_cast<long long>(m.tick) * interval_hours * 3600;
    os << "{\"type\":\"ping\",\"prb_id\":" << m.probe_id
       << ",\"dst_name\":\"" << topology::to_string(r.provider) << '/'
       << r.region_id << "\",\"timestamp\":" << timestamp
       << ",\"sent\":" << static_cast<int>(m.sent)
       << ",\"rcvd\":" << static_cast<int>(m.received);
    if (m.lost()) {
      os << ",\"min\":-1,\"avg\":-1,\"max\":-1";
    } else {
      os << ",\"min\":" << m.min_ms << ",\"avg\":" << m.avg_ms
         << ",\"max\":" << m.max_ms;
    }
    os << ",\"country\":\"" << p.country->iso2 << "\",\"continent\":\""
       << geo::to_code(p.country->continent) << "\",\"access\":\""
       << net::to_string(p.endpoint.access) << "\"}\n";
  }
}

MeasurementDataset MeasurementDataset::read_csv(
    std::istream& is, const ProbeFleet* fleet,
    const topology::CloudRegistry* registry) {
  if (fleet == nullptr || registry == nullptr) {
    throw std::invalid_argument("read_csv: null fleet or registry");
  }
  std::string line;
  if (!std::getline(is, line) || line.rfind("probe_id,", 0) != 0) {
    throw std::runtime_error("read_csv: missing or unexpected header");
  }

  // (provider, region_id) -> registry index, built once.
  const auto& regions = registry->regions();
  auto region_index_of = [&regions](std::string_view provider,
                                    std::string_view region_id) {
    for (std::size_t i = 0; i < regions.size(); ++i) {
      if (topology::to_string(regions[i]->provider) == provider &&
          regions[i]->region_id == region_id) {
        return i;
      }
    }
    throw std::runtime_error("read_csv: unknown region " +
                             std::string(provider) + "/" +
                             std::string(region_id));
  };

  std::vector<Measurement> records;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string cell;
    std::vector<std::string> row;
    while (std::getline(fields, cell, ',')) row.push_back(cell);
    if (row.size() != 12) {
      throw std::runtime_error("read_csv: malformed row at line " +
                               std::to_string(line_no));
    }
    Measurement m;
    m.probe_id = static_cast<ProbeId>(std::stoul(row[0]));
    if (m.probe_id >= fleet->size()) {
      throw std::runtime_error("read_csv: probe id out of range at line " +
                               std::to_string(line_no));
    }
    const Probe& probe = fleet->probe(m.probe_id);
    if (probe.country->iso2 != row[1] ||
        net::to_string(probe.endpoint.access) != row[3]) {
      throw std::runtime_error(
          "read_csv: row metadata does not match the fleet (wrong placement "
          "seed?) at line " +
          std::to_string(line_no));
    }
    m.region_index = static_cast<std::uint16_t>(region_index_of(row[4], row[5]));
    m.tick = static_cast<std::uint32_t>(std::stoul(row[6]));
    m.min_ms = std::stof(row[7]);
    m.avg_ms = std::stof(row[8]);
    m.max_ms = std::stof(row[9]);
    m.sent = static_cast<std::uint8_t>(std::stoi(row[10]));
    m.received = static_cast<std::uint8_t>(std::stoi(row[11]));
    records.push_back(m);
  }
  return MeasurementDataset(fleet, registry, std::move(records));
}

void MeasurementDataset::write_csv(std::ostream& os) const {
  os << "probe_id,country,continent,access,provider,region,tick,min_ms,avg_ms,"
        "max_ms,sent,received\n";
  for (const Measurement& m : records_) {
    const Probe& p = probe_of(m);
    const topology::CloudRegion& r = region_of(m);
    os << m.probe_id << ',' << p.country->iso2 << ','
       << geo::to_code(p.country->continent) << ','
       << net::to_string(p.endpoint.access) << ','
       << topology::to_string(r.provider) << ',' << r.region_id << ','
       << m.tick << ',' << m.min_ms << ',' << m.avg_ms << ',' << m.max_ms
       << ',' << static_cast<int>(m.sent) << ','
       << static_cast<int>(m.received) << '\n';
  }
}

}  // namespace shears::atlas
