#include "atlas/measurement.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace shears::atlas {

namespace {

constexpr std::string_view kCsvHeader =
    "probe_id,country,continent,access,provider,region,tick,min_ms,avg_ms,"
    "max_ms,sent,received,retries,faults";
constexpr std::string_view kLegacyCsvHeader =
    "probe_id,country,continent,access,provider,region,tick,min_ms,avg_ms,"
    "max_ms,sent,received";

/// RTT floats are written with max_digits10 significant digits so that a
/// write → read round trip reproduces the stored value bit for bit (the
/// default 6-digit precision loses the low mantissa bits). Scoped: the
/// caller's stream precision is restored on destruction.
class FloatPrecisionGuard {
 public:
  explicit FloatPrecisionGuard(std::ostream& os)
      : os_(os),
        old_(os.precision(std::numeric_limits<float>::max_digits10)) {}
  ~FloatPrecisionGuard() { os_.precision(old_); }
  FloatPrecisionGuard(const FloatPrecisionGuard&) = delete;
  FloatPrecisionGuard& operator=(const FloatPrecisionGuard&) = delete;

 private:
  std::ostream& os_;
  std::streamsize old_;
};

}  // namespace

MeasurementDataset::MeasurementDataset(const ProbeFleet* fleet,
                                       const topology::CloudRegistry* registry,
                                       std::vector<Measurement> records)
    : fleet_(fleet), registry_(registry), records_(std::move(records)) {
  if (fleet_ == nullptr || registry_ == nullptr) {
    throw std::invalid_argument("MeasurementDataset: null fleet or registry");
  }
}

double MeasurementDataset::loss_fraction() const noexcept {
  if (records_.empty()) return 0.0;
  std::size_t lost = 0;
  for (const Measurement& m : records_) {
    if (m.lost()) ++lost;
  }
  return static_cast<double>(lost) / static_cast<double>(records_.size());
}

double MeasurementDataset::faulted_fraction() const noexcept {
  if (records_.empty()) return 0.0;
  std::size_t faulted = 0;
  for (const Measurement& m : records_) {
    if (m.faulted()) ++faulted;
  }
  return static_cast<double>(faulted) / static_cast<double>(records_.size());
}

void MeasurementDataset::write_jsonl(std::ostream& os,
                                     int interval_hours) const {
  const FloatPrecisionGuard precision(os);
  for (const Measurement& m : records_) {
    const Probe& p = probe_of(m);
    const topology::CloudRegion& r = region_of(m);
    const long long timestamp =
        static_cast<long long>(m.tick) * interval_hours * 3600;
    os << "{\"type\":\"ping\",\"prb_id\":" << m.probe_id
       << ",\"dst_name\":\"" << topology::to_string(r.provider) << '/'
       << r.region_id << "\",\"timestamp\":" << timestamp
       << ",\"sent\":" << static_cast<int>(m.sent)
       << ",\"rcvd\":" << static_cast<int>(m.received);
    if (m.lost()) {
      os << ",\"min\":-1,\"avg\":-1,\"max\":-1";
    } else {
      os << ",\"min\":" << m.min_ms << ",\"avg\":" << m.avg_ms
         << ",\"max\":" << m.max_ms;
    }
    if (m.retries != 0) {
      os << ",\"retries\":" << static_cast<int>(m.retries);
    }
    if (m.faults != 0) {
      os << ",\"faults\":" << static_cast<int>(m.faults);
    }
    os << ",\"country\":\"" << p.country->iso2 << "\",\"continent\":\""
       << geo::to_code(p.country->continent) << "\",\"access\":\""
       << net::to_string(p.endpoint.access) << "\"}\n";
  }
}

namespace {

/// (provider, region_id) -> registry index lookup shared by both readers.
/// The error carries the line number like every other malformed-row
/// diagnostic — a bad region cell must point at its row, not just name
/// the unknown region.
std::size_t region_index_of(const topology::CloudRegistry& registry,
                            std::string_view provider,
                            std::string_view region_id, const char* who,
                            std::size_t line_no) {
  const auto& regions = registry.regions();
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (topology::to_string(regions[i]->provider) == provider &&
        regions[i]->region_id == region_id) {
      return i;
    }
  }
  throw std::runtime_error(std::string(who) + ": unknown region " +
                           std::string(provider) + "/" +
                           std::string(region_id) + " at line " +
                           std::to_string(line_no));
}

/// Checks a row's probe metadata against the fleet; loading a dataset
/// against the wrong fleet seed must fail loudly.
/// Packet / retry / fault counters live in uint8 record fields; a bare
/// `static_cast<std::uint8_t>(std::stoi(...))` silently wraps anything
/// outside [0, 255] (sent=300 becomes 44, -1 becomes 255). Validate the
/// full-width value first; the throw surfaces as the caller's
/// line-numbered malformed-row error.
/// The std::sto* family stops at the first non-numeric character, so
/// "12abc" would silently parse as 12. Every CSV cell must consume in
/// full, like the JSONL parsers already require.
void require_full_cell(std::size_t used, const std::string& cell) {
  if (used != cell.size()) {
    throw std::invalid_argument("trailing garbage in cell");
  }
}

std::uint8_t parse_count_u8(const std::string& cell) {
  std::size_t used = 0;
  const int value = std::stoi(cell, &used);
  require_full_cell(used, cell);
  if (value < 0 || value > 255) {
    throw std::out_of_range("counter outside [0, 255]");
  }
  return static_cast<std::uint8_t>(value);
}

/// RTT fields feed stats::Ecdf, whose precondition bans NaN; std::stof
/// happily parses "nan" and "inf", so reject anything non-finite.
float parse_finite_float(const std::string& cell) {
  std::size_t used = 0;
  const float value = std::stof(cell, &used);
  require_full_cell(used, cell);
  if (!std::isfinite(value)) {
    throw std::out_of_range("non-finite RTT");
  }
  return value;
}

/// Tick is a uint32; on LP64 std::stoul parses 64-bit values, so a tick
/// beyond 2^32 - 1 would silently truncate without this check.
std::uint32_t parse_tick_u32(const std::string& cell) {
  std::size_t used = 0;
  const unsigned long long value = std::stoull(cell, &used);
  require_full_cell(used, cell);
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    throw std::out_of_range("tick exceeds 32 bits");
  }
  return static_cast<std::uint32_t>(value);
}

const Probe& checked_probe(const ProbeFleet& fleet, unsigned long probe_id,
                           std::string_view country, std::string_view access,
                           const char* who, std::size_t line_no) {
  if (probe_id >= fleet.size()) {
    throw std::runtime_error(std::string(who) +
                             ": probe id out of range at line " +
                             std::to_string(line_no));
  }
  const Probe& probe = fleet.probe(static_cast<ProbeId>(probe_id));
  if (probe.country->iso2 != country ||
      net::to_string(probe.endpoint.access) != access) {
    throw std::runtime_error(
        std::string(who) +
        ": row metadata does not match the fleet (wrong placement seed?) "
        "at line " +
        std::to_string(line_no));
  }
  return probe;
}

}  // namespace

MeasurementDataset MeasurementDataset::read_csv(
    std::istream& is, const ProbeFleet* fleet,
    const topology::CloudRegistry* registry) {
  if (fleet == nullptr || registry == nullptr) {
    throw std::invalid_argument("read_csv: null fleet or registry");
  }
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("read_csv: missing or unexpected header");
  }
  std::size_t columns = 0;
  if (line == kCsvHeader) {
    columns = 14;
  } else if (line == kLegacyCsvHeader) {
    columns = 12;  // pre-resilience datasets: retries/faults fill as 0
  } else {
    throw std::runtime_error("read_csv: missing or unexpected header");
  }

  std::vector<Measurement> records;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string cell;
    std::vector<std::string> row;
    while (std::getline(fields, cell, ',')) row.push_back(cell);
    if (row.size() != columns) {
      throw std::runtime_error("read_csv: malformed row at line " +
                               std::to_string(line_no));
    }
    try {
      Measurement m;
      // Validate the full-width probe id before narrowing: casting first
      // would alias 2^32 + k onto probe k and pass the fleet check.
      std::size_t used = 0;
      const unsigned long probe_id = std::stoul(row[0], &used);
      require_full_cell(used, row[0]);
      checked_probe(*fleet, probe_id, row[1], row[3], "read_csv", line_no);
      m.probe_id = static_cast<ProbeId>(probe_id);
      m.region_index = static_cast<std::uint16_t>(
          region_index_of(*registry, row[4], row[5], "read_csv", line_no));
      m.tick = parse_tick_u32(row[6]);
      m.min_ms = parse_finite_float(row[7]);
      m.avg_ms = parse_finite_float(row[8]);
      m.max_ms = parse_finite_float(row[9]);
      m.sent = parse_count_u8(row[10]);
      m.received = parse_count_u8(row[11]);
      if (m.received > m.sent) {
        // No burst can deliver more echoes than it sent; a writer never
        // emits this, so it marks a corrupted or hand-edited row.
        throw std::out_of_range("received exceeds sent");
      }
      if (columns == 14) {
        m.retries = parse_count_u8(row[12]);
        m.faults = parse_count_u8(row[13]);
      }
      records.push_back(m);
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("read_csv: malformed row at line " +
                               std::to_string(line_no));
    } catch (const std::out_of_range&) {
      throw std::runtime_error("read_csv: malformed row at line " +
                               std::to_string(line_no));
    }
  }
  return MeasurementDataset(fleet, registry, std::move(records));
}

namespace {

/// Pulls `"key":` out of one of our own JSONL lines. Not a general JSON
/// parser — the writer controls the format; anything it would not emit is
/// malformed input.
std::string_view json_field(std::string_view line, std::string_view key,
                            bool required, std::size_t line_no,
                            bool* present = nullptr) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) {
    if (present != nullptr) *present = false;
    if (!required) return {};
    throw std::runtime_error("read_jsonl: missing \"" + std::string(key) +
                             "\" at line " + std::to_string(line_no));
  }
  if (present != nullptr) *present = true;
  std::size_t begin = at + needle.size();
  std::size_t end;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
    if (end == std::string_view::npos) {
      throw std::runtime_error("read_jsonl: unterminated string at line " +
                               std::to_string(line_no));
    }
  } else {
    end = line.find_first_of(",}", begin);
    if (end == std::string_view::npos) {
      throw std::runtime_error("read_jsonl: malformed line " +
                               std::to_string(line_no));
    }
  }
  return line.substr(begin, end - begin);
}

long long parse_ll(std::string_view text, const char* key,
                   std::size_t line_no) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("read_jsonl: bad " + std::string(key) +
                             " at line " + std::to_string(line_no));
  }
}

double parse_double(std::string_view text, const char* key,
                    std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double value = std::stod(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("read_jsonl: bad " + std::string(key) +
                             " at line " + std::to_string(line_no));
  }
}

/// As parse_double, additionally rejecting NaN/inf — RTTs flow into
/// stats::Ecdf, which requires finite samples.
double parse_finite(std::string_view text, const char* key,
                    std::size_t line_no) {
  const double value = parse_double(text, key, line_no);
  if (!std::isfinite(value)) {
    throw std::runtime_error("read_jsonl: bad " + std::string(key) +
                             " at line " + std::to_string(line_no));
  }
  return value;
}

/// As parse_ll with a [0, 255] range check before the uint8 narrowing.
std::uint8_t parse_count(std::string_view text, const char* key,
                         std::size_t line_no) {
  const long long value = parse_ll(text, key, line_no);
  if (value < 0 || value > 255) {
    throw std::runtime_error("read_jsonl: bad " + std::string(key) +
                             " at line " + std::to_string(line_no));
  }
  return static_cast<std::uint8_t>(value);
}

}  // namespace

MeasurementDataset MeasurementDataset::read_jsonl(
    std::istream& is, const ProbeFleet* fleet,
    const topology::CloudRegistry* registry, int interval_hours) {
  if (fleet == nullptr || registry == nullptr) {
    throw std::invalid_argument("read_jsonl: null fleet or registry");
  }
  if (interval_hours <= 0) {
    throw std::invalid_argument("read_jsonl: interval_hours must be positive");
  }
  const long long tick_seconds =
      static_cast<long long>(interval_hours) * 3600;

  std::vector<Measurement> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.front() != '{' || line.back() != '}') {
      throw std::runtime_error("read_jsonl: malformed line " +
                               std::to_string(line_no));
    }
    if (json_field(line, "type", true, line_no) != "ping") {
      throw std::runtime_error("read_jsonl: unexpected type at line " +
                               std::to_string(line_no));
    }
    Measurement m;
    const long long prb_id =
        parse_ll(json_field(line, "prb_id", true, line_no), "prb_id", line_no);
    if (prb_id < 0) {
      throw std::runtime_error("read_jsonl: bad prb_id at line " +
                               std::to_string(line_no));
    }
    // Full-width check before the ProbeId narrowing, as in read_csv.
    checked_probe(*fleet, static_cast<unsigned long>(prb_id),
                  json_field(line, "country", true, line_no),
                  json_field(line, "access", true, line_no), "read_jsonl",
                  line_no);
    m.probe_id = static_cast<ProbeId>(prb_id);

    const std::string_view dst = json_field(line, "dst_name", true, line_no);
    const std::size_t slash = dst.find('/');
    if (slash == std::string_view::npos) {
      throw std::runtime_error("read_jsonl: bad dst_name at line " +
                               std::to_string(line_no));
    }
    m.region_index = static_cast<std::uint16_t>(
        region_index_of(*registry, dst.substr(0, slash), dst.substr(slash + 1),
                        "read_jsonl", line_no));

    const long long timestamp = parse_ll(
        json_field(line, "timestamp", true, line_no), "timestamp", line_no);
    if (timestamp < 0 || timestamp % tick_seconds != 0) {
      throw std::runtime_error(
          "read_jsonl: timestamp off the tick grid at line " +
          std::to_string(line_no) + " (wrong interval_hours?)");
    }
    const long long tick = timestamp / tick_seconds;
    if (tick > std::numeric_limits<std::uint32_t>::max()) {
      throw std::runtime_error("read_jsonl: bad timestamp at line " +
                               std::to_string(line_no));
    }
    m.tick = static_cast<std::uint32_t>(tick);
    m.sent = parse_count(json_field(line, "sent", true, line_no), "sent",
                         line_no);
    m.received = parse_count(json_field(line, "rcvd", true, line_no), "rcvd",
                             line_no);
    if (m.received > m.sent) {
      throw std::runtime_error("read_jsonl: rcvd exceeds sent at line " +
                               std::to_string(line_no));
    }
    if (m.received > 0) {
      m.min_ms = static_cast<float>(
          parse_finite(json_field(line, "min", true, line_no), "min", line_no));
      m.avg_ms = static_cast<float>(
          parse_finite(json_field(line, "avg", true, line_no), "avg", line_no));
      m.max_ms = static_cast<float>(
          parse_finite(json_field(line, "max", true, line_no), "max", line_no));
    }
    bool present = false;
    const std::string_view retries =
        json_field(line, "retries", false, line_no, &present);
    if (present) {
      m.retries = parse_count(retries, "retries", line_no);
    }
    const std::string_view faults =
        json_field(line, "faults", false, line_no, &present);
    if (present) {
      m.faults = parse_count(faults, "faults", line_no);
    }
    records.push_back(m);
  }
  return MeasurementDataset(fleet, registry, std::move(records));
}

void MeasurementDataset::write_csv(std::ostream& os) const {
  const FloatPrecisionGuard precision(os);
  os << kCsvHeader << '\n';
  for (const Measurement& m : records_) {
    const Probe& p = probe_of(m);
    const topology::CloudRegion& r = region_of(m);
    os << m.probe_id << ',' << p.country->iso2 << ','
       << geo::to_code(p.country->continent) << ','
       << net::to_string(p.endpoint.access) << ','
       << topology::to_string(r.provider) << ',' << r.region_id << ','
       << m.tick << ',' << m.min_ms << ',' << m.avg_ms << ',' << m.max_ms
       << ',' << static_cast<int>(m.sent) << ','
       << static_cast<int>(m.received) << ','
       << static_cast<int>(m.retries) << ','
       << static_cast<int>(m.faults) << '\n';
  }
}

}  // namespace shears::atlas
