// Lane-batched campaign engine: run_probe_range_batched.
//
// Groups a shard's probes into 8-lane blocks (per continent, so every
// lane in a block shares the target list and per-tick burst count) and
// advances them in lockstep through net::sample_burst_lanes. Each lane
// owns the same per-probe RNG stream the scalar engine forks —
// XoshiroLanes::striped(root, probe ids) — and the campaign-level draws
// (rotation, congestion, churn) happen per lane in the scalar order.
// Inside the kernel the draw schedule differs: a burst consumes exactly
// net::kDrawsPerPacket draws per packet in a fixed kind-major order
// (burst_lanes.hpp), so per-packet samples are *distribution-equivalent*
// to the scalar engine rather than draw-for-draw equal — that is what
// the scalar-vs-batched differential oracle in src/check gates on
// (record structure exactly, rates and quantiles within epsilon).
// A lane's stream position is still a pure function of its own history
// — it advances only when its own burst samples, by exactly
// kDrawsPerPacket * packets — which keeps the dataset bit-identical
// across sharding / thread count within the batched engine.
//
// Fault exposure rides the lanes (the SoA fault path): a perturbed
// window becomes per-lane BurstState slots via make_burst_state, so
// faulted bursts stay on the batched kernel instead of falling back to
// the scalar loop. Only exposure-*lost* bursts (region outage /
// blackout) bypass sampling — exactly like the scalar engine, which
// returns a lost burst before drawing anything.
//
// Output order matches the scalar engine (probe-major, ticks ascending):
// each lane appends to its own per-probe row buffer and the buffers are
// concatenated in probe order at the end.
#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "atlas/campaign.hpp"
#include "net/burst_lanes.hpp"
#include "stats/lanes.hpp"
#include "stats/rng.hpp"

namespace shears::atlas {

namespace {

net::PingResult lost_burst_batched(int packets) noexcept {
  net::PingResult result;
  result.sent = packets;
  return result;
}

}  // namespace

void Campaign::run_probe_range_batched(std::size_t begin, std::size_t end,
                                       std::vector<Measurement>& out,
                                       CampaignTelemetry& telemetry) const {
  using net::kBurstLanes;
  // run()'s ceiling-division chunking hands trailing shards an empty
  // (and possibly inverted) range when the fleet is small.
  if (begin >= end) return;

  stats::Xoshiro256 root(config_.seed);
  const std::uint32_t ticks = tick_count();
  const auto probes = fleet_->probes();
  const bool has_faults = schedule_ != nullptr && !schedule_->empty();
  const bool has_churn = config_.probe_uptime < 1.0;
  const int packets = config_.packets_per_ping;
  const net::LatencyModelConfig& model_config = model_->config();
  // Same pure function of the config as LatencyModel's private hoisted
  // copy, so make_burst_state here builds bit-identical states.
  const double excess_sigma =
      stats::lognormal_sigma_of_spread(model_config.excess_spread);
  const auto diurnal_period = static_cast<std::uint32_t>(
      24 / std::gcd(config_.interval_hours, 24));

  // Per-probe row buffers, merged in probe order at the end so the
  // dataset keeps the scalar engine's probe-major layout.
  std::vector<std::vector<Measurement>> rows(end - begin);

  // Bucket the shard's probes by continent: lanes blocked within one
  // bucket share the target span and per-tick burst count.
  std::array<std::vector<std::size_t>, geo::kContinentCount> buckets;
  for (std::size_t pi = begin; pi < end; ++pi) {
    const std::size_t ci = geo::index_of(probes[pi].country->continent);
    if (targets_by_continent_[ci].empty()) continue;  // same skip as scalar
    buckets[ci].push_back(pi);
  }

  for (std::size_t ci = 0; ci < geo::kContinentCount; ++ci) {
    const auto& bucket = buckets[ci];
    const auto& targets = targets_by_continent_[ci];
    if (bucket.empty()) continue;
    const std::size_t per_tick = std::min(
        static_cast<std::size_t>(config_.targets_per_tick), targets.size());

    for (std::size_t b0 = 0; b0 < bucket.size(); b0 += kBurstLanes) {
      const std::size_t block_n =
          std::min(kBurstLanes, bucket.size() - b0);

      // --- Per-lane (per-probe) setup, scalar order within each lane:
      // fork, rotation draw, congestion stationary draw.
      std::array<const Probe*, kBurstLanes> probe{};
      std::array<std::uint64_t, kBurstLanes> ids{};
      std::array<std::vector<Measurement>*, kBurstLanes> lane_rows{};
      for (std::size_t l = 0; l < block_n; ++l) {
        const std::size_t pi = bucket[b0 + l];
        probe[l] = &probes[pi];
        ids[l] = probe[l]->id;
        lane_rows[l] = &rows[pi - begin];
        lane_rows[l]->reserve(static_cast<std::size_t>(ticks) * per_tick);
      }
      stats::XoshiroLanes rng = stats::XoshiroLanes::striped(
          root, std::span<const std::uint64_t>(ids.data(), block_n));

      std::array<std::size_t, kBurstLanes> slot_base{};
      for (std::size_t l = 0; l < block_n; ++l) {
        slot_base[l] = rng.lane(l).bounded(targets.size());
      }
      std::vector<net::CongestionState> congestion;
      congestion.reserve(block_n);
      for (std::size_t l = 0; l < block_n; ++l) {
        congestion.emplace_back(model_config, rng.lane(l));
      }

      std::array<faults::ProbeContext, kBurstLanes> fault_ctx{};
      std::array<const net::CachedProfile*, kBurstLanes> lane_profile{};
      std::array<const net::CachedPath*, kBurstLanes> lane_paths{};
      std::array<std::array<double, 24>, kBurstLanes> diurnal{};
      for (std::size_t l = 0; l < block_n; ++l) {
        const Probe& p = *probe[l];
        fault_ctx[l] = faults::ProbeContext{
            p.id, p.isp != nullptr ? p.isp->asn : 0u,
            faults::FaultSchedule::country_key(p.country->iso2),
            net::is_wireless(p.endpoint.access)};
        lane_profile[l] = &cache_.profile(p.id);
        lane_paths[l] = cache_.paths(p.id);
        for (std::uint32_t k = 0; k < diurnal_period; ++k) {
          const double utc_hour = static_cast<double>(
              (static_cast<std::uint64_t>(k) * config_.interval_hours) % 24);
          diurnal[l][k] = model_->diurnal_load(p.endpoint, utc_hour);
        }
      }

      // --- Lockstep tick loop.
      std::array<double, kBurstLanes> temporal_load{};
      std::array<bool, kBurstLanes> live{};
      std::array<faults::ProbeExposure, kBurstLanes> probe_exp{};
      std::uint32_t phase = 0;
      for (std::uint32_t tick = 0; tick < ticks; ++tick) {
        for (std::size_t l = 0; l < block_n; ++l) {
          // Scalar per-tick draw order: congestion step first, then the
          // churn Bernoulli (only consumed when uptime < 1).
          temporal_load[l] = congestion[l].step(model_config, rng.lane(l));
          live[l] = true;
          if (has_churn && !rng.lane(l).bernoulli(config_.probe_uptime)) {
            live[l] = false;  // offline tick: absent records
            continue;
          }
          if (has_faults) {
            probe_exp[l] = schedule_->probe_exposure(fault_ctx[l], tick);
            if (probe_exp[l].probe_down) {
              ++telemetry.hang_ticks;
              live[l] = false;
            }
          }
        }

        for (std::size_t j = 0; j < per_tick; ++j) {
          net::BurstStateLanes lanes_state;
          std::array<net::PingResult, kBurstLanes> results;
          std::array<std::uint16_t, kBurstLanes> region{};
          std::array<std::uint8_t, kBurstLanes> mask{};
          std::array<std::uint8_t, kBurstLanes> emit{};
          std::array<std::uint8_t, kBurstLanes> pre_lost{};
          std::size_t sampled = 0;
          for (std::size_t l = 0; l < block_n; ++l) {
            if (!live[l]) continue;
            std::size_t slot = slot_base[l] + j;
            if (slot >= targets.size()) slot -= targets.size();
            region[l] = targets[slot];
            emit[l] = 1;
            faults::BurstExposure exposure;
            if (has_faults) {
              exposure = schedule_->burst_exposure(fault_ctx[l], probe_exp[l],
                                                   region[l], tick);
              mask[l] = exposure.mask;
              if (exposure.lost) {
                pre_lost[l] = 1;  // no sampling, no draws — like scalar
                continue;
              }
            }
            const net::Perturbation perturbation =
                has_faults ? net::Perturbation{exposure.latency_multiplier,
                                               exposure.skew_ms,
                                               exposure.extra_loss}
                           : net::Perturbation{};
            const double load = diurnal[l][phase] * temporal_load[l] *
                                exposure.load_multiplier;
            lanes_state.set_lane(
                l, net::detail::make_burst_state(lane_paths[l][region[l]],
                                                 *lane_profile[l], load,
                                                 perturbation, excess_sigma));
            ++telemetry.bursts_cached;
            ++sampled;
          }
          if (sampled > 0) {
            net::sample_burst_lanes(model_config, lanes_state, excess_sigma,
                                    packets, rng, results);
            telemetry.bursts_batched += sampled;
          }
          for (std::size_t l = 0; l < block_n; ++l) {
            if (!emit[l]) continue;
            const net::PingResult ping =
                pre_lost[l] ? lost_burst_batched(packets) : results[l];
            Measurement m;
            m.probe_id = probe[l]->id;
            m.region_index = region[l];
            m.tick = tick;
            m.sent = static_cast<std::uint8_t>(ping.sent);
            m.received = static_cast<std::uint8_t>(ping.received);
            if (ping.received > 0) {
              m.min_ms = static_cast<float>(ping.min_ms);
              m.avg_ms = static_cast<float>(ping.avg_ms);
              m.max_ms = static_cast<float>(ping.max_ms);
            }
            m.faults = mask[l];
            lane_rows[l]->push_back(m);
            ++telemetry.bursts;
            if (mask[l] != 0) {
              ++telemetry.bursts_faulted;
              telemetry.fault_kinds.record(mask[l]);
            }
          }
        }

        // Rotation advances every tick for every lane, offline or hung
        // included — same as the scalar increment-clause advance.
        for (std::size_t l = 0; l < block_n; ++l) {
          slot_base[l] += per_tick;
          if (slot_base[l] >= targets.size()) slot_base[l] -= targets.size();
        }
        if (++phase == diurnal_period) phase = 0;
      }
    }
  }

  std::size_t total = 0;
  for (const auto& r : rows) total += r.size();
  out.reserve(out.size() + total);
  for (const auto& r : rows) out.insert(out.end(), r.begin(), r.end());
}

}  // namespace shears::atlas
