// Campaign-wide sampling cache.
//
// A campaign replays months of ping bursts over an invariant
// probe × region matrix, so the deterministic per-pair path work
// (haversine, stretch, hop budget) and the per-probe access profile are
// precomputed once — in parallel — instead of once per packet. The cache
// holds a flat row-major matrix (probe-major: one contiguous row of
// CachedPath per probe) plus one CachedProfile per probe. It is RNG-free
// by construction, so campaigns sampling through it are byte-identical to
// the recomputing engine and invariant across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "atlas/placement.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::atlas {

class PathCache {
 public:
  /// An empty cache (campaigns running with the cache disabled).
  PathCache() = default;

  /// Precomputes the full probe × region matrix with `threads` workers
  /// (0 = hardware concurrency). `fleet`, `registry`, and `model` are only
  /// read during construction; the cache owns its entries.
  PathCache(const ProbeFleet& fleet, const topology::CloudRegistry& registry,
            const net::LatencyModel& model, unsigned threads = 0);

  [[nodiscard]] bool empty() const noexcept { return paths_.empty(); }
  [[nodiscard]] std::size_t probe_count() const noexcept {
    return profiles_.size();
  }
  [[nodiscard]] std::size_t region_count() const noexcept {
    return region_count_;
  }

  /// The cached path state of one (probe, region) pair. Probe ids equal
  /// fleet indices; `region` indexes registry.regions().
  [[nodiscard]] const net::CachedPath& path(
      ProbeId probe, std::uint16_t region) const noexcept {
    return paths_[static_cast<std::size_t>(probe) * region_count_ + region];
  }

  /// The cached access state of one probe.
  [[nodiscard]] const net::CachedProfile& profile(
      ProbeId probe) const noexcept {
    return profiles_[probe];
  }

  /// One probe's contiguous row of per-region path states, indexable by
  /// region (the campaign's inner loop hoists the row base per probe).
  [[nodiscard]] const net::CachedPath* paths(ProbeId probe) const noexcept {
    return paths_.data() + static_cast<std::size_t>(probe) * region_count_;
  }

  /// Bytes held by the cache (telemetry / sizing studies).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return paths_.size() * sizeof(net::CachedPath) +
           profiles_.size() * sizeof(net::CachedProfile);
  }

 private:
  std::size_t region_count_ = 0;
  std::vector<net::CachedPath> paths_;      ///< probe-major flat matrix
  std::vector<net::CachedProfile> profiles_;
};

}  // namespace shears::atlas
