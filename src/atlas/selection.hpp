// Probe selection — the query side of the RIPE Atlas API: measurements
// are declared against probe filters (area, country, tags), not explicit
// probe lists. §4.1/§4.3 use exactly these filters (continental scoping,
// access-type tags, privileged-location exclusion).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "atlas/placement.hpp"
#include "geo/continent.hpp"

namespace shears::atlas {

struct ProbeFilter {
  std::optional<geo::Continent> continent;
  std::optional<std::string> country_iso2;
  /// Every listed tag must be present.
  std::vector<std::string_view> require_tags;
  /// No listed tag may be present.
  std::vector<std::string_view> exclude_tags;
  /// Drop datacentre/cloud probes (the study's default).
  bool exclude_privileged = true;
  /// Keep at most this many probes (0 = unlimited); selection is stable
  /// (fleet order), like requesting N probes from an area.
  std::size_t limit = 0;
};

/// Applies the filter over a fleet; stable order, no duplicates.
[[nodiscard]] std::vector<const Probe*> select_probes(const ProbeFleet& fleet,
                                                      const ProbeFilter& filter);

/// Number of probes matching without materialising the selection.
[[nodiscard]] std::size_t count_probes(const ProbeFleet& fleet,
                                       const ProbeFilter& filter);

}  // namespace shears::atlas
