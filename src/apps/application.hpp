// The application model of Fig. 2: each edge-motivating application as a
// requirements "ellipse" — a latency band, a data-generation volume, and
// its projected 2025 market size — plus the quadrant taxonomy of §3.
#pragma once

#include <span>
#include <string_view>

#include "apps/thresholds.hpp"

namespace shears::apps {

/// §3 quadrants over (latency strictness, bandwidth demand).
enum class Quadrant : unsigned char {
  kQ1LowLatencyLowBandwidth = 1,   ///< wearables, health monitoring
  kQ2LowLatencyHighBandwidth = 2,  ///< AR/VR, AV, cloud gaming (the hype)
  kQ3HighLatencyHighBandwidth = 3, ///< smart city, video analytics
  kQ4HighLatencyLowBandwidth = 4,  ///< smart home, weather monitoring
};

[[nodiscard]] constexpr std::string_view to_string(Quadrant q) noexcept {
  switch (q) {
    case Quadrant::kQ1LowLatencyLowBandwidth: return "Q1 (low lat, low bw)";
    case Quadrant::kQ2LowLatencyHighBandwidth: return "Q2 (low lat, high bw)";
    case Quadrant::kQ3HighLatencyHighBandwidth: return "Q3 (high lat, high bw)";
    case Quadrant::kQ4HighLatencyLowBandwidth: return "Q4 (high lat, low bw)";
  }
  return "unknown";
}

struct Application {
  std::string_view id;     ///< short slug, e.g. "cloud-gaming"
  std::string_view name;
  /// Strictest latency at which the application still gains anything —
  /// the lower edge of its requirements ellipse (ms round trip).
  double latency_floor_ms;
  /// Loosest latency at which it still works acceptably — the upper edge
  /// of the ellipse (ms round trip). The binding requirement.
  double latency_ceiling_ms;
  /// Data one entity (camera, car, sensor, player) generates per day (GB).
  double data_gb_per_entity_day;
  /// Projected 2025 market size, billions USD (Statista-derived).
  double market_2025_busd;
  /// Commonly cited as a *driver* of edge computing (the "hype" set).
  bool hyped_edge_driver;
};

/// Data-volume threshold above which edge-side aggregation meaningfully
/// relieves the backhaul (§5: "we estimate 1GB/entity data generation to
/// be a fitting threshold for edge's bandwidth aggregation gains").
inline constexpr double kBandwidthGainThresholdGbPerDay = 1.0;

/// Latency strictness boundary of the quadrant plot: an application is
/// "low latency" when it must respond within the perceivable-latency
/// threshold.
[[nodiscard]] constexpr bool is_latency_strict(const Application& a) noexcept {
  return a.latency_ceiling_ms <= kPerceivableLatencyMs;
}

[[nodiscard]] constexpr bool is_bandwidth_heavy(const Application& a) noexcept {
  return a.data_gb_per_entity_day >= kBandwidthGainThresholdGbPerDay;
}

[[nodiscard]] constexpr Quadrant quadrant_of(const Application& a) noexcept {
  if (is_latency_strict(a)) {
    return is_bandwidth_heavy(a) ? Quadrant::kQ2LowLatencyHighBandwidth
                                 : Quadrant::kQ1LowLatencyLowBandwidth;
  }
  return is_bandwidth_heavy(a) ? Quadrant::kQ3HighLatencyHighBandwidth
                               : Quadrant::kQ4HighLatencyLowBandwidth;
}

/// The embedded Fig. 2 catalog (16 applications).
[[nodiscard]] std::span<const Application> application_catalog() noexcept;

/// Lookup by slug; nullptr when absent.
[[nodiscard]] const Application* find_application(std::string_view id) noexcept;

}  // namespace shears::apps
