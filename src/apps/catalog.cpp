// The Fig. 2 application catalog.
//
// Requirement bands follow the published estimates the paper relies on
// ([7, 37, 42, 54, 64] — HUD latency studies, mobile cloud-gaming
// measurements, 360° streaming, gamer-perception studies); per-entity data
// volumes follow the usual per-device figures (an HD camera ~1-2 GB/h, an
// autonomous vehicle several TB/day, a wearable a few MB/day); market sizes
// are 2025 projections in billions USD (Statista-derived, as in the paper).
#include "apps/application.hpp"

#include <array>

namespace shears::apps {

namespace {

constexpr std::array kCatalog = {
    // --- Quadrant II candidates: strict latency, heavy data (the hype) ---
    Application{"ar-vr", "AR / VR", 2.5, 20.0, 40.0, 87.0, true},
    Application{"360-streaming", "360-degree streaming", 20.0, 100.0, 25.0,
                7.0, true},
    Application{"cloud-gaming", "Cloud gaming", 40.0, 100.0, 20.0, 8.0, true},
    Application{"autonomous-vehicles", "Autonomous vehicles", 1.0, 10.0,
                3000.0, 60.0, true},
    Application{"drone-control", "Drone video & control", 10.0, 50.0, 60.0,
                25.0, true},
    Application{"traffic-monitoring", "Traffic camera monitoring", 50.0, 100.0,
                30.0, 18.0, false},
    Application{"industrial-automation", "Industrial automation / robotics",
                1.0, 10.0, 80.0, 40.0, true},
    // --- Quadrant I: strict latency, light data --------------------------
    Application{"online-gaming", "Online multiplayer gaming", 30.0, 100.0,
                0.05, 92.0, false},
    Application{"wearables", "Wearables", 50.0, 100.0, 0.02, 63.0, true},
    Application{"remote-surgery", "Remote surgery / telepresence", 20.0, 250.0,
                0.8, 5.0, true},
    Application{"voice-assistants", "Voice assistants", 100.0, 250.0, 0.05,
                12.0, false},
    // --- Quadrant III: relaxed latency, heavy data -----------------------
    Application{"smart-city", "Smart city", 1000.0, 60000.0, 500.0, 89.0,
                true},
    Application{"video-analytics", "Retail video analytics", 250.0, 5000.0,
                40.0, 21.0, false},
    Application{"video-streaming", "Video-on-demand streaming", 1000.0,
                10000.0, 7.0, 103.0, false},
    // --- Quadrant IV: relaxed latency, light data ------------------------
    Application{"smart-home", "Smart home", 500.0, 5000.0, 0.3, 78.0, true},
    Application{"weather-monitoring", "Weather / environment monitoring",
                60000.0, 3600000.0, 0.01, 2.0, false},
};

}  // namespace

std::span<const Application> application_catalog() noexcept { return kCatalog; }

const Application* find_application(std::string_view id) noexcept {
  for (const Application& a : kCatalog) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

}  // namespace shears::apps
