// Human-perception latency thresholds (§3 of the paper).
//
// The paper anchors application feasibility to three human limits:
//   * Motion-to-Photon (MTP): <~20 ms end-to-end for immersive sync, of
//     which ~13 ms is consumed by display hardware, leaving ~7 ms for
//     compute+network; NASA HUD studies push the compute part to 2.5 ms.
//   * Perceivable Latency (PL): ~100 ms — visual feedback delay the eye
//     starts to notice in semi-passive interaction.
//   * Human Reaction Time (HRT): ~250 ms — stimulus-to-motor-response for
//     actively engaged users.
#pragma once

#include <string_view>

namespace shears::apps {

/// Motion-to-photon threshold for immersive applications (ms, end-to-end).
inline constexpr double kMotionToPhotonMs = 20.0;
/// Display-pipeline share of MTP (refresh, pixel switching).
inline constexpr double kMtpDisplayShareMs = 13.0;
/// Budget left for compute + network within MTP.
inline constexpr double kMtpComputeBudgetMs = 7.0;
/// NASA head-up-display requirement on the compute share of MTP.
inline constexpr double kNasaHudComputeMs = 2.5;
/// Perceivable-latency threshold (ms).
inline constexpr double kPerceivableLatencyMs = 100.0;
/// Human reaction time (ms).
inline constexpr double kHumanReactionTimeMs = 250.0;

/// Which perception regime a given round-trip budget falls into.
enum class LatencyRegime : unsigned char {
  kSubMtpCompute,  ///< <= 7 ms: inside the MTP compute budget
  kMtp,            ///< <= 20 ms: motion-to-photon
  kPerceivable,    ///< <= 100 ms: below perceivable latency
  kReaction,       ///< <= 250 ms: below human reaction time
  kRelaxed,        ///< anything slower
};

[[nodiscard]] constexpr LatencyRegime classify_latency(double rtt_ms) noexcept {
  if (rtt_ms <= kMtpComputeBudgetMs) return LatencyRegime::kSubMtpCompute;
  if (rtt_ms <= kMotionToPhotonMs) return LatencyRegime::kMtp;
  if (rtt_ms <= kPerceivableLatencyMs) return LatencyRegime::kPerceivable;
  if (rtt_ms <= kHumanReactionTimeMs) return LatencyRegime::kReaction;
  return LatencyRegime::kRelaxed;
}

[[nodiscard]] constexpr std::string_view to_string(LatencyRegime r) noexcept {
  switch (r) {
    case LatencyRegime::kSubMtpCompute: return "sub-MTP-compute";
    case LatencyRegime::kMtp: return "MTP";
    case LatencyRegime::kPerceivable: return "perceivable";
    case LatencyRegime::kReaction: return "reaction";
    case LatencyRegime::kRelaxed: return "relaxed";
  }
  return "unknown";
}

/// The threshold (ms) that upper-bounds a regime; +inf for kRelaxed.
[[nodiscard]] constexpr double regime_ceiling_ms(LatencyRegime r) noexcept {
  switch (r) {
    case LatencyRegime::kSubMtpCompute: return kMtpComputeBudgetMs;
    case LatencyRegime::kMtp: return kMotionToPhotonMs;
    case LatencyRegime::kPerceivable: return kPerceivableLatencyMs;
    case LatencyRegime::kReaction: return kHumanReactionTimeMs;
    case LatencyRegime::kRelaxed: return 1e300;
  }
  return 1e300;
}

}  // namespace shears::apps
