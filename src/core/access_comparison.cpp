#include "core/access_comparison.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "core/analysis.hpp"
#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "stats/ecdf.hpp"

namespace shears::core {

namespace {

enum class Kind : unsigned char { kNone, kWired, kWireless };

Kind kind_of(const atlas::Probe& probe) {
  // A probe with contradictory tags (both vocabularies) is ambiguous and
  // excluded, like in the paper's conservative filter.
  const bool wired = probe.tagged_wired();
  const bool wireless = probe.tagged_wireless();
  if (wired == wireless) return Kind::kNone;
  return wired ? Kind::kWired : Kind::kWireless;
}

std::vector<std::pair<double, double>> bucket_medians(
    std::map<std::uint32_t, std::vector<double>>&& buckets) {
  std::vector<std::pair<double, double>> out;
  out.reserve(buckets.size());
  // The buckets are dead after this summary, so hand each sample vector
  // to the Ecdf (which sorts in place) instead of copying it — the
  // longitudinal series costs one sort per bucket, no allocations.
  for (auto& [bucket, values] : buckets) {
    out.emplace_back(static_cast<double>(bucket),
                     stats::Ecdf(std::move(values)).median());
  }
  return out;
}

}  // namespace

AccessComparison compare_access(const atlas::MeasurementDataset& dataset,
                                AccessComparisonOptions options) {
  const AnalysisOptions analysis_options{options.exclude_privileged,
                                         options.threads, options.metrics};
  const std::vector<ProbeBest> best = per_probe_best(dataset, analysis_options);

  // Pass 1: which countries host both wired- and wireless-tagged,
  // non-privileged probes with at least one valid burst?
  const auto countries = geo::all_countries();
  std::vector<unsigned char> has_wired(countries.size(), 0);
  std::vector<unsigned char> has_wireless(countries.size(), 0);
  auto country_idx = [&](const geo::Country* c) {
    return static_cast<std::size_t>(c - countries.data());
  };
  for (const atlas::Probe& probe : dataset.fleet().probes()) {
    if (options.exclude_privileged && probe.privileged()) continue;
    if (!best[probe.id].valid) continue;
    switch (kind_of(probe)) {
      case Kind::kWired: has_wired[country_idx(probe.country)] = 1; break;
      case Kind::kWireless: has_wireless[country_idx(probe.country)] = 1; break;
      case Kind::kNone: break;
    }
  }

  auto comparable = [&](const atlas::Probe& probe) {
    const std::size_t idx = country_idx(probe.country);
    return has_wired[idx] != 0 && has_wireless[idx] != 0;
  };

  // Pass 2: collect bursts to each probe's best region. Sharded over the
  // contiguous record span and merged in shard order (concatenation plus
  // bitmap OR), so the sample vectors come out in the exact sequential
  // order for any thread count (see core/parallel.hpp).
  AccessComparison result;
  struct Shard {
    std::vector<double> wired;
    std::vector<double> wireless;
    std::map<std::uint32_t, std::vector<double>> wired_buckets;
    std::map<std::uint32_t, std::vector<double>> wireless_buckets;
    Bitmap counted;
  };
  const auto records = dataset.records();
  const std::size_t shards = resolve_threads(options.threads, records.size());
  std::vector<Shard> acc(shards);
  for (Shard& s : acc) s.counted = Bitmap(dataset.fleet().size());

  obs::LatencyHistogram* hist =
      options.metrics != nullptr
          ? &options.metrics->histogram("core.access_comparison.shard_ms")
          : nullptr;
  parallel_shards(
      records.size(), shards,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        obs::Span span(hist);
        Shard& mine = acc[shard];
        for (std::size_t i = begin; i < end; ++i) {
          const atlas::Measurement& m = records[i];
          if (m.lost()) continue;
          const ProbeBest& b = best[m.probe_id];
          if (!b.valid || m.region_index != b.region_index) continue;
          const atlas::Probe& probe = dataset.probe_of(m);
          if (options.exclude_privileged && probe.privileged()) continue;
          const Kind kind = kind_of(probe);
          if (kind == Kind::kNone || !comparable(probe)) continue;

          const std::uint32_t bucket =
              options.bucket_ticks > 0 ? m.tick / options.bucket_ticks
                                       : m.tick;
          if (kind == Kind::kWired) {
            mine.wired.push_back(m.min_ms);
            mine.wired_buckets[bucket].push_back(m.min_ms);
          } else {
            mine.wireless.push_back(m.min_ms);
            mine.wireless_buckets[bucket].push_back(m.min_ms);
          }
          mine.counted.test_set(m.probe_id);
        }
      });

  result.wired = std::move(acc[0].wired);
  result.wireless = std::move(acc[0].wireless);
  std::map<std::uint32_t, std::vector<double>> wired_buckets =
      std::move(acc[0].wired_buckets);
  std::map<std::uint32_t, std::vector<double>> wireless_buckets =
      std::move(acc[0].wireless_buckets);
  for (std::size_t s = 1; s < shards; ++s) {
    result.wired.insert(result.wired.end(), acc[s].wired.begin(),
                        acc[s].wired.end());
    result.wireless.insert(result.wireless.end(), acc[s].wireless.begin(),
                           acc[s].wireless.end());
    for (auto& [bucket, values] : acc[s].wired_buckets) {
      auto& dst = wired_buckets[bucket];
      dst.insert(dst.end(), values.begin(), values.end());
    }
    for (auto& [bucket, values] : acc[s].wireless_buckets) {
      auto& dst = wireless_buckets[bucket];
      dst.insert(dst.end(), values.begin(), values.end());
    }
    acc[0].counted.merge(acc[s].counted);
  }
  // A counted bit implies the probe passed the kind filter, so kind_of
  // resolves which population it belongs to.
  for (const atlas::Probe& probe : dataset.fleet().probes()) {
    if (!acc[0].counted.test(probe.id)) continue;
    if (kind_of(probe) == Kind::kWired) {
      ++result.wired_probe_count;
    } else {
      ++result.wireless_probe_count;
    }
  }

  result.wired_over_time = bucket_medians(std::move(wired_buckets));
  result.wireless_over_time = bucket_medians(std::move(wireless_buckets));
  // Empty populations yield NaN medians (no samples ⇒ no median); the
  // ratio stays an explicit 0.0 in that case rather than NaN-poisoning
  // the "~2.5x" headline comparison.
  result.wired_median = stats::Ecdf(result.wired).median();
  result.wireless_median = stats::Ecdf(result.wireless).median();
  result.median_ratio =
      result.wired_median > 0.0 && !std::isnan(result.wireless_median)
          ? result.wireless_median / result.wired_median
          : 0.0;
  result.added_latency_ms = result.wireless_median - result.wired_median;
  return result;
}

}  // namespace shears::core
