#include "core/feasibility.hpp"

namespace shears::core {

bool in_feasibility_zone(const apps::Application& app,
                         const FeasibilityConfig& config) {
  // The whole requirements ellipse must sit inside the latency-gain band:
  // even the *strictest* useful operating point must be deliverable over a
  // wireless last mile (floor >= ~10 ms), and the binding requirement must
  // be tighter than what the cloud already provides globally (<= HRT).
  // This is how Fig. 8 excludes AR/VR and autonomous vehicles despite
  // their heavy data: their ellipses dip below the wireless floor.
  const bool latency_band = app.latency_floor_ms >= config.latency_floor_ms &&
                            app.latency_ceiling_ms <= config.latency_ceiling_ms;
  const bool bandwidth_band =
      app.data_gb_per_entity_day >= config.bandwidth_threshold_gb;
  return latency_band && bandwidth_band;
}

EdgeVerdict classify(const apps::Application& app, double measured_cloud_rtt_ms,
                     const FeasibilityConfig& config) {
  if (app.latency_ceiling_ms <= config.latency_floor_ms) {
    return EdgeVerdict::kOnboardOnly;
  }
  if (measured_cloud_rtt_ms <= app.latency_ceiling_ms) {
    return EdgeVerdict::kCloudSufficient;
  }
  if (in_feasibility_zone(app, config)) {
    return EdgeVerdict::kEdgeFeasible;
  }
  if (app.data_gb_per_entity_day >= config.bandwidth_threshold_gb) {
    return EdgeVerdict::kBandwidthAggregation;
  }
  return EdgeVerdict::kNoEdgeCase;
}

std::vector<FeasibilityRow> classify_catalog(
    std::span<const apps::Application> catalog, double measured_cloud_rtt_ms,
    const FeasibilityConfig& config) {
  std::vector<FeasibilityRow> rows;
  rows.reserve(catalog.size());
  for (const apps::Application& app : catalog) {
    rows.push_back({&app, in_feasibility_zone(app, config),
                    classify(app, measured_cloud_rtt_ms, config)});
  }
  return rows;
}

MarketShareSummary market_share_summary(
    std::span<const apps::Application> catalog,
    const FeasibilityConfig& config) {
  MarketShareSummary summary;
  for (const apps::Application& app : catalog) {
    if (in_feasibility_zone(app, config)) {
      summary.in_zone_busd += app.market_2025_busd;
      ++summary.in_zone_apps;
      if (app.hyped_edge_driver) ++summary.hyped_in_zone_apps;
    } else {
      summary.out_of_zone_busd += app.market_2025_busd;
      if (app.hyped_edge_driver) {
        summary.hyped_out_of_zone_busd += app.market_2025_busd;
      }
    }
  }
  return summary;
}

}  // namespace shears::core
