// What-if engines for the §5/§6 discussion and the ablation benches:
//   * cloud-expansion sweep (A1): how country-level cloud proximity
//     evolved as the footprint grew from the 2010 handful of regions to
//     the 2020 set — the trend that "pruned" the latency argument;
//   * wireless-improvement sweep (A2): how the Fig. 7 wireless/wired gap
//     closes as last-mile wireless latency approaches the 5G promise.
//
// The expansion sweep is deterministic: it evaluates the congestion-free
// baseline RTT of each country's best realistic vantage point (a wired,
// well-connected probe at the national hub) against a historical footprint
// snapshot. The wireless sweep re-runs a (small) campaign per scale point.
#pragma once

#include <vector>

#include "atlas/campaign.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::core {

/// One row of the expansion sweep.
struct ExpansionPoint {
  int year = 0;
  std::size_t region_count = 0;
  std::size_t hosting_countries = 0;
  std::size_t countries_under_10ms = 0;
  std::size_t countries_under_20ms = 0;
  std::size_t countries_under_100ms = 0;
  /// Median over countries; NaN when the footprint reaches no country
  /// at all (pre-cloud years).
  double median_best_rtt_ms = 0.0;
};

/// Evaluates footprint snapshots at each year. Countries with no reachable
/// region in a snapshot (counting the §4.1 continental fallbacks as
/// reachable) count as not meeting any threshold.
[[nodiscard]] std::vector<ExpansionPoint> expansion_sweep(
    const std::vector<int>& years, const net::LatencyModel& model);

/// One row of the wireless-improvement sweep.
struct WirelessImprovementPoint {
  double wireless_scale = 1.0;  ///< multiplier on wireless access medians
  double wired_median_ms = 0.0;
  double wireless_median_ms = 0.0;
  double median_ratio = 0.0;
  double added_latency_ms = 0.0;
};

/// Re-runs the campaign with the wireless medians scaled by each factor
/// and reports the Fig. 7 statistics. The fleet/registry/config should be
/// kept small (hundreds of probes, weeks not months) — one campaign runs
/// per scale point.
[[nodiscard]] std::vector<WirelessImprovementPoint> wireless_improvement_sweep(
    const std::vector<double>& scales, const atlas::ProbeFleet& fleet,
    const topology::CloudRegistry& registry,
    const net::LatencyModelConfig& base_model,
    const atlas::CampaignConfig& campaign_config);

}  // namespace shears::core
