#include "core/quality.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "core/analysis.hpp"
#include "topology/provider.hpp"

namespace shears::core {

atlas::MeasurementDataset apply_quality_guards(
    const atlas::MeasurementDataset& dataset, const QualityPolicy& policy,
    QualityReport* report) {
  QualityReport local;
  local.records_in = dataset.size();

  // Pass 1: per-probe loss and per-(country, provider) successful-burst
  // counts, over the records the fault-mask rule keeps.
  std::map<atlas::ProbeId, std::pair<std::size_t, std::size_t>>
      probe_loss;  // probe -> (lost, total)
  std::map<std::pair<std::string_view, topology::CloudProvider>, std::size_t>
      cell_samples;
  for (const atlas::Measurement& m : dataset.records()) {
    if ((m.faults & policy.drop_fault_mask) != 0) continue;
    auto& [lost, total] = probe_loss[m.probe_id];
    ++total;
    if (m.lost()) ++lost;
  }
  std::vector<atlas::ProbeId> lossy;
  for (const auto& [probe_id, counts] : probe_loss) {
    if (policy.max_probe_loss < 1.0 && counts.second > 0 &&
        static_cast<double>(counts.first) >
            policy.max_probe_loss * static_cast<double>(counts.second)) {
      lossy.push_back(probe_id);
    }
  }
  local.probes_dropped = lossy.size();
  const auto is_lossy = [&lossy](atlas::ProbeId id) {
    return std::binary_search(lossy.begin(), lossy.end(), id);
  };
  for (const atlas::Measurement& m : dataset.records()) {
    if ((m.faults & policy.drop_fault_mask) != 0) continue;
    if (is_lossy(m.probe_id)) continue;
    if (m.lost()) continue;
    const atlas::Probe& p = dataset.probe_of(m);
    const topology::CloudRegion& r = dataset.region_of(m);
    ++cell_samples[{p.country->iso2, r.provider}];
  }
  local.cells_total = cell_samples.size();

  // Pass 2: keep what survives all three rules.
  std::vector<atlas::Measurement> kept;
  kept.reserve(dataset.size());
  for (const atlas::Measurement& m : dataset.records()) {
    if ((m.faults & policy.drop_fault_mask) != 0) {
      ++local.dropped_faulted;
      continue;
    }
    if (is_lossy(m.probe_id)) {
      ++local.dropped_lossy_probes;
      continue;
    }
    const atlas::Probe& p = dataset.probe_of(m);
    const topology::CloudRegion& r = dataset.region_of(m);
    const auto cell = cell_samples.find({p.country->iso2, r.provider});
    const std::size_t samples =
        cell != cell_samples.end() ? cell->second : 0;
    if (policy.min_cell_samples > 0 && samples < policy.min_cell_samples) {
      ++local.dropped_thin_cells;
      continue;
    }
    kept.push_back(m);
  }
  local.records_out = kept.size();
  if (policy.min_cell_samples > 0) {
    for (const auto& [cell, samples] : cell_samples) {
      if (samples < policy.min_cell_samples) ++local.cells_dropped;
    }
  }
  if (report != nullptr) *report = local;
  return atlas::MeasurementDataset(&dataset.fleet(), &dataset.registry(),
                                   std::move(kept));
}

namespace {

/// Median of a continent's per-probe campaign minima; 0 when empty.
double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(), values.begin() + mid);
    return 0.5 * (lower + upper);
  }
  return upper;
}

}  // namespace

DegradationReport degradation_report(
    const atlas::MeasurementDataset& clean,
    const atlas::MeasurementDataset& faulted,
    std::span<const apps::Application> catalog, const QualityPolicy& policy,
    const FeasibilityConfig& config) {
  const atlas::MeasurementDataset clean_guarded =
      apply_quality_guards(clean, policy);
  const atlas::MeasurementDataset faulted_guarded =
      apply_quality_guards(faulted, policy);
  const auto clean_minima = min_rtt_by_continent(clean_guarded);
  const auto faulted_minima = min_rtt_by_continent(faulted_guarded);

  DegradationReport report;
  for (const geo::Continent c : geo::kAllContinents) {
    const auto& a = clean_minima[geo::index_of(c)];
    const auto& b = faulted_minima[geo::index_of(c)];
    if (a.empty() || b.empty()) continue;
    VerdictShift row;
    row.continent = c;
    row.clean_median_ms = median_of(a);
    row.faulted_median_ms = median_of(b);
    const auto clean_rows =
        classify_catalog(catalog, row.clean_median_ms, config);
    const auto faulted_rows =
        classify_catalog(catalog, row.faulted_median_ms, config);
    row.apps = clean_rows.size();
    for (std::size_t i = 0; i < clean_rows.size(); ++i) {
      if (clean_rows[i].verdict != faulted_rows[i].verdict) ++row.changed;
    }
    report.apps_total += row.apps;
    report.changed_total += row.changed;
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace shears::core
