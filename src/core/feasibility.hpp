// The "latency shears" — Fig. 8's feasibility zone and the per-application
// edge-vs-cloud verdicts of §5.
//
// The zone is the overlap of two reality boundaries derived from §4:
//   * latency gains: edge can only help applications whose requirement
//     sits between the wireless last-mile floor (~10 ms — tighter budgets
//     are unreachable even from a basestation-colocated server) and the
//     human reaction time (~250 ms — anything looser is already satisfied
//     by the cloud almost globally);
//   * bandwidth gains: aggregation pays off from ~1 GB/entity/day of
//     generated data.
// An application inside both bands is edge-feasible; everything else is
// served by the cloud, must run on-device, or only has the (weak)
// aggregation case.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "apps/application.hpp"

namespace shears::core {

struct FeasibilityConfig {
  /// Wireless last-mile floor (ms): minimum achievable RTT even to an edge
  /// server at the basestation (§5: "current wireless technologies do not
  /// support access link latencies below 10 ms").
  double latency_floor_ms = 10.0;
  /// Upper latency bound: HRT, supported by the cloud almost globally.
  double latency_ceiling_ms = apps::kHumanReactionTimeMs;
  /// Bandwidth-gain threshold (GB generated per entity per day).
  double bandwidth_threshold_gb = apps::kBandwidthGainThresholdGbPerDay;
};

/// Fig. 8 geometry: does the application's requirements ellipse fall in
/// the feasibility zone?
[[nodiscard]] bool in_feasibility_zone(const apps::Application& app,
                                       const FeasibilityConfig& config = {});

/// Deployment recommendation for an application given the cloud latency
/// its users actually experience (e.g. a continent's median from §4).
enum class EdgeVerdict : unsigned char {
  kCloudSufficient,       ///< the measured cloud already meets the need
  kEdgeFeasible,          ///< inside the FZ and the cloud falls short
  kOnboardOnly,           ///< requirement below the wireless floor
  kBandwidthAggregation,  ///< only the backhaul-offload case remains
  kNoEdgeCase,            ///< relaxed latency, light data: nothing to gain
};

[[nodiscard]] constexpr std::string_view to_string(EdgeVerdict v) noexcept {
  switch (v) {
    case EdgeVerdict::kCloudSufficient: return "cloud-sufficient";
    case EdgeVerdict::kEdgeFeasible: return "edge-feasible";
    case EdgeVerdict::kOnboardOnly: return "onboard-only";
    case EdgeVerdict::kBandwidthAggregation: return "bandwidth-aggregation";
    case EdgeVerdict::kNoEdgeCase: return "no-edge-case";
  }
  return "unknown";
}

/// §5 logic, applied in order:
///   1. requirement at or below the wireless floor → onboard-only;
///   2. measured cloud RTT meets the requirement → cloud-sufficient
///      (the paper's headline: the cloud is already "close enough");
///   3. inside the FZ → edge-feasible;
///   4. heavy data but relaxed latency → bandwidth-aggregation;
///   5. otherwise → no edge case.
[[nodiscard]] EdgeVerdict classify(const apps::Application& app,
                                   double measured_cloud_rtt_ms,
                                   const FeasibilityConfig& config = {});

/// One Fig. 8 table row.
struct FeasibilityRow {
  const apps::Application* app = nullptr;
  bool in_zone = false;
  EdgeVerdict verdict = EdgeVerdict::kNoEdgeCase;
};

/// Classifies a whole catalog against one measured cloud RTT.
[[nodiscard]] std::vector<FeasibilityRow> classify_catalog(
    std::span<const apps::Application> catalog, double measured_cloud_rtt_ms,
    const FeasibilityConfig& config = {});

/// §5's market-share contrast: the FZ's combined 2025 market "pales
/// compared to" the out-of-zone hype drivers.
struct MarketShareSummary {
  double in_zone_busd = 0.0;
  double out_of_zone_busd = 0.0;
  double hyped_out_of_zone_busd = 0.0;  ///< hype drivers outside the FZ
  std::size_t in_zone_apps = 0;
  std::size_t hyped_in_zone_apps = 0;
};

[[nodiscard]] MarketShareSummary market_share_summary(
    std::span<const apps::Application> catalog,
    const FeasibilityConfig& config = {});

}  // namespace shears::core
