// Data-quality guards and the clean-vs-faulted degradation report.
//
// Real measurement studies never analyse their raw data: probes with
// broken firmware are excluded, thin (country, provider) cells are not
// trusted, and artifact-heavy episodes are cut (Martin & Dogar show such
// artifacts materially shift per-country latency conclusions). These
// guards do the same for simulated datasets, keyed off the fault flags
// the resilient campaign engine records — so the §4/§5 analyses can be
// run on clean and faulted datasets alike, and the degradation report
// quantifies how far the feasibility-zone verdicts drift.
#pragma once

#include <span>
#include <vector>

#include "apps/application.hpp"
#include "atlas/measurement.hpp"
#include "core/feasibility.hpp"
#include "faults/fault_schedule.hpp"
#include "geo/continent.hpp"

namespace shears::core {

struct QualityPolicy {
  /// Records whose fault bitmask intersects this are dropped. Default:
  /// clock-skew — skewed RTTs are *wrong*, not missing, and a single
  /// biased probe can poison a country's campaign minimum.
  std::uint8_t drop_fault_mask =
      faults::fault_bit(faults::FaultKind::kClockSkew);
  /// Probes whose personal fully-lost fraction exceeds this lose all
  /// their records — the offline-probe guard for datasets produced
  /// without the engine's quarantine enabled. 1.0 disables.
  double max_probe_loss = 0.5;
  /// Minimum successful bursts a (country, provider) cell needs; cells
  /// below the floor are dropped entirely (coverage-gap guard). 0
  /// disables.
  std::size_t min_cell_samples = 8;
};

/// What the guards did; every drop is accounted for.
struct QualityReport {
  std::size_t records_in = 0;
  std::size_t records_out = 0;
  std::size_t dropped_faulted = 0;      ///< fault-mask rule
  std::size_t dropped_lossy_probes = 0; ///< records of over-lossy probes
  std::size_t dropped_thin_cells = 0;   ///< records of under-sampled cells
  std::size_t probes_dropped = 0;       ///< probes failing max_probe_loss
  std::size_t cells_total = 0;          ///< (country, provider) cells seen
  std::size_t cells_dropped = 0;
};

/// Applies the guards in order (fault mask, lossy probes, thin cells) and
/// returns the surviving records as a new dataset over the same fleet and
/// registry. A clean dataset passes through untouched.
[[nodiscard]] atlas::MeasurementDataset apply_quality_guards(
    const atlas::MeasurementDataset& dataset, const QualityPolicy& policy = {},
    QualityReport* report = nullptr);

/// One continent's clean-vs-faulted feasibility comparison.
struct VerdictShift {
  geo::Continent continent = geo::Continent::kEurope;
  double clean_median_ms = 0.0;    ///< median per-probe campaign minimum
  double faulted_median_ms = 0.0;
  std::size_t apps = 0;            ///< catalog entries classified
  std::size_t changed = 0;         ///< verdicts that differ between runs
};

struct DegradationReport {
  std::vector<VerdictShift> rows;  ///< continents with data in both runs
  std::size_t apps_total = 0;      ///< classifications compared
  std::size_t changed_total = 0;

  /// True when no verdict moved — the paper's conclusions are stable
  /// under the injected fault regime.
  [[nodiscard]] bool stable() const noexcept { return changed_total == 0; }
};

/// Runs the §5 classifier per continent on both datasets (after applying
/// the same quality guards to each) and reports the verdict deltas.
[[nodiscard]] DegradationReport degradation_report(
    const atlas::MeasurementDataset& clean,
    const atlas::MeasurementDataset& faulted,
    std::span<const apps::Application> catalog,
    const QualityPolicy& policy = {}, const FeasibilityConfig& config = {});

}  // namespace shears::core
