#include "core/analysis.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "apps/thresholds.hpp"
#include "net/latency_model.hpp"
#include "stats/ecdf.hpp"

namespace shears::core {

namespace {

/// Index of a country inside the embedded registry (pointer arithmetic is
/// valid: all Country objects live in one contiguous table).
std::size_t country_index(const geo::Country* c) noexcept {
  return static_cast<std::size_t>(c - geo::all_countries().data());
}

bool skip_probe(const atlas::Probe& probe, const AnalysisOptions& options) {
  return options.exclude_privileged && probe.privileged();
}

}  // namespace

std::vector<CountryMinLatency> country_min_latency(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options) {
  const auto countries = geo::all_countries();
  struct Acc {
    double min = std::numeric_limits<double>::infinity();
    const topology::CloudRegion* region = nullptr;
    std::vector<bool> seen_probe;
    std::size_t probes = 0;
  };
  std::vector<Acc> acc(countries.size());
  for (auto& a : acc) a.seen_probe.assign(dataset.fleet().size(), false);

  for (const atlas::Measurement& m : dataset.records()) {
    const atlas::Probe& probe = dataset.probe_of(m);
    if (skip_probe(probe, options)) continue;
    Acc& a = acc[country_index(probe.country)];
    if (!a.seen_probe[m.probe_id]) {
      a.seen_probe[m.probe_id] = true;
      ++a.probes;
    }
    if (m.lost()) continue;
    if (m.min_ms < a.min) {
      a.min = m.min_ms;
      a.region = &dataset.region_of(m);
    }
  }

  std::vector<CountryMinLatency> out;
  for (std::size_t i = 0; i < countries.size(); ++i) {
    if (acc[i].region == nullptr) continue;  // no successful measurement
    out.push_back({&countries[i], acc[i].min, acc[i].region, acc[i].probes});
  }
  return out;
}

LatencyBands band_country_latencies(
    const std::vector<CountryMinLatency>& rows) noexcept {
  LatencyBands bands;
  for (const CountryMinLatency& row : rows) {
    if (row.min_rtt_ms < 10.0) {
      ++bands.under_10;
    } else if (row.min_rtt_ms < 20.0) {
      ++bands.from_10_to_20;
    } else if (row.min_rtt_ms < 50.0) {
      ++bands.from_20_to_50;
    } else if (row.min_rtt_ms < 100.0) {
      ++bands.from_50_to_100;
    } else {
      ++bands.over_100;
    }
  }
  return bands;
}

std::vector<ProbeBest> per_probe_best(const atlas::MeasurementDataset& dataset,
                                      AnalysisOptions options) {
  std::vector<ProbeBest> best(dataset.fleet().size());
  for (std::size_t i = 0; i < best.size(); ++i) {
    best[i].probe_id = static_cast<atlas::ProbeId>(i);
  }
  for (const atlas::Measurement& m : dataset.records()) {
    if (m.lost()) continue;
    const atlas::Probe& probe = dataset.probe_of(m);
    if (skip_probe(probe, options)) continue;
    ProbeBest& b = best[m.probe_id];
    if (!b.valid || m.min_ms < b.min_ms) {
      b.valid = true;
      b.min_ms = m.min_ms;
      b.region_index = m.region_index;
    }
  }
  return best;
}

std::array<std::vector<double>, geo::kContinentCount> min_rtt_by_continent(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options) {
  std::array<std::vector<double>, geo::kContinentCount> out;
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  for (const ProbeBest& b : best) {
    if (!b.valid) continue;
    const atlas::Probe& probe = dataset.fleet().probe(b.probe_id);
    out[geo::index_of(probe.country->continent)].push_back(b.min_ms);
  }
  return out;
}

std::array<std::vector<double>, geo::kContinentCount>
best_region_samples_by_continent(const atlas::MeasurementDataset& dataset,
                                 AnalysisOptions options) {
  std::array<std::vector<double>, geo::kContinentCount> out;
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  for (const atlas::Measurement& m : dataset.records()) {
    if (m.lost()) continue;
    const ProbeBest& b = best[m.probe_id];
    if (!b.valid || m.region_index != b.region_index) continue;
    const atlas::Probe& probe = dataset.probe_of(m);
    if (skip_probe(probe, options)) continue;
    out[geo::index_of(probe.country->continent)].push_back(m.min_ms);
  }
  return out;
}

int DiurnalProfile::peak_hour() const noexcept {
  int best = -1;
  double best_median = -1.0;
  for (int h = 0; h < 24; ++h) {
    if (count[static_cast<std::size_t>(h)] == 0) continue;
    if (median_ms[static_cast<std::size_t>(h)] > best_median) {
      best_median = median_ms[static_cast<std::size_t>(h)];
      best = h;
    }
  }
  return best;
}

double DiurnalProfile::peak_to_trough() const noexcept {
  double hi = -1.0;
  double lo = std::numeric_limits<double>::infinity();
  for (int h = 0; h < 24; ++h) {
    if (count[static_cast<std::size_t>(h)] == 0) continue;
    hi = std::max(hi, median_ms[static_cast<std::size_t>(h)]);
    lo = std::min(lo, median_ms[static_cast<std::size_t>(h)]);
  }
  return (hi > 0.0 && lo > 0.0 && lo < hi) ? hi / lo : 1.0;
}

DiurnalProfile diurnal_profile(const atlas::MeasurementDataset& dataset,
                               int interval_hours, AnalysisOptions options) {
  std::array<std::vector<double>, 24> buckets;
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  for (const atlas::Measurement& m : dataset.records()) {
    if (m.lost()) continue;
    const ProbeBest& b = best[m.probe_id];
    if (!b.valid || m.region_index != b.region_index) continue;
    const atlas::Probe& probe = dataset.probe_of(m);
    if (skip_probe(probe, options)) continue;
    const double utc_hour = static_cast<double>(
        (static_cast<std::uint64_t>(m.tick) * interval_hours) % 24);
    const double local =
        net::local_hour_at(utc_hour, probe.endpoint.location.lon_deg);
    auto hour = static_cast<std::size_t>(local);
    if (hour >= 24) hour = 23;
    buckets[hour].push_back(m.min_ms);
  }
  DiurnalProfile profile;
  for (std::size_t h = 0; h < 24; ++h) {
    profile.count[h] = buckets[h].size();
    if (!buckets[h].empty()) {
      profile.median_ms[h] = stats::Ecdf(std::move(buckets[h])).median();
    }
  }
  return profile;
}

PopulationCoverage population_coverage(
    const std::vector<CountryMinLatency>& rows) {
  PopulationCoverage cov;
  cov.world_population_m = geo::world_population_m();
  double mtp = 0.0;
  double pl = 0.0;
  double hrt = 0.0;
  for (const CountryMinLatency& row : rows) {
    cov.measured_population_m += row.country->population_m;
    if (row.min_rtt_ms <= apps::kMotionToPhotonMs) mtp += row.country->population_m;
    if (row.min_rtt_ms <= apps::kPerceivableLatencyMs) pl += row.country->population_m;
    if (row.min_rtt_ms <= apps::kHumanReactionTimeMs) hrt += row.country->population_m;
  }
  if (cov.world_population_m > 0.0) {
    cov.under_mtp = mtp / cov.world_population_m;
    cov.under_pl = pl / cov.world_population_m;
    cov.under_hrt = hrt / cov.world_population_m;
  }
  return cov;
}

std::vector<RegionView> server_side_view(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options) {
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  const auto& regions = dataset.registry().regions();
  std::vector<std::vector<double>> samples(regions.size());
  std::vector<std::vector<bool>> seen(regions.size());
  for (auto& s : seen) s.assign(dataset.fleet().size(), false);
  std::vector<std::size_t> clients(regions.size(), 0);

  for (const atlas::Measurement& m : dataset.records()) {
    if (m.lost()) continue;
    const ProbeBest& b = best[m.probe_id];
    if (!b.valid || m.region_index != b.region_index) continue;
    const atlas::Probe& probe = dataset.probe_of(m);
    if (skip_probe(probe, options)) continue;
    samples[m.region_index].push_back(m.min_ms);
    if (!seen[m.region_index][m.probe_id]) {
      seen[m.region_index][m.probe_id] = true;
      ++clients[m.region_index];
    }
  }

  std::vector<RegionView> out;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (samples[i].empty()) continue;
    RegionView view;
    view.region = regions[i];
    view.clients = clients[i];
    view.samples = samples[i].size();
    const stats::Ecdf ecdf(std::move(samples[i]));
    view.median_ms = ecdf.median();
    view.p90_ms = ecdf.percentile(90.0);
    view.under_40ms = ecdf.fraction_at_or_below(40.0);
    out.push_back(view);
  }
  std::sort(out.begin(), out.end(), [](const RegionView& a, const RegionView& b) {
    return a.clients > b.clients;
  });
  return out;
}

std::vector<IspStats> isp_comparison(const atlas::MeasurementDataset& dataset,
                                     std::string_view country_iso2,
                                     AnalysisOptions options) {
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  std::map<const atlas::IspProfile*, std::vector<double>> by_isp;
  for (const atlas::Probe& probe : dataset.fleet().probes()) {
    if (probe.country->iso2 != country_iso2 || probe.isp == nullptr) continue;
    if (options.exclude_privileged && probe.privileged()) continue;
    if (!best[probe.id].valid) continue;
    by_isp[probe.isp].push_back(best[probe.id].min_ms);
  }
  std::vector<IspStats> out;
  out.reserve(by_isp.size());
  for (const auto& [isp, minima] : by_isp) {
    IspStats stats;
    stats.isp = isp;
    stats.probe_count = minima.size();
    stats.median_min_rtt_ms = stats::Ecdf(minima).median();
    out.push_back(stats);
  }
  std::sort(out.begin(), out.end(), [](const IspStats& a, const IspStats& b) {
    return a.median_min_rtt_ms < b.median_min_rtt_ms;
  });
  return out;
}

ThresholdCoverage coverage_of(const std::vector<double>& sample) {
  ThresholdCoverage cov;
  cov.n = sample.size();
  if (sample.empty()) return cov;
  std::size_t mtp = 0;
  std::size_t pl = 0;
  std::size_t hrt = 0;
  for (const double v : sample) {
    if (v <= apps::kMotionToPhotonMs) ++mtp;
    if (v <= apps::kPerceivableLatencyMs) ++pl;
    if (v <= apps::kHumanReactionTimeMs) ++hrt;
  }
  const auto n = static_cast<double>(sample.size());
  cov.under_mtp = mtp / n;
  cov.under_pl = pl / n;
  cov.under_hrt = hrt / n;
  return cov;
}

}  // namespace shears::core
