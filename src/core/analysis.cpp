#include "core/analysis.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "apps/thresholds.hpp"
#include "core/parallel.hpp"
#include "net/latency_model.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "stats/ecdf.hpp"

namespace shears::core {

namespace {

/// Index of a country inside the embedded registry (pointer arithmetic is
/// valid: all Country objects live in one contiguous table).
std::size_t country_index(const geo::Country* c) noexcept {
  return static_cast<std::size_t>(c - geo::all_countries().data());
}

bool skip_probe(const atlas::Probe& probe, const AnalysisOptions& options) {
  return options.exclude_privileged && probe.privileged();
}

/// Resolves the per-shard wall-time histogram once, before the fork; a
/// null registry yields a null histogram, which turns every worker's Span
/// into a no-op.
obs::LatencyHistogram* shard_hist(const AnalysisOptions& options,
                                  std::string_view name) {
  return options.metrics != nullptr ? &options.metrics->histogram(name)
                                    : nullptr;
}

}  // namespace

std::vector<CountryMinLatency> country_min_latency(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options) {
  const auto countries = geo::all_countries();
  const auto records = dataset.records();
  const std::size_t shards = resolve_threads(options.threads, records.size());

  // Per-shard accumulators; merged in shard order below. `min` uses
  // strict-less both per shard and at merge, so the earliest record wins
  // ties exactly as the sequential scan did. Probe distinctness is one
  // fleet-sized Bitmap per shard (a probe has exactly one country), not
  // the former countries x fleet bool table.
  struct Acc {
    double min = std::numeric_limits<double>::infinity();
    const topology::CloudRegion* region = nullptr;
  };
  std::vector<std::vector<Acc>> acc(shards,
                                    std::vector<Acc>(countries.size()));
  std::vector<Bitmap> seen(shards);
  for (auto& s : seen) s = Bitmap(dataset.fleet().size());

  obs::LatencyHistogram* hist =
      shard_hist(options, "core.country_min.shard_ms");
  parallel_shards(records.size(), shards,
                  [&](std::size_t shard, std::size_t begin, std::size_t end) {
                    obs::Span span(hist);
                    std::vector<Acc>& mine = acc[shard];
                    Bitmap& mine_seen = seen[shard];
                    for (std::size_t i = begin; i < end; ++i) {
                      const atlas::Measurement& m = records[i];
                      const atlas::Probe& probe = dataset.probe_of(m);
                      if (skip_probe(probe, options)) continue;
                      mine_seen.test_set(m.probe_id);
                      if (m.lost()) continue;
                      Acc& a = mine[country_index(probe.country)];
                      if (m.min_ms < a.min) {
                        a.min = m.min_ms;
                        a.region = &dataset.region_of(m);
                      }
                    }
                  });

  std::vector<Acc> total(countries.size());
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t c = 0; c < countries.size(); ++c) {
      if (acc[s][c].min < total[c].min) total[c] = acc[s][c];
    }
    if (s > 0) seen[0].merge(seen[s]);
  }
  std::vector<std::size_t> probes(countries.size(), 0);
  for (const atlas::Probe& probe : dataset.fleet().probes()) {
    if (seen[0].test(probe.id)) ++probes[country_index(probe.country)];
  }

  std::vector<CountryMinLatency> out;
  for (std::size_t i = 0; i < countries.size(); ++i) {
    if (total[i].region == nullptr) continue;  // no successful measurement
    out.push_back({&countries[i], total[i].min, total[i].region, probes[i]});
  }
  return out;
}

LatencyBands band_country_latencies(
    const std::vector<CountryMinLatency>& rows) noexcept {
  LatencyBands bands;
  for (const CountryMinLatency& row : rows) {
    if (row.min_rtt_ms < 10.0) {
      ++bands.under_10;
    } else if (row.min_rtt_ms < 20.0) {
      ++bands.from_10_to_20;
    } else if (row.min_rtt_ms < 50.0) {
      ++bands.from_20_to_50;
    } else if (row.min_rtt_ms < 100.0) {
      ++bands.from_50_to_100;
    } else {
      ++bands.over_100;
    }
  }
  return bands;
}

std::vector<ProbeBest> per_probe_best(const atlas::MeasurementDataset& dataset,
                                      AnalysisOptions options) {
  const auto records = dataset.records();
  const std::size_t shards = resolve_threads(options.threads, records.size());

  std::vector<std::vector<ProbeBest>> acc(
      shards, std::vector<ProbeBest>(dataset.fleet().size()));
  obs::LatencyHistogram* hist =
      shard_hist(options, "core.per_probe_best.shard_ms");
  parallel_shards(records.size(), shards,
                  [&](std::size_t shard, std::size_t begin, std::size_t end) {
                    obs::Span span(hist);
                    std::vector<ProbeBest>& mine = acc[shard];
                    for (std::size_t i = begin; i < end; ++i) {
                      const atlas::Measurement& m = records[i];
                      if (m.lost()) continue;
                      const atlas::Probe& probe = dataset.probe_of(m);
                      if (skip_probe(probe, options)) continue;
                      ProbeBest& b = mine[m.probe_id];
                      if (!b.valid || m.min_ms < b.min_ms) {
                        b.valid = true;
                        b.min_ms = m.min_ms;
                        b.region_index = m.region_index;
                      }
                    }
                  });

  // Merge in shard order with the same strict-less rule: the earliest
  // record holding the minimum keeps the region choice, byte-identical to
  // the sequential scan for any shard count.
  std::vector<ProbeBest> best = std::move(acc[0]);
  for (std::size_t s = 1; s < shards; ++s) {
    for (std::size_t p = 0; p < best.size(); ++p) {
      const ProbeBest& theirs = acc[s][p];
      if (!theirs.valid) continue;
      ProbeBest& b = best[p];
      if (!b.valid || theirs.min_ms < b.min_ms) b = theirs;
    }
  }
  for (std::size_t i = 0; i < best.size(); ++i) {
    best[i].probe_id = static_cast<atlas::ProbeId>(i);
  }
  return best;
}

std::array<std::vector<double>, geo::kContinentCount> min_rtt_by_continent(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options) {
  std::array<std::vector<double>, geo::kContinentCount> out;
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  for (const ProbeBest& b : best) {
    if (!b.valid) continue;
    const atlas::Probe& probe = dataset.fleet().probe(b.probe_id);
    out[geo::index_of(probe.country->continent)].push_back(b.min_ms);
  }
  return out;
}

std::array<std::vector<double>, geo::kContinentCount>
best_region_samples_by_continent(const atlas::MeasurementDataset& dataset,
                                 AnalysisOptions options) {
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  const auto records = dataset.records();
  const std::size_t shards = resolve_threads(options.threads, records.size());

  using Split = std::array<std::vector<double>, geo::kContinentCount>;
  std::vector<Split> acc(shards);
  obs::LatencyHistogram* hist =
      shard_hist(options, "core.best_region_samples.shard_ms");
  parallel_shards(records.size(), shards,
                  [&](std::size_t shard, std::size_t begin, std::size_t end) {
                    obs::Span span(hist);
                    Split& mine = acc[shard];
                    for (std::size_t i = begin; i < end; ++i) {
                      const atlas::Measurement& m = records[i];
                      if (m.lost()) continue;
                      const ProbeBest& b = best[m.probe_id];
                      if (!b.valid || m.region_index != b.region_index) {
                        continue;
                      }
                      const atlas::Probe& probe = dataset.probe_of(m);
                      if (skip_probe(probe, options)) continue;
                      mine[geo::index_of(probe.country->continent)].push_back(
                          m.min_ms);
                    }
                  });

  // Shards hold contiguous record ranges, so concatenating them in shard
  // order reproduces the sequential sample order exactly.
  Split out = std::move(acc[0]);
  for (std::size_t s = 1; s < shards; ++s) {
    for (std::size_t c = 0; c < geo::kContinentCount; ++c) {
      out[c].insert(out[c].end(), acc[s][c].begin(), acc[s][c].end());
    }
  }
  return out;
}

int DiurnalProfile::peak_hour() const noexcept {
  int best = -1;
  double best_median = -1.0;
  for (int h = 0; h < 24; ++h) {
    if (count[static_cast<std::size_t>(h)] == 0) continue;
    if (median_ms[static_cast<std::size_t>(h)] > best_median) {
      best_median = median_ms[static_cast<std::size_t>(h)];
      best = h;
    }
  }
  return best;
}

double DiurnalProfile::peak_to_trough() const noexcept {
  double hi = -1.0;
  double lo = std::numeric_limits<double>::infinity();
  for (int h = 0; h < 24; ++h) {
    if (count[static_cast<std::size_t>(h)] == 0) continue;
    hi = std::max(hi, median_ms[static_cast<std::size_t>(h)]);
    lo = std::min(lo, median_ms[static_cast<std::size_t>(h)]);
  }
  return (hi > 0.0 && lo > 0.0 && lo < hi) ? hi / lo : 1.0;
}

DiurnalProfile diurnal_profile(const atlas::MeasurementDataset& dataset,
                               int interval_hours, AnalysisOptions options) {
  std::array<std::vector<double>, 24> buckets;
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  for (const atlas::Measurement& m : dataset.records()) {
    if (m.lost()) continue;
    const ProbeBest& b = best[m.probe_id];
    if (!b.valid || m.region_index != b.region_index) continue;
    const atlas::Probe& probe = dataset.probe_of(m);
    if (skip_probe(probe, options)) continue;
    const double utc_hour = static_cast<double>(
        (static_cast<std::uint64_t>(m.tick) * interval_hours) % 24);
    const double local =
        net::local_hour_at(utc_hour, probe.endpoint.location.lon_deg);
    auto hour = static_cast<std::size_t>(local);
    if (hour >= 24) hour = 23;
    buckets[hour].push_back(m.min_ms);
  }
  DiurnalProfile profile;
  for (std::size_t h = 0; h < 24; ++h) {
    profile.count[h] = buckets[h].size();
    if (!buckets[h].empty()) {
      profile.median_ms[h] = stats::Ecdf(std::move(buckets[h])).median();
    }
  }
  return profile;
}

PopulationCoverage population_coverage(
    const std::vector<CountryMinLatency>& rows) {
  PopulationCoverage cov;
  cov.world_population_m = geo::world_population_m();
  double mtp = 0.0;
  double pl = 0.0;
  double hrt = 0.0;
  for (const CountryMinLatency& row : rows) {
    cov.measured_population_m += row.country->population_m;
    if (row.min_rtt_ms <= apps::kMotionToPhotonMs) mtp += row.country->population_m;
    if (row.min_rtt_ms <= apps::kPerceivableLatencyMs) pl += row.country->population_m;
    if (row.min_rtt_ms <= apps::kHumanReactionTimeMs) hrt += row.country->population_m;
  }
  if (cov.world_population_m > 0.0) {
    cov.under_mtp = mtp / cov.world_population_m;
    cov.under_pl = pl / cov.world_population_m;
    cov.under_hrt = hrt / cov.world_population_m;
  }
  return cov;
}

std::vector<RegionView> server_side_view(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options) {
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  const auto& regions = dataset.registry().regions();
  const auto records = dataset.records();
  const std::size_t shards = resolve_threads(options.threads, records.size());

  // A probe only ever contributes to its own best region (the filter
  // above), so one fleet-sized Bitmap per shard replaces the former
  // regions x fleet bool table; client counts fall out of the merged
  // bitmap via each probe's best region.
  std::vector<std::vector<std::vector<double>>> acc(
      shards, std::vector<std::vector<double>>(regions.size()));
  std::vector<Bitmap> seen(shards);
  for (auto& s : seen) s = Bitmap(dataset.fleet().size());

  obs::LatencyHistogram* hist =
      shard_hist(options, "core.server_view.shard_ms");
  parallel_shards(records.size(), shards,
                  [&](std::size_t shard, std::size_t begin, std::size_t end) {
                    obs::Span span(hist);
                    std::vector<std::vector<double>>& mine = acc[shard];
                    Bitmap& mine_seen = seen[shard];
                    for (std::size_t i = begin; i < end; ++i) {
                      const atlas::Measurement& m = records[i];
                      if (m.lost()) continue;
                      const ProbeBest& b = best[m.probe_id];
                      if (!b.valid || m.region_index != b.region_index) {
                        continue;
                      }
                      const atlas::Probe& probe = dataset.probe_of(m);
                      if (skip_probe(probe, options)) continue;
                      mine[m.region_index].push_back(m.min_ms);
                      mine_seen.test_set(m.probe_id);
                    }
                  });

  std::vector<std::vector<double>> samples = std::move(acc[0]);
  for (std::size_t s = 1; s < shards; ++s) {
    for (std::size_t r = 0; r < regions.size(); ++r) {
      samples[r].insert(samples[r].end(), acc[s][r].begin(),
                        acc[s][r].end());
    }
    seen[0].merge(seen[s]);
  }
  std::vector<std::size_t> clients(regions.size(), 0);
  for (const atlas::Probe& probe : dataset.fleet().probes()) {
    if (seen[0].test(probe.id)) ++clients[best[probe.id].region_index];
  }

  std::vector<RegionView> out;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (samples[i].empty()) continue;
    RegionView view;
    view.region = regions[i];
    view.clients = clients[i];
    view.samples = samples[i].size();
    const stats::Ecdf ecdf(std::move(samples[i]));
    view.median_ms = ecdf.median();
    view.p90_ms = ecdf.percentile(90.0);
    view.under_40ms = ecdf.fraction_at_or_below(40.0);
    out.push_back(view);
  }
  std::sort(out.begin(), out.end(), [](const RegionView& a, const RegionView& b) {
    return a.clients > b.clients;
  });
  return out;
}

std::vector<IspStats> isp_comparison(const atlas::MeasurementDataset& dataset,
                                     std::string_view country_iso2,
                                     AnalysisOptions options) {
  const std::vector<ProbeBest> best = per_probe_best(dataset, options);
  std::map<const atlas::IspProfile*, std::vector<double>> by_isp;
  for (const atlas::Probe& probe : dataset.fleet().probes()) {
    if (probe.country->iso2 != country_iso2 || probe.isp == nullptr) continue;
    if (options.exclude_privileged && probe.privileged()) continue;
    if (!best[probe.id].valid) continue;
    by_isp[probe.isp].push_back(best[probe.id].min_ms);
  }
  std::vector<IspStats> out;
  out.reserve(by_isp.size());
  for (const auto& [isp, minima] : by_isp) {
    IspStats stats;
    stats.isp = isp;
    stats.probe_count = minima.size();
    stats.median_min_rtt_ms = stats::Ecdf(minima).median();
    out.push_back(stats);
  }
  std::sort(out.begin(), out.end(), [](const IspStats& a, const IspStats& b) {
    return a.median_min_rtt_ms < b.median_min_rtt_ms;
  });
  return out;
}

ThresholdCoverage coverage_of(const std::vector<double>& sample) {
  ThresholdCoverage cov;
  cov.n = sample.size();
  if (sample.empty()) return cov;
  std::size_t mtp = 0;
  std::size_t pl = 0;
  std::size_t hrt = 0;
  for (const double v : sample) {
    if (v <= apps::kMotionToPhotonMs) ++mtp;
    if (v <= apps::kPerceivableLatencyMs) ++pl;
    if (v <= apps::kHumanReactionTimeMs) ++hrt;
  }
  const auto n = static_cast<double>(sample.size());
  cov.under_mtp = mtp / n;
  cov.under_pl = pl / n;
  cov.under_hrt = hrt / n;
  return cov;
}

}  // namespace shears::core
