// The §4 analyses over a campaign dataset:
//   * Fig. 4 — minimum observed RTT per country (best probe, any DC),
//     banded against the perception thresholds;
//   * Fig. 5 — CDF of each probe's minimum RTT to its nearest (best)
//     datacenter, grouped by continent;
//   * Fig. 6 — CDF of *all* ping measurements from each probe to its
//     closest datacenter, grouped by continent;
//   * threshold-coverage summaries (share under MTP / PL / HRT).
//
// All analyses exclude probes in privileged locations (datacentre/cloud
// tags), exactly as §4.1 does.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "atlas/measurement.hpp"
#include "geo/continent.hpp"
#include "geo/country.hpp"
#include "topology/region.hpp"

namespace shears::obs {
class MetricsRegistry;
}  // namespace shears::obs

namespace shears::core {

struct AnalysisOptions {
  /// Drop datacentre/cloud-tagged probes (§4.1). On for every paper figure.
  bool exclude_privileged = true;
  /// Worker threads for the record scans (0 = hardware concurrency).
  /// Results are byte-identical for any value: shards are contiguous and
  /// merged in shard order with order-deterministic reducers (see
  /// core/parallel.hpp).
  std::size_t threads = 0;
  /// Optional metrics sink: each parallelised scan records its per-shard
  /// wall time into a core.<analysis>.shard_ms histogram. Purely
  /// observational — results are byte-identical with or without it. Must
  /// outlive the call; nullptr (the default) disables instrumentation.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Fig. 4 row: the least latency with which a country reaches any cloud
/// datacenter (its best probe's best burst).
struct CountryMinLatency {
  const geo::Country* country = nullptr;
  double min_rtt_ms = 0.0;
  const topology::CloudRegion* best_region = nullptr;
  std::size_t probe_count = 0;  ///< probes that contributed measurements
};

[[nodiscard]] std::vector<CountryMinLatency> country_min_latency(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options = {});

/// Fig. 4 banding (the map's colour scale).
struct LatencyBands {
  std::size_t under_10 = 0;
  std::size_t from_10_to_20 = 0;
  std::size_t from_20_to_50 = 0;
  std::size_t from_50_to_100 = 0;
  std::size_t over_100 = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return under_10 + from_10_to_20 + from_20_to_50 + from_50_to_100 +
           over_100;
  }
  [[nodiscard]] std::size_t under_100() const noexcept {
    return total() - over_100;
  }
};

[[nodiscard]] LatencyBands band_country_latencies(
    const std::vector<CountryMinLatency>& rows) noexcept;

/// A probe's best (nearest-in-latency) region over the whole campaign.
struct ProbeBest {
  atlas::ProbeId probe_id = 0;
  std::uint16_t region_index = 0;
  double min_ms = 0.0;
  bool valid = false;  ///< probe produced at least one successful burst
};

/// Indexed by probe id. The "closest datacenter" every per-probe figure
/// refers to — determined by measured latency, not geography.
[[nodiscard]] std::vector<ProbeBest> per_probe_best(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options = {});

/// Fig. 5 input: each probe's campaign-minimum RTT, grouped by the probe's
/// continent.
[[nodiscard]] std::array<std::vector<double>, geo::kContinentCount>
min_rtt_by_continent(const atlas::MeasurementDataset& dataset,
                     AnalysisOptions options = {});

/// Fig. 6 input: every successful burst (its min RTT) from each probe to
/// that probe's best region, grouped by continent.
[[nodiscard]] std::array<std::vector<double>, geo::kContinentCount>
best_region_samples_by_continent(const atlas::MeasurementDataset& dataset,
                                 AnalysisOptions options = {});

/// Population-weighted cloud proximity — the abstract's headline: "the
/// cloud is already close enough for the majority of the world's
/// population". Weights each country's Fig. 4 minimum by its population.
struct PopulationCoverage {
  double measured_population_m = 0.0;  ///< population of measured countries
  double world_population_m = 0.0;     ///< whole registry
  /// Shares of the *world* population living in countries whose best
  /// cloud RTT meets each threshold (unmeasured countries count as not
  /// meeting any).
  double under_mtp = 0.0;   ///< <= 20 ms
  double under_pl = 0.0;    ///< <= 100 ms
  double under_hrt = 0.0;   ///< <= 250 ms
};

[[nodiscard]] PopulationCoverage population_coverage(
    const std::vector<CountryMinLatency>& rows);

/// Median RTT by local hour of day — the diurnal congestion cycle the
/// three-hourly schedule samples. Buckets use each probe's solar local
/// time (longitude-derived).
struct DiurnalProfile {
  std::array<double, 24> median_ms{};    ///< 0 where a bucket is empty
  std::array<std::size_t, 24> count{};

  /// Hour with the highest median among non-empty buckets; -1 when all
  /// buckets are empty.
  [[nodiscard]] int peak_hour() const noexcept;
  /// Highest / lowest non-empty bucket median; 1 when degenerate.
  [[nodiscard]] double peak_to_trough() const noexcept;
};

/// Builds the profile over each probe's bursts to its best region.
/// `interval_hours` must match the campaign schedule that produced the
/// dataset (it converts ticks back to UTC hours).
[[nodiscard]] DiurnalProfile diurnal_profile(
    const atlas::MeasurementDataset& dataset, int interval_hours,
    AnalysisOptions options = {});

/// The server-side view — what a cloud operator sees from its own edge,
/// after Schlinker et al. ([60] in the paper): per region, the RTT
/// distribution over the clients it actually serves (probes whose best
/// region it is). §5 leans on their result that "clients rarely observe
/// latencies above 40 ms".
struct RegionView {
  const topology::CloudRegion* region = nullptr;
  std::size_t clients = 0;        ///< probes served (best region == this)
  std::size_t samples = 0;        ///< bursts from those probes
  double median_ms = 0.0;
  double p90_ms = 0.0;
  double under_40ms = 0.0;        ///< share of samples <= 40 ms
};

/// One row per region that serves at least one client, ordered by client
/// count (descending).
[[nodiscard]] std::vector<RegionView> server_side_view(
    const atlas::MeasurementDataset& dataset, AnalysisOptions options = {});

/// Per-operator reachability inside one country — the ISP dimension of
/// "probes installed in varying network environments" (§4.1).
struct IspStats {
  const atlas::IspProfile* isp = nullptr;
  std::size_t probe_count = 0;
  double median_min_rtt_ms = 0.0;  ///< median over probes' campaign minima
};

/// Groups a country's probes by access operator; ordered by median RTT.
/// Probes without ISP attribution (hand-built fleets) are skipped.
[[nodiscard]] std::vector<IspStats> isp_comparison(
    const atlas::MeasurementDataset& dataset, std::string_view country_iso2,
    AnalysisOptions options = {});

/// Fraction of a sample under each perception threshold.
struct ThresholdCoverage {
  std::size_t n = 0;
  double under_mtp = 0.0;  ///< <= 20 ms
  double under_pl = 0.0;   ///< <= 100 ms
  double under_hrt = 0.0;  ///< <= 250 ms
};

[[nodiscard]] ThresholdCoverage coverage_of(const std::vector<double>& sample);

}  // namespace shears::core
