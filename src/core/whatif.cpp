#include "core/whatif.hpp"

#include <limits>
#include <utility>

#include "core/access_comparison.hpp"
#include "geo/country.hpp"
#include "stats/ecdf.hpp"

namespace shears::core {

std::vector<ExpansionPoint> expansion_sweep(const std::vector<int>& years,
                                            const net::LatencyModel& model) {
  std::vector<ExpansionPoint> out;
  out.reserve(years.size());
  for (const int year : years) {
    const topology::CloudRegistry snapshot =
        topology::CloudRegistry::footprint_as_of(year);
    ExpansionPoint point;
    point.year = year;
    point.region_count = snapshot.size();
    point.hosting_countries = snapshot.hosting_countries().size();

    std::vector<double> best_rtts;
    for (const geo::Country& country : geo::all_countries()) {
      // The country's best realistic vantage point: a wired probe at the
      // national hub on the country's infrastructure tier.
      const net::Endpoint vantage{country.site, country.tier,
                                  net::AccessTechnology::kEthernet};
      // Targets per the §4.1 rule: own continent plus fallback.
      double best = std::numeric_limits<double>::infinity();
      for (const topology::CloudRegion* region : snapshot.regions()) {
        const geo::Continent rc = topology::region_continent(*region);
        const bool in_scope =
            rc == country.continent ||
            geo::measurement_fallback(country.continent) == rc;
        if (!in_scope) continue;
        best = std::min(best, model.baseline_rtt_ms(vantage, *region));
      }
      if (best == std::numeric_limits<double>::infinity()) continue;
      best_rtts.push_back(best);
      if (best < 10.0) ++point.countries_under_10ms;
      if (best < 20.0) ++point.countries_under_20ms;
      if (best < 100.0) ++point.countries_under_100ms;
    }
    // NaN when no country reaches any region (pre-cloud years): there is
    // no median to report, and 0.0 would read as a perfect RTT.
    point.median_best_rtt_ms = stats::Ecdf(std::move(best_rtts)).median();
    out.push_back(point);
  }
  return out;
}

std::vector<WirelessImprovementPoint> wireless_improvement_sweep(
    const std::vector<double>& scales, const atlas::ProbeFleet& fleet,
    const topology::CloudRegistry& registry,
    const net::LatencyModelConfig& base_model,
    const atlas::CampaignConfig& campaign_config) {
  std::vector<WirelessImprovementPoint> out;
  out.reserve(scales.size());
  for (const double scale : scales) {
    net::LatencyModelConfig config = base_model;
    config.wireless_latency_scale = scale;
    const net::LatencyModel model(config);
    const atlas::Campaign campaign(fleet, registry, model, campaign_config);
    const atlas::MeasurementDataset dataset = campaign.run();
    const AccessComparison comparison = compare_access(dataset);

    WirelessImprovementPoint point;
    point.wireless_scale = scale;
    point.wired_median_ms = comparison.wired_median;
    point.wireless_median_ms = comparison.wireless_median;
    point.median_ratio = comparison.median_ratio;
    point.added_latency_ms = comparison.added_latency_ms;
    out.push_back(point);
  }
  return out;
}

}  // namespace shears::core
