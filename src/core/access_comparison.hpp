// Fig. 7 — wired vs wireless last-mile comparison.
//
// Mirrors the paper's filter chain: keep probes whose user tags identify
// the access link (ethernet/broadband/dsl/cable/fibre vs wifi/wlan/lte/5g),
// drop privileged probes, and keep only countries hosting *both* kinds so
// the populations are regionally comparable. The compared quantity is each
// burst's min RTT to the probe's best (nearest) cloud region, tracked over
// campaign time and summarised as medians plus the wireless/wired ratio.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "atlas/measurement.hpp"

namespace shears::obs {
class MetricsRegistry;
}  // namespace shears::obs

namespace shears::core {

struct AccessComparisonOptions {
  /// Scheduler ticks per time bucket of the longitudinal series; 8 ticks
  /// at the default 3 h interval = one day.
  std::uint32_t bucket_ticks = 8;
  bool exclude_privileged = true;
  /// Worker threads for the record scan (0 = hardware concurrency);
  /// byte-deterministic for any value, like AnalysisOptions::threads.
  std::size_t threads = 0;
  /// Optional metrics sink, forwarded to the underlying analyses; the
  /// record scan here adds core.access_comparison.shard_ms. nullptr (the
  /// default) disables instrumentation. See AnalysisOptions::metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

struct AccessComparison {
  std::vector<double> wired;     ///< burst min RTTs, wired probes
  std::vector<double> wireless;  ///< burst min RTTs, wireless probes
  /// Median RTT per time bucket (x = bucket index), for the Fig. 7 curves.
  std::vector<std::pair<double, double>> wired_over_time;
  std::vector<std::pair<double, double>> wireless_over_time;
  std::size_t wired_probe_count = 0;
  std::size_t wireless_probe_count = 0;
  /// NaN when the respective tagged population is empty (no samples ⇒
  /// no median, and 0.0 would read as a real 0 ms RTT).
  double wired_median = 0.0;
  double wireless_median = 0.0;
  /// wireless_median / wired_median; the paper reports ~2.5x. 0.0 when
  /// either population is empty.
  double median_ratio = 0.0;
  /// wireless - wired median difference (the "10-40 ms added" claim).
  double added_latency_ms = 0.0;
};

[[nodiscard]] AccessComparison compare_access(
    const atlas::MeasurementDataset& dataset,
    AccessComparisonOptions options = {});

}  // namespace shears::core
