// Deterministic fork/join helpers for the §4 analyses.
//
// The campaign engine already proves the pattern: shard a contiguous
// record span across workers, let each worker fill private accumulators,
// then merge the shards *in shard order* on the calling thread. Because
// shard boundaries depend only on (item count, thread count) and every
// merge below is order-deterministic (strict-less minima, in-order
// concatenation, bitwise OR), the results are byte-identical for any
// thread count — the thread-invariance tests in test_core_analysis.cpp
// pin this.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace shears::core {

/// Maps a requested thread count (0 = hardware concurrency) to the count
/// actually worth spawning for `items` units of work, given the minimum
/// shard size below which forking costs more than it saves: a worker
/// fork/join pays ~50us, so each shard must carry enough work to amortise
/// it. Callers pick the cutoff for their per-item cost — a record scan
/// amortises at a few thousand items, a microsecond-scale oracle query
/// needs thousands more.
[[nodiscard]] inline std::size_t resolve_threads(
    std::size_t requested, std::size_t items,
    std::size_t min_items_per_shard) noexcept {
  std::size_t n = requested != 0
                      ? requested
                      : static_cast<std::size_t>(
                            std::thread::hardware_concurrency());
  if (n == 0) n = 1;
  const std::size_t useful =
      min_items_per_shard != 0 ? items / min_items_per_shard : items;
  if (n > useful) n = useful;
  return n == 0 ? 1 : n;
}

/// Default cutoff for record-scan workloads (the §4 analyses).
[[nodiscard]] inline std::size_t resolve_threads(std::size_t requested,
                                                 std::size_t items) noexcept {
  constexpr std::size_t kMinItemsPerShard = 1 << 14;
  return resolve_threads(requested, items, kMinItemsPerShard);
}

/// Splits [0, items) into `shards` contiguous ranges (remainder spread
/// over the leading shards, like the campaign's probe partition) and runs
/// `fn(shard_index, begin, end)` concurrently. Shard `shards - 1` runs on
/// the calling thread. `fn` must only touch state owned by its shard
/// index; merge after this returns, iterating shards in index order.
template <typename Fn>
void parallel_shards(std::size_t items, std::size_t shards, Fn&& fn) {
  if (shards <= 1) {
    fn(std::size_t{0}, std::size_t{0}, items);
    return;
  }
  const std::size_t base = items / shards;
  const std::size_t extra = items % shards;
  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    const std::size_t end = begin + len;
    if (s + 1 == shards) {
      fn(s, begin, end);
    } else {
      workers.emplace_back(
          [&fn, s, begin, end] { fn(s, begin, end); });
    }
    begin = end;
  }
  for (std::thread& w : workers) w.join();
}

/// Word-packed membership set. One Bitmap over the fleet replaces the
/// per-country / per-region `std::vector<bool>` tables the analyses used
/// to allocate (O(groups x fleet) bits, most of them never touched):
/// each probe belongs to exactly one group, so a single fleet-sized map
/// plus a probe -> group lookup at merge time carries the same
/// information in 1/groups the memory.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits) : words_((bits + 63) / 64, 0) {}

  /// Sets bit `i`; returns whether it was already set.
  bool test_set(std::size_t i) noexcept {
    std::uint64_t& word = words_[i >> 6];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const bool was = (word & mask) != 0;
    word |= mask;
    return was;
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] & (std::uint64_t{1} << (i & 63))) != 0;
  }

  /// Bitwise-OR merge of another shard's set (same size).
  void merge(const Bitmap& other) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const std::uint64_t word : words_) {
      n += static_cast<std::size_t>(std::popcount(word));
    }
    return n;
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace shears::core
