#include "check/property.hpp"

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace shears::check {

void require(bool condition, const std::string& message) {
  if (!condition) throw PropertyFailure(message);
}

bool parse_replay_spec(std::string_view spec, std::uint64_t& seed,
                       int& size) {
  std::string_view seed_part = spec;
  std::string_view size_part;
  if (const std::size_t colon = spec.find(':');
      colon != std::string_view::npos) {
    seed_part = spec.substr(0, colon);
    size_part = spec.substr(colon + 1);
    if (size_part.empty()) return false;  // a colon promises a size
  }
  if (seed_part.starts_with("0x") || seed_part.starts_with("0X")) {
    seed_part.remove_prefix(2);
  }
  if (seed_part.empty()) return false;
  std::uint64_t parsed_seed = 0;
  auto [seed_end, seed_err] = std::from_chars(
      seed_part.data(), seed_part.data() + seed_part.size(), parsed_seed, 16);
  if (seed_err != std::errc{} || seed_end != seed_part.data() + seed_part.size()) {
    return false;
  }
  int parsed_size = 0;
  if (!size_part.empty()) {
    auto [size_end, size_err] = std::from_chars(
        size_part.data(), size_part.data() + size_part.size(), parsed_size);
    if (size_err != std::errc{} ||
        size_end != size_part.data() + size_part.size() || parsed_size < 0) {
      return false;
    }
  }
  seed = parsed_seed;
  if (!size_part.empty()) size = parsed_size;
  return true;
}

CheckConfig config_from_env(int default_iterations) {
  CheckConfig config;
  if (const char* spec = std::getenv("SHEARS_CHECK_SEED");
      spec != nullptr && *spec != '\0') {
    std::uint64_t seed = 0;
    int size = config.max_size;
    if (parse_replay_spec(spec, seed, size)) {
      config.replay_seed = seed;
      config.replay_size = size;
    } else {
      std::cerr << "[shears_check] ignoring malformed SHEARS_CHECK_SEED=\""
                << spec << "\" (want <hex>[:<size>])\n";
    }
  }
  if (const char* iters = std::getenv("SHEARS_PROP_ITERS");
      iters != nullptr && *iters != '\0') {
    const int value = std::atoi(iters);
    if (value > 0) config.iterations = value;
  }
  if (config.iterations <= 0) config.iterations = default_iterations;
  return config;
}

std::string CheckResult::replay_spec() const {
  if (!counterexample) return {};
  std::ostringstream os;
  os << "SHEARS_CHECK_SEED=0x" << std::hex << counterexample->seed << std::dec
     << ':' << counterexample->size;
  return os.str();
}

namespace {

/// Runs one (seed, size) case; the failure message, or nullopt on success.
std::optional<std::string> run_case(const Property& property,
                                    std::uint64_t seed, int size) {
  Gen gen(seed, size);
  try {
    property(gen);
    return std::nullopt;
  } catch (const PropertyFailure& failure) {
    return std::string(failure.what());
  } catch (const std::exception& e) {
    return std::string("unexpected exception: ") + e.what();
  }
}

/// Greedy size shrinking: repeatedly try smaller sizes (most aggressive
/// first), keep the smallest that still fails. Deterministic in
/// (seed, size), which is what makes the replay spec reproduce the same
/// shrunk counterexample: re-shrinking from the already-minimal size
/// cannot accept any candidate.
Counterexample shrink(const Property& property, std::uint64_t seed,
                      int failing_size, std::string first_message,
                      int found_at_iteration) {
  Counterexample cx;
  cx.seed = seed;
  cx.size = failing_size;
  cx.original_size = failing_size;
  cx.found_at_iteration = found_at_iteration;
  cx.message = std::move(first_message);
  bool improved = true;
  while (improved && cx.size > 0) {
    improved = false;
    const int candidates[] = {0, cx.size / 4, cx.size / 2, (cx.size * 3) / 4,
                              cx.size - 1};
    for (const int candidate : candidates) {
      if (candidate < 0 || candidate >= cx.size) continue;
      if (auto message = run_case(property, seed, candidate)) {
        cx.size = candidate;
        cx.message = std::move(*message);
        ++cx.shrink_steps;
        improved = true;
        break;
      }
    }
  }
  return cx;
}

std::string make_banner(std::string_view name, const Counterexample& cx,
                        bool replayed) {
  std::ostringstream os;
  os << "[shears_check] property '" << name << "' FAILED"
     << (replayed ? " (replayed case)" : "") << "\n"
     << "  counterexample: seed=0x" << std::hex << cx.seed << std::dec
     << " size=" << cx.size << " (shrunk from size " << cx.original_size
     << " in " << cx.shrink_steps << " step(s), found at iteration "
     << cx.found_at_iteration << ")\n"
     << "  reason: " << cx.message << "\n"
     << "  replay: SHEARS_CHECK_SEED=0x" << std::hex << cx.seed << std::dec
     << ':' << cx.size << " reruns exactly this counterexample\n";
  return os.str();
}

}  // namespace

CheckResult check(std::string_view name, const Property& property,
                  const CheckConfig& config) {
  CheckResult result;
  result.name = std::string(name);

  if (config.replay_seed) {
    result.iterations_run = 1;
    if (auto message =
            run_case(property, *config.replay_seed, config.replay_size)) {
      result.passed = false;
      result.counterexample =
          shrink(property, *config.replay_seed, config.replay_size,
                 std::move(*message), 0);
      result.banner = make_banner(name, *result.counterexample, true);
    }
    return result;
  }

  const int iterations = config.iterations > 0 ? config.iterations : 1;
  const std::uint64_t root =
      config.root_seed != 0 ? config.root_seed : kDefaultRootSeed;
  // Mix the property name in so sibling properties explore independent
  // seeds even under the same root.
  stats::SplitMix64 seeds(root ^ stats::fnv1a64(name.data(), name.size()));
  for (int i = 0; i < iterations; ++i) {
    // Ramp the size from small to max: small worlds smoke out the edge
    // cases (empty fleets, single ticks) and large ones the aggregate
    // properties.
    const int size =
        iterations == 1
            ? config.max_size
            : (config.max_size * i + (iterations - 1) / 2) / (iterations - 1);
    const std::uint64_t case_seed = seeds.next();
    ++result.iterations_run;
    if (auto message = run_case(property, case_seed, size)) {
      result.passed = false;
      result.counterexample =
          shrink(property, case_seed, size, std::move(*message), i);
      result.banner = make_banner(name, *result.counterexample, false);
      break;
    }
  }
  return result;
}

CheckResult check(std::string_view name, const Property& property,
                  int default_iterations) {
  CheckResult result =
      check(name, property, config_from_env(default_iterations));
  if (!result.passed) std::cerr << result.banner;
  return result;
}

}  // namespace shears::check
