#include "check/invariants.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "apps/application.hpp"
#include "check/property.hpp"
#include "core/analysis.hpp"
#include "core/feasibility.hpp"
#include "geo/continent.hpp"
#include "geo/coordinates.hpp"
#include "stats/ecdf.hpp"
#include "stats/p2_quantile.hpp"

namespace shears::check {

void check_rtt_floor(const World& world,
                     const atlas::MeasurementDataset& dataset) {
  // Round-trip light-in-fibre time over the geodesic; every modelled
  // component on top (stretch >= 1, processing, access, excess, spikes,
  // generated fault skew >= 0) only adds. The tiny slack absorbs the
  // float cast of the stored record.
  const double us_per_km = world.model_config.path.fibre_us_per_km;
  for (const atlas::Measurement& m : dataset.records()) {
    if (m.received == 0) continue;
    const atlas::Probe& probe = dataset.probe_of(m);
    const topology::CloudRegion& region = dataset.region_of(m);
    const double geodesic_km =
        geo::haversine_km(probe.endpoint.location, region.location);
    const double floor_ms = 2.0 * geodesic_km * us_per_km / 1000.0;
    if (static_cast<double>(m.min_ms) < floor_ms * 0.9999) {
      std::ostringstream os;
      os << "RTT below propagation floor: probe " << m.probe_id << " -> "
         << region.region_id << " tick " << m.tick << ": min "
         << m.min_ms << " ms < floor " << floor_ms << " ms (geodesic "
         << geodesic_km << " km) [" << world.summary << "]";
      throw PropertyFailure(os.str());
    }
  }
}

void check_ecdf_properties(Gen& gen) {
  const int n = gen.scaled(0);
  std::vector<double> sample;
  sample.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // A burst of small integers forces ties; the rest is continuous.
    sample.push_back(gen.chance(0.25)
                         ? static_cast<double>(gen.int_in(0, 20))
                         : gen.real_in(0.0, 500.0));
  }
  const stats::Ecdf ecdf(sample);
  require(ecdf.size() == sample.size(), "Ecdf dropped samples");
  require(ecdf.invariants_ok(), "Ecdf retained an unsorted sample");
  if (ecdf.empty()) {
    require(ecdf.fraction_at_or_below(0.0) == 0.0,
            "empty Ecdf: F must be 0 everywhere");
    require(std::isnan(ecdf.quantile(0.5)),
            "empty Ecdf: quantile must be NaN, not a sentinel value");
    require(std::isnan(ecdf.min()) && std::isnan(ecdf.max()),
            "empty Ecdf: min/max must be NaN, not a sentinel value");
    return;
  }
  require(ecdf.min() <= ecdf.max(), "Ecdf min exceeds max");
  require(ecdf.quantile(0.0) == ecdf.min(), "quantile(0) must be the minimum");
  require(ecdf.quantile(1.0) == ecdf.max(), "quantile(1) must be the maximum");
  require(ecdf.fraction_at_or_below(ecdf.max()) == 1.0, "F(max) must be 1");
  require(ecdf.fraction_below(ecdf.min()) == 0.0,
          "fraction strictly below the minimum must be 0");
  for (int i = 0; i < 8; ++i) {
    double x1 = gen.real_in(-50.0, 600.0);
    double x2 = gen.real_in(-50.0, 600.0);
    if (x2 < x1) std::swap(x1, x2);
    require(ecdf.fraction_at_or_below(x1) <= ecdf.fraction_at_or_below(x2),
            "ECDF is not monotone in x");
    require(ecdf.fraction_below(x1) <= ecdf.fraction_at_or_below(x1),
            "strict fraction exceeds inclusive fraction");

    double q1 = gen.real_in(0.0, 1.0);
    double q2 = gen.real_in(0.0, 1.0);
    if (q2 < q1) std::swap(q1, q2);
    const double v1 = ecdf.quantile(q1);
    const double v2 = ecdf.quantile(q2);
    require(v1 <= v2, "quantile is not monotone in q");
    require(v1 >= ecdf.min() && v2 <= ecdf.max(),
            "quantile left the sample range");
  }
}

void check_quantile_properties(Gen& gen) {
  const double q = gen.real_in(0.05, 0.95);
  stats::P2Quantile estimator(q);
  require(estimator.value() == 0.0, "P2Quantile: value before samples");

  const int n = gen.scaled(1);
  std::vector<double> fed;
  double lo = 0.0;
  double hi = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = gen.chance(0.3) ? static_cast<double>(gen.int_in(0, 5))
                                     : gen.real_in(0.0, 200.0);
    fed.push_back(x);
    lo = fed.size() == 1 ? x : std::min(lo, x);
    hi = fed.size() == 1 ? x : std::max(hi, x);
    estimator.add(x);
    require(estimator.count() == fed.size(), "P2Quantile: count mismatch");
    require(estimator.invariants_ok(), "P2Quantile: marker invariants broken");
    const double value = estimator.value();
    if (fed.size() < 5) {
      // The documented small-n contract: exact nearest-rank quantile.
      std::vector<double> sorted = fed;
      std::sort(sorted.begin(), sorted.end());
      const auto rank = static_cast<std::size_t>(std::min<double>(
          static_cast<double>(sorted.size() - 1),
          std::floor(q * static_cast<double>(sorted.size()))));
      require(value == sorted[rank],
              "P2Quantile: small-n value is not the exact nearest-rank");
    }
    require(value >= lo && value <= hi,
            "P2Quantile: estimate left the observed sample range");
  }
}

void check_feasibility_monotonicity(Gen& gen) {
  for (int i = 0; i < 16; ++i) {
    apps::Application app{};
    app.id = "generated";
    app.name = "generated";
    app.latency_floor_ms = gen.real_in(0.5, 300.0);
    app.latency_ceiling_ms = app.latency_floor_ms + gen.real_in(0.0, 400.0);
    app.data_gb_per_entity_day = gen.real_in(0.0, 10.0);
    app.market_2025_busd = gen.real_in(0.0, 100.0);
    app.hyped_edge_driver = gen.chance(0.5);

    core::FeasibilityConfig config;
    config.latency_floor_ms = gen.real_in(5.0, 15.0);
    config.latency_ceiling_ms = gen.real_in(100.0, 300.0);

    // Lowering the measured cloud RTT can only move toward
    // cloud-sufficient.
    const double rtt_low = gen.real_in(0.0, 500.0);
    const double rtt_high = rtt_low + gen.real_in(0.0, 300.0);
    if (core::classify(app, rtt_high, config) ==
        core::EdgeVerdict::kCloudSufficient) {
      require(core::classify(app, rtt_low, config) ==
                  core::EdgeVerdict::kCloudSufficient,
              "classify: cloud-sufficient not monotone in measured RTT");
    }

    // Loosening the zone's latency ceiling never evicts an application.
    core::FeasibilityConfig looser = config;
    looser.latency_ceiling_ms += gen.real_in(0.0, 200.0);
    if (core::in_feasibility_zone(app, config)) {
      require(core::in_feasibility_zone(app, looser),
              "in_feasibility_zone: not monotone in the latency ceiling");
    }

    // Relaxing the application's own budget keeps a satisfied cloud
    // satisfied.
    apps::Application relaxed = app;
    relaxed.latency_ceiling_ms += gen.real_in(0.0, 300.0);
    if (core::classify(app, rtt_low, config) ==
        core::EdgeVerdict::kCloudSufficient) {
      require(core::classify(relaxed, rtt_low, config) ==
                  core::EdgeVerdict::kCloudSufficient,
              "classify: cloud-sufficient not monotone in the app budget");
    }
  }
}

void check_permutation_invariance(Gen& gen, const World& world,
                                  const atlas::MeasurementDataset& dataset) {
  std::vector<atlas::Measurement> shuffled(dataset.records().begin(),
                                           dataset.records().end());
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[gen.below(i)]);
  }
  const atlas::MeasurementDataset permuted(&world.fleet, &world.registry,
                                           std::move(shuffled));

  core::AnalysisOptions options;
  options.threads = 1;

  // Fig. 4 aggregates: per-country minima and contributing-probe counts
  // are set functions of the rows — row order must not matter. The best
  // region is excluded: exact RTT ties may break by scan order.
  using CountryAggregate = std::pair<std::uint64_t, std::size_t>;
  const auto aggregate = [&](const atlas::MeasurementDataset& ds) {
    std::map<const geo::Country*, CountryAggregate> by_country;
    for (const core::CountryMinLatency& row :
         core::country_min_latency(ds, options)) {
      by_country[row.country] = {std::bit_cast<std::uint64_t>(row.min_rtt_ms),
                                 row.probe_count};
    }
    return by_country;
  };
  require(aggregate(dataset) == aggregate(permuted),
          "country_min_latency aggregates changed under row permutation");

  // Per-probe minima (indexed by probe id) are equally order-free.
  const auto best_a = core::per_probe_best(dataset, options);
  const auto best_b = core::per_probe_best(permuted, options);
  require(best_a.size() == best_b.size(),
          "per_probe_best size changed under row permutation");
  for (std::size_t i = 0; i < best_a.size(); ++i) {
    require(best_a[i].valid == best_b[i].valid &&
                std::bit_cast<std::uint64_t>(best_a[i].min_ms) ==
                    std::bit_cast<std::uint64_t>(best_b[i].min_ms),
            "per_probe_best minima changed under row permutation");
  }

  // Continent sample multisets (Fig. 5) are permutation-invariant once
  // sorted.
  auto fig5_a = core::min_rtt_by_continent(dataset, options);
  auto fig5_b = core::min_rtt_by_continent(permuted, options);
  for (std::size_t c = 0; c < geo::kContinentCount; ++c) {
    std::sort(fig5_a[c].begin(), fig5_a[c].end());
    std::sort(fig5_b[c].begin(), fig5_b[c].end());
    require(fig5_a[c] == fig5_b[c],
            "min_rtt_by_continent multiset changed under row permutation");
  }
}

}  // namespace shears::check
