// The property runner: iterate → fail → shrink → banner → replay.
//
// check() runs a property over a sequence of deterministically derived
// (seed, size) cases. On the first failure it greedily shrinks the size
// knob (the seed stays fixed — a case is a pure function of both), then
// prints a banner with a SHEARS_CHECK_SEED=<hex>:<size> replay spec.
// Exporting that variable makes every check() run exactly the failing
// case first, reproducing the same shrunk counterexample bit for bit.
//
// Environment knobs:
//   SHEARS_CHECK_SEED=<hex>[:<size>]  replay one case instead of iterating
//   SHEARS_PROP_ITERS=<n>             iteration budget (tier-1 keeps the
//                                     per-property default small; nightly
//                                     CI raises it)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "check/gen.hpp"

namespace shears::check {

/// Thrown by properties (usually via require()) to report a failed
/// expectation. Any other std::exception escaping a property also counts
/// as a failure — a generated world must never crash the stack under test.
class PropertyFailure : public std::runtime_error {
 public:
  explicit PropertyFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// Throws PropertyFailure(message) when the condition does not hold.
void require(bool condition, const std::string& message);

/// Root seed mixed into per-iteration case seeds when no replay is forced.
inline constexpr std::uint64_t kDefaultRootSeed = 0x5eed'0f5e'a025'2020ULL;

struct CheckConfig {
  std::uint64_t root_seed = 0;  ///< 0 = use the built-in default
  int iterations = 0;           ///< 0 = the per-property default
  int max_size = 40;            ///< largest size the ramp reaches
  /// Replay mode: run exactly (replay_seed, replay_size) before anything
  /// else. Set from SHEARS_CHECK_SEED by config_from_env().
  std::optional<std::uint64_t> replay_seed;
  int replay_size = 40;
};

/// Reads SHEARS_CHECK_SEED / SHEARS_PROP_ITERS into a CheckConfig.
/// `default_iterations` applies when SHEARS_PROP_ITERS is unset.
[[nodiscard]] CheckConfig config_from_env(int default_iterations);

/// Parses "<hex>[:<size>]" (with or without a 0x prefix). Returns false
/// on malformed input, leaving the outputs untouched.
[[nodiscard]] bool parse_replay_spec(std::string_view spec,
                                     std::uint64_t& seed, int& size);

struct Counterexample {
  std::uint64_t seed = 0;
  int size = 0;           ///< after shrinking
  int original_size = 0;  ///< size at which the failure was first found
  int shrink_steps = 0;   ///< accepted shrinks (size reductions)
  int found_at_iteration = 0;  ///< 0-based iteration of the first failure
  std::string message;         ///< the (post-shrink) failure reason
};

struct CheckResult {
  std::string name;
  bool passed = true;
  int iterations_run = 0;
  std::optional<Counterexample> counterexample;
  std::string banner;  ///< empty when passed

  /// The "SHEARS_CHECK_SEED=<hex>:<size>" spec of the counterexample;
  /// empty when passed.
  [[nodiscard]] std::string replay_spec() const;
};

using Property = std::function<void(Gen&)>;

/// Runs the property under an explicit config (no environment reads).
[[nodiscard]] CheckResult check(std::string_view name,
                                const Property& property,
                                const CheckConfig& config);

/// Environment-driven entry point: config_from_env(default_iterations).
/// On failure the banner is printed to stderr; assert on .passed.
[[nodiscard]] CheckResult check(std::string_view name,
                                const Property& property,
                                int default_iterations = 16);

}  // namespace shears::check
