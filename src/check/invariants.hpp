// Metamorphic and invariant properties over the model, stats and
// analyses. Unlike the differential oracles (two implementations, one
// answer), these check a single implementation against facts that must
// hold for *every* world: physics floors, monotonicity, permutation
// invariance. All throw PropertyFailure on violation.
#pragma once

#include "atlas/measurement.hpp"
#include "check/gen.hpp"
#include "check/world.hpp"

namespace shears::check {

/// Every delivered burst's minimum RTT respects the propagation floor
/// implied by the geodesic probe→region distance: routed fibre cannot
/// beat light over the great circle (2 * geodesic_km * fibre_us_per_km).
/// Holds even for faulted records because generated faults only add
/// latency (multipliers >= 1, skew >= 0).
void check_rtt_floor(const World& world,
                     const atlas::MeasurementDataset& dataset);

/// stats::Ecdf over a random sample: F is monotone, quantiles are
/// monotone in q and bounded by [min, max], F(max) == 1, and
/// quantile(0)/quantile(1) hit the extremes.
void check_ecdf_properties(Gen& gen);

/// stats::P2Quantile on a random stream: exact nearest-rank agreement
/// while count < 5, estimates bounded by the observed sample range, and
/// the marker invariants hold after every add.
void check_quantile_properties(Gen& gen);

/// core::classify / in_feasibility_zone monotonicity in the latency
/// budget: lowering the measured RTT or loosening the ceiling can only
/// move an application toward cloud-sufficient / into the zone.
void check_feasibility_monotonicity(Gen& gen);

/// Per-country aggregates (Fig. 4 minima, probe counts) and per-probe
/// minima are invariant under a random permutation of the dataset rows.
void check_permutation_invariance(Gen& gen, const World& world,
                                  const atlas::MeasurementDataset& dataset);

}  // namespace shears::check
