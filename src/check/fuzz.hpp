// Corpus-driven loader fuzzing: mutate the serialised form of a valid
// dataset and assert the readers either parse the result or raise their
// documented line-numbered malformed-row error — never crash, never
// throw anything else. Run under the sanitize preset this also shakes
// out memory errors on the parse paths.
#pragma once

#include <cstddef>
#include <string>

#include "atlas/measurement.hpp"
#include "check/gen.hpp"
#include "check/world.hpp"

namespace shears::check {

/// A malformed-ish replacement drawn from the corpus of classic parser
/// killers (empty cells, NaN/inf, overflow, trailing garbage, stray
/// punctuation) plus random bytes.
[[nodiscard]] std::string corpus_token(Gen& gen);

struct FuzzStats {
  std::size_t mutations = 0;  ///< mutated documents fed to the reader
  std::size_t parsed = 0;     ///< accepted (mutation kept the row valid)
  std::size_t rejected = 0;   ///< rejected with the documented error
};

/// Serialises the dataset, applies `rounds` independent mutations, and
/// feeds each mutant to read_csv / read_jsonl. Throws PropertyFailure if
/// a reader crashes with the wrong exception type or an error message
/// without line context.
FuzzStats fuzz_csv(Gen& gen, const World& world,
                   const atlas::MeasurementDataset& dataset, int rounds);
FuzzStats fuzz_jsonl(Gen& gen, const World& world,
                     const atlas::MeasurementDataset& dataset, int rounds);

struct FrameFuzzStats {
  std::size_t rounds = 0;
  std::size_t clean = 0;    ///< unmutated rounds (exact round-trip required)
  std::size_t frames = 0;   ///< intact frames the decoder delivered
  std::size_t damaged = 0;  ///< per-frame decode errors surfaced
};

/// Builds random valid front-end frame streams, sometimes mutates them
/// (byte flips, truncation, splices, deletions), and feeds the result to
/// front::FrameDecoder in random-sized chunks. Throws PropertyFailure if
/// the decoder throws, stops making progress, or — on an unmutated
/// stream — fails to deliver every frame byte-exactly regardless of how
/// the bytes were chunked.
FrameFuzzStats fuzz_frames(Gen& gen, int rounds);

struct ReassemblyFuzzStats {
  std::size_t rounds = 0;
  std::size_t mutated = 0;  ///< rounds whose stream was damaged first
  std::size_t frames = 0;   ///< frames the reference decode delivered
  std::size_t damaged = 0;  ///< decode errors the reference surfaced
};

/// Socket-reassembly fuzzing: builds concatenated (sometimes mutated)
/// frame streams, then decodes the same bytes under three different
/// chunkings — all at once, and two independent random segmentations,
/// the torn-read shapes a TCP receive path produces. Chunk boundaries
/// must not change the delivered kFrame sequence, any whole-frame error
/// tally (bad_version/length/checksum/type), or the sum of discarded
/// and still-buffered bytes; they MAY change how a garbage run splits
/// into bad_magic resync events and how its tail splits between
/// "discarded" and "buffered" (the resync scan only sees what has
/// arrived). The decoder must also never stop making progress. Throws
/// PropertyFailure on any divergence.
ReassemblyFuzzStats fuzz_reassembly(Gen& gen, int rounds);

struct SnapshotFuzzStats {
  std::size_t rounds = 0;
  std::size_t clean = 0;     ///< unmutated rounds (exact round-trip required)
  std::size_t loaded = 0;    ///< mutants the loader still accepted
  std::size_t rejected = 0;  ///< SnapshotError / io::BlockError raised
};

/// Builds the dataset's columnar store once, serialises it with
/// save_snapshot, then feeds mutated copies of the image (byte flips,
/// truncations, splices, deletions, insertions) to load_snapshot. The
/// loader's confinement contract: every mutant either loads a complete,
/// counter-consistent store or throws serve::SnapshotError /
/// io::BlockError — any other exception (or a crash) is a
/// PropertyFailure. Unmutated images must load a store with identical
/// columns and counters.
SnapshotFuzzStats fuzz_snapshot(Gen& gen, const World& world,
                                const atlas::MeasurementDataset& dataset,
                                int rounds);

}  // namespace shears::check
