// Differential oracles: two independent paths through the stack must
// agree bit for bit on the same generated world. Each oracle throws
// PropertyFailure (with the world summary and the first divergence) when
// the two sides disagree; the property runner turns that into a
// seed-replayable counterexample.
#pragma once

#include "atlas/measurement.hpp"
#include "check/world.hpp"

namespace shears::check {

/// ping_cached vs ping: the precomputed sampling cache must be
/// byte-identical to the per-packet recomputing engine.
void check_cached_vs_uncached(const World& world);

/// Campaign determinism across worker counts: 1 thread vs 8 threads.
void check_campaign_thread_invariance(const World& world);

/// Scalar vs lane-batched campaign engine — the *epsilon-mode*
/// differential oracle of the SIMD kernels (DESIGN.md §6). On the same
/// world (faulted or clean, after switching off the resilience knobs the
/// kernel does not cover and pinning uptime to 1) the batched engine
/// must reproduce every record's structure exactly — probe/region/tick,
/// sent, retries, fault masks — while the sampled values (received,
/// RTTs) are held to *distributional* agreement: the kernel consumes
/// each stream on a fixed kind-major schedule with Box–Muller normals,
/// so loss rates and pooled RTT quantiles must agree within bounds, on
/// the whole dataset and on the faulted subset. The batched engine
/// itself must be byte-identical across 1 vs 8 threads.
void check_batched_vs_scalar(const World& world);

/// Every §4 analysis must reduce identically serial and sharded
/// (AnalysisOptions::threads 1 vs 8).
void check_analysis_thread_invariance(const World& world,
                                      const atlas::MeasurementDataset& dataset);

/// write_csv → read_csv and write_jsonl → read_jsonl must reproduce the
/// dataset record for record (and re-serialise to identical bytes).
void check_csv_roundtrip(const World& world,
                         const atlas::MeasurementDataset& dataset);
void check_jsonl_roundtrip(const World& world,
                           const atlas::MeasurementDataset& dataset);

/// An explicitly attached *empty* fault schedule must be byte-identical
/// to running the clean engine with no schedule at all.
void check_empty_schedule_identity(const World& world);

/// geo::SpatialIndex vs a brute-force haversine scan over the same
/// points: nearest / nearest_n / within_radius must agree bit for bit
/// (ids *and* distances) on every query, including antimeridian and
/// polar ones. `summary` labels the counterexample.
void check_spatial_index(std::span<const geo::GeoPoint> points,
                         std::span<const geo::GeoPoint> queries,
                         double radius_km, std::string_view summary);

/// serve::Oracle over a columnar store vs the full-scan
/// serve::ReferenceOracle: answers must be byte-identical for every
/// store build path (one-shot vs chunked appends, build threads 1 vs 8)
/// and every query fan-out (oracle threads 1 vs 8).
void check_oracle_vs_fullscan(const World& world,
                              const atlas::MeasurementDataset& dataset,
                              std::span<const serve::Query> queries);

/// save_snapshot → load_snapshot must reproduce the store exactly: the
/// loaded store (full and lazy, 1 and 8 rebuild threads) must answer an
/// arbitrary query batch byte-identically to the live store it was
/// saved from, its counters must survive, and a snapshot taken
/// mid-ingest — N rows saved, loaded, then M more appended — must
/// answer like the one-shot N+M build.
void check_snapshot_roundtrip(const World& world,
                              const atlas::MeasurementDataset& dataset,
                              std::span<const serve::Query> queries);

}  // namespace shears::check
