#include "check/fuzz.hpp"

#include <sstream>
#include <string_view>
#include <vector>

#include "check/property.hpp"

namespace shears::check {

std::string corpus_token(Gen& gen) {
  static constexpr std::string_view kCorpus[] = {
      "",        "nan",  "-nan", "inf",   "-inf", "1e999", "-1",
      "256",     "300",  "4294967296", "18446744073709551616",
      "0x1f",    "12abc", "3.5.7", "1e",  "+5",   "--3",   "null",
      "true",    "\"",   "{",    "}",     ",",    ":",     " ",
      "\t",      "probe", "\xc3\xa9",     "\xff", "0.0.0", "e5",
  };
  if (gen.chance(0.15)) {
    // Random short byte string, printable-ish but occasionally not.
    std::string token;
    const int len = gen.int_in(1, 6);
    for (int i = 0; i < len; ++i) {
      token.push_back(static_cast<char>(gen.int_in(1, 255)));
    }
    return token;
  }
  return std::string(
      kCorpus[gen.below(sizeof(kCorpus) / sizeof(kCorpus[0]))]);
}

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

/// Replaces one comma-separated cell of the line (CSV rows only).
void mutate_cell(Gen& gen, std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream fields(line);
  while (std::getline(fields, cell, ',')) cells.push_back(cell);
  if (cells.empty()) {
    line = corpus_token(gen);
    return;
  }
  cells[gen.below(cells.size())] = corpus_token(gen);
  std::string joined;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) joined += ',';
    joined += cells[i];
  }
  line = joined;
}

/// Replaces a JSON value: the span between a random ':' and the next
/// ',' or '}'.
void mutate_json_value(Gen& gen, std::string& line) {
  std::vector<std::size_t> colons;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ':') colons.push_back(i);
  }
  if (colons.empty()) {
    line += corpus_token(gen);
    return;
  }
  const std::size_t at = colons[gen.below(colons.size())] + 1;
  const std::size_t end = line.find_first_of(",}", at);
  line.replace(at, end == std::string::npos ? line.size() - at : end - at,
               corpus_token(gen));
}

/// One random structural or byte-level mutation over the whole document.
void mutate_document(Gen& gen, std::vector<std::string>& lines, bool csv) {
  if (lines.empty()) {
    lines.push_back(corpus_token(gen));
    return;
  }
  const std::size_t target = gen.below(lines.size());
  switch (gen.below(8)) {
    case 0:  // format-aware field replacement
      if (csv) {
        mutate_cell(gen, lines[target]);
      } else {
        mutate_json_value(gen, lines[target]);
      }
      break;
    case 1: {  // splice a token at a random position
      const std::size_t at = gen.below(lines[target].size() + 1);
      lines[target].insert(at, corpus_token(gen));
      break;
    }
    case 2:  // truncate the line
      lines[target].resize(gen.below(lines[target].size() + 1));
      break;
    case 3:  // delete one byte
      if (!lines[target].empty()) {
        lines[target].erase(gen.below(lines[target].size()), 1);
      }
      break;
    case 4:  // flip one byte
      if (!lines[target].empty()) {
        lines[target][gen.below(lines[target].size())] =
            static_cast<char>(gen.int_in(1, 255));
      }
      break;
    case 5: {  // duplicate a whole line
      std::string copy = lines[target];
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(target),
                   std::move(copy));
      break;
    }
    case 6:  // delete a whole line
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(target));
      break;
    default: {  // swap two lines (may move the CSV header)
      const std::size_t other = gen.below(lines.size());
      std::swap(lines[target], lines[other]);
      break;
    }
  }
}

bool has_line_context(const std::string& message) {
  return message.find("line") != std::string::npos ||
         message.find("header") != std::string::npos;
}

template <typename Parse>
FuzzStats fuzz_document(Gen& gen, const World& world,
                        const std::string& valid_text, int rounds, bool csv,
                        const char* reader, Parse&& parse) {
  FuzzStats stats;
  const std::vector<std::string> original = split_lines(valid_text);
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::string> lines = original;
    const int edits = gen.int_in(1, 3);
    for (int e = 0; e < edits; ++e) mutate_document(gen, lines, csv);
    const std::string mutated = join_lines(lines);
    ++stats.mutations;
    try {
      parse(mutated);
      ++stats.parsed;
    } catch (const std::runtime_error& error) {
      // The documented contract: a malformed document fails with the
      // reader's line-numbered (or header) diagnostic.
      const std::string message = error.what();
      if (message.find(reader) == std::string::npos ||
          !has_line_context(message)) {
        throw PropertyFailure(std::string(reader) +
                              " raised an undiagnosable error: \"" + message +
                              "\" [" + world.summary + "]");
      }
      ++stats.rejected;
    } catch (const std::exception& error) {
      throw PropertyFailure(std::string(reader) +
                            " raised the wrong exception type: \"" +
                            error.what() + "\" [" + world.summary + "]");
    }
  }
  return stats;
}

}  // namespace

FuzzStats fuzz_csv(Gen& gen, const World& world,
                   const atlas::MeasurementDataset& dataset, int rounds) {
  std::ostringstream os;
  dataset.write_csv(os);
  return fuzz_document(gen, world, os.str(), rounds, true, "read_csv",
                       [&](const std::string& text) {
                         std::istringstream is(text);
                         (void)atlas::MeasurementDataset::read_csv(
                             is, &world.fleet, &world.registry);
                       });
}

FuzzStats fuzz_jsonl(Gen& gen, const World& world,
                     const atlas::MeasurementDataset& dataset, int rounds) {
  std::ostringstream os;
  dataset.write_jsonl(os, world.campaign.interval_hours);
  return fuzz_document(gen, world, os.str(), rounds, false, "read_jsonl",
                       [&](const std::string& text) {
                         std::istringstream is(text);
                         (void)atlas::MeasurementDataset::read_jsonl(
                             is, &world.fleet, &world.registry,
                             world.campaign.interval_hours);
                       });
}

}  // namespace shears::check
