#include "check/fuzz.hpp"

#include <bit>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/property.hpp"
#include "front/frame.hpp"
#include "io/block_file.hpp"
#include "serve/columnar.hpp"
#include "serve/snapshot.hpp"

namespace shears::check {

std::string corpus_token(Gen& gen) {
  static constexpr std::string_view kCorpus[] = {
      "",        "nan",  "-nan", "inf",   "-inf", "1e999", "-1",
      "256",     "300",  "4294967296", "18446744073709551616",
      "0x1f",    "12abc", "3.5.7", "1e",  "+5",   "--3",   "null",
      "true",    "\"",   "{",    "}",     ",",    ":",     " ",
      "\t",      "probe", "\xc3\xa9",     "\xff", "0.0.0", "e5",
  };
  if (gen.chance(0.15)) {
    // Random short byte string, printable-ish but occasionally not.
    std::string token;
    const int len = gen.int_in(1, 6);
    for (int i = 0; i < len; ++i) {
      token.push_back(static_cast<char>(gen.int_in(1, 255)));
    }
    return token;
  }
  return std::string(
      kCorpus[gen.below(sizeof(kCorpus) / sizeof(kCorpus[0]))]);
}

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return text;
}

/// Replaces one comma-separated cell of the line (CSV rows only).
void mutate_cell(Gen& gen, std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream fields(line);
  while (std::getline(fields, cell, ',')) cells.push_back(cell);
  if (cells.empty()) {
    line = corpus_token(gen);
    return;
  }
  cells[gen.below(cells.size())] = corpus_token(gen);
  std::string joined;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) joined += ',';
    joined += cells[i];
  }
  line = joined;
}

/// Replaces a JSON value: the span between a random ':' and the next
/// ',' or '}'.
void mutate_json_value(Gen& gen, std::string& line) {
  std::vector<std::size_t> colons;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == ':') colons.push_back(i);
  }
  if (colons.empty()) {
    line += corpus_token(gen);
    return;
  }
  const std::size_t at = colons[gen.below(colons.size())] + 1;
  const std::size_t end = line.find_first_of(",}", at);
  line.replace(at, end == std::string::npos ? line.size() - at : end - at,
               corpus_token(gen));
}

/// One random structural or byte-level mutation over the whole document.
void mutate_document(Gen& gen, std::vector<std::string>& lines, bool csv) {
  if (lines.empty()) {
    lines.push_back(corpus_token(gen));
    return;
  }
  const std::size_t target = gen.below(lines.size());
  switch (gen.below(8)) {
    case 0:  // format-aware field replacement
      if (csv) {
        mutate_cell(gen, lines[target]);
      } else {
        mutate_json_value(gen, lines[target]);
      }
      break;
    case 1: {  // splice a token at a random position
      const std::size_t at = gen.below(lines[target].size() + 1);
      lines[target].insert(at, corpus_token(gen));
      break;
    }
    case 2:  // truncate the line
      lines[target].resize(gen.below(lines[target].size() + 1));
      break;
    case 3:  // delete one byte
      if (!lines[target].empty()) {
        lines[target].erase(gen.below(lines[target].size()), 1);
      }
      break;
    case 4:  // flip one byte
      if (!lines[target].empty()) {
        lines[target][gen.below(lines[target].size())] =
            static_cast<char>(gen.int_in(1, 255));
      }
      break;
    case 5: {  // duplicate a whole line
      std::string copy = lines[target];
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(target),
                   std::move(copy));
      break;
    }
    case 6:  // delete a whole line
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(target));
      break;
    default: {  // swap two lines (may move the CSV header)
      const std::size_t other = gen.below(lines.size());
      std::swap(lines[target], lines[other]);
      break;
    }
  }
}

bool has_line_context(const std::string& message) {
  return message.find("line") != std::string::npos ||
         message.find("header") != std::string::npos;
}

template <typename Parse>
FuzzStats fuzz_document(Gen& gen, const World& world,
                        const std::string& valid_text, int rounds, bool csv,
                        const char* reader, Parse&& parse) {
  FuzzStats stats;
  const std::vector<std::string> original = split_lines(valid_text);
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::string> lines = original;
    const int edits = gen.int_in(1, 3);
    for (int e = 0; e < edits; ++e) mutate_document(gen, lines, csv);
    const std::string mutated = join_lines(lines);
    ++stats.mutations;
    try {
      parse(mutated);
      ++stats.parsed;
    } catch (const std::runtime_error& error) {
      // The documented contract: a malformed document fails with the
      // reader's line-numbered (or header) diagnostic.
      const std::string message = error.what();
      if (message.find(reader) == std::string::npos ||
          !has_line_context(message)) {
        throw PropertyFailure(std::string(reader) +
                              " raised an undiagnosable error: \"" + message +
                              "\" [" + world.summary + "]");
      }
      ++stats.rejected;
    } catch (const std::exception& error) {
      throw PropertyFailure(std::string(reader) +
                            " raised the wrong exception type: \"" +
                            error.what() + "\" [" + world.summary + "]");
    }
  }
  return stats;
}

}  // namespace

FuzzStats fuzz_csv(Gen& gen, const World& world,
                   const atlas::MeasurementDataset& dataset, int rounds) {
  std::ostringstream os;
  dataset.write_csv(os);
  return fuzz_document(gen, world, os.str(), rounds, true, "read_csv",
                       [&](const std::string& text) {
                         std::istringstream is(text);
                         (void)atlas::MeasurementDataset::read_csv(
                             is, &world.fleet, &world.registry);
                       });
}

FuzzStats fuzz_jsonl(Gen& gen, const World& world,
                     const atlas::MeasurementDataset& dataset, int rounds) {
  std::ostringstream os;
  dataset.write_jsonl(os, world.campaign.interval_hours);
  return fuzz_document(gen, world, os.str(), rounds, false, "read_jsonl",
                       [&](const std::string& text) {
                         std::istringstream is(text);
                         (void)atlas::MeasurementDataset::read_jsonl(
                             is, &world.fleet, &world.registry,
                             world.campaign.interval_hours);
                       });
}

namespace {

std::string random_token(Gen& gen, int max_len) {
  std::string token;
  const int len = gen.int_in(0, max_len);
  for (int i = 0; i < len; ++i) {
    token.push_back(static_cast<char>(gen.int_in(1, 255)));
  }
  return token;
}

/// One random valid frame appended to `out`; returns the payload bytes
/// it carries, for the clean-round round-trip comparison.
std::pair<front::FrameType, std::vector<std::uint8_t>> append_random_frame(
    Gen& gen, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  front::FrameType type = front::FrameType::kRequest;
  switch (gen.below(3)) {
    case 0: {
      front::Request req;
      req.request_id = gen.u64();
      req.client_id = gen.u64();
      req.deadline_us = gen.below(1'000'000);
      req.kind = static_cast<serve::QueryKind>(gen.below(3));
      req.lat_deg = gen.real_in(-90.0, 90.0);
      req.lon_deg = gen.real_in(-180.0, 180.0);
      if (gen.chance(0.5)) req.country_iso2 = random_token(gen, 2);
      req.access = static_cast<net::AccessTechnology>(gen.below(7));
      req.any_access = gen.chance(0.5);
      if (gen.chance(0.5)) req.app_id = random_token(gen, 12);
      req.budget_ms = gen.real_in(0.0, 500.0);
      req.k = static_cast<std::uint32_t>(gen.below(16));
      front::append_request_frame(out, req);
      type = front::FrameType::kRequest;
      break;
    }
    case 1: {
      front::Response res;
      res.request_id = gen.u64();
      res.ok = gen.chance(0.8);
      if (gen.chance(0.5)) res.country_iso2 = random_token(gen, 2);
      res.best_region = static_cast<std::uint16_t>(gen.below(101));
      res.best_ms = gen.real_in(0.0, 400.0);
      res.median_ms = gen.real_in(0.0, 400.0);
      res.p95_ms = gen.real_in(0.0, 400.0);
      res.verdict = static_cast<core::EdgeVerdict>(gen.below(5));
      res.in_zone = gen.chance(0.5);
      const int rows = gen.int_in(0, 8);
      for (int r = 0; r < rows; ++r) {
        res.regions.push_back(front::WireRegion{
            static_cast<std::uint16_t>(gen.below(101)),
            gen.real_in(0.0, 400.0)});
      }
      front::append_response_frame(out, res);
      type = front::FrameType::kResponse;
      break;
    }
    default: {
      front::Error err;
      err.request_id = gen.u64();
      err.code = static_cast<front::ErrorCode>(gen.int_in(1, 5));
      err.message = random_token(gen, 24);
      front::append_error_frame(out, err);
      type = front::FrameType::kError;
      break;
    }
  }
  return {type, std::vector<std::uint8_t>(
                    out.begin() + static_cast<std::ptrdiff_t>(start) +
                        static_cast<std::ptrdiff_t>(front::kFrameHeaderBytes),
                    out.end())};
}

/// One byte-level mutation over the whole stream.
void mutate_bytes(Gen& gen, std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  switch (gen.below(5)) {
    case 0:  // flip a byte (magic, header fields and payload all fair game)
      bytes[gen.below(bytes.size())] =
          static_cast<std::uint8_t>(gen.below(256));
      break;
    case 1:  // truncate
      bytes.resize(gen.below(bytes.size() + 1));
      break;
    case 2: {  // splice random bytes at a random position
      const std::size_t at = gen.below(bytes.size() + 1);
      const int len = gen.int_in(1, 16);
      std::vector<std::uint8_t> noise;
      for (int i = 0; i < len; ++i) {
        noise.push_back(static_cast<std::uint8_t>(gen.below(256)));
      }
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   noise.begin(), noise.end());
      break;
    }
    case 3: {  // delete a short span
      const std::size_t at = gen.below(bytes.size());
      const std::size_t len =
          std::min(bytes.size() - at,
                   static_cast<std::size_t>(gen.int_in(1, 16)));
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                  bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
    default: {  // duplicate a short span (repeated headers, stutter)
      const std::size_t at = gen.below(bytes.size());
      const std::size_t len =
          std::min(bytes.size() - at,
                   static_cast<std::size_t>(gen.int_in(1, 16)));
      const std::vector<std::uint8_t> span(
          bytes.begin() + static_cast<std::ptrdiff_t>(at),
          bytes.begin() + static_cast<std::ptrdiff_t>(at + len));
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   span.begin(), span.end());
      break;
    }
  }
}

}  // namespace

FrameFuzzStats fuzz_frames(Gen& gen, int rounds) {
  FrameFuzzStats stats;
  for (int round = 0; round < rounds; ++round) {
    ++stats.rounds;
    std::vector<std::uint8_t> bytes;
    std::vector<std::pair<front::FrameType, std::vector<std::uint8_t>>> built;
    const int count = gen.int_in(1, 6);
    for (int f = 0; f < count; ++f) {
      built.push_back(append_random_frame(gen, bytes));
    }

    const bool clean = gen.chance(0.3);
    if (!clean) {
      const int edits = gen.int_in(1, 4);
      for (int e = 0; e < edits; ++e) mutate_bytes(gen, bytes);
    } else {
      ++stats.clean;
    }

    front::FrameDecoder decoder;
    std::vector<front::FrameDecoder::Item> delivered;
    // Every next() call past this bound would mean the decoder stopped
    // consuming input — the infinite-loop failure mode.
    const std::size_t progress_cap = bytes.size() + 64;
    std::size_t calls = 0;
    try {
      std::size_t pos = 0;
      while (pos < bytes.size()) {
        const std::size_t chunk = std::min(
            bytes.size() - pos, static_cast<std::size_t>(gen.int_in(1, 48)));
        decoder.feed(std::span<const std::uint8_t>(bytes).subspan(pos, chunk));
        pos += chunk;
        while (true) {
          if (++calls > progress_cap) {
            throw PropertyFailure(
                "fuzz_frames: decoder stopped making progress");
          }
          front::FrameDecoder::Item item = decoder.next();
          if (item.status == front::DecodeStatus::kNeedMore) break;
          if (item.status == front::DecodeStatus::kFrame) {
            // Body decoders must be total too: garbage that checksums
            // fine returns false, it never throws.
            if (item.type == front::FrameType::kRequest) {
              front::Request req;
              (void)front::decode_request(item.payload, req);
            } else if (item.type == front::FrameType::kResponse) {
              front::Response res;
              (void)front::decode_response(item.payload, res);
            } else {
              front::Error err;
              (void)front::decode_error(item.payload, err);
            }
            ++stats.frames;
          } else {
            ++stats.damaged;
          }
          delivered.push_back(std::move(item));
        }
      }
    } catch (const PropertyFailure&) {
      throw;
    } catch (const std::exception& error) {
      throw PropertyFailure(std::string("fuzz_frames: decoder threw: \"") +
                            error.what() + "\"");
    }

    if (clean) {
      // An undamaged stream must round-trip exactly, no matter how the
      // bytes were chunked.
      std::size_t seen = 0;
      for (const front::FrameDecoder::Item& item : delivered) {
        if (item.status != front::DecodeStatus::kFrame) {
          throw PropertyFailure("fuzz_frames: clean stream produced " +
                                std::string(to_string(item.status)));
        }
        if (seen >= built.size() || item.type != built[seen].first ||
            item.payload != built[seen].second) {
          throw PropertyFailure(
              "fuzz_frames: clean stream payload mismatch at frame " +
              std::to_string(seen));
        }
        ++seen;
      }
      if (seen != built.size()) {
        throw PropertyFailure("fuzz_frames: clean stream delivered " +
                              std::to_string(seen) + " of " +
                              std::to_string(built.size()) + " frames");
      }
      if (decoder.buffered() != 0) {
        throw PropertyFailure(
            "fuzz_frames: clean stream left bytes buffered");
      }
    }
  }
  return stats;
}

namespace {

/// Everything one decode of a byte stream produces: the delivered frame
/// sequence, the final tallies, and the unconsumed residue size.
struct ReassemblyRun {
  std::vector<std::pair<front::FrameType, std::vector<std::uint8_t>>> frames;
  std::size_t damaged = 0;
  front::FrameDecoder::Tally tally;
  std::size_t residue = 0;
};

/// Decodes `bytes` split at random chunk boundaries (chunk size 0 means
/// "feed everything at once").
ReassemblyRun decode_chunked(Gen& gen, std::span<const std::uint8_t> bytes,
                             bool whole) {
  front::FrameDecoder decoder;
  ReassemblyRun run;
  // next() must consume input or report kNeedMore once per feed; more
  // calls than bytes-plus-slack means it stopped making progress.
  const std::size_t progress_cap = 2 * bytes.size() + 64;
  std::size_t calls = 0;
  std::size_t pos = 0;
  try {
    while (pos < bytes.size()) {
      const std::size_t chunk =
          whole ? bytes.size()
                : std::min(bytes.size() - pos,
                           static_cast<std::size_t>(gen.int_in(1, 48)));
      decoder.feed(bytes.subspan(pos, chunk));
      pos += chunk;
      while (true) {
        if (++calls > progress_cap) {
          throw PropertyFailure(
              "fuzz_reassembly: decoder stopped making progress");
        }
        front::FrameDecoder::Item item = decoder.next();
        if (item.status == front::DecodeStatus::kNeedMore) break;
        if (item.status == front::DecodeStatus::kFrame) {
          run.frames.emplace_back(item.type, std::move(item.payload));
        } else {
          ++run.damaged;
        }
      }
    }
  } catch (const PropertyFailure&) {
    throw;
  } catch (const std::exception& error) {
    throw PropertyFailure(std::string("fuzz_reassembly: decoder threw: \"") +
                          error.what() + "\"");
  }
  run.tally = decoder.tally();
  run.residue = decoder.buffered();
  return run;
}

/// The chunking-invariance contract between a reference decode and a
/// differently-chunked decode of the same bytes. Two quantities are
/// legitimately chunking-dependent: bad_magic counts resync *events*
/// (a garbage run torn across reads surfaces as several), and the
/// resync scan can only run through bytes buffered at the time, so
/// trailing garbage splits differently between "discarded" and "still
/// buffered". What IS conserved: the delivered frame sequence, every
/// whole-frame tally, and discarded + residual bytes as a sum.
void require_same_reassembly(const ReassemblyRun& ref,
                             const ReassemblyRun& got, const char* what) {
  if (got.frames != ref.frames) {
    throw PropertyFailure(std::string("fuzz_reassembly: ") + what +
                          ": delivered frame sequence depends on chunking");
  }
  const front::FrameDecoder::Tally& a = ref.tally;
  const front::FrameDecoder::Tally& b = got.tally;
  if (a.frames != b.frames || a.bad_version != b.bad_version ||
      a.bad_length != b.bad_length || a.bad_checksum != b.bad_checksum ||
      a.bad_type != b.bad_type) {
    throw PropertyFailure(std::string("fuzz_reassembly: ") + what +
                          ": decode tallies depend on chunking");
  }
  if (a.resync_bytes + ref.residue != b.resync_bytes + got.residue) {
    throw PropertyFailure(
        std::string("fuzz_reassembly: ") + what +
        ": discarded+buffered byte count depends on chunking");
  }
}

}  // namespace

ReassemblyFuzzStats fuzz_reassembly(Gen& gen, int rounds) {
  ReassemblyFuzzStats stats;
  for (int round = 0; round < rounds; ++round) {
    ++stats.rounds;
    std::vector<std::uint8_t> bytes;
    const int count = gen.int_in(1, 8);
    for (int f = 0; f < count; ++f) {
      (void)append_random_frame(gen, bytes);
    }
    if (gen.chance(0.6)) {
      ++stats.mutated;
      const int edits = gen.int_in(1, 4);
      for (int e = 0; e < edits; ++e) mutate_bytes(gen, bytes);
    }

    const std::span<const std::uint8_t> view(bytes);
    const ReassemblyRun reference = decode_chunked(gen, view, /*whole=*/true);
    stats.frames += reference.frames.size();
    stats.damaged += reference.damaged;
    require_same_reassembly(reference, decode_chunked(gen, view, false),
                            "chunking A");
    require_same_reassembly(reference, decode_chunked(gen, view, false),
                            "chunking B");
  }
  return stats;
}

namespace {

/// Column-and-counter identity of two stores — the fuzz-side version of
/// the gtest expect_same_store helper, throwing PropertyFailure.
void require_same_store(const serve::ColumnarStore& a,
                        const serve::ColumnarStore& b,
                        const std::string& what) {
  if (a.rows_stored() != b.rows_stored() ||
      a.rows_dropped() != b.rows_dropped()) {
    throw PropertyFailure(what + ": row counters diverge");
  }
  const std::vector<serve::ColumnarStore::ShardView> shards_a = a.shards();
  const std::vector<serve::ColumnarStore::ShardView> shards_b = b.shards();
  if (shards_a.size() != shards_b.size()) {
    throw PropertyFailure(what + ": shard counts diverge");
  }
  for (std::size_t s = 0; s < shards_a.size(); ++s) {
    const serve::ColumnarStore::ShardView& va = shards_a[s];
    const serve::ColumnarStore::ShardView& vb = shards_b[s];
    if (va.country != vb.country || va.access != vb.access ||
        va.rtt_ms.size() != vb.rtt_ms.size()) {
      throw PropertyFailure(what + ": shard " + std::to_string(s) +
                            " shape diverges");
    }
    for (std::size_t i = 0; i < va.rtt_ms.size(); ++i) {
      if (va.probe_ids[i] != vb.probe_ids[i] ||
          va.region_index[i] != vb.region_index[i] ||
          va.ticks[i] != vb.ticks[i] ||
          std::bit_cast<std::uint32_t>(va.rtt_ms[i]) !=
              std::bit_cast<std::uint32_t>(vb.rtt_ms[i])) {
        throw PropertyFailure(what + ": shard " + std::to_string(s) +
                              " row " + std::to_string(i) + " diverges");
      }
    }
  }
}

}  // namespace

SnapshotFuzzStats fuzz_snapshot(Gen& gen, const World& world,
                                const atlas::MeasurementDataset& dataset,
                                int rounds) {
  const serve::ColumnarStore store =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{1});
  std::ostringstream sink(std::ios::binary);
  serve::save_snapshot(store, sink);
  const std::string image = sink.str();
  const std::vector<std::uint8_t> original(image.begin(), image.end());

  SnapshotFuzzStats stats;
  for (int round = 0; round < rounds; ++round) {
    ++stats.rounds;
    std::vector<std::uint8_t> bytes = original;
    const bool clean = gen.chance(0.15);
    if (!clean) {
      const int edits = gen.int_in(1, 4);
      for (int e = 0; e < edits; ++e) mutate_bytes(gen, bytes);
    } else {
      ++stats.clean;
    }

    try {
      serve::SnapshotLoadOptions options;
      options.lazy_summaries = gen.chance(0.3);
      serve::ColumnarStore loaded =
          serve::load_snapshot(bytes, &world.fleet, &world.registry,
                               serve::StoreConfig{1}, options);
      ++stats.loaded;
      // Whatever the loader accepts must be a complete store: the lazy
      // path still owes a working refresh, and a clean image must
      // reproduce the original exactly.
      if (!loaded.fresh()) loaded.refresh();
      if (clean) {
        require_same_store(store, loaded,
                           "fuzz_snapshot: clean image diverges");
      }
    } catch (const serve::SnapshotError&) {
      ++stats.rejected;
      if (clean) {
        throw PropertyFailure(
            "fuzz_snapshot: loader rejected an unmutated image [" +
            world.summary + "]");
      }
    } catch (const io::BlockError&) {
      ++stats.rejected;
      if (clean) {
        throw PropertyFailure(
            "fuzz_snapshot: container reader rejected an unmutated image [" +
            world.summary + "]");
      }
    } catch (const PropertyFailure&) {
      throw;
    } catch (const std::exception& error) {
      throw PropertyFailure(
          std::string("fuzz_snapshot: loader threw outside the contract: "
                      "\"") +
          error.what() + "\" [" + world.summary + "]");
    }
  }
  return stats;
}

}  // namespace shears::check
