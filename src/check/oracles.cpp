#include "check/oracles.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "atlas/campaign.hpp"
#include "check/property.hpp"
#include "core/analysis.hpp"
#include "faults/fault_schedule.hpp"
#include "geo/continent.hpp"
#include "geo/coordinates.hpp"
#include "geo/spatial_index.hpp"
#include "serve/columnar.hpp"
#include "serve/reference.hpp"

namespace shears::check {

namespace {

[[noreturn]] void fail(const World& world, const std::string& what) {
  throw PropertyFailure(what + " [" + world.summary + "]");
}

void require_identical(const World& world, const atlas::MeasurementDataset& a,
                       const atlas::MeasurementDataset& b,
                       const std::string& label) {
  std::string why;
  if (!datasets_identical(a, b, why)) {
    fail(world, label + ": " + why);
  }
}

bool same_doubles(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) != std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

}  // namespace

void check_cached_vs_uncached(const World& world) {
  atlas::CampaignConfig config = world.campaign;
  config.sampling_cache = true;
  const atlas::MeasurementDataset cached = world.run_with(config);
  config.sampling_cache = false;
  const atlas::MeasurementDataset uncached = world.run_with(config);
  require_identical(world, cached, uncached, "cached vs uncached engine");
  if (dataset_checksum(cached) != dataset_checksum(uncached)) {
    fail(world, "cached vs uncached engine: checksums diverge");
  }
}

void check_campaign_thread_invariance(const World& world) {
  atlas::CampaignConfig config = world.campaign;
  config.threads = 1;
  const atlas::MeasurementDataset serial = world.run_with(config);
  config.threads = 8;
  const atlas::MeasurementDataset sharded = world.run_with(config);
  require_identical(world, serial, sharded, "campaign threads 1 vs 8");
}

void check_analysis_thread_invariance(
    const World& world, const atlas::MeasurementDataset& dataset) {
  core::AnalysisOptions serial;
  serial.threads = 1;
  core::AnalysisOptions sharded;
  sharded.threads = 8;

  const auto rows_a = core::country_min_latency(dataset, serial);
  const auto rows_b = core::country_min_latency(dataset, sharded);
  if (rows_a.size() != rows_b.size()) {
    fail(world, "country_min_latency: row counts differ across threads");
  }
  for (std::size_t i = 0; i < rows_a.size(); ++i) {
    if (rows_a[i].country != rows_b[i].country ||
        std::bit_cast<std::uint64_t>(rows_a[i].min_rtt_ms) !=
            std::bit_cast<std::uint64_t>(rows_b[i].min_rtt_ms) ||
        rows_a[i].best_region != rows_b[i].best_region ||
        rows_a[i].probe_count != rows_b[i].probe_count) {
      fail(world, "country_min_latency: rows diverge across threads");
    }
  }

  const auto best_a = core::per_probe_best(dataset, serial);
  const auto best_b = core::per_probe_best(dataset, sharded);
  if (best_a.size() != best_b.size()) {
    fail(world, "per_probe_best: sizes differ across threads");
  }
  for (std::size_t i = 0; i < best_a.size(); ++i) {
    if (best_a[i].probe_id != best_b[i].probe_id ||
        best_a[i].region_index != best_b[i].region_index ||
        std::bit_cast<std::uint64_t>(best_a[i].min_ms) !=
            std::bit_cast<std::uint64_t>(best_b[i].min_ms) ||
        best_a[i].valid != best_b[i].valid) {
      fail(world, "per_probe_best: entries diverge across threads");
    }
  }

  const auto fig5_a = core::min_rtt_by_continent(dataset, serial);
  const auto fig5_b = core::min_rtt_by_continent(dataset, sharded);
  const auto fig6_a = core::best_region_samples_by_continent(dataset, serial);
  const auto fig6_b = core::best_region_samples_by_continent(dataset, sharded);
  for (std::size_t c = 0; c < geo::kContinentCount; ++c) {
    if (!same_doubles(fig5_a[c], fig5_b[c])) {
      fail(world, "min_rtt_by_continent: samples diverge across threads");
    }
    if (!same_doubles(fig6_a[c], fig6_b[c])) {
      fail(world,
           "best_region_samples_by_continent: samples diverge across threads");
    }
  }

  const auto view_a = core::server_side_view(dataset, serial);
  const auto view_b = core::server_side_view(dataset, sharded);
  if (view_a.size() != view_b.size()) {
    fail(world, "server_side_view: row counts differ across threads");
  }
  for (std::size_t i = 0; i < view_a.size(); ++i) {
    if (view_a[i].region != view_b[i].region ||
        view_a[i].clients != view_b[i].clients ||
        view_a[i].samples != view_b[i].samples ||
        std::bit_cast<std::uint64_t>(view_a[i].median_ms) !=
            std::bit_cast<std::uint64_t>(view_b[i].median_ms) ||
        std::bit_cast<std::uint64_t>(view_a[i].p90_ms) !=
            std::bit_cast<std::uint64_t>(view_b[i].p90_ms) ||
        std::bit_cast<std::uint64_t>(view_a[i].under_40ms) !=
            std::bit_cast<std::uint64_t>(view_b[i].under_40ms)) {
      fail(world, "server_side_view: rows diverge across threads");
    }
  }
}

void check_csv_roundtrip(const World& world,
                         const atlas::MeasurementDataset& dataset) {
  std::stringstream first;
  dataset.write_csv(first);
  std::stringstream reparse(first.str());
  const atlas::MeasurementDataset parsed = atlas::MeasurementDataset::read_csv(
      reparse, &world.fleet, &world.registry);
  require_identical(world, dataset, parsed, "CSV round trip");
  std::stringstream second;
  parsed.write_csv(second);
  if (first.str() != second.str()) {
    fail(world, "CSV round trip: re-serialisation is not byte-identical");
  }
}

void check_jsonl_roundtrip(const World& world,
                           const atlas::MeasurementDataset& dataset) {
  std::stringstream first;
  dataset.write_jsonl(first, world.campaign.interval_hours);
  std::stringstream reparse(first.str());
  const atlas::MeasurementDataset parsed =
      atlas::MeasurementDataset::read_jsonl(reparse, &world.fleet,
                                            &world.registry,
                                            world.campaign.interval_hours);
  // Lost bursts drop their min/avg/max on the wire (-1 markers) but the
  // engine also writes zeros there, so full identity still holds.
  require_identical(world, dataset, parsed, "JSONL round trip");
  std::stringstream second;
  parsed.write_jsonl(second, world.campaign.interval_hours);
  if (first.str() != second.str()) {
    fail(world, "JSONL round trip: re-serialisation is not byte-identical");
  }
}

void check_empty_schedule_identity(const World& world) {
  const faults::FaultSchedule empty;
  const atlas::Campaign with_empty(world.fleet, world.registry, world.model,
                                   world.campaign, &empty);
  const atlas::Campaign without(world.fleet, world.registry, world.model,
                                world.campaign, nullptr);
  require_identical(world, with_empty.run(), without.run(),
                    "empty schedule vs no schedule");
}

namespace {

/// Every point sorted ascending by (haversine distance, id) — the ground
/// truth all three SpatialIndex queries must reproduce exactly.
std::vector<geo::SpatialHit> brute_hits(std::span<const geo::GeoPoint> points,
                                        const geo::GeoPoint& query) {
  std::vector<geo::SpatialHit> hits;
  hits.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    hits.push_back(geo::SpatialHit{static_cast<std::uint32_t>(i),
                                   geo::haversine_km(query, points[i])});
  }
  std::sort(hits.begin(), hits.end(),
            [](const geo::SpatialHit& a, const geo::SpatialHit& b) {
              if (a.distance_km != b.distance_km) {
                return a.distance_km < b.distance_km;
              }
              return a.id < b.id;
            });
  return hits;
}

[[noreturn]] void fail_spatial(std::string_view summary,
                               const geo::GeoPoint& query,
                               const std::string& what) {
  std::ostringstream os;
  os << "spatial index vs brute force: " << what << " at query ("
     << query.lat_deg << ", " << query.lon_deg << ") [" << summary << "]";
  throw PropertyFailure(os.str());
}

bool hits_equal(const geo::SpatialHit& a, const geo::SpatialHit& b) {
  return a.id == b.id && std::bit_cast<std::uint64_t>(a.distance_km) ==
                             std::bit_cast<std::uint64_t>(b.distance_km);
}

}  // namespace

void check_spatial_index(std::span<const geo::GeoPoint> points,
                         std::span<const geo::GeoPoint> queries,
                         double radius_km, std::string_view summary) {
  const geo::SpatialIndex index(points);
  for (const geo::GeoPoint& query : queries) {
    const std::vector<geo::SpatialHit> truth = brute_hits(points, query);

    const std::optional<geo::SpatialHit> nearest = index.nearest(query);
    if (nearest.has_value() != !truth.empty() ||
        (nearest.has_value() && !hits_equal(*nearest, truth.front()))) {
      fail_spatial(summary, query, "nearest diverges");
    }

    const std::size_t n = std::min<std::size_t>(5, points.size() + 1);
    const std::vector<geo::SpatialHit> top = index.nearest_n(query, n);
    if (top.size() != std::min(n, truth.size())) {
      fail_spatial(summary, query, "nearest_n size diverges");
    }
    for (std::size_t i = 0; i < top.size(); ++i) {
      if (!hits_equal(top[i], truth[i])) {
        fail_spatial(summary, query, "nearest_n entries diverge");
      }
    }

    const std::vector<geo::SpatialHit> within =
        index.within_radius(query, radius_km);
    std::size_t expected = 0;
    while (expected < truth.size() &&
           truth[expected].distance_km <= radius_km) {
      ++expected;
    }
    if (within.size() != expected) {
      fail_spatial(summary, query, "within_radius count diverges");
    }
    for (std::size_t i = 0; i < within.size(); ++i) {
      if (!hits_equal(within[i], truth[i])) {
        fail_spatial(summary, query, "within_radius entries diverge");
      }
    }
  }
}

void check_oracle_vs_fullscan(const World& world,
                              const atlas::MeasurementDataset& dataset,
                              std::span<const serve::Query> queries) {
  const serve::ReferenceOracle reference(&dataset);
  const std::vector<serve::Answer> expected = reference.answer(queries);

  const auto require_answers = [&](const serve::ColumnarStore& store,
                                   std::size_t oracle_threads,
                                   const std::string& label) {
    serve::OracleConfig config;
    config.threads = oracle_threads;
    const serve::Oracle oracle(&store, config);
    const std::vector<serve::Answer> got = oracle.answer(queries);
    std::string why;
    if (!serve::answers_identical(expected, got, why)) {
      fail(world, "oracle vs full scan (" + label + "): " + why);
    }
  };

  // One-shot build, single-threaded everything.
  const serve::ColumnarStore one_shot =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{1});
  require_answers(one_shot, 1, "one-shot build, 1 thread");

  // Chunked appends with a mid-stream refresh, 8 build threads, 8 query
  // threads — every knob the determinism contract covers at once.
  serve::ColumnarStore chunked(&dataset.fleet(), &dataset.registry(),
                               serve::StoreConfig{8});
  const std::span<const atlas::Measurement> rows = dataset.records();
  const std::size_t third = rows.size() / 3;
  chunked.append(rows.subspan(0, third));
  chunked.refresh();
  chunked.append(rows.subspan(third));
  chunked.refresh();
  require_answers(chunked, 8, "chunked build, 8 threads");
}

}  // namespace shears::check
