#include "check/oracles.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "atlas/campaign.hpp"
#include "check/property.hpp"
#include "core/analysis.hpp"
#include "faults/fault_schedule.hpp"
#include "geo/continent.hpp"
#include "geo/coordinates.hpp"
#include "geo/spatial_index.hpp"
#include "net/burst_lanes.hpp"
#include "serve/columnar.hpp"
#include "serve/reference.hpp"
#include "serve/snapshot.hpp"

namespace shears::check {

namespace {

[[noreturn]] void fail(const World& world, const std::string& what) {
  throw PropertyFailure(what + " [" + world.summary + "]");
}

void require_identical(const World& world, const atlas::MeasurementDataset& a,
                       const atlas::MeasurementDataset& b,
                       const std::string& label) {
  std::string why;
  if (!datasets_identical(a, b, why)) {
    fail(world, label + ": " + why);
  }
}

bool same_doubles(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) != std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

}  // namespace

void check_cached_vs_uncached(const World& world) {
  atlas::CampaignConfig config = world.campaign;
  config.sampling_cache = true;
  const atlas::MeasurementDataset cached = world.run_with(config);
  config.sampling_cache = false;
  const atlas::MeasurementDataset uncached = world.run_with(config);
  require_identical(world, cached, uncached, "cached vs uncached engine");
  if (dataset_checksum(cached) != dataset_checksum(uncached)) {
    fail(world, "cached vs uncached engine: checksums diverge");
  }
}

namespace {

[[nodiscard]] double quantile_of_sorted(const std::vector<double>& sorted,
                                        double q) noexcept {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Loss-rate and RTT-quantile agreement between the two engines over the
/// same record subset. The engines consume each probe's stream on
/// different schedules (burst_lanes.hpp), so the pooled populations are
/// two independent samples of the same model — the bounds are sized
/// ~an order of magnitude above the sampling noise of the property
/// harness's campaign sizes, loose enough to be deterministic in
/// practice and tight enough that a real distributional break (wrong
/// transform, mask misapplied, tail dropped) trips them.
void require_distribution_close(const World& world, const std::string& label,
                                std::span<const atlas::Measurement> a,
                                std::span<const atlas::Measurement> b) {
  double a_sent = 0.0, a_recv = 0.0, b_sent = 0.0, b_recv = 0.0;
  std::vector<double> a_avg, b_avg;
  for (const atlas::Measurement& r : a) {
    a_sent += r.sent;
    a_recv += r.received;
    if (r.received > 0) a_avg.push_back(r.avg_ms);
  }
  for (const atlas::Measurement& r : b) {
    b_sent += r.sent;
    b_recv += r.received;
    if (r.received > 0) b_avg.push_back(r.avg_ms);
  }
  if (a_sent <= 0.0 || b_sent <= 0.0) return;

  const double a_loss = 1.0 - a_recv / a_sent;
  const double b_loss = 1.0 - b_recv / b_sent;
  // Binomial noise floor: sd of the rate difference at pooled p, plus a
  // small absolute term for the large-sample regime.
  const double p = std::min(0.5, std::max((a_loss + b_loss) * 0.5, 1e-3));
  const double sd =
      std::sqrt(2.0 * p * (1.0 - p) / std::min(a_sent, b_sent));
  if (std::abs(a_loss - b_loss) > 0.01 + 6.0 * sd) {
    std::ostringstream msg;
    msg << label << ": loss rates diverge (" << a_loss << " vs " << b_loss
        << ", bound " << 0.01 + 6.0 * sd << ")";
    fail(world, msg.str());
  }

  // Quantiles, not means: the Pareto spike tail has unbounded variance,
  // quantile estimates stay stable. Skip small subsets — below a few
  // hundred bursts the estimator noise would force useless bounds.
  if (a_avg.size() < 300 || b_avg.size() < 300) return;
  std::sort(a_avg.begin(), a_avg.end());
  std::sort(b_avg.begin(), b_avg.end());
  const double n = static_cast<double>(std::min(a_avg.size(), b_avg.size()));
  // Estimator noise shrinks like 1/sqrt(n); 8/sqrt(n) relative spans the
  // harness's campaign sizes with margin.
  const double rel = 0.03 + 8.0 / std::sqrt(n);
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double qa = quantile_of_sorted(a_avg, q);
    const double qb = quantile_of_sorted(b_avg, q);
    if (std::abs(qa - qb) > rel * std::max(qa, qb) + 0.5) {
      std::ostringstream msg;
      msg << label << ": avg-RTT quantile " << q << " diverges (" << qa
          << " vs " << qb << ", rel bound " << rel << ")";
      fail(world, msg.str());
    }
  }
}

}  // namespace

void check_batched_vs_scalar(const World& world) {
  atlas::CampaignConfig config = world.campaign;
  // Normalise to the kernel's coverage; both sides run the same config,
  // so the comparison stays apples to apples. probe_uptime is pinned to
  // 1 because churn Bernoullis are drawn from each probe's stream at
  // tick level: the engines advance that stream differently inside a
  // burst (fixed kind-major schedule vs data-dependent scalar draws), so
  // with churn enabled the up/down realisations would desync and the
  // record *structure* — which this oracle holds exactly — would
  // legitimately differ.
  config.sampling_cache = true;
  config.retry = faults::RetryPolicy{};
  config.quarantine = faults::QuarantinePolicy{};
  config.probe_uptime = 1.0;
  if (config.packets_per_ping > net::kMaxBatchedPackets) {
    config.packets_per_ping = net::kMaxBatchedPackets;
  }
  config.threads = 1;
  config.batched = false;
  const atlas::MeasurementDataset scalar = world.run_with(config);

  config.batched = true;
  const atlas::Campaign engine(world.fleet, world.registry, world.model,
                               config,
                               world.faulted() ? &world.schedule : nullptr);
  if (!engine.batched_eligible()) {
    fail(world, "batched vs scalar: normalised config not kernel-eligible");
  }
  atlas::CampaignTelemetry telemetry;
  const atlas::MeasurementDataset batched = engine.run(telemetry);
  if (telemetry.bursts > 0 && telemetry.bursts_batched == 0) {
    fail(world, "batched vs scalar: kernel produced records but "
                "bursts_batched stayed 0 (fell back to the scalar path)");
  }

  // Record structure is draw-free at uptime 1 and must match exactly:
  // same probes, same ticks, same targets, same burst sizes, same fault
  // exposure. Only the sampled values (received, RTTs) may differ.
  const std::span<const atlas::Measurement> a = scalar.records();
  const std::span<const atlas::Measurement> b = batched.records();
  if (a.size() != b.size()) {
    fail(world, "batched vs scalar: record counts diverge (" +
                    std::to_string(a.size()) + " vs " +
                    std::to_string(b.size()) + ")");
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const atlas::Measurement& sa = a[i];
    const atlas::Measurement& sb = b[i];
    if (sa.probe_id != sb.probe_id || sa.region_index != sb.region_index ||
        sa.tick != sb.tick || sa.sent != sb.sent ||
        sa.retries != sb.retries || sa.faults != sb.faults) {
      fail(world, "batched vs scalar: record structure diverges at row " +
                      std::to_string(i));
    }
  }

  // The sampled values are gated distributionally — globally and on the
  // faulted subset (structure matches row-for-row, so the faulted rows
  // of one engine are exactly the faulted rows of the other: a fault
  // path that mis-scales only perturbed bursts cannot hide in the
  // global pool).
  require_distribution_close(world, "batched vs scalar", a, b);
  std::vector<atlas::Measurement> a_faulted, b_faulted;
  for (const atlas::Measurement& r : a)
    if (r.faulted()) a_faulted.push_back(r);
  for (const atlas::Measurement& r : b)
    if (r.faulted()) b_faulted.push_back(r);
  require_distribution_close(world, "batched vs scalar (faulted subset)",
                             a_faulted, b_faulted);

  // The batched engine is exact with respect to itself: sharding must
  // not change a byte (lanes only ever consume their own stream).
  config.threads = 8;
  const atlas::MeasurementDataset batched8 = world.run_with(config);
  require_identical(world, batched, batched8, "batched engine threads 1 vs 8");
}

void check_campaign_thread_invariance(const World& world) {
  atlas::CampaignConfig config = world.campaign;
  config.threads = 1;
  const atlas::MeasurementDataset serial = world.run_with(config);
  config.threads = 8;
  const atlas::MeasurementDataset sharded = world.run_with(config);
  require_identical(world, serial, sharded, "campaign threads 1 vs 8");
}

void check_analysis_thread_invariance(
    const World& world, const atlas::MeasurementDataset& dataset) {
  core::AnalysisOptions serial;
  serial.threads = 1;
  core::AnalysisOptions sharded;
  sharded.threads = 8;

  const auto rows_a = core::country_min_latency(dataset, serial);
  const auto rows_b = core::country_min_latency(dataset, sharded);
  if (rows_a.size() != rows_b.size()) {
    fail(world, "country_min_latency: row counts differ across threads");
  }
  for (std::size_t i = 0; i < rows_a.size(); ++i) {
    if (rows_a[i].country != rows_b[i].country ||
        std::bit_cast<std::uint64_t>(rows_a[i].min_rtt_ms) !=
            std::bit_cast<std::uint64_t>(rows_b[i].min_rtt_ms) ||
        rows_a[i].best_region != rows_b[i].best_region ||
        rows_a[i].probe_count != rows_b[i].probe_count) {
      fail(world, "country_min_latency: rows diverge across threads");
    }
  }

  const auto best_a = core::per_probe_best(dataset, serial);
  const auto best_b = core::per_probe_best(dataset, sharded);
  if (best_a.size() != best_b.size()) {
    fail(world, "per_probe_best: sizes differ across threads");
  }
  for (std::size_t i = 0; i < best_a.size(); ++i) {
    if (best_a[i].probe_id != best_b[i].probe_id ||
        best_a[i].region_index != best_b[i].region_index ||
        std::bit_cast<std::uint64_t>(best_a[i].min_ms) !=
            std::bit_cast<std::uint64_t>(best_b[i].min_ms) ||
        best_a[i].valid != best_b[i].valid) {
      fail(world, "per_probe_best: entries diverge across threads");
    }
  }

  const auto fig5_a = core::min_rtt_by_continent(dataset, serial);
  const auto fig5_b = core::min_rtt_by_continent(dataset, sharded);
  const auto fig6_a = core::best_region_samples_by_continent(dataset, serial);
  const auto fig6_b = core::best_region_samples_by_continent(dataset, sharded);
  for (std::size_t c = 0; c < geo::kContinentCount; ++c) {
    if (!same_doubles(fig5_a[c], fig5_b[c])) {
      fail(world, "min_rtt_by_continent: samples diverge across threads");
    }
    if (!same_doubles(fig6_a[c], fig6_b[c])) {
      fail(world,
           "best_region_samples_by_continent: samples diverge across threads");
    }
  }

  const auto view_a = core::server_side_view(dataset, serial);
  const auto view_b = core::server_side_view(dataset, sharded);
  if (view_a.size() != view_b.size()) {
    fail(world, "server_side_view: row counts differ across threads");
  }
  for (std::size_t i = 0; i < view_a.size(); ++i) {
    if (view_a[i].region != view_b[i].region ||
        view_a[i].clients != view_b[i].clients ||
        view_a[i].samples != view_b[i].samples ||
        std::bit_cast<std::uint64_t>(view_a[i].median_ms) !=
            std::bit_cast<std::uint64_t>(view_b[i].median_ms) ||
        std::bit_cast<std::uint64_t>(view_a[i].p90_ms) !=
            std::bit_cast<std::uint64_t>(view_b[i].p90_ms) ||
        std::bit_cast<std::uint64_t>(view_a[i].under_40ms) !=
            std::bit_cast<std::uint64_t>(view_b[i].under_40ms)) {
      fail(world, "server_side_view: rows diverge across threads");
    }
  }
}

void check_csv_roundtrip(const World& world,
                         const atlas::MeasurementDataset& dataset) {
  std::stringstream first;
  dataset.write_csv(first);
  std::stringstream reparse(first.str());
  const atlas::MeasurementDataset parsed = atlas::MeasurementDataset::read_csv(
      reparse, &world.fleet, &world.registry);
  require_identical(world, dataset, parsed, "CSV round trip");
  std::stringstream second;
  parsed.write_csv(second);
  if (first.str() != second.str()) {
    fail(world, "CSV round trip: re-serialisation is not byte-identical");
  }
}

void check_jsonl_roundtrip(const World& world,
                           const atlas::MeasurementDataset& dataset) {
  std::stringstream first;
  dataset.write_jsonl(first, world.campaign.interval_hours);
  std::stringstream reparse(first.str());
  const atlas::MeasurementDataset parsed =
      atlas::MeasurementDataset::read_jsonl(reparse, &world.fleet,
                                            &world.registry,
                                            world.campaign.interval_hours);
  // Lost bursts drop their min/avg/max on the wire (-1 markers) but the
  // engine also writes zeros there, so full identity still holds.
  require_identical(world, dataset, parsed, "JSONL round trip");
  std::stringstream second;
  parsed.write_jsonl(second, world.campaign.interval_hours);
  if (first.str() != second.str()) {
    fail(world, "JSONL round trip: re-serialisation is not byte-identical");
  }
}

void check_empty_schedule_identity(const World& world) {
  const faults::FaultSchedule empty;
  const atlas::Campaign with_empty(world.fleet, world.registry, world.model,
                                   world.campaign, &empty);
  const atlas::Campaign without(world.fleet, world.registry, world.model,
                                world.campaign, nullptr);
  require_identical(world, with_empty.run(), without.run(),
                    "empty schedule vs no schedule");
}

namespace {

/// Every point sorted ascending by (haversine distance, id) — the ground
/// truth all three SpatialIndex queries must reproduce exactly.
std::vector<geo::SpatialHit> brute_hits(std::span<const geo::GeoPoint> points,
                                        const geo::GeoPoint& query) {
  std::vector<geo::SpatialHit> hits;
  hits.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    hits.push_back(geo::SpatialHit{static_cast<std::uint32_t>(i),
                                   geo::haversine_km(query, points[i])});
  }
  std::sort(hits.begin(), hits.end(),
            [](const geo::SpatialHit& a, const geo::SpatialHit& b) {
              if (a.distance_km != b.distance_km) {
                return a.distance_km < b.distance_km;
              }
              return a.id < b.id;
            });
  return hits;
}

[[noreturn]] void fail_spatial(std::string_view summary,
                               const geo::GeoPoint& query,
                               const std::string& what) {
  std::ostringstream os;
  os << "spatial index vs brute force: " << what << " at query ("
     << query.lat_deg << ", " << query.lon_deg << ") [" << summary << "]";
  throw PropertyFailure(os.str());
}

bool hits_equal(const geo::SpatialHit& a, const geo::SpatialHit& b) {
  return a.id == b.id && std::bit_cast<std::uint64_t>(a.distance_km) ==
                             std::bit_cast<std::uint64_t>(b.distance_km);
}

}  // namespace

void check_spatial_index(std::span<const geo::GeoPoint> points,
                         std::span<const geo::GeoPoint> queries,
                         double radius_km, std::string_view summary) {
  const geo::SpatialIndex index(points);
  for (const geo::GeoPoint& query : queries) {
    const std::vector<geo::SpatialHit> truth = brute_hits(points, query);

    const std::optional<geo::SpatialHit> nearest = index.nearest(query);
    if (nearest.has_value() != !truth.empty() ||
        (nearest.has_value() && !hits_equal(*nearest, truth.front()))) {
      fail_spatial(summary, query, "nearest diverges");
    }

    const std::size_t n = std::min<std::size_t>(5, points.size() + 1);
    const std::vector<geo::SpatialHit> top = index.nearest_n(query, n);
    if (top.size() != std::min(n, truth.size())) {
      fail_spatial(summary, query, "nearest_n size diverges");
    }
    for (std::size_t i = 0; i < top.size(); ++i) {
      if (!hits_equal(top[i], truth[i])) {
        fail_spatial(summary, query, "nearest_n entries diverge");
      }
    }

    const std::vector<geo::SpatialHit> within =
        index.within_radius(query, radius_km);
    std::size_t expected = 0;
    while (expected < truth.size() &&
           truth[expected].distance_km <= radius_km) {
      ++expected;
    }
    if (within.size() != expected) {
      fail_spatial(summary, query, "within_radius count diverges");
    }
    for (std::size_t i = 0; i < within.size(); ++i) {
      if (!hits_equal(within[i], truth[i])) {
        fail_spatial(summary, query, "within_radius entries diverge");
      }
    }
  }
}

void check_oracle_vs_fullscan(const World& world,
                              const atlas::MeasurementDataset& dataset,
                              std::span<const serve::Query> queries) {
  const serve::ReferenceOracle reference(&dataset);
  const std::vector<serve::Answer> expected = reference.answer(queries);

  const auto require_answers = [&](const serve::ColumnarStore& store,
                                   std::size_t oracle_threads,
                                   const std::string& label) {
    serve::OracleConfig config;
    config.threads = oracle_threads;
    const serve::Oracle oracle(&store, config);
    const std::vector<serve::Answer> got = oracle.answer(queries);
    std::string why;
    if (!serve::answers_identical(expected, got, why)) {
      fail(world, "oracle vs full scan (" + label + "): " + why);
    }
  };

  // One-shot build, single-threaded everything.
  const serve::ColumnarStore one_shot =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{1});
  require_answers(one_shot, 1, "one-shot build, 1 thread");

  // Chunked appends with a mid-stream refresh, 8 build threads, 8 query
  // threads — every knob the determinism contract covers at once.
  serve::ColumnarStore chunked(&dataset.fleet(), &dataset.registry(),
                               serve::StoreConfig{8});
  const std::span<const atlas::Measurement> rows = dataset.records();
  const std::size_t third = rows.size() / 3;
  chunked.append(rows.subspan(0, third));
  chunked.refresh();
  chunked.append(rows.subspan(third));
  chunked.refresh();
  require_answers(chunked, 8, "chunked build, 8 threads");
}

void check_snapshot_roundtrip(const World& world,
                              const atlas::MeasurementDataset& dataset,
                              std::span<const serve::Query> queries) {
  const serve::ColumnarStore live =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{1});
  const std::vector<serve::Answer> expected =
      serve::Oracle(&live, serve::OracleConfig{1}).answer(queries);

  std::ostringstream sink(std::ios::binary);
  serve::save_snapshot(live, sink);
  const std::string image = sink.str();
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(image.data()), image.size());

  const auto require_answers = [&](const serve::ColumnarStore& store,
                                   const std::string& label) {
    if (store.rows_stored() != live.rows_stored() ||
        store.rows_dropped() != live.rows_dropped()) {
      fail(world, "snapshot round-trip (" + label + "): counters diverge");
    }
    const std::vector<serve::Answer> got =
        serve::Oracle(&store, serve::OracleConfig{1}).answer(queries);
    std::string why;
    if (!serve::answers_identical(expected, got, why)) {
      fail(world, "snapshot round-trip (" + label + "): " + why);
    }
  };

  // Full (verifying) load, 1 and 8 rebuild threads.
  require_answers(serve::load_snapshot(bytes, &dataset.fleet(),
                                       &dataset.registry(),
                                       serve::StoreConfig{1}),
                  "full load, 1 thread");
  require_answers(serve::load_snapshot(bytes, &dataset.fleet(),
                                       &dataset.registry(),
                                       serve::StoreConfig{8}),
                  "full load, 8 threads");

  // Lazy load: stale until the caller's refresh, then identical.
  serve::SnapshotLoadOptions lazy;
  lazy.lazy_summaries = true;
  serve::ColumnarStore deferred = serve::load_snapshot(
      bytes, &dataset.fleet(), &dataset.registry(), serve::StoreConfig{1},
      lazy);
  if (dataset.size() > 0 && deferred.fresh()) {
    fail(world, "snapshot round-trip: lazy load returned a fresh store");
  }
  deferred.refresh();
  require_answers(deferred, "lazy load + refresh");

  // Mid-ingest: snapshot N rows, load, append the remaining M — must
  // answer like the one-shot N+M build above.
  const std::span<const atlas::Measurement> rows = dataset.records();
  const std::size_t cut = rows.size() / 2;
  serve::ColumnarStore partial(&dataset.fleet(), &dataset.registry(),
                               serve::StoreConfig{1});
  partial.append(rows.subspan(0, cut));
  partial.refresh();
  std::ostringstream partial_sink(std::ios::binary);
  serve::save_snapshot(partial, partial_sink);
  const std::string partial_image = partial_sink.str();
  serve::ColumnarStore resumed = serve::load_snapshot(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(partial_image.data()),
          partial_image.size()),
      &dataset.fleet(), &dataset.registry(), serve::StoreConfig{8});
  resumed.append(rows.subspan(cut));
  resumed.refresh();
  require_answers(resumed, "snapshot-N, load, append-M");
}

}  // namespace shears::check
