// Seeded generation context for property-based tests.
//
// A Gen wraps the simulator's own deterministic RNG (stats::Xoshiro256)
// together with a *size* knob in the QuickCheck tradition: generators
// scale collection sizes and value ranges by it, and the property runner
// shrinks a failing case by replaying the same seed at smaller sizes.
// Because every generated artefact is a pure function of (seed, size),
// a counterexample is fully described by those two numbers — which is
// what the SHEARS_CHECK_SEED replay banner prints.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>

#include "stats/rng.hpp"

namespace shears::check {

class Gen {
 public:
  Gen(std::uint64_t seed, int size) noexcept
      : seed_(seed), size_(size < 0 ? 0 : size), rng_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// The shrink knob: generators produce "bigger" worlds (more probes,
  /// longer campaigns, more faults) at larger sizes. Always >= 0.
  [[nodiscard]] int size() const noexcept { return size_; }

  /// Direct access for generators that fork per-entity streams.
  [[nodiscard]] stats::Xoshiro256& rng() noexcept { return rng_; }

  [[nodiscard]] std::uint64_t u64() noexcept { return rng_.next(); }

  /// Uniform in [0, bound); 0 when bound is 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : rng_.bounded(bound);
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] int int_in(int lo, int hi) noexcept {
    return lo + static_cast<int>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double real_in(double lo, double hi) noexcept {
    return rng_.uniform(lo, hi);
  }

  [[nodiscard]] bool chance(double p) noexcept { return rng_.bernoulli(p); }

  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    return items[below(items.size())];
  }

  template <typename T>
  [[nodiscard]] T pick(std::initializer_list<T> items) noexcept {
    return items.begin()[below(items.size())];
  }

  /// A collection size scaled by the shrink knob: uniform in
  /// [lo, lo + size()]. At size 0 this degenerates to `lo`, so a fully
  /// shrunk case is the smallest world the generator can express.
  [[nodiscard]] int scaled(int lo) noexcept { return int_in(lo, lo + size_); }

 private:
  std::uint64_t seed_;
  int size_;
  stats::Xoshiro256 rng_;
};

}  // namespace shears::check
