#include "check/world.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>
#include <vector>

#include "apps/application.hpp"
#include "atlas/tags.hpp"
#include "geo/country.hpp"
#include "net/access.hpp"

namespace shears::check {

namespace {

/// Scatters a probe around its country's primary site, clamped to valid
/// WGS-84 ranges (good enough for a test fleet; haversine only needs
/// validity, not realism).
geo::GeoPoint scatter(Gen& gen, const geo::GeoPoint& site) {
  geo::GeoPoint p;
  p.lat_deg = std::clamp(site.lat_deg + gen.real_in(-1.5, 1.5), -90.0, 90.0);
  p.lon_deg = std::clamp(site.lon_deg + gen.real_in(-1.5, 1.5), -180.0, 180.0);
  return p;
}

atlas::Probe make_probe(Gen& gen, atlas::ProbeId id) {
  const std::span<const geo::Country> countries = geo::all_countries();
  atlas::Probe probe;
  probe.id = id;
  probe.country = &gen.pick(countries);
  probe.endpoint.location = scatter(gen, probe.country->site);
  probe.endpoint.tier = probe.country->tier;
  probe.endpoint.access =
      gen.pick(std::span<const net::AccessTechnology>(
          net::kAllAccessTechnologies));
  probe.endpoint.access_quality = gen.real_in(0.8, 1.3);
  // A sprinkle of privileged probes exercises the §4.1 exclusion filter.
  probe.environment = gen.chance(0.1)
                          ? atlas::Environment::kDatacenter
                          : gen.pick({atlas::Environment::kHome,
                                      atlas::Environment::kOffice,
                                      atlas::Environment::kCoreNetwork});
  probe.tags = atlas::make_tags(probe.endpoint.access, probe.environment,
                                gen.chance(0.7));
  return probe;
}

}  // namespace

topology::CloudRegistry make_registry(Gen& gen) {
  topology::CloudRegistry registry = [&] {
    switch (gen.below(4)) {
      case 1:
        return topology::CloudRegistry::footprint_as_of(gen.int_in(2008, 2020));
      case 2: {
        std::vector<topology::CloudProvider> providers;
        for (const topology::CloudProvider p : topology::kAllProviders) {
          if (gen.chance(0.4)) providers.push_back(p);
        }
        if (providers.empty()) {
          providers.push_back(
              gen.pick(std::span<const topology::CloudProvider>(
                  topology::kAllProviders)));
        }
        return topology::CloudRegistry::for_providers(providers);
      }
      case 3:
        return topology::CloudRegistry::for_providers(
            {gen.pick(std::span<const topology::CloudProvider>(
                topology::kAllProviders))});
      default:
        return topology::CloudRegistry::campaign_footprint();
    }
  }();
  // A campaign against an empty footprint produces nothing to check;
  // every embedded snapshot we pick from is non-empty, but guard anyway.
  if (registry.empty()) {
    registry = topology::CloudRegistry::campaign_footprint();
  }
  return registry;
}

atlas::ProbeFleet make_fleet(Gen& gen) {
  if (gen.chance(0.15)) {
    // Occasionally a generated (realistic) fleet: needs at least one
    // probe per embedded country.
    atlas::PlacementConfig config;
    config.probe_count =
        geo::country_count() + gen.below(40 + 8 * static_cast<std::uint64_t>(
                                                      gen.size()));
    config.seed = gen.u64();
    config.tagged_fraction = gen.real_in(0.3, 0.9);
    config.privileged_fraction = gen.real_in(0.0, 0.1);
    config.urban_fraction = gen.real_in(0.5, 0.9);
    return atlas::ProbeFleet::generate(config);
  }
  // Hand-built fleets reach sizes generate() cannot: zero probes, one
  // probe, a handful of countries.
  const int count = gen.chance(0.05) ? 0 : gen.int_in(1, 3 + gen.size());
  std::vector<atlas::Probe> probes;
  probes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    probes.push_back(make_probe(gen, static_cast<atlas::ProbeId>(i)));
  }
  return atlas::ProbeFleet::from_probes(std::move(probes));
}

atlas::CampaignConfig make_campaign_config(Gen& gen) {
  atlas::CampaignConfig config;
  config.duration_days = gen.int_in(1, 1 + gen.size() / 10);
  config.interval_hours = gen.pick({1, 2, 3, 4, 6, 8, 12, 24});
  config.packets_per_ping = gen.int_in(1, 4);
  config.targets_per_tick = gen.int_in(1, 3);
  config.probe_uptime = gen.chance(0.7) ? 1.0 : gen.real_in(0.5, 1.0);
  config.seed = gen.u64();
  config.threads = 1;
  config.sampling_cache = true;
  if (gen.chance(0.3)) {
    config.retry.max_retries = gen.int_in(1, 2);
    config.retry.backoff_cap_ticks =
        static_cast<std::uint32_t>(gen.int_in(1, 8));
  }
  if (gen.chance(0.2)) {
    config.quarantine.enabled = true;
    config.quarantine.window_bursts = gen.int_in(2, 12);
    config.quarantine.loss_threshold = gen.real_in(0.3, 1.0);
    config.quarantine.skew_counts = gen.chance(0.5);
    config.quarantine.cooldown_ticks =
        static_cast<std::uint32_t>(gen.int_in(1, 24));
  }
  return config;
}

net::LatencyModelConfig make_model_config(Gen& gen) {
  net::LatencyModelConfig config;
  config.excess_fraction = gen.real_in(0.0, 0.4);
  config.excess_spread = gen.real_in(1.0, 3.0);
  config.spike_probability = gen.real_in(0.0, 0.02);
  config.spike_min_ms = gen.real_in(1.0, 10.0);
  config.spike_alpha = gen.real_in(1.1, 2.5);
  config.core_loss_rate = gen.real_in(0.0, 0.01);
  config.wireless_latency_scale =
      gen.chance(0.7) ? 1.0 : gen.real_in(0.1, 1.5);
  config.diurnal_amplitude = gen.real_in(0.0, 0.4);
  config.diurnal_peak_hour = gen.real_in(0.0, 24.0);
  config.temporal_rho = gen.real_in(0.0, 0.95);
  config.temporal_sigma = gen.real_in(0.0, 0.3);
  // Path knobs stay within physically sane ranges; the stretch tables
  // keep their defaults (>= 1 everywhere), which the RTT-floor invariant
  // relies on: routed distance never beats the geodesic.
  config.path.fibre_us_per_km = gen.real_in(4.2, 5.5);
  config.path.per_hop_ms = gen.real_in(0.05, 0.2);
  config.path.min_routed_km = gen.real_in(40.0, 120.0);
  config.path.base_hops = gen.real_in(2.0, 6.0);
  return config;
}

faults::FaultScheduleConfig make_fault_config(Gen& gen) {
  faults::FaultScheduleConfig config;
  if (gen.chance(0.5)) return config;  // clean world: all rates zero
  config.seed = gen.u64();
  config.epoch_ticks = static_cast<std::uint32_t>(gen.int_in(8, 56));
  if (gen.chance(0.5)) {
    config.region_outage_rate = gen.real_in(0.01, 0.25);
    config.region_outage_mean_ticks = gen.real_in(1.0, 12.0);
  }
  if (gen.chance(0.5)) {
    config.route_flap_rate = gen.real_in(0.01, 0.25);
    config.route_flap_mean_ticks = gen.real_in(1.0, 8.0);
    config.route_flap_latency_multiplier = gen.real_in(1.0, 3.0);
    config.route_flap_extra_loss = gen.real_in(0.0, 0.2);
  }
  if (gen.chance(0.5)) {
    config.storm_rate = gen.real_in(0.01, 0.25);
    config.storm_mean_ticks = gen.real_in(1.0, 10.0);
    config.storm_load_multiplier = gen.real_in(1.0, 4.0);
    config.storm_wireless_only = gen.chance(0.5);
  }
  if (gen.chance(0.5)) {
    config.probe_hang_rate = gen.real_in(0.01, 0.25);
    config.probe_hang_mean_ticks = gen.real_in(1.0, 16.0);
  }
  if (gen.chance(0.5)) {
    config.clock_skew_rate = gen.real_in(0.01, 0.25);
    config.clock_skew_mean_ticks = gen.real_in(1.0, 24.0);
    // Non-negative skew keeps the propagation-floor invariant checkable
    // on skewed records (negative firmware bias can dip below physics).
    config.clock_skew_ms = gen.real_in(0.0, 60.0);
  }
  if (gen.chance(0.5)) {
    config.blackout_rate = gen.real_in(0.01, 0.25);
    config.blackout_mean_ticks = gen.real_in(1.0, 8.0);
  }
  return config;
}

World make_world(Gen& gen) {
  // CloudRegistry and ProbeFleet are factory-built (no default
  // constructor), so the world is assembled piecewise and
  // aggregate-initialised.
  topology::CloudRegistry registry = make_registry(gen);
  atlas::ProbeFleet fleet = make_fleet(gen);
  const net::LatencyModelConfig model_config = make_model_config(gen);
  const atlas::CampaignConfig campaign = make_campaign_config(gen);
  const faults::FaultScheduleConfig fault_config = make_fault_config(gen);
  faults::FaultSchedule schedule = fault_config.any_rate()
                                       ? faults::FaultSchedule(fault_config)
                                       : faults::FaultSchedule();

  std::ostringstream os;
  os << "world{probes=" << fleet.size() << ", regions=" << registry.size()
     << ", days=" << campaign.duration_days
     << ", interval=" << campaign.interval_hours << 'h'
     << ", packets=" << campaign.packets_per_ping
     << ", targets=" << campaign.targets_per_tick
     << ", uptime=" << campaign.probe_uptime << ", seed=" << campaign.seed
     << ", retry=" << campaign.retry.max_retries
     << ", quarantine=" << (campaign.quarantine.enabled ? "on" : "off")
     << ", faults=" << (schedule.empty() ? "off" : "on") << '}';

  return World{os.str(),
               std::move(registry),
               std::move(fleet),
               model_config,
               net::LatencyModel(model_config),
               campaign,
               fault_config,
               std::move(schedule)};
}

std::vector<geo::GeoPoint> make_geo_points(Gen& gen, std::size_t count) {
  std::vector<geo::GeoPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Duplicates force the (distance, id) tie-break to actually decide.
    if (!points.empty() && gen.chance(0.08)) {
      points.push_back(points[gen.below(points.size())]);
      continue;
    }
    geo::GeoPoint p;
    const std::uint64_t mode = gen.below(100);
    if (mode < 40) {
      // Antimeridian hugger: a k-d tree over raw lon would see these as
      // far apart.
      p.lat_deg = gen.real_in(-90.0, 90.0);
      p.lon_deg = gen.chance(0.5) ? gen.real_in(175.0, 180.0)
                                  : gen.real_in(-180.0, -175.0);
    } else if (mode < 55) {
      // Polar cluster, occasionally the exact pole.
      const double lat = gen.chance(0.1) ? 90.0 : gen.real_in(80.0, 90.0);
      p.lat_deg = gen.chance(0.5) ? lat : -lat;
      p.lon_deg = gen.real_in(-180.0, 180.0);
    } else {
      p.lat_deg = gen.real_in(-90.0, 90.0);
      p.lon_deg = gen.real_in(-180.0, 180.0);
    }
    points.push_back(p);
  }
  return points;
}

std::vector<serve::Query> make_queries(Gen& gen, const World& world,
                                       std::size_t count) {
  const std::span<const geo::Country> countries = geo::all_countries();
  const std::span<const apps::Application> catalog =
      apps::application_catalog();
  const std::vector<geo::GeoPoint> wild = make_geo_points(gen, 16);
  const std::span<const atlas::Probe> probes = world.fleet.probes();

  std::vector<serve::Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    serve::Query q;
    q.kind = gen.pick({serve::QueryKind::kBestRtt,
                       serve::QueryKind::kFeasibility,
                       serve::QueryKind::kTopK});
    if (!probes.empty() && gen.chance(0.6)) {
      // Near a real vantage point, so most queries land on populated
      // shards.
      const atlas::Probe& probe = probes[gen.below(probes.size())];
      q.where = scatter(gen, probe.endpoint.location);
    } else {
      q.where = wild[gen.below(wild.size())];
    }
    if (gen.chance(0.4)) {
      // ISO-2 override; mostly a country the fleet inhabits, sometimes
      // any registry entry (which may hold no data at all).
      q.country_iso2 = (!probes.empty() && gen.chance(0.7))
                           ? probes[gen.below(probes.size())].country->iso2
                           : gen.pick(countries).iso2;
    }
    q.any_access = gen.chance(0.5);
    q.access = gen.pick(std::span<const net::AccessTechnology>(
        net::kAllAccessTechnologies));
    if (q.kind == serve::QueryKind::kFeasibility) {
      q.app_id = gen.chance(0.9) ? gen.pick(catalog).id : "no-such-app";
    }
    if (q.kind == serve::QueryKind::kTopK) {
      q.budget_ms = gen.real_in(1.0, 400.0);
      q.k = static_cast<std::uint32_t>(gen.int_in(0, 8));
    }
    queries.push_back(q);
  }
  return queries;
}

atlas::MeasurementDataset World::run() const { return run_with(campaign); }

atlas::MeasurementDataset World::run(
    atlas::CampaignTelemetry& telemetry) const {
  const atlas::Campaign engine(fleet, registry, model, campaign,
                               schedule.empty() ? nullptr : &schedule);
  return engine.run(telemetry);
}

atlas::MeasurementDataset World::run_with(atlas::CampaignConfig config) const {
  const atlas::Campaign engine(fleet, registry, model, config,
                               schedule.empty() ? nullptr : &schedule);
  return engine.run();
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void mix(std::uint64_t& h, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

void mix_float(std::uint64_t& h, float value) noexcept {
  mix(h, std::bit_cast<std::uint32_t>(value));
}

}  // namespace

std::uint64_t dataset_checksum(
    const atlas::MeasurementDataset& dataset) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const atlas::Measurement& m : dataset.records()) {
    mix(h, m.probe_id);
    mix(h, m.region_index);
    mix(h, m.tick);
    mix_float(h, m.min_ms);
    mix_float(h, m.avg_ms);
    mix_float(h, m.max_ms);
    mix(h, m.sent);
    mix(h, m.received);
    mix(h, m.retries);
    mix(h, m.faults);
  }
  return h;
}

bool datasets_identical(const atlas::MeasurementDataset& a,
                        const atlas::MeasurementDataset& b, std::string& why) {
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "record counts differ: " << a.size() << " vs " << b.size();
    why = os.str();
    return false;
  }
  const auto ra = a.records();
  const auto rb = b.records();
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const atlas::Measurement& x = ra[i];
    const atlas::Measurement& y = rb[i];
    const char* field = nullptr;
    if (x.probe_id != y.probe_id) field = "probe_id";
    else if (x.region_index != y.region_index) field = "region_index";
    else if (x.tick != y.tick) field = "tick";
    else if (std::bit_cast<std::uint32_t>(x.min_ms) !=
             std::bit_cast<std::uint32_t>(y.min_ms)) field = "min_ms";
    else if (std::bit_cast<std::uint32_t>(x.avg_ms) !=
             std::bit_cast<std::uint32_t>(y.avg_ms)) field = "avg_ms";
    else if (std::bit_cast<std::uint32_t>(x.max_ms) !=
             std::bit_cast<std::uint32_t>(y.max_ms)) field = "max_ms";
    else if (x.sent != y.sent) field = "sent";
    else if (x.received != y.received) field = "received";
    else if (x.retries != y.retries) field = "retries";
    else if (x.faults != y.faults) field = "faults";
    if (field != nullptr) {
      std::ostringstream os;
      os << "records diverge at index " << i << " (field " << field << ")";
      why = os.str();
      return false;
    }
  }
  why.clear();
  return true;
}

}  // namespace shears::check
