// Random-but-reproducible worlds: everything a campaign needs, generated
// from a Gen. A World bundles fleet, footprint, latency model, campaign
// config and fault schedule with the lifetimes the engine expects (the
// dataset borrows fleet/registry, so the World must outlive it).
//
// Generators are pure functions of the Gen stream: the same (seed, size)
// always yields the same world, which is what makes counterexamples
// replayable from the SHEARS_CHECK_SEED banner.
#pragma once

#include <cstdint>
#include <string>

#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "check/gen.hpp"
#include "faults/fault_schedule.hpp"
#include "geo/coordinates.hpp"
#include "net/latency_model.hpp"
#include "serve/oracle.hpp"
#include "topology/registry.hpp"

namespace shears::check {

struct World {
  std::string summary;  ///< one-line description for failure messages
  topology::CloudRegistry registry;
  atlas::ProbeFleet fleet;
  net::LatencyModelConfig model_config;
  net::LatencyModel model;
  atlas::CampaignConfig campaign;
  faults::FaultScheduleConfig fault_config;
  faults::FaultSchedule schedule;  ///< empty when no fault rate is set

  [[nodiscard]] bool faulted() const noexcept { return !schedule.empty(); }

  /// Runs the world's campaign (fault schedule attached when non-empty).
  [[nodiscard]] atlas::MeasurementDataset run() const;
  [[nodiscard]] atlas::MeasurementDataset run(
      atlas::CampaignTelemetry& telemetry) const;

  /// Runs a variant campaign config against the same fleet / registry /
  /// model / schedule — the differential oracles' workhorse.
  [[nodiscard]] atlas::MeasurementDataset run_with(
      atlas::CampaignConfig config) const;
};

/// Generates a full world. Sizes scale with gen.size(): a fully shrunk
/// world is a single probe running a one-day campaign with everything
/// optional switched off.
[[nodiscard]] World make_world(Gen& gen);

[[nodiscard]] topology::CloudRegistry make_registry(Gen& gen);
[[nodiscard]] atlas::ProbeFleet make_fleet(Gen& gen);
[[nodiscard]] atlas::CampaignConfig make_campaign_config(Gen& gen);
[[nodiscard]] net::LatencyModelConfig make_model_config(Gen& gen);
[[nodiscard]] faults::FaultScheduleConfig make_fault_config(Gen& gen);

/// Random valid WGS-84 points with deliberate clustering on the spatial
/// index's historical failure modes: ~40% hug the antimeridian (|lon|
/// within a few degrees of 180) and ~15% the poles (|lat| >= 80); the
/// rest are uniform over the globe. Exact duplicates are sprinkled in to
/// exercise the (distance, id) tie-break.
[[nodiscard]] std::vector<geo::GeoPoint> make_geo_points(Gen& gen,
                                                         std::size_t count);

/// A mixed batch of oracle queries over the world: all three kinds,
/// locations from make_geo_points plus points scattered near real
/// probes, ISO-2 overrides (mostly countries the fleet inhabits, with
/// the odd dataless one), per-access filters, catalog app slugs (plus an
/// occasional unknown slug), and assorted top-k budgets.
[[nodiscard]] std::vector<serve::Query> make_queries(Gen& gen,
                                                     const World& world,
                                                     std::size_t count);

/// Order-sensitive FNV-1a checksum over every record field (floats by bit
/// pattern) — the byte-identity yardstick of the differential oracles.
[[nodiscard]] std::uint64_t dataset_checksum(
    const atlas::MeasurementDataset& dataset) noexcept;

/// True when the two datasets are record-for-record identical; on
/// mismatch, fills `why` with the first diverging index and field.
[[nodiscard]] bool datasets_identical(const atlas::MeasurementDataset& a,
                                      const atlas::MeasurementDataset& b,
                                      std::string& why);

}  // namespace shears::check
