// Checksummed block containers — the on-disk substrate of every durable
// artefact in the tree (the serve snapshot and its delta log ride on it).
//
// A container is a 16-byte header followed by tagged blocks:
//
//   offset  size  field
//   0       8     container magic "SHRBLOK1"
//   8       4     container version (kContainerVersion)
//   12      4     application tag (fourcc) — which format lives inside
//
//   block:  [u32 tag][u64 payload length][u32 crc][payload]
//
// The CRC is CRC-32 (IEEE 802.3) over tag + length + payload, so a
// corrupted length field cannot pass — the same confinement rule the
// serving front-end's frame codec follows. A finished container ends
// with a zero-length "END." block; a reader that runs out of bytes
// before seeing it reports truncation instead of silently yielding a
// prefix. Append-only logs (the snapshot delta log) opt out of the
// terminator: there, clean EOF at a block boundary is a valid end, and
// only torn blocks are errors.
//
// All integers are little-endian. Bulk payloads are written by the
// callers with memcpy of native arrays; a static_assert in the snapshot
// code pins the build to little-endian hosts so the format stays
// portable across the machines we actually run on.
//
// Error model: every reader failure throws io::BlockError with the
// container label, the failing block tag and the byte offset — loads
// fail precisely, never partially. Writer failures (full disk, bad
// path) throw too; nothing here returns a half-written artefact
// silently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace shears::io {

inline constexpr std::uint64_t kContainerMagic = 0x314b4f4c42524853ULL;  // "SHRBLOK1"
inline constexpr std::uint32_t kContainerVersion = 1;
inline constexpr std::size_t kContainerHeaderBytes = 16;
inline constexpr std::size_t kBlockHeaderBytes = 16;

/// Four-character block/application tag, e.g. fourcc("SNP1").
[[nodiscard]] constexpr std::uint32_t fourcc(const char (&s)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24);
}

/// Printable form of a fourcc tag for error messages ("SNP1" or "0x...."
/// when a byte is not printable).
[[nodiscard]] std::string fourcc_name(std::uint32_t tag);

/// The terminator block tag every finished container ends with.
inline constexpr std::uint32_t kEndTag = fourcc("END.");

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320). `seed` chains partial
/// computations: crc32(b, crc32(a)) == crc32(a ++ b).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                  std::uint32_t seed = 0) noexcept;

/// Reader/writer failures: container label + block tag + byte offset.
class BlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---------------------------------------------------------------------------
// Writing.

/// Streams a block container. Every write is checked: a failed stream
/// (full disk, closed pipe) throws BlockError at the write that hit it,
/// not at some later read of a truncated file.
class BlockWriter {
 public:
  /// Writes the container header. `what` labels errors ("snapshot",
  /// "delta log").
  BlockWriter(std::ostream& os, std::uint32_t app_tag, std::string what);

  void add(std::uint32_t tag, std::span<const std::uint8_t> payload);

  /// Writes the END. terminator and flushes. Must be the last call.
  void finish();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  void write_checked(const void* data, std::size_t n);

  std::ostream* os_;
  std::string what_;
  bool finished_ = false;
};

/// Appends one checked block (header + CRC + payload) to a stream that
/// already carries a container header — the append-only-log path, where
/// an extend-mode reopen must add blocks without repeating the header
/// BlockWriter writes. Throws BlockError when the stream fails.
void append_block(std::ostream& os, std::uint32_t tag,
                  std::span<const std::uint8_t> payload,
                  const std::string& what);

// ---------------------------------------------------------------------------
// Reading.

struct Block {
  std::uint32_t tag = 0;
  std::span<const std::uint8_t> payload;
};

/// Iterates the blocks of an in-memory container image, validating the
/// header, every CRC and the terminator. Throws BlockError on any
/// damage; a caller that drains next() until nullopt has therefore seen
/// a complete, checksummed container.
class BlockReader {
 public:
  /// `require_end`: false for append-only logs, where clean EOF at a
  /// block boundary is a valid end of the container.
  BlockReader(std::span<const std::uint8_t> bytes, std::uint32_t app_tag,
              std::string what, bool require_end = true);

  /// Next block, or nullopt at the clean end of the container.
  [[nodiscard]] std::optional<Block> next();

  /// Bytes consumed so far (for error context in callers).
  [[nodiscard]] std::size_t offset() const noexcept { return at_; }

 private:
  [[noreturn]] void fail(const std::string& message) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
  std::string what_;
  bool require_end_;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Files.

/// A file's bytes, either buffered (kRead) or memory-mapped (kMmap).
/// kMmap maps the file read-only and privately — pages fault in lazily,
/// so a snapshot load touches only what it parses and rides the page
/// cache across restarts; it falls back to a buffered read when the
/// platform or the file refuses to map. Move-only; unmaps/frees on
/// destruction.
class FileBytes {
 public:
  enum class Mode { kRead, kMmap };

  /// Throws BlockError when the file cannot be opened or read.
  [[nodiscard]] static FileBytes open(const std::string& path, Mode mode);

  FileBytes() = default;
  FileBytes(FileBytes&& other) noexcept;
  FileBytes& operator=(FileBytes&& other) noexcept;
  FileBytes(const FileBytes&) = delete;
  FileBytes& operator=(const FileBytes&) = delete;
  ~FileBytes();

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                ///< true: munmap; false: owned vector
  std::vector<std::uint8_t> owned_;
};

/// Writes a file atomically: streams into `path + ".tmp"`, then renames
/// over `path` on commit. Without commit() (including when an exception
/// unwinds through the caller) the temporary is removed and the target
/// is left untouched — a failed save never leaves a half-written
/// artefact under the real name.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  [[nodiscard]] std::ostream& stream();

  /// Flush + close + rename; throws BlockError when any step fails.
  void commit();

 private:
  std::string path_;
  std::string tmp_path_;
  struct Impl;
  Impl* impl_;
  bool committed_ = false;
};

}  // namespace shears::io
