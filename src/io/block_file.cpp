#include "io/block_file.hpp"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SHEARS_IO_HAVE_MMAP 1
#endif

namespace shears::io {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u64(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

[[nodiscard]] std::uint32_t read_u32(const std::uint8_t* in) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{in[i]} << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t read_u64(const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= std::uint64_t{in[i]} << (8 * i);
  }
  return v;
}

/// Slice-by-8 lookup tables for the reflected IEEE polynomial, built
/// once. table[0] is the classic byte-at-a-time table; table[k] maps a
/// byte to its CRC contribution k positions further ahead, so the hot
/// loop folds 8 input bytes per iteration with 8 independent loads —
/// identical output to the bytewise form at several times the
/// throughput (snapshot loads checksum the whole file).
const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() noexcept {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = t[0][t[k - 1][i] & 0xffu] ^ (t[k - 1][i] >> 8);
      }
    }
    return t;
  }();
  return tables;
}

/// CRC of a block: header tail (tag + length) then payload, chained.
[[nodiscard]] std::uint32_t block_crc(
    std::uint32_t tag, std::span<const std::uint8_t> payload) noexcept {
  std::uint8_t head[12];
  put_u32(head, tag);
  put_u64(head + 4, payload.size());
  const std::uint32_t partial = crc32({head, sizeof(head)});
  return crc32(payload, partial);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed) noexcept {
  const auto& t = crc_tables();
  std::uint32_t c = seed ^ 0xffffffffu;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ read_u32(p);
    const std::uint32_t hi = read_u32(p + 4);
    c = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
        t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
        t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ *p) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string fourcc_name(std::uint32_t tag) {
  std::string name;
  bool printable = true;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>(tag >> (8 * i));
    if (std::isprint(static_cast<unsigned char>(c)) == 0) printable = false;
    name.push_back(c);
  }
  if (printable) return name;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", tag);
  return buf;
}

// ---------------------------------------------------------------------------
// BlockWriter

BlockWriter::BlockWriter(std::ostream& os, std::uint32_t app_tag,
                         std::string what)
    : os_(&os), what_(std::move(what)) {
  std::uint8_t header[kContainerHeaderBytes];
  put_u64(header, kContainerMagic);
  put_u32(header + 8, kContainerVersion);
  put_u32(header + 12, app_tag);
  write_checked(header, sizeof(header));
}

void BlockWriter::write_checked(const void* data, std::size_t n) {
  os_->write(static_cast<const char*>(data),
             static_cast<std::streamsize>(n));
  if (!*os_) {
    throw BlockError(what_ + ": write failed (disk full or stream error)");
  }
}

void BlockWriter::add(std::uint32_t tag, std::span<const std::uint8_t> payload) {
  if (finished_) {
    throw BlockError(what_ + ": add() after finish()");
  }
  append_block(*os_, tag, payload, what_);
}

void append_block(std::ostream& os, std::uint32_t tag,
                  std::span<const std::uint8_t> payload,
                  const std::string& what) {
  std::uint8_t header[kBlockHeaderBytes];
  put_u32(header, tag);
  put_u64(header + 4, payload.size());
  put_u32(header + 12, block_crc(tag, payload));
  os.write(reinterpret_cast<const char*>(header), sizeof(header));
  if (!payload.empty()) {
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  }
  if (!os) {
    throw BlockError(what + ": write failed (disk full or stream error)");
  }
}

void BlockWriter::finish() {
  add(kEndTag, {});
  finished_ = true;
  os_->flush();
  if (!*os_) {
    throw BlockError(what_ + ": flush failed (disk full or stream error)");
  }
}

// ---------------------------------------------------------------------------
// BlockReader

BlockReader::BlockReader(std::span<const std::uint8_t> bytes,
                         std::uint32_t app_tag, std::string what,
                         bool require_end)
    : bytes_(bytes), what_(std::move(what)), require_end_(require_end) {
  if (bytes_.size() < kContainerHeaderBytes) {
    fail("truncated container header (" + std::to_string(bytes_.size()) +
         " bytes)");
  }
  if (read_u64(bytes_.data()) != kContainerMagic) {
    fail("bad container magic (not a shears block file)");
  }
  const std::uint32_t version = read_u32(bytes_.data() + 8);
  if (version != kContainerVersion) {
    fail("unsupported container version " + std::to_string(version) +
         " (this build reads version " + std::to_string(kContainerVersion) +
         ")");
  }
  const std::uint32_t tag = read_u32(bytes_.data() + 12);
  if (tag != app_tag) {
    fail("application tag mismatch: file holds '" + fourcc_name(tag) +
         "', expected '" + fourcc_name(app_tag) + "'");
  }
  at_ = kContainerHeaderBytes;
}

void BlockReader::fail(const std::string& message) const {
  throw BlockError(what_ + ": " + message + " at byte offset " +
                   std::to_string(at_));
}

std::optional<Block> BlockReader::next() {
  if (done_) return std::nullopt;
  if (at_ == bytes_.size()) {
    if (require_end_) fail("truncated: container ends without END. block");
    done_ = true;
    return std::nullopt;
  }
  if (bytes_.size() - at_ < kBlockHeaderBytes) {
    fail("truncated block header (" + std::to_string(bytes_.size() - at_) +
         " bytes left)");
  }
  const std::uint32_t tag = read_u32(bytes_.data() + at_);
  const std::uint64_t length = read_u64(bytes_.data() + at_ + 4);
  const std::uint32_t want = read_u32(bytes_.data() + at_ + 12);
  if (length > bytes_.size() - at_ - kBlockHeaderBytes) {
    fail("truncated block '" + fourcc_name(tag) + "' (payload of " +
         std::to_string(length) + " bytes exceeds the file)");
  }
  const std::span<const std::uint8_t> payload =
      bytes_.subspan(at_ + kBlockHeaderBytes, length);
  if (want != block_crc(tag, payload)) {
    fail("checksum mismatch in block '" + fourcc_name(tag) + "'");
  }
  at_ += kBlockHeaderBytes + length;
  if (tag == kEndTag) {
    if (length != 0) fail("END. block carries a payload");
    if (at_ != bytes_.size()) {
      fail("trailing bytes after the END. block");
    }
    done_ = true;
    return std::nullopt;
  }
  return Block{tag, payload};
}

// ---------------------------------------------------------------------------
// FileBytes

FileBytes::FileBytes(FileBytes&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      owned_(std::move(other.owned_)) {}

FileBytes& FileBytes::operator=(FileBytes&& other) noexcept {
  if (this != &other) {
    this->~FileBytes();
    new (this) FileBytes(std::move(other));
  }
  return *this;
}

FileBytes::~FileBytes() {
#ifdef SHEARS_IO_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

FileBytes FileBytes::open(const std::string& path, Mode mode) {
  FileBytes out;
#ifdef SHEARS_IO_HAVE_MMAP
  if (mode == Mode::kMmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw BlockError(path + ": cannot open for reading");
    }
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto size = static_cast<std::size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        out.data_ = nullptr;
        out.size_ = 0;
        return out;
      }
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        out.data_ = static_cast<const std::uint8_t*>(map);
        out.size_ = size;
        out.mapped_ = true;
        return out;
      }
    } else {
      ::close(fd);
    }
    // Unmappable (non-regular file, exotic filesystem): fall through to
    // the buffered read below rather than failing the load.
  }
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw BlockError(path + ": cannot open for reading");
  }
  in.seekg(0, std::ios::end);
  const std::streamoff end = in.tellg();
  in.seekg(0, std::ios::beg);
  if (end < 0 || !in) {
    throw BlockError(path + ": cannot determine file size");
  }
  out.owned_.resize(static_cast<std::size_t>(end));
  if (end > 0) {
    in.read(reinterpret_cast<char*>(out.owned_.data()), end);
    if (!in) {
      throw BlockError(path + ": short read");
    }
  }
  out.data_ = out.owned_.data();
  out.size_ = out.owned_.size();
  return out;
}

// ---------------------------------------------------------------------------
// AtomicFileWriter

struct AtomicFileWriter::Impl {
  std::ofstream out;
};

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp"), impl_(new Impl) {
  impl_->out.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!impl_->out) {
    const std::string tmp = tmp_path_;
    delete impl_;
    impl_ = nullptr;
    throw BlockError(tmp + ": cannot open for writing");
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (impl_ != nullptr) {
    impl_->out.close();
    delete impl_;
  }
  if (!committed_) std::remove(tmp_path_.c_str());
}

std::ostream& AtomicFileWriter::stream() {
  return impl_->out;
}

void AtomicFileWriter::commit() {
  impl_->out.flush();
  if (!impl_->out) {
    throw BlockError(tmp_path_ + ": flush failed (disk full?)");
  }
  impl_->out.close();
  if (impl_->out.fail()) {
    throw BlockError(tmp_path_ + ": close failed");
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw BlockError(path_ + ": atomic rename from " + tmp_path_ + " failed");
  }
  committed_ = true;
}

}  // namespace shears::io
