// The serving front-end's wire format: versioned, length-prefixed,
// checksummed frames over a byte stream.
//
// A production oracle is judged by what happens to the *other* requests
// when one arrives broken. The codec therefore rejects damage per frame,
// never per connection: a truncated header waits for more bytes, a bad
// checksum or version skips exactly the advertised frame, and a
// corrupted magic resynchronises by scanning for the next frame
// boundary — every intact frame after the damage is still delivered.
// The decoder never throws and never reads past its buffer; the
// corpus-driven fuzz suite (check::fuzz_frames) pins both.
//
// Layout (all integers little-endian):
//
//   offset  size  field
//   0       2     magic 0x5346 ("FS")
//   2       1     protocol version (kProtocolVersion)
//   3       1     frame type (FrameType)
//   4       4     payload length, <= kMaxPayloadBytes
//   8       4     checksum: FNV-1a 64 over bytes [2, 8) + payload,
//                 truncated to 32 bits — covers version, type and
//                 length, so a corrupted length field cannot pass
//   12      N     payload
//
// Payloads are the request / response / error bodies below, serialised
// with fixed-width fields and length-prefixed strings. Their decoders
// return false on malformed bodies instead of throwing — a frame that
// checksums correctly can still carry garbage, and the server answers
// that with a kBadRequest error frame, not a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "serve/oracle.hpp"

namespace shears::front {

inline constexpr std::uint16_t kFrameMagic = 0x5346;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::uint32_t kMaxPayloadBytes = 64 * 1024;
inline constexpr std::size_t kFrameHeaderBytes = 12;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
};

[[nodiscard]] std::string_view to_string(FrameType type) noexcept;

/// Error codes carried by kError frames. Retryable conditions
/// (kOverloaded, kThrottled, kStale) are transient server states; the
/// client retry policy backs off and retries exactly those.
enum class ErrorCode : std::uint8_t {
  kBadRequest = 1,        ///< body failed to decode; do not retry
  kOverloaded = 2,        ///< admission queue full or wait exceeds deadline
  kThrottled = 3,         ///< per-client token bucket empty
  kDeadlineExceeded = 4,  ///< admitted, but served past the deadline
  kStale = 5,             ///< store had unrefreshed appends; retry
};

[[nodiscard]] std::string_view to_string(ErrorCode code) noexcept;

[[nodiscard]] constexpr bool retryable(ErrorCode code) noexcept {
  return code == ErrorCode::kOverloaded || code == ErrorCode::kThrottled ||
         code == ErrorCode::kStale;
}

/// Simulated time in microseconds since session start. All front-end
/// latency arithmetic is integer microseconds, so overload, shedding and
/// recovery replay byte-identically on any machine or thread count.
using SimTime = std::uint64_t;

// ---------------------------------------------------------------------------
// Frame bodies.

/// A request body: one serve::Query plus the request lifecycle fields.
/// Strings are owned, so a decoded request outlives its frame buffer.
struct Request {
  std::uint64_t request_id = 0;
  std::uint64_t client_id = 0;
  /// Absolute sim-time deadline (µs); 0 = no deadline.
  SimTime deadline_us = 0;
  serve::QueryKind kind = serve::QueryKind::kBestRtt;
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  std::string country_iso2;  ///< empty = resolve via location
  net::AccessTechnology access = net::AccessTechnology::kEthernet;
  bool any_access = true;
  std::string app_id;
  double budget_ms = 0.0;
  std::uint32_t k = 0;

  /// The serve::Query view of this request. The returned query borrows
  /// this request's strings; keep the request alive while answering.
  [[nodiscard]] serve::Query query() const noexcept;

  friend bool operator==(const Request&, const Request&) = default;
};

/// One kTopK row on the wire: the region by registry index.
struct WireRegion {
  std::uint16_t region_index = 0;
  double rtt_ms = 0.0;

  friend bool operator==(const WireRegion&, const WireRegion&) = default;
};

inline constexpr std::uint16_t kNoRegion = 0xffff;

/// A response body: the answer with registry pointers flattened to
/// indexes (the client resolves them against its own registry copy).
struct Response {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::string country_iso2;  ///< empty when the country did not resolve
  std::uint16_t best_region = kNoRegion;
  double best_ms = 0.0;
  double median_ms = 0.0;
  double p95_ms = 0.0;
  core::EdgeVerdict verdict = core::EdgeVerdict::kNoEdgeCase;
  bool in_zone = false;
  std::vector<WireRegion> regions;

  friend bool operator==(const Response&, const Response&) = default;
};

/// An error body; `message` is optional human-readable context.
struct Error {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;

  friend bool operator==(const Error&, const Error&) = default;
};

// ---------------------------------------------------------------------------
// Encoding.

/// Appends one framed message to `out`.
void append_request_frame(std::vector<std::uint8_t>& out, const Request& req);
void append_response_frame(std::vector<std::uint8_t>& out,
                           const Response& res);
void append_error_frame(std::vector<std::uint8_t>& out, const Error& err);

/// Appends a raw frame around an arbitrary payload (fuzzing / tests).
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload);

/// Body decoders: false on malformed/truncated/trailing-garbage bodies.
/// Never throw.
[[nodiscard]] bool decode_request(std::span<const std::uint8_t> payload,
                                  Request& out) noexcept;
[[nodiscard]] bool decode_response(std::span<const std::uint8_t> payload,
                                   Response& out) noexcept;
[[nodiscard]] bool decode_error(std::span<const std::uint8_t> payload,
                                Error& out) noexcept;

/// Builds a Response body from an answered query (pointers -> indexes).
[[nodiscard]] Response make_response(std::uint64_t request_id,
                                     const serve::Answer& answer,
                                     const topology::CloudRegistry& registry);

// ---------------------------------------------------------------------------
// Decoding.

enum class DecodeStatus : std::uint8_t {
  kFrame,        ///< a complete, checksummed frame was delivered
  kNeedMore,     ///< buffer holds no complete unit; feed more bytes
  kBadMagic,     ///< resynchronised by scanning for the next magic
  kBadVersion,   ///< well-formed frame of an unknown protocol version
  kBadLength,    ///< length field above kMaxPayloadBytes; resynchronised
  kBadChecksum,  ///< frame skipped whole
  kBadType,      ///< unknown FrameType; frame skipped whole
};

[[nodiscard]] std::string_view to_string(DecodeStatus status) noexcept;

/// Incremental frame decoder over a per-connection read buffer. feed()
/// bytes as they arrive, then pull next() until kNeedMore. Decode errors
/// consume the damaged region and leave the stream usable; the per-kind
/// error tallies feed the front.decode.* counters.
class FrameDecoder {
 public:
  struct Item {
    DecodeStatus status = DecodeStatus::kNeedMore;
    FrameType type = FrameType::kRequest;   ///< valid when kFrame
    std::vector<std::uint8_t> payload;      ///< valid when kFrame
  };

  struct Tally {
    std::uint64_t frames = 0;
    std::uint64_t bad_magic = 0;
    std::uint64_t bad_version = 0;
    std::uint64_t bad_length = 0;
    std::uint64_t bad_checksum = 0;
    std::uint64_t bad_type = 0;
    std::uint64_t resync_bytes = 0;  ///< bytes discarded hunting for magic
  };

  void feed(std::span<const std::uint8_t> bytes);

  /// Next frame or per-frame error; kNeedMore when the buffer is
  /// exhausted. Never throws.
  [[nodiscard]] Item next();

  [[nodiscard]] const Tally& tally() const noexcept { return tally_; }
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - pos_;
  }

 private:
  /// Drops `n` bytes, then scans forward to the next plausible magic.
  void resync(std::size_t n);

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  Tally tally_;
};

/// Checksum as written into the frame header: FNV-1a 64 over the
/// version/type/length header tail plus the payload, truncated to 32
/// bits.
[[nodiscard]] std::uint32_t frame_checksum(
    std::uint8_t version, std::uint8_t type,
    std::span<const std::uint8_t> payload) noexcept;

}  // namespace shears::front
