#include "front/transport/loopback.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "front/traffic.hpp"  // percentile_ms
#include "front/transport/blocking_client.hpp"
#include "front/transport/clock.hpp"

namespace shears::front {

namespace {

// TCP delivers whatever byte runs it likes, but FrontClient::on_bytes
// expects whole frames (the simulated transport always hands it those).
// This buffer releases only the complete-frame prefix of what has
// arrived so far. Loopback responses come from our own server, so the
// header length field is trustworthy here.
class FrameReassembler {
 public:
  /// Appends `bytes`; returns the longest complete-frame prefix now
  /// available (may be empty).
  std::vector<std::uint8_t> feed(std::span<const std::uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    std::size_t end = 0;
    while (buffer_.size() - end >= kFrameHeaderBytes) {
      const std::size_t length = static_cast<std::size_t>(buffer_[end + 4]) |
                                 (static_cast<std::size_t>(buffer_[end + 5])
                                  << 8) |
                                 (static_cast<std::size_t>(buffer_[end + 6])
                                  << 16) |
                                 (static_cast<std::size_t>(buffer_[end + 7])
                                  << 24);
      const std::size_t total = kFrameHeaderBytes + length;
      if (buffer_.size() - end < total) break;
      end += total;
    }
    std::vector<std::uint8_t> ready(buffer_.begin(), buffer_.begin() + end);
    buffer_.erase(buffer_.begin(), buffer_.begin() + end);
    return ready;
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

struct ClientResult {
  ClientStats stats;
  std::vector<double> latencies_ms;
  std::uint64_t offered = 0;
  std::uint64_t timeouts = 0;
  bool transport_error = false;
};

void client_loop(std::uint32_t index, std::uint16_t port,
                 std::span<const serve::Query> corpus,
                 const LoopbackConfig& config, MonotonicClock* clock,
                 ClientResult* result) {
  FrontClient client(index + 1, config.client, config.seed);
  BlockingClient sock;
  try {
    sock.connect(port);
    FrameReassembler reassembler;
    for (std::uint64_t k = 0; k < config.requests_per_client; ++k) {
      // Deterministic per-client stride over the corpus; the randomness
      // that matters (retry jitter) lives inside FrontClient.
      const std::uint64_t corpus_index =
          (static_cast<std::uint64_t>(index) * 7919 + k) % corpus.size();
      sock.send(client.make_request(corpus[corpus_index], corpus_index,
                                    clock->now()));
      result->offered += 1;

      bool resolved = false;
      while (!resolved) {
        const std::vector<std::uint8_t> raw =
            sock.recv_some(config.recv_timeout_ms);
        if (raw.empty()) {
          if (sock.eof()) throw TransportError("loopback: server closed");
          result->timeouts += 1;
          resolved = true;  // abandon; the pending entry stays unmatched
          continue;
        }
        const std::vector<std::uint8_t> frames = reassembler.feed(raw);
        if (frames.empty()) continue;
        for (const FrontClient::Outcome& outcome :
             client.on_bytes(frames, clock->now())) {
          switch (outcome.kind) {
            case FrontClient::Outcome::Kind::kCompleted:
            case FrontClient::Outcome::Kind::kFailed:
              resolved = true;
              break;
            case FrontClient::Outcome::Kind::kRetry: {
              const SimTime now = clock->now();
              if (outcome.retry_at > now) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(outcome.retry_at - now));
              }
              sock.send(client.make_retry(outcome,
                                          corpus[outcome.corpus_index],
                                          clock->now()));
              break;
            }
          }
        }
      }
    }
    sock.close();
  } catch (const TransportError&) {
    result->transport_error = true;
  }
  result->stats = client.stats();
  result->latencies_ms = client.latencies_ms();
}

}  // namespace

void LoopbackConfig::validate() const {
  if (clients == 0) throw std::invalid_argument("loopback: zero clients");
  if (requests_per_client == 0) {
    throw std::invalid_argument("loopback: zero requests per client");
  }
  if (recv_timeout_ms <= 0) {
    throw std::invalid_argument("loopback: non-positive recv timeout");
  }
  client.validate();
  transport.validate();
}

LoopbackReport run_loopback(FrontServer& server,
                            std::span<const serve::Query> corpus,
                            const LoopbackConfig& config) {
  config.validate();
  if (corpus.empty()) throw std::invalid_argument("loopback: empty corpus");
  if (!sockets_available()) {
    throw TransportError("loopback: sockets unavailable");
  }

  MonotonicClock clock;
  SocketServer transport(&server, &clock, config.transport);
  const std::uint16_t port = transport.listen();
  std::thread server_thread([&transport] { transport.run(); });

  std::vector<ClientResult> results(config.clients);
  const SimTime t0 = clock.now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config.clients);
    for (std::uint32_t i = 0; i < config.clients; ++i) {
      threads.emplace_back(client_loop, i, port, corpus, std::cref(config),
                           &clock, &results[i]);
    }
    for (std::thread& t : threads) t.join();
  }
  const SimTime t1 = clock.now();

  transport.request_drain();
  server_thread.join();

  LoopbackReport report;
  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    report.offered += r.offered;
    report.sent += r.stats.sent;
    report.completed += r.stats.completed;
    report.failed += r.stats.failed + r.timeouts +
                     static_cast<std::uint64_t>(r.transport_error);
    report.retries += r.stats.retries;
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
  }
  report.server = server.stats();
  report.transport = transport.stats();
  report.p50_ms = percentile_ms(latencies, 0.50);
  report.p95_ms = percentile_ms(latencies, 0.95);
  report.p99_ms = percentile_ms(latencies, 0.99);
  report.duration_ms = static_cast<double>(t1 - t0) / 1e3;
  report.qps = report.duration_ms > 0.0
                   ? static_cast<double>(report.completed) /
                         (report.duration_ms / 1e3)
                   : 0.0;
  report.slo_ms = config.slo_ms;
  report.slo_met = report.completed > 0 && report.p99_ms <= config.slo_ms;
  report.drained = transport.drained() && server.drained();
  return report;
}

}  // namespace shears::front
