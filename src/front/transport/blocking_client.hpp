// The client half of the socket transport: a plain blocking TCP (or
// adopted socketpair) connection. Framing, retries and latency
// accounting stay in front::FrontClient — this class only moves bytes,
// which keeps the simulated and socket transports interchangeable
// behind the same client logic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace shears::front {

class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  /// Connects to 127.0.0.1:port; throws TransportError on failure.
  void connect(std::uint16_t port);
  /// Takes ownership of an already-connected stream fd.
  void adopt(int fd);

  /// Writes the whole buffer, blocking through partial writes.
  void send(std::span<const std::uint8_t> bytes);

  /// Blocks up to `timeout_ms` for data; returns what arrived (empty on
  /// timeout or EOF — check eof()).
  [[nodiscard]] std::vector<std::uint8_t> recv_some(int timeout_ms);

  /// Closes abruptly: SO_LINGER(0) turns the close into a TCP RST — the
  /// malicious-peer tests use this to hit the server mid-response.
  void reset();
  void close();

  [[nodiscard]] bool eof() const noexcept { return eof_; }
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  bool eof_ = false;
};

}  // namespace shears::front
