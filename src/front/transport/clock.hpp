// The clock seam between the session layer and its transports.
//
// FrontServer's entire state machine runs on integer-microsecond
// timestamps (front::SimTime) passed in by the caller. That is what
// makes the simulated transport deterministic — and what lets the real
// socket transport reuse the session layer unchanged: the epoll loop
// reads its timestamps from a Clock instead of a traffic script.
//
// Two implementations:
//
//   * ManualClock — time advances only when the owner says so. The
//     differential transport tests drive the socket server with one of
//     these, so every admission, batch close and deadline decision
//     happens at exactly the recorded request stream's timestamps and
//     the simulated session replays as the byte-exact oracle for the
//     socket path (real TCP delivery jitter never reaches the session
//     layer's notion of time).
//   * MonotonicClock — CLOCK_MONOTONIC microseconds since construction,
//     the production adapter. Loopback benches share one instance
//     between server and clients so deadlines and latency measurements
//     live on a single timeline.
#pragma once

#include <chrono>
#include <cstdint>

#include "front/frame.hpp"

namespace shears::front {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Microseconds since this clock's epoch. Must never go backwards.
  [[nodiscard]] virtual SimTime now() = 0;
};

/// Time under the caller's explicit control; starts at 0.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] SimTime now() override { return now_; }

  /// Moves time forward to `t`; ignores moves backwards (the session
  /// layer's "now must not go backwards" contract stays intact even if
  /// two schedules interleave carelessly).
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }
  void advance_by(SimTime d) { now_ += d; }

 private:
  SimTime now_ = 0;
};

/// Wall time: steady-clock microseconds since construction.
class MonotonicClock final : public Clock {
 public:
  MonotonicClock() : epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] SimTime now() override {
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace shears::front
