#include "front/transport/blocking_client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "front/transport/socket_server.hpp"  // TransportError

namespace shears::front {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string("client: ") + what + ": " +
                       std::strerror(errno));
}

}  // namespace

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), eof_(other.eof_) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    eof_ = other.eof_;
  }
  return *this;
}

void BlockingClient::connect(std::uint16_t port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw_errno("connect(127.0.0.1)");
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  eof_ = false;
}

void BlockingClient::adopt(int fd) {
  close();
  fd_ = fd;
  eof_ = false;
}

void BlockingClient::send(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> BlockingClient::recv_some(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  while (true) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (ready == 0) return {};
    break;
  }
  std::vector<std::uint8_t> bytes(64 * 1024);
  while (true) {
    const ssize_t n = ::recv(fd_, bytes.data(), bytes.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        eof_ = true;
        return {};
      }
      throw_errno("recv");
    }
    if (n == 0) {
      eof_ = true;
      return {};
    }
    bytes.resize(static_cast<std::size_t>(n));
    return bytes;
  }
}

void BlockingClient::reset() {
  if (fd_ < 0) return;
  const linger hard{1, 0};
  (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd_);
  fd_ = -1;
}

void BlockingClient::close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

}  // namespace shears::front
