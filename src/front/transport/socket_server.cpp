#include "front/transport/socket_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <span>

namespace shears::front {

namespace {

constexpr SimTime kFarFuture = std::numeric_limits<SimTime>::max();

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string("transport: ") + what + ": " +
                       std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

bool sockets_available() noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  const bool bound =
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  if (!bound) return false;
  const int ep = ::epoll_create1(0);
  if (ep < 0) return false;
  ::close(ep);
  return true;
}

bool socketpair_available() noexcept {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  ::close(fds[0]);
  ::close(fds[1]);
  const int ep = ::epoll_create1(0);
  if (ep < 0) return false;
  ::close(ep);
  return true;
}

void TransportConfig::validate() const {
  if (read_chunk == 0) {
    throw std::invalid_argument("TransportConfig: read_chunk must be > 0");
  }
  if (write_high_watermark == 0) {
    throw std::invalid_argument(
        "TransportConfig: write_high_watermark must be > 0");
  }
  if (max_connections == 0) {
    throw std::invalid_argument(
        "TransportConfig: max_connections must be > 0");
  }
}

SocketServer::SocketServer(FrontServer* server, Clock* clock,
                           TransportConfig config)
    : server_(server), clock_(clock), config_(config) {
  config_.validate();
}

SocketServer::~SocketServer() {
  for (Peer& peer : peers_) {
    if (peer.open) ::close(peer.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void SocketServer::ensure_open() {
  if (epoll_fd_ >= 0) return;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    throw_errno("epoll_ctl(wakeup)");
  }
}

std::uint16_t SocketServer::listen() {
  ensure_open();
  if (listen_fd_ >= 0) return port_;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("bind(127.0.0.1)");
  }
  if (::listen(fd, config_.backlog) < 0) {
    ::close(fd);
    throw_errno("listen");
  }
  set_nonblocking(fd);
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    throw_errno("epoll_ctl(listener)");
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return port_;
}

SocketServer::Peer& SocketServer::peer_of(int fd) {
  if (peers_.size() <= static_cast<std::size_t>(fd)) {
    peers_.resize(static_cast<std::size_t>(fd) + 1);
  }
  return peers_[static_cast<std::size_t>(fd)];
}

ConnId SocketServer::register_peer(int fd, std::uint64_t client_id) {
  set_nonblocking(fd);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    throw_errno("epoll_ctl(peer)");
  }
  Peer& peer = peer_of(fd);
  peer = Peer{};
  peer.fd = fd;
  peer.conn = server_->connect(client_id);
  peer.open = true;
  peer.last_read_us = clock_->now();
  open_connections_ += 1;
  return peer.conn;
}

ConnId SocketServer::adopt(int fd, std::uint64_t client_id) {
  ensure_open();
  stats_.adopted += 1;
  return register_peer(fd, client_id);
}

void SocketServer::accept_ready() {
  while (listen_fd_ >= 0) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept4");
    }
    if (open_connections_ >= config_.max_connections) {
      // At capacity: reject at the door instead of degrading everyone.
      stats_.accept_overflow += 1;
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.accepted += 1;
    (void)register_peer(fd, next_client_id_++);
  }
}

void SocketServer::read_ready(int fd) {
  Peer& peer = peer_of(fd);
  if (!peer.open) return;
  std::vector<std::uint8_t> chunk(config_.read_chunk);
  // Edge-triggered: drain the socket completely or the event is lost.
  while (true) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n > 0) {
      const SimTime now = clock_->now();
      peer.last_read_us = now;
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      // Decode + admission only: batch formation belongs to the clock
      // (pump_session), never to TCP segmentation.
      server_->ingest(
          peer.conn,
          std::span<const std::uint8_t>(chunk.data(),
                                        static_cast<std::size_t>(n)),
          now);
      continue;
    }
    if (n == 0) {
      close_peer(fd, &TransportStats::closed_by_peer);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    // ECONNRESET and friends: the abrupt-RST path. One connection dies;
    // the server does not.
    close_peer(fd, &TransportStats::reset_by_peer);
    return;
  }
}

void SocketServer::flush_peer(int fd) {
  Peer& peer = peer_of(fd);
  if (!peer.open) return;
  while (peer.out_pos < peer.outbox.size()) {
    const ssize_t n =
        ::send(fd, peer.outbox.data() + peer.out_pos,
               peer.outbox.size() - peer.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      peer.out_pos += static_cast<std::size_t>(n);
      stats_.bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      stats_.partial_writes += 1;
      if (!peer.want_write) {
        peer.want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET;
        ev.data.fd = fd;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
          throw_errno("epoll_ctl(+EPOLLOUT)");
        }
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_peer(fd, &TransportStats::reset_by_peer);
    return;
  }
  peer.outbox.clear();
  peer.out_pos = 0;
  if (peer.want_write) {
    peer.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(-EPOLLOUT)");
    }
  }
}

void SocketServer::enqueue_output(int fd, std::vector<std::uint8_t>&& bytes) {
  Peer& peer = peer_of(fd);
  if (!peer.open) return;
  if (peer.outbox.empty()) {
    peer.outbox = std::move(bytes);
    peer.out_pos = 0;
  } else {
    peer.outbox.insert(peer.outbox.end(), bytes.begin(), bytes.end());
  }
  flush_peer(fd);
  if (peer.open &&
      peer.outbox.size() - peer.out_pos > config_.write_high_watermark) {
    // Backpressure boundary: a peer that will not read its responses
    // does not get to grow our memory. Shed it.
    close_peer(fd, &TransportStats::shed_highwater);
  }
}

void SocketServer::close_peer(int fd, std::uint64_t TransportStats::*cause) {
  Peer& peer = peer_of(fd);
  if (!peer.open) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  peer.open = false;
  peer.outbox.clear();
  peer.out_pos = 0;
  dead_conns_.push_back(peer.conn);
  open_connections_ -= 1;
  stats_.closed += 1;
  if (cause != nullptr) stats_.*cause += 1;
}

void SocketServer::close_listener() {
  if (listen_fd_ < 0) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void SocketServer::sweep_idle(SimTime now) {
  if (config_.idle_timeout_us == 0) return;
  for (Peer& peer : peers_) {
    if (!peer.open) continue;
    if (now - peer.last_read_us >= config_.idle_timeout_us) {
      close_peer(peer.fd, &TransportStats::idle_closed);
    }
  }
}

void SocketServer::discard_dead_outputs() {
  // Batches admitted before a disconnect may still emit frames for the
  // dead connection; drop them so drained() can converge.
  for (const ConnId conn : dead_conns_) {
    (void)server_->take_output(conn, kFarFuture);
  }
}

void SocketServer::pump_session() {
  const SimTime now = clock_->now();
  server_->run_until(now);
  for (Peer& peer : peers_) {
    if (!peer.open) continue;
    std::vector<std::uint8_t> bytes = server_->take_output(peer.conn, now);
    if (bytes.empty()) {
      // A flush may still be owed from a previous EAGAIN.
      if (peer.out_pos < peer.outbox.size()) flush_peer(peer.fd);
      continue;
    }
    enqueue_output(peer.fd, std::move(bytes));
  }
  discard_dead_outputs();
}

bool SocketServer::drained() const {
  if (!server_->drained()) return false;
  for (const Peer& peer : peers_) {
    if (peer.open && peer.out_pos < peer.outbox.size()) return false;
  }
  return true;
}

int SocketServer::wait_ms(SimTime max_wait_us) {
  SimTime wait = max_wait_us;
  const SimTime now = clock_->now();
  if (config_.auto_pump) {
    if (const auto at = server_->next_activity(); at.has_value()) {
      wait = std::min(wait, *at > now ? *at - now : 0);
    }
  }
  if (config_.idle_timeout_us != 0) {
    for (const Peer& peer : peers_) {
      if (!peer.open) continue;
      const SimTime deadline = peer.last_read_us + config_.idle_timeout_us;
      wait = std::min(wait, deadline > now ? deadline - now : 0);
    }
  }
  // Round up so a 1 us wait does not busy-spin as timeout 0.
  const SimTime ms = wait == 0 ? 0 : (wait + 999) / 1000;
  return static_cast<int>(std::min<SimTime>(ms, 60'000));
}

int SocketServer::poll(SimTime max_wait_us) {
  ensure_open();
  if (drain_requested_.load(std::memory_order_acquire)) close_listener();

  epoll_event events[64];
  int n = ::epoll_wait(epoll_fd_, events, 64, wait_ms(max_wait_us));
  if (n < 0) {
    if (errno != EINTR) throw_errno("epoll_wait");
    n = 0;
  }
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t tickets = 0;
      (void)!::read(wake_fd_, &tickets, sizeof(tickets));
      continue;
    }
    if (fd == listen_fd_) {
      accept_ready();
      continue;
    }
    if ((events[i].events & EPOLLOUT) != 0) flush_peer(fd);
    if ((events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) !=
        0) {
      read_ready(fd);
    }
  }

  sweep_idle(clock_->now());
  if (config_.auto_pump) pump_session();

  if (drain_requested_.load(std::memory_order_acquire) && drained()) {
    // Everything owed has been flushed: finish the drain by closing the
    // (now quiescent) connections cleanly.
    for (Peer& peer : peers_) {
      if (peer.open) close_peer(peer.fd, nullptr);
    }
    discard_dead_outputs();
  }
  return n;
}

void SocketServer::run() {
  ensure_open();
  while (true) {
    (void)poll(100'000);
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (drain_requested_.load(std::memory_order_acquire) &&
        open_connections_ == 0 && drained()) {
      break;
    }
  }
}

void SocketServer::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

void SocketServer::request_drain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

}  // namespace shears::front
