// Real TCP transport for the serving front-end: a non-blocking epoll
// event loop speaking the PR-6 frame protocol over loopback (or any
// IPv4) sockets, in front of an unchanged FrontServer.
//
// The session layer stays the system of record for every serving
// decision — admission, fairness, deadlines, batching, staleness. This
// layer owns only what a byte stream adds on top:
//
//   * Edge-triggered reads into the per-connection FrameDecoder via
//     FrontServer::ingest — partial reads are fed as they arrive and a
//     frame split across a hundred segments reassembles exactly once.
//   * Write buffering with backpressure: responses are written as far
//     as the socket accepts, the rest is buffered and flushed on
//     EPOLLOUT. A peer that stops reading past the high watermark is
//     disconnected (shed_highwater) instead of buffering without bound.
//   * Idle timeouts: a connection that goes idle-while-incomplete (the
//     slowloris shape: trickle half a header, then hold the fd) is
//     closed after idle_timeout_us without touching other connections.
//   * Graceful drain: stop accepting, finish queued batches, flush
//     every outbox, then close — the socket twin of FrontServer's
//     drained() predicate.
//
// Clock discipline: all timestamps handed to the session layer come
// from the Clock seam. With a MonotonicClock this is a production
// server; with a ManualClock the *differential tests* replay a recorded
// request stream at exact timestamps and compare the socket path's
// responses byte-for-byte against the simulated transport — TCP
// delivery jitter cannot perturb the session layer's decisions because
// the harness owns time (and, in manual-pump mode, batch formation).
//
// Threading: the event loop is single-threaded. poll()/run() and every
// accessor must be called from the owning thread; request_stop() and
// request_drain() are the only cross-thread entry points (atomic flag +
// eventfd wakeup).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "front/server.hpp"
#include "front/transport/clock.hpp"

namespace shears::front {

/// Thrown on socket/epoll syscall failures (message carries errno).
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// True when this process may create TCP sockets, bind them to
/// loopback, and epoll them — the capability probe the loopback tests
/// and benches use to *skip* (not fail) in sandboxes without socket(2).
[[nodiscard]] bool sockets_available() noexcept;

/// Same probe for AF_UNIX socketpair(2) (the torture-test harness).
[[nodiscard]] bool socketpair_available() noexcept;

struct TransportConfig {
  /// Listen port on 127.0.0.1; 0 picks an ephemeral port (listen()
  /// returns the choice).
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_connections = 1024;
  /// Bytes per read(2) call on the edge-triggered drain loop.
  std::size_t read_chunk = 64 * 1024;
  /// Unsent response bytes a connection may buffer before it is shed.
  std::size_t write_high_watermark = 1 << 20;
  /// Close connections quiet for this long; 0 disables. This is the
  /// slowloris defence: bytes read reset the timer, open-and-hold does
  /// not.
  SimTime idle_timeout_us = 0;
  /// When true (the default), every poll() pumps the session layer
  /// (run_until + output collection). The differential harness turns
  /// this off and calls pump_session() itself, so batch formation
  /// happens at scripted times rather than at whatever granularity TCP
  /// delivered the bytes.
  bool auto_pump = true;

  /// Throws std::invalid_argument on zero chunk/watermark/connections.
  void validate() const;
};

struct TransportStats {
  std::uint64_t accepted = 0;
  std::uint64_t adopted = 0;
  std::uint64_t closed = 0;          ///< all closes, any cause
  std::uint64_t closed_by_peer = 0;  ///< clean EOF
  std::uint64_t reset_by_peer = 0;   ///< ECONNRESET / EPIPE mid-stream
  std::uint64_t shed_highwater = 0;  ///< write buffer overran the mark
  std::uint64_t idle_closed = 0;     ///< idle timeout (slowloris et al.)
  std::uint64_t accept_overflow = 0; ///< accepted then dropped: at capacity
  std::uint64_t bytes_in = 0;        ///< read and fed to the session layer
  std::uint64_t bytes_out = 0;       ///< written to sockets
  std::uint64_t partial_writes = 0;  ///< write calls that could not finish
};

class SocketServer {
 public:
  /// `server` and `clock` must outlive this object.
  SocketServer(FrontServer* server, Clock* clock, TransportConfig config = {});
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds 127.0.0.1:config.port and starts accepting; returns the
  /// bound port. Throws TransportError when sockets are unavailable.
  std::uint16_t listen();

  /// Registers an already-connected stream fd (e.g. one end of a
  /// socketpair) as a connection; takes ownership of the fd. The id
  /// feeds the session layer's fairness bucket.
  ConnId adopt(int fd, std::uint64_t client_id);

  /// One event-loop iteration: waits up to `max_wait_us` for socket
  /// events (less when the session layer has earlier work), handles
  /// accepts/reads/writes/timeouts, and — in auto_pump mode — pumps the
  /// session layer. Returns the number of fd events handled.
  int poll(SimTime max_wait_us);

  /// Runs batches due by clock->now(), collects server→client frames
  /// into per-connection write buffers, and flushes as far as the
  /// sockets accept. Called by poll() unless auto_pump is off.
  void pump_session();

  /// Loops poll() until request_stop(), or until a requested drain
  /// completes (queue empty, outboxes flushed, connections closed).
  void run();

  /// Thread-safe: wake the loop and make run() return.
  void request_stop();
  /// Thread-safe: stop accepting, finish in-flight work, flush, close
  /// every connection, then let run() return.
  void request_drain();

  /// Nothing queued, in flight, or buffered for write anywhere.
  [[nodiscard]] bool drained() const;
  [[nodiscard]] bool draining() const noexcept { return drain_requested_; }
  [[nodiscard]] std::size_t connection_count() const noexcept {
    return open_connections_;
  }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const TransportStats& stats() const noexcept { return stats_; }

 private:
  struct Peer {
    int fd = -1;
    ConnId conn = 0;
    bool open = false;
    bool want_write = false;           ///< EPOLLOUT armed
    std::vector<std::uint8_t> outbox;  ///< unsent response bytes
    std::size_t out_pos = 0;           ///< outbox send cursor
    SimTime last_read_us = 0;          ///< idle-timeout anchor
  };

  void ensure_open();  ///< lazily creates the epoll and wakeup fds
  [[nodiscard]] Peer& peer_of(int fd);
  ConnId register_peer(int fd, std::uint64_t client_id);
  void accept_ready();
  void read_ready(int fd);
  /// Appends and flushes; may close the peer (high watermark / EPIPE).
  void enqueue_output(int fd, std::vector<std::uint8_t>&& bytes);
  void flush_peer(int fd);
  void close_peer(int fd, std::uint64_t TransportStats::*cause);
  void close_listener();
  void sweep_idle(SimTime now);
  /// Discards session output queued for connections that no longer
  /// exist, so drained() converges after disconnects.
  void discard_dead_outputs();
  [[nodiscard]] int wait_ms(SimTime max_wait_us);

  FrontServer* server_;
  Clock* clock_;
  TransportConfig config_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Peer> peers_;  ///< indexed by fd
  std::vector<ConnId> dead_conns_;
  std::size_t open_connections_ = 0;
  std::uint64_t next_client_id_ = 0;  ///< accept-order fairness ids
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  TransportStats stats_;
};

}  // namespace shears::front
