// End-to-end loopback driver: a SocketServer on its own thread, real
// TCP connections from closed-loop client threads, wall-clock latency.
//
// This is the wall-clock twin of front::run_traffic — same FrontClient
// framing/retry logic, same report shape — but over the socket
// transport with a shared MonotonicClock, so the numbers include every
// real cost the simulation abstracts away (syscalls, epoll wakeups,
// TCP, scheduler jitter). The bench gates live here: sustained qps
// under the SLO, shedding engaging under overload, a clean drain at the
// end. Latencies are *not* deterministic (this is the point); the
// deterministic counterpart is the differential transport test.
#pragma once

#include <cstdint>
#include <span>

#include "front/client.hpp"
#include "front/server.hpp"
#include "front/transport/socket_server.hpp"

namespace shears::front {

struct LoopbackConfig {
  std::uint32_t clients = 4;
  /// Closed loop: each client issues this many fresh requests,
  /// back-to-back (plus whatever retries its errors earn).
  std::uint64_t requests_per_client = 250;
  /// p99 target over completed-request latencies.
  double slo_ms = 5.0;
  std::uint64_t seed = 2020;
  /// Per-recv wait before a client declares the request lost.
  int recv_timeout_ms = 2'000;
  ClientConfig client{};
  TransportConfig transport{};

  /// Throws std::invalid_argument on zero clients/requests/timeout.
  void validate() const;
};

struct LoopbackReport {
  std::uint64_t offered = 0;    ///< fresh requests issued
  std::uint64_t sent = 0;       ///< request frames on the wire
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;     ///< gave up (retries exhausted or timeout)
  std::uint64_t retries = 0;
  FrontStats server;            ///< session-layer counters
  TransportStats transport;     ///< socket-layer counters
  double p50_ms = 0.0;          ///< wall-clock first-issue → response
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double duration_ms = 0.0;     ///< first issue → last client done
  double qps = 0.0;             ///< completed / duration
  double slo_ms = 0.0;
  bool slo_met = false;         ///< p99_ms <= slo_ms (and completions > 0)
  bool drained = false;         ///< transport + session empty after drain
};

/// Runs a full loopback session against `server` (which must not be
/// shared with any other driver while this runs). Requires
/// sockets_available(); throws TransportError otherwise.
[[nodiscard]] LoopbackReport run_loopback(FrontServer& server,
                                          std::span<const serve::Query> corpus,
                                          const LoopbackConfig& config);

}  // namespace shears::front
