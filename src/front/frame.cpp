#include "front/frame.hpp"

#include <cstring>

namespace shears::front {

namespace {

// Little-endian primitive writers/readers over byte vectors. A Cursor
// read fails (returns false) instead of reading past the payload, which
// is what lets the body decoders reject truncation without exceptions.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  [[nodiscard]] bool done() const noexcept { return at_ == bytes_.size(); }

  [[nodiscard]] bool u8(std::uint8_t& v) noexcept {
    if (bytes_.size() - at_ < 1) return false;
    v = bytes_[at_++];
    return true;
  }

  [[nodiscard]] bool u16(std::uint16_t& v) noexcept {
    if (bytes_.size() - at_ < 2) return false;
    v = static_cast<std::uint16_t>(bytes_[at_] |
                                   (std::uint16_t{bytes_[at_ + 1]} << 8));
    at_ += 2;
    return true;
  }

  [[nodiscard]] bool u32(std::uint32_t& v) noexcept {
    if (bytes_.size() - at_ < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{bytes_[at_ + static_cast<std::size_t>(i)]}
           << (8 * i);
    }
    at_ += 4;
    return true;
  }

  [[nodiscard]] bool u64(std::uint64_t& v) noexcept {
    if (bytes_.size() - at_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{bytes_[at_ + static_cast<std::size_t>(i)]}
           << (8 * i);
    }
    at_ += 8;
    return true;
  }

  [[nodiscard]] bool f64(double& v) noexcept {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }

  [[nodiscard]] bool string(std::string& v) noexcept {
    std::uint16_t n;
    if (!u16(n)) return false;
    if (bytes_.size() - at_ < n) return false;
    v.assign(reinterpret_cast<const char*>(bytes_.data() + at_), n);
    at_ += n;
    return true;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

[[nodiscard]] std::uint16_t read_u16_at(
    std::span<const std::uint8_t> bytes, std::size_t at) noexcept {
  return static_cast<std::uint16_t>(bytes[at] |
                                    (std::uint16_t{bytes[at + 1]} << 8));
}

[[nodiscard]] std::uint32_t read_u32_at(
    std::span<const std::uint8_t> bytes, std::size_t at) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= std::uint32_t{bytes[at + static_cast<std::size_t>(i)]} << (8 * i);
  }
  return v;
}

/// Registry index of a region pointer (the footprint tops out at ~101
/// regions, so a scan beats carrying a side table around).
[[nodiscard]] std::uint16_t region_index_of(
    const topology::CloudRegistry& registry,
    const topology::CloudRegion* region) noexcept {
  const auto& regions = registry.regions();
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (regions[i] == region) return static_cast<std::uint16_t>(i);
  }
  return kNoRegion;
}

}  // namespace

std::string_view to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kThrottled: return "throttled";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kStale: return "stale";
  }
  return "unknown";
}

std::string_view to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
    case DecodeStatus::kBadType: return "bad-type";
  }
  return "unknown";
}

serve::Query Request::query() const noexcept {
  serve::Query q;
  q.kind = kind;
  q.where = geo::GeoPoint{lat_deg, lon_deg};
  q.country_iso2 = country_iso2;
  q.access = access;
  q.any_access = any_access;
  q.app_id = app_id;
  q.budget_ms = budget_ms;
  q.k = k;
  return q;
}

std::uint32_t frame_checksum(std::uint8_t version, std::uint8_t type,
                             std::span<const std::uint8_t> payload) noexcept {
  // FNV-1a over (version, type, length, payload) — the same hash the
  // dataset checksums use, truncated to the header's 32-bit field.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  mix(version);
  mix(type);
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(length >> (8 * i)));
  for (const std::uint8_t byte : payload) mix(byte);
  return static_cast<std::uint32_t>(h);
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload) {
  put_u16(out, kFrameMagic);
  put_u8(out, kProtocolVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, frame_checksum(kProtocolVersion,
                              static_cast<std::uint8_t>(type), payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

void append_request_frame(std::vector<std::uint8_t>& out, const Request& req) {
  std::vector<std::uint8_t> body;
  put_u64(body, req.request_id);
  put_u64(body, req.client_id);
  put_u64(body, req.deadline_us);
  put_u8(body, static_cast<std::uint8_t>(req.kind));
  put_f64(body, req.lat_deg);
  put_f64(body, req.lon_deg);
  put_string(body, req.country_iso2);
  put_u8(body, static_cast<std::uint8_t>(req.access));
  put_u8(body, req.any_access ? 1 : 0);
  put_string(body, req.app_id);
  put_f64(body, req.budget_ms);
  put_u32(body, req.k);
  append_frame(out, FrameType::kRequest, body);
}

void append_response_frame(std::vector<std::uint8_t>& out,
                           const Response& res) {
  std::vector<std::uint8_t> body;
  put_u64(body, res.request_id);
  put_u8(body, res.ok ? 1 : 0);
  put_string(body, res.country_iso2);
  put_u16(body, res.best_region);
  put_f64(body, res.best_ms);
  put_f64(body, res.median_ms);
  put_f64(body, res.p95_ms);
  put_u8(body, static_cast<std::uint8_t>(res.verdict));
  put_u8(body, res.in_zone ? 1 : 0);
  put_u16(body, static_cast<std::uint16_t>(res.regions.size()));
  for (const WireRegion& r : res.regions) {
    put_u16(body, r.region_index);
    put_f64(body, r.rtt_ms);
  }
  append_frame(out, FrameType::kResponse, body);
}

void append_error_frame(std::vector<std::uint8_t>& out, const Error& err) {
  std::vector<std::uint8_t> body;
  put_u64(body, err.request_id);
  put_u8(body, static_cast<std::uint8_t>(err.code));
  put_string(body, err.message);
  append_frame(out, FrameType::kError, body);
}

bool decode_request(std::span<const std::uint8_t> payload,
                    Request& out) noexcept {
  Cursor c(payload);
  std::uint8_t kind = 0;
  std::uint8_t access = 0;
  std::uint8_t any_access = 0;
  if (!c.u64(out.request_id) || !c.u64(out.client_id) ||
      !c.u64(out.deadline_us) || !c.u8(kind) || !c.f64(out.lat_deg) ||
      !c.f64(out.lon_deg) || !c.string(out.country_iso2) || !c.u8(access) ||
      !c.u8(any_access) || !c.string(out.app_id) || !c.f64(out.budget_ms) ||
      !c.u32(out.k) || !c.done()) {
    return false;
  }
  if (kind > static_cast<std::uint8_t>(serve::QueryKind::kTopK)) return false;
  if (access >= net::kAccessTechnologyCount) return false;
  if (any_access > 1) return false;
  out.kind = static_cast<serve::QueryKind>(kind);
  out.access = static_cast<net::AccessTechnology>(access);
  out.any_access = any_access != 0;
  return true;
}

bool decode_response(std::span<const std::uint8_t> payload,
                     Response& out) noexcept {
  Cursor c(payload);
  std::uint8_t ok = 0;
  std::uint8_t verdict = 0;
  std::uint8_t in_zone = 0;
  std::uint16_t region_count = 0;
  if (!c.u64(out.request_id) || !c.u8(ok) || !c.string(out.country_iso2) ||
      !c.u16(out.best_region) || !c.f64(out.best_ms) ||
      !c.f64(out.median_ms) || !c.f64(out.p95_ms) || !c.u8(verdict) ||
      !c.u8(in_zone) || !c.u16(region_count)) {
    return false;
  }
  if (ok > 1 || in_zone > 1) return false;
  if (verdict > static_cast<std::uint8_t>(core::EdgeVerdict::kNoEdgeCase)) {
    return false;
  }
  out.ok = ok != 0;
  out.verdict = static_cast<core::EdgeVerdict>(verdict);
  out.in_zone = in_zone != 0;
  out.regions.clear();
  out.regions.reserve(region_count);
  for (std::uint16_t i = 0; i < region_count; ++i) {
    WireRegion r;
    if (!c.u16(r.region_index) || !c.f64(r.rtt_ms)) return false;
    out.regions.push_back(r);
  }
  return c.done();
}

bool decode_error(std::span<const std::uint8_t> payload, Error& out) noexcept {
  Cursor c(payload);
  std::uint8_t code = 0;
  if (!c.u64(out.request_id) || !c.u8(code) || !c.string(out.message) ||
      !c.done()) {
    return false;
  }
  if (code < static_cast<std::uint8_t>(ErrorCode::kBadRequest) ||
      code > static_cast<std::uint8_t>(ErrorCode::kStale)) {
    return false;
  }
  out.code = static_cast<ErrorCode>(code);
  return true;
}

Response make_response(std::uint64_t request_id, const serve::Answer& answer,
                       const topology::CloudRegistry& registry) {
  Response res;
  res.request_id = request_id;
  res.ok = answer.ok;
  if (answer.country != nullptr) res.country_iso2 = answer.country->iso2;
  if (answer.best_region != nullptr) {
    res.best_region = region_index_of(registry, answer.best_region);
  }
  res.best_ms = answer.best_ms;
  res.median_ms = answer.median_ms;
  res.p95_ms = answer.p95_ms;
  res.verdict = answer.verdict;
  res.in_zone = answer.in_zone;
  res.regions.reserve(answer.regions.size());
  for (const serve::RegionAnswer& r : answer.regions) {
    res.regions.push_back(
        WireRegion{region_index_of(registry, r.region), r.rtt_ms});
  }
  return res;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (pos_ > 4096 && pos_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameDecoder::resync(std::size_t n) {
  pos_ += n;
  tally_.resync_bytes += n;
  // Scan for the next byte pair that could open a frame; everything
  // before it is damage from the current one.
  while (buffer_.size() - pos_ >= 2 &&
         read_u16_at(buffer_, pos_) != kFrameMagic) {
    ++pos_;
    ++tally_.resync_bytes;
  }
}

FrameDecoder::Item FrameDecoder::next() {
  Item item;
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < kFrameHeaderBytes) {
    item.status = DecodeStatus::kNeedMore;
    return item;
  }
  if (read_u16_at(buffer_, pos_) != kFrameMagic) {
    resync(1);
    item.status = DecodeStatus::kBadMagic;
    ++tally_.bad_magic;
    return item;
  }
  const std::uint8_t version = buffer_[pos_ + 2];
  const std::uint8_t type = buffer_[pos_ + 3];
  const std::uint32_t length = read_u32_at(buffer_, pos_ + 4);
  if (length > kMaxPayloadBytes) {
    // The length field cannot be trusted, so the frame body cannot be
    // skipped exactly; drop the header and hunt for the next magic.
    resync(kFrameHeaderBytes);
    item.status = DecodeStatus::kBadLength;
    ++tally_.bad_length;
    return item;
  }
  if (avail < kFrameHeaderBytes + length) {
    item.status = DecodeStatus::kNeedMore;
    return item;
  }
  const std::uint32_t want = read_u32_at(buffer_, pos_ + 8);
  const std::span<const std::uint8_t> payload(
      buffer_.data() + pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  if (want != frame_checksum(version, type, payload)) {
    item.status = DecodeStatus::kBadChecksum;
    ++tally_.bad_checksum;
    return item;
  }
  // Checksummed: the length (covered by the hash) is authoritative, so
  // version/type damage skips exactly this frame.
  if (version != kProtocolVersion) {
    item.status = DecodeStatus::kBadVersion;
    ++tally_.bad_version;
    return item;
  }
  if (type < static_cast<std::uint8_t>(FrameType::kRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kError)) {
    item.status = DecodeStatus::kBadType;
    ++tally_.bad_type;
    return item;
  }
  item.status = DecodeStatus::kFrame;
  item.type = static_cast<FrameType>(type);
  item.payload.assign(payload.begin(), payload.end());
  ++tally_.frames;
  return item;
}

}  // namespace shears::front
