// Closed-loop traffic generator for the serving front-end.
//
// The question a serving layer must answer is not "how fast is a query"
// but "what query rate can it sustain while the tail stays inside the
// SLO, and what happens to the excess". This harness drives a
// FrontServer with the two canonical arrival disciplines:
//
//   * open — requests arrive on a Poisson process at a configured
//     offered rate, regardless of completions (the overload-capable
//     discipline: offered load can exceed capacity, which is exactly
//     when shedding and deadline drops must earn their keep);
//   * closed — each client issues the next request one think-time after
//     its previous one resolves (the feedback discipline real user
//     populations follow).
//
// Query skew is zipfian over a caller-supplied corpus — the digital-
// divide traffic shape, where a handful of populous, poorly-connected
// countries dominate the stream. Everything (arrivals, skew, jitter)
// derives from one seed through forked stats::Xoshiro256 streams on a
// simulated clock, so a session's every shed, retry and percentile is
// byte-reproducible at any oracle thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "front/client.hpp"
#include "front/server.hpp"

namespace shears::obs {
class MetricsRegistry;
}  // namespace shears::obs

namespace shears::front {

enum class ArrivalMode : unsigned char { kOpen, kClosed };

[[nodiscard]] std::string_view to_string(ArrivalMode mode) noexcept;
/// "open" / "closed"; nullopt on anything else.
[[nodiscard]] std::optional<ArrivalMode> arrival_from_string(
    std::string_view name) noexcept;

struct TrafficConfig {
  ArrivalMode arrival = ArrivalMode::kOpen;
  std::uint32_t clients = 32;
  /// Open mode: total offered arrival rate (requests/s).
  std::uint32_t offered_qps = 20'000;
  /// Closed mode: per-client think time between resolve and next issue.
  SimTime think_time_us = 10'000;
  /// Zipf exponent of the query skew over the corpus (0 = uniform).
  double zipf_exponent = 1.1;
  /// New requests are issued in [0, duration); retries may drain later.
  SimTime duration_us = 1'000'000;
  /// The tail target the report judges: p99 of completed requests.
  double slo_ms = 5.0;
  std::uint64_t seed = 2020;
  ClientConfig client{};

  /// Throws std::invalid_argument on zero clients/duration, a zero open
  /// rate, or a negative zipf exponent.
  void validate() const;
};

/// Everything a session run produces. All fields are deterministic
/// functions of (server config, corpus, traffic config) — the soak test
/// compares whole reports across oracle thread counts.
struct TrafficReport {
  std::uint64_t offered = 0;    ///< fresh requests issued (retries excluded)
  std::uint64_t sent = 0;       ///< request frames on the wire
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  FrontStats server;            ///< shed/expired/stale/queue counters
  double p50_ms = 0.0;          ///< exact percentiles of completed
  double p95_ms = 0.0;          ///< request latencies (user-visible,
  double p99_ms = 0.0;          ///< first issue → response)
  double qps = 0.0;             ///< completed / configured duration
  double slo_ms = 0.0;
  bool slo_met = false;         ///< p99_ms <= slo_ms (and completions > 0)
  bool drained = false;         ///< server empty after the session

  friend bool operator==(const TrafficReport&, const TrafficReport&) = default;
};

/// Exact nearest-rank percentile of an unsorted sample; 0 when empty.
[[nodiscard]] double percentile_ms(std::vector<double> samples, double q);

/// Drives a full session against `server` and returns the report.
/// `corpus` supplies the query population (non-empty). When `metrics`
/// is set, publishes front.traffic.* counters and gauges on top of
/// whatever the server itself has attached.
[[nodiscard]] TrafficReport run_traffic(FrontServer& server,
                                        std::span<const serve::Query> corpus,
                                        const TrafficConfig& config,
                                        obs::MetricsRegistry* metrics = nullptr);

/// A deterministic mixed corpus over a store's fleet: all three query
/// kinds, location and ISO-2 resolution, access filters, catalog app
/// slugs — the serving-path twin of the bench query mix.
[[nodiscard]] std::vector<serve::Query> make_corpus(
    const atlas::ProbeFleet& fleet, std::size_t count);

}  // namespace shears::front
