// The front-end's client half: request framing, response matching, and
// a retry policy with capped exponential backoff plus deterministic
// jitter — the same resilience shape the campaign engine applies to
// lost bursts (faults::RetryPolicy), transplanted to the serving path.
//
// A client owns one connection. It stamps each attempt with a fresh
// absolute deadline, measures latency from the *first* issue (retries
// do not reset the user's clock), and retries exactly the transient
// error codes (kOverloaded / kThrottled / kStale). Jitter draws from a
// per-client forked stats::Xoshiro256 stream, so a thousand clients
// backing off never stampede in phase — and the whole schedule is still
// a pure function of the session seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "front/frame.hpp"
#include "stats/rng.hpp"

namespace shears::front {

struct ClientConfig {
  /// Extra attempts after a retryable error; 0 disables retries.
  int max_retries = 3;
  /// Backoff before retry k (1-based): base × 2^(k-1), capped, then
  /// jittered by ±jitter_fraction.
  SimTime backoff_base_us = 5'000;
  SimTime backoff_cap_us = 160'000;
  double jitter_fraction = 0.25;
  /// Per-attempt deadline stamped on each request; 0 = none.
  SimTime deadline_us = 0;

  /// Throws std::invalid_argument on negative retries, zero backoff
  /// base/cap, or jitter outside [0, 1).
  void validate() const;
};

/// Deterministic per-client tallies plus completed-request latencies.
struct ClientStats {
  std::uint64_t sent = 0;       ///< request frames issued (incl. retries)
  std::uint64_t completed = 0;  ///< response frames received
  std::uint64_t retries = 0;    ///< retry attempts scheduled
  std::uint64_t failed = 0;     ///< gave up (retries exhausted or fatal)
  std::uint64_t errors_overloaded = 0;
  std::uint64_t errors_throttled = 0;
  std::uint64_t errors_deadline = 0;
  std::uint64_t errors_stale = 0;
  std::uint64_t errors_bad_request = 0;
};

class FrontClient {
 public:
  /// What the caller (the traffic loop) must do next for one request.
  struct Outcome {
    enum class Kind : unsigned char {
      kCompleted,  ///< response received; latency_ms is the user latency
      kRetry,      ///< transient error; re-send via make_retry at retry_at
      kFailed,     ///< fatal error or retries exhausted
    };
    Kind kind = Kind::kCompleted;
    std::uint64_t corpus_index = 0;  ///< caller's query tag, round-tripped
    double latency_ms = 0.0;         ///< kCompleted only
    SimTime retry_at = 0;            ///< kRetry only
    std::uint64_t request_id = 0;
  };

  FrontClient(std::uint64_t client_id, ClientConfig config,
              std::uint64_t session_seed);

  [[nodiscard]] std::uint64_t client_id() const noexcept {
    return client_id_;
  }

  /// Frames a fresh request for `query` issued at `now`; `corpus_index`
  /// rides along and comes back in the Outcome.
  [[nodiscard]] std::vector<std::uint8_t> make_request(
      const serve::Query& query, std::uint64_t corpus_index, SimTime now);

  /// Frames the retry attempt promised by an Outcome::kRetry.
  [[nodiscard]] std::vector<std::uint8_t> make_retry(
      const Outcome& outcome, const serve::Query& query, SimTime now);

  /// Feeds server→client bytes received at `now`; returns the resolved
  /// outcomes, in wire order.
  [[nodiscard]] std::vector<Outcome> on_bytes(
      std::span<const std::uint8_t> bytes, SimTime now);

  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  /// User-visible latencies (ms) of completed requests, arrival order.
  [[nodiscard]] const std::vector<double>& latencies_ms() const noexcept {
    return latencies_ms_;
  }
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return pending_.size();
  }

 private:
  struct PendingRequest {
    std::uint64_t request_id = 0;
    std::uint64_t corpus_index = 0;
    SimTime first_issue_us = 0;
    int attempt = 1;
  };

  [[nodiscard]] std::vector<std::uint8_t> frame_attempt(
      const serve::Query& query, const PendingRequest& pending, SimTime now);
  [[nodiscard]] SimTime backoff_us(int attempt);

  std::uint64_t client_id_;
  ClientConfig config_;
  stats::Xoshiro256 rng_;  ///< jitter stream, forked from the session seed
  std::uint64_t next_request_ = 0;
  std::vector<PendingRequest> pending_;
  ClientStats stats_;
  std::vector<double> latencies_ms_;
};

}  // namespace shears::front
