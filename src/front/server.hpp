// The serving front-end: a deterministic, simulated-clock session layer
// in front of serve::Oracle.
//
// The batched oracle answers microsecond queries, but only for callers
// already inside the process. This server gives it the shape of a
// network service — framed requests over per-connection byte buffers —
// and, more importantly, the failure behaviour of a production one:
//
//   * Admission control: a bounded queue. When it is full, or when the
//     projected queue wait already exceeds a request's deadline, the
//     request is shed *at the door* with a kOverloaded error frame —
//     cheap rejection instead of queueing work that will time out.
//   * Deadlines: each request carries an absolute sim-time deadline that
//     propagates into batch formation (earliest-deadline-first order,
//     linger cut short when the most urgent request would otherwise
//     miss) and into post-service delivery (a late answer degrades to a
//     kDeadlineExceeded error, never a silently stale success).
//   * Fairness: a per-client token bucket. One zipfian-hot client runs
//     out of tokens and gets kThrottled frames; everyone else's requests
//     still reach the queue.
//   * Staleness: when the store has unrefreshed live appends the server
//     refreshes and retries (OracleConfig::auto_refresh semantics)
//     instead of dying — the recoverable half of the kStale status.
//
// Determinism contract: the session layer runs on a simulated clock
// (integer microseconds) and a single logical event loop. Service time
// is a deterministic model (batch_overhead_us + per_query_us × n), not
// wall time, so queue depths, shed counts and latency percentiles are
// byte-identical across machines and oracle thread counts — the soak
// test pins 1 vs 8 threads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "front/frame.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"

namespace shears::obs {
class Counter;
class Gauge;
class LatencyHistogram;
class MetricsRegistry;
}  // namespace shears::obs

namespace shears::front {

struct FrontConfig {
  /// Bounded admission queue; arrivals beyond this shed kOverloaded.
  std::size_t queue_capacity = 1024;
  /// Per-client token bucket: sustained requests/s (0 = unlimited) and
  /// burst capacity in requests.
  std::uint32_t client_rate_qps = 0;
  std::uint32_t client_burst = 32;
  /// Batch formation: size cap, and how long a batch may linger open
  /// after its first request before service starts (deadline pressure
  /// cuts the linger short).
  std::size_t max_batch = 256;
  SimTime batch_linger_us = 0;
  /// Deterministic service-time model: a batch of n queries occupies the
  /// executor for batch_overhead_us + n * per_query_us.
  SimTime batch_overhead_us = 100;
  SimTime per_query_us = 2;
  /// Deadline stamped on requests that carry none; 0 = none.
  SimTime default_deadline_us = 0;

  /// Throws std::invalid_argument on zero capacity/batch/per-query cost.
  void validate() const;
};

/// Deterministic front-end telemetry. Every field is a pure function of
/// (config, traffic), so reports compare equal across thread counts.
struct FrontStats {
  std::uint64_t frames_in = 0;       ///< well-formed frames received
  std::uint64_t decode_errors = 0;   ///< per-frame decode failures
  std::uint64_t bad_requests = 0;    ///< frames whose body failed to parse
  std::uint64_t requests = 0;        ///< decoded request bodies
  std::uint64_t admitted = 0;        ///< entered the queue
  std::uint64_t answered = 0;        ///< response frames emitted
  std::uint64_t shed_queue_full = 0; ///< kOverloaded: queue at capacity
  std::uint64_t shed_deadline = 0;   ///< kOverloaded: wait exceeds deadline
  std::uint64_t shed_throttled = 0;  ///< kThrottled: token bucket empty
  std::uint64_t expired_in_queue = 0;///< kDeadlineExceeded before service
  std::uint64_t expired_served = 0;  ///< kDeadlineExceeded after service
  std::uint64_t stale_refreshes = 0; ///< store refreshed mid-session
  std::uint64_t batches = 0;
  std::uint64_t max_queue_depth = 0;

  friend bool operator==(const FrontStats&, const FrontStats&) = default;
};

using ConnId = std::uint32_t;

class FrontServer {
 public:
  /// `oracle` answers the queries; `store` (nullable) is the mutable
  /// columnar store behind it, enabling refresh-then-retry on staleness.
  /// Both must outlive the server.
  FrontServer(const serve::Oracle* oracle, serve::ColumnarStore* store,
              FrontConfig config = {});

  /// Opens a connection for a client; the id feeds the fairness bucket.
  [[nodiscard]] ConnId connect(std::uint64_t client_id);

  /// Client→server bytes arriving at `now`. Frames are decoded
  /// incrementally; complete requests are admitted or shed immediately.
  /// `now` must not go backwards across calls.
  void submit(ConnId conn, std::span<const std::uint8_t> bytes, SimTime now);

  /// The decode+admit half of submit(), without the trailing
  /// run_until(now). The socket transport feeds each read(2) chunk
  /// through here and drives batch formation from its Clock instead, so
  /// the session layer's decisions depend on *when bytes arrived*, never
  /// on how TCP happened to segment them — the invariant behind the
  /// differential transport tests.
  void ingest(ConnId conn, std::span<const std::uint8_t> bytes, SimTime now);

  /// Runs every batch whose formation closes at or before `now`.
  void run_until(SimTime now);

  /// Earliest sim time at which the server has something to deliver or
  /// do: a pending output frame, or the close of the next batch.
  [[nodiscard]] std::optional<SimTime> next_activity() const;

  /// Server→client bytes whose simulated ready time has arrived.
  [[nodiscard]] std::vector<std::uint8_t> take_output(ConnId conn,
                                                      SimTime now);

  [[nodiscard]] const FrontStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] const FrontConfig& config() const noexcept { return config_; }

  /// True when nothing is queued, in flight, or waiting to be read —
  /// the post-overload "drained back to steady state" predicate.
  [[nodiscard]] bool drained() const noexcept;

  /// Publishes front.* counters / queue-depth gauge / service-latency
  /// histogram. Observational only; nullptr detaches.
  void attach_metrics(obs::MetricsRegistry* metrics);

 private:
  struct Pending {
    SimTime enqueue_us = 0;
    SimTime deadline_us = 0;  ///< 0 = none
    std::uint64_t seq = 0;    ///< admission order; the EDF tie-break
    ConnId conn = 0;
    Request request;
  };

  struct Output {
    SimTime ready_us = 0;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bytes;
  };

  struct TokenBucket {
    std::uint64_t micro_tokens = 0;  ///< tokens × 1e6, integer exact
    SimTime refilled_us = 0;
  };

  struct Conn {
    std::uint64_t client_id = 0;
    FrameDecoder decoder;
    std::vector<Output> outputs;
  };

  void admit(ConnId conn, Request&& request, SimTime now);
  /// True when the bucket has a token to spend at `now`.
  [[nodiscard]] bool take_token(std::uint64_t client_id, SimTime now);
  void emit_error(ConnId conn, std::uint64_t request_id, ErrorCode code,
                  SimTime ready);
  void push_output(ConnId conn, std::vector<std::uint8_t>&& bytes,
                   SimTime ready);
  /// Close time of the next batch given the queue head; nullopt when
  /// the queue is empty.
  [[nodiscard]] std::optional<SimTime> next_batch_close() const;
  void run_batch(SimTime close);
  void note_queue_depth();

  const serve::Oracle* oracle_;
  serve::ColumnarStore* store_;
  FrontConfig config_;
  std::vector<Conn> conns_;
  std::vector<Pending> queue_;  ///< arrival order; EDF-selected per batch
  std::vector<std::pair<std::uint64_t, TokenBucket>> buckets_;
  SimTime busy_until_ = 0;
  std::uint64_t seq_ = 0;         ///< admission sequence
  std::uint64_t out_seq_ = 0;     ///< output emission sequence
  FrontStats stats_;

  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* answered = nullptr;
    obs::Counter* shed_queue_full = nullptr;
    obs::Counter* shed_deadline = nullptr;
    obs::Counter* shed_throttled = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* decode_errors = nullptr;
    obs::Counter* stale_refreshes = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::LatencyHistogram* service_ms = nullptr;
  };
  Instruments instruments_{};
};

}  // namespace shears::front
