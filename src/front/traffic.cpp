#include "front/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "apps/application.hpp"
#include "obs/metrics.hpp"

namespace shears::front {

std::string_view to_string(ArrivalMode mode) noexcept {
  switch (mode) {
    case ArrivalMode::kOpen: return "open";
    case ArrivalMode::kClosed: return "closed";
  }
  return "unknown";
}

std::optional<ArrivalMode> arrival_from_string(std::string_view name) noexcept {
  if (name == "open") return ArrivalMode::kOpen;
  if (name == "closed") return ArrivalMode::kClosed;
  return std::nullopt;
}

void TrafficConfig::validate() const {
  if (clients == 0) {
    throw std::invalid_argument("TrafficConfig: clients must be > 0");
  }
  if (duration_us == 0) {
    throw std::invalid_argument("TrafficConfig: duration_us must be > 0");
  }
  if (arrival == ArrivalMode::kOpen && offered_qps == 0) {
    throw std::invalid_argument(
        "TrafficConfig: open arrivals need offered_qps > 0");
  }
  if (arrival == ArrivalMode::kClosed && think_time_us == 0) {
    throw std::invalid_argument(
        "TrafficConfig: closed arrivals need think_time_us > 0");
  }
  if (zipf_exponent < 0.0) {
    throw std::invalid_argument("TrafficConfig: zipf_exponent must be >= 0");
  }
  client.validate();
}

double percentile_ms(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  // Nearest-rank: the smallest value with at least q of the mass at or
  // below it — exact and unambiguous for SLO judgments.
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

namespace {

/// Zipf(s) sampler over [0, n): cumulative-weight table + binary search.
class ZipfPicker {
 public:
  ZipfPicker(std::size_t n, double exponent) {
    cumulative_.reserve(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cumulative_.push_back(total);
    }
  }

  [[nodiscard]] std::size_t pick(stats::Xoshiro256& rng) const {
    const double u = rng.next_double() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<std::size_t>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

struct Event {
  SimTime at = 0;
  std::uint64_t order = 0;  ///< push order; the deterministic tie-break
  enum class Kind : unsigned char { kSend, kRetry, kWake } kind = Kind::kSend;
  std::uint32_t client = 0;
  std::uint64_t corpus_index = 0;
  std::uint64_t request_id = 0;  ///< kRetry only
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.order > b.order;
  }
};

}  // namespace

std::vector<serve::Query> make_corpus(const atlas::ProbeFleet& fleet,
                                      std::size_t count) {
  const std::span<const atlas::Probe> probes = fleet.probes();
  const std::span<const apps::Application> catalog =
      apps::application_catalog();
  std::vector<serve::Query> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const atlas::Probe& probe = probes[(i * 131) % probes.size()];
    serve::Query q;
    q.kind = static_cast<serve::QueryKind>(i % 3);
    q.where = probe.endpoint.location;
    if (i % 2 == 0) q.country_iso2 = probe.country->iso2;
    q.any_access = (i % 5) != 0;
    q.access = probe.endpoint.access;
    if (q.kind == serve::QueryKind::kFeasibility) {
      q.app_id = catalog[i % catalog.size()].id;
    }
    if (q.kind == serve::QueryKind::kTopK) {
      q.budget_ms = 20.0 + static_cast<double>(i % 7) * 40.0;
      q.k = static_cast<std::uint32_t>(1 + i % 8);
    }
    corpus.push_back(q);
  }
  return corpus;
}

TrafficReport run_traffic(FrontServer& server,
                          std::span<const serve::Query> corpus,
                          const TrafficConfig& config,
                          obs::MetricsRegistry* metrics) {
  config.validate();
  if (corpus.empty()) {
    throw std::invalid_argument("run_traffic: corpus must be non-empty");
  }

  // Independent deterministic streams: arrival process, query skew,
  // per-client start phases; client jitter forks off the same seed.
  stats::Xoshiro256 session(config.seed);
  stats::Xoshiro256 arrivals = session.fork(0xA221);
  stats::Xoshiro256 skew = session.fork(0x21BF);
  const ZipfPicker zipf(corpus.size(), config.zipf_exponent);

  std::vector<FrontClient> clients;
  std::vector<ConnId> conns;
  clients.reserve(config.clients);
  conns.reserve(config.clients);
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    clients.emplace_back(c, config.client, config.seed);
    conns.push_back(server.connect(c));
  }

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t order = 0;
  const auto push = [&events, &order](Event e) {
    e.order = order++;
    events.push(e);
  };

  std::uint64_t offered = 0;
  if (config.arrival == ArrivalMode::kOpen) {
    // The whole Poisson arrival schedule is drawn up front: it does not
    // depend on completions, which is the point of an open system.
    const double rate =
        static_cast<double>(config.offered_qps) / 1e6;  // per µs
    double t = 0.0;
    while (true) {
      t += -std::log1p(-arrivals.next_double()) / rate;
      const auto at = static_cast<SimTime>(t);
      if (at >= config.duration_us) break;
      push(Event{at, 0, Event::Kind::kSend,
                 static_cast<std::uint32_t>(
                     arrivals.bounded(config.clients)),
                 zipf.pick(skew), 0});
    }
  } else {
    // Closed: one outstanding request per client, first issues spread
    // over a think-time phase so clients do not start in lockstep.
    for (std::uint32_t c = 0; c < config.clients; ++c) {
      push(Event{arrivals.bounded(config.think_time_us), 0,
                 Event::Kind::kSend, c, zipf.pick(skew), 0});
    }
  }

  // The event loop: interleave client sends with server activity
  // (batch completions, pending output) in strict sim-time order.
  const auto deliver = [&](SimTime now) {
    for (std::uint32_t c = 0; c < config.clients; ++c) {
      const std::vector<std::uint8_t> bytes =
          server.take_output(conns[c], now);
      if (bytes.empty()) continue;
      for (const FrontClient::Outcome& outcome :
           clients[c].on_bytes(bytes, now)) {
        using Kind = FrontClient::Outcome::Kind;
        if (outcome.kind == Kind::kRetry) {
          push(Event{outcome.retry_at, 0, Event::Kind::kRetry, c,
                     outcome.corpus_index, outcome.request_id});
        } else if (config.arrival == ArrivalMode::kClosed &&
                   now + config.think_time_us < config.duration_us) {
          push(Event{now + config.think_time_us, 0, Event::Kind::kSend, c,
                     zipf.pick(skew), 0});
        }
      }
    }
  };

  SimTime now = 0;
  while (true) {
    const std::optional<SimTime> server_at = server.next_activity();
    if (events.empty() && !server_at.has_value()) break;
    if (server_at.has_value() &&
        (events.empty() || *server_at <= events.top().at)) {
      now = std::max(now, *server_at);
      server.run_until(now);
      deliver(now);
      continue;
    }
    const Event e = events.top();
    events.pop();
    now = std::max(now, e.at);
    server.run_until(now);
    const std::uint32_t c = e.client;
    if (e.kind == Event::Kind::kSend) {
      offered += 1;
      const serve::Query& q = corpus[e.corpus_index];
      server.submit(conns[c], clients[c].make_request(q, e.corpus_index, now),
                    now);
    } else if (e.kind == Event::Kind::kRetry) {
      FrontClient::Outcome outcome;
      outcome.request_id = e.request_id;
      outcome.corpus_index = e.corpus_index;
      server.submit(conns[c],
                    clients[c].make_retry(outcome, corpus[e.corpus_index],
                                          now),
                    now);
    }
    deliver(now);
  }

  TrafficReport report;
  report.offered = offered;
  report.server = server.stats();
  std::vector<double> latencies;
  for (const FrontClient& client : clients) {
    const ClientStats& s = client.stats();
    report.sent += s.sent;
    report.completed += s.completed;
    report.failed += s.failed;
    report.retries += s.retries;
    latencies.insert(latencies.end(), client.latencies_ms().begin(),
                     client.latencies_ms().end());
  }
  report.p50_ms = percentile_ms(latencies, 0.50);
  report.p95_ms = percentile_ms(latencies, 0.95);
  report.p99_ms = percentile_ms(latencies, 0.99);
  report.qps = static_cast<double>(report.completed) /
               (static_cast<double>(config.duration_us) / 1e6);
  report.slo_ms = config.slo_ms;
  report.slo_met = report.completed > 0 && report.p99_ms <= config.slo_ms;
  report.drained = server.drained();

  if (metrics != nullptr) {
    metrics->counter("front.traffic.offered").add(report.offered);
    metrics->counter("front.traffic.completed").add(report.completed);
    metrics->counter("front.traffic.failed").add(report.failed);
    metrics->counter("front.traffic.retries").add(report.retries);
    metrics->gauge("front.traffic.p50_ms").set(report.p50_ms);
    metrics->gauge("front.traffic.p95_ms").set(report.p95_ms);
    metrics->gauge("front.traffic.p99_ms").set(report.p99_ms);
    metrics->gauge("front.traffic.qps").set(report.qps);
    metrics->gauge("front.traffic.slo_met").set(report.slo_met ? 1.0 : 0.0);
  }
  return report;
}

}  // namespace shears::front
