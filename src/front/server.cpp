#include "front/server.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace shears::front {

namespace {

constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

/// Effective deadline key: 0 (none) sorts last.
constexpr SimTime deadline_key(SimTime deadline_us) noexcept {
  return deadline_us == 0 ? kNoDeadline : deadline_us;
}

constexpr std::uint64_t kMicro = 1'000'000;

}  // namespace

void FrontConfig::validate() const {
  if (queue_capacity == 0) {
    throw std::invalid_argument("FrontConfig: queue_capacity must be > 0");
  }
  if (max_batch == 0) {
    throw std::invalid_argument("FrontConfig: max_batch must be > 0");
  }
  if (per_query_us == 0) {
    throw std::invalid_argument("FrontConfig: per_query_us must be > 0");
  }
}

FrontServer::FrontServer(const serve::Oracle* oracle,
                         serve::ColumnarStore* store, FrontConfig config)
    : oracle_(oracle), store_(store), config_(config) {
  config_.validate();
}

ConnId FrontServer::connect(std::uint64_t client_id) {
  conns_.push_back(Conn{client_id, {}, {}});
  return static_cast<ConnId>(conns_.size() - 1);
}

bool FrontServer::take_token(std::uint64_t client_id, SimTime now) {
  if (config_.client_rate_qps == 0) return true;
  auto it = std::find_if(
      buckets_.begin(), buckets_.end(),
      [client_id](const auto& b) { return b.first == client_id; });
  if (it == buckets_.end()) {
    buckets_.emplace_back(
        client_id,
        TokenBucket{std::uint64_t{config_.client_burst} * kMicro, now});
    it = buckets_.end() - 1;
  }
  TokenBucket& bucket = it->second;
  // Integer refill: elapsed_us × rate = tokens × 1e6 exactly.
  const std::uint64_t cap = std::uint64_t{config_.client_burst} * kMicro;
  bucket.micro_tokens = std::min(
      cap, bucket.micro_tokens + (now - bucket.refilled_us) *
                                     config_.client_rate_qps);
  bucket.refilled_us = now;
  if (bucket.micro_tokens < kMicro) return false;
  bucket.micro_tokens -= kMicro;
  return true;
}

void FrontServer::push_output(ConnId conn, std::vector<std::uint8_t>&& bytes,
                              SimTime ready) {
  conns_[conn].outputs.push_back(Output{ready, out_seq_++, std::move(bytes)});
}

void FrontServer::emit_error(ConnId conn, std::uint64_t request_id,
                             ErrorCode code, SimTime ready) {
  std::vector<std::uint8_t> bytes;
  append_error_frame(bytes, Error{request_id, code, std::string()});
  push_output(conn, std::move(bytes), ready);
}

void FrontServer::note_queue_depth() {
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth,
               static_cast<std::uint64_t>(queue_.size()));
  if (instruments_.queue_depth != nullptr) {
    instruments_.queue_depth->set(static_cast<double>(queue_.size()));
  }
}

void FrontServer::admit(ConnId conn, Request&& request, SimTime now) {
  stats_.requests += 1;
  if (instruments_.requests != nullptr) instruments_.requests->increment();

  SimTime deadline = request.deadline_us;
  if (deadline == 0 && config_.default_deadline_us != 0) {
    deadline = now + config_.default_deadline_us;
  }

  // Fairness first: a hot client burns its own tokens, not queue slots.
  if (!take_token(conns_[conn].client_id, now)) {
    stats_.shed_throttled += 1;
    if (instruments_.shed_throttled != nullptr) {
      instruments_.shed_throttled->increment();
    }
    emit_error(conn, request.request_id, ErrorCode::kThrottled, now);
    return;
  }

  if (queue_.size() >= config_.queue_capacity) {
    stats_.shed_queue_full += 1;
    if (instruments_.shed_queue_full != nullptr) {
      instruments_.shed_queue_full->increment();
    }
    emit_error(conn, request.request_id, ErrorCode::kOverloaded, now);
    return;
  }

  // Deadline-aware drop: if the backlog alone already pushes completion
  // past the deadline, shedding now is strictly better than queueing —
  // the request would only occupy a slot and then expire.
  if (deadline != 0) {
    const SimTime backlog = busy_until_ > now ? busy_until_ - now : 0;
    const SimTime wait_estimate =
        backlog + config_.batch_overhead_us +
        (static_cast<SimTime>(queue_.size()) + 1) * config_.per_query_us;
    if (now + wait_estimate > deadline) {
      stats_.shed_deadline += 1;
      if (instruments_.shed_deadline != nullptr) {
        instruments_.shed_deadline->increment();
      }
      emit_error(conn, request.request_id, ErrorCode::kOverloaded, now);
      return;
    }
  }

  stats_.admitted += 1;
  if (instruments_.admitted != nullptr) instruments_.admitted->increment();
  queue_.push_back(Pending{now, deadline, seq_++, conn, std::move(request)});
  note_queue_depth();
}

void FrontServer::submit(ConnId conn, std::span<const std::uint8_t> bytes,
                         SimTime now) {
  ingest(conn, bytes, now);
  // Batches whose close time this submission reached (or created).
  run_until(now);
}

void FrontServer::ingest(ConnId conn, std::span<const std::uint8_t> bytes,
                         SimTime now) {
  Conn& c = conns_[conn];
  c.decoder.feed(bytes);
  while (true) {
    FrameDecoder::Item item = c.decoder.next();
    if (item.status == DecodeStatus::kNeedMore) break;
    if (item.status != DecodeStatus::kFrame) {
      stats_.decode_errors += 1;
      if (instruments_.decode_errors != nullptr) {
        instruments_.decode_errors->increment();
      }
      continue;  // damage is confined to one frame; keep decoding
    }
    stats_.frames_in += 1;
    if (item.type != FrameType::kRequest) {
      // Clients must not send response/error frames; reject per frame.
      stats_.bad_requests += 1;
      emit_error(conn, 0, ErrorCode::kBadRequest, now);
      continue;
    }
    Request request;
    if (!decode_request(item.payload, request)) {
      stats_.bad_requests += 1;
      emit_error(conn, 0, ErrorCode::kBadRequest, now);
      continue;
    }
    admit(conn, std::move(request), now);
  }
}

std::optional<SimTime> FrontServer::next_batch_close() const {
  if (queue_.empty()) return std::nullopt;
  // Arrival order makes the front the earliest-enqueued request.
  const SimTime first_arrival = queue_.front().enqueue_us;
  SimTime close = std::max(busy_until_, first_arrival);
  if (config_.batch_linger_us != 0) {
    SimTime linger_close =
        std::max(close, first_arrival + config_.batch_linger_us);
    // Deadline propagation: lingering must not cost the most urgent
    // queued request its deadline.
    SimTime urgent = kNoDeadline;
    for (const Pending& p : queue_) {
      urgent = std::min(urgent, deadline_key(p.deadline_us));
    }
    if (urgent != kNoDeadline) {
      const SimTime service_estimate =
          config_.batch_overhead_us +
          std::min<SimTime>(queue_.size(), config_.max_batch) *
              config_.per_query_us;
      const SimTime latest_start =
          urgent > service_estimate ? urgent - service_estimate : close;
      linger_close = std::clamp(latest_start, close, linger_close);
    }
    close = linger_close;
  }
  return close;
}

void FrontServer::run_batch(SimTime close) {
  // Requests already past their deadline at the close expire without
  // costing oracle compute or a batch slot. Sweeping them *before*
  // selection matters under sustained overload: left in place they
  // anchor the EDF order and turn into overhead-only batches.
  {
    std::vector<Pending> alive;
    alive.reserve(queue_.size());
    for (Pending& p : queue_) {
      if (p.deadline_us != 0 && p.deadline_us <= close) {
        stats_.expired_in_queue += 1;
        if (instruments_.expired != nullptr) instruments_.expired->increment();
        emit_error(p.conn, p.request.request_id, ErrorCode::kDeadlineExceeded,
                   close);
      } else {
        alive.push_back(std::move(p));
      }
    }
    queue_ = std::move(alive);
  }

  // EDF selection among requests that had arrived by the close.
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].enqueue_us <= close) eligible.push_back(i);
  }
  if (eligible.empty()) {
    // The whole backlog either expired or arrived after this close; no
    // batch forms and the clock does not advance.
    note_queue_depth();
    return;
  }
  std::sort(eligible.begin(), eligible.end(),
            [this](std::size_t a, std::size_t b) {
              const SimTime da = deadline_key(queue_[a].deadline_us);
              const SimTime db = deadline_key(queue_[b].deadline_us);
              if (da != db) return da < db;
              return queue_[a].seq < queue_[b].seq;
            });
  // Deadline-aware dequeue: every query added stretches the whole
  // batch's service time, so growing past what the most urgent member
  // can bear trades its deadline for batching efficiency — the convoy
  // that turns admitted requests into expiries under sustained
  // overload. EDF order makes the front the binding constraint: a
  // front that cannot complete even in a batch of one is hopeless, and
  // serving it would burn a full service slot to still miss — it is
  // dropped here, free of oracle compute (the dequeue-side mirror of
  // the admission-side deadline shed; mis-estimates slip through to
  // the expired_served backstop at completion). The first viable front
  // then bounds the batch: the longest EDF prefix whose completion
  // still meets its deadline (the trimmed tail stays queued).
  std::size_t start = 0;
  std::size_t fit = eligible.size();
  if (config_.per_query_us > 0) {
    while (start < eligible.size()) {
      const SimTime tightest =
          deadline_key(queue_[eligible[start]].deadline_us);
      if (tightest == kNoDeadline) {
        fit = eligible.size() - start;  // nothing binding remains
        break;
      }
      const SimTime head = close + config_.batch_overhead_us;
      const SimTime budget = tightest > head ? tightest - head : 0;
      fit = static_cast<std::size_t>(budget / config_.per_query_us);
      if (fit > 0) break;
      start += 1;  // hopeless front: expired below, without compute
    }
  }
  std::vector<bool> taken(queue_.size(), false);
  std::vector<bool> hopeless(queue_.size(), false);
  for (std::size_t i = 0; i < start; ++i) hopeless[eligible[i]] = true;
  const std::size_t width =
      std::min({fit, config_.max_batch, eligible.size() - start});
  for (std::size_t i = start; i < start + width; ++i) {
    taken[eligible[i]] = true;
  }

  std::vector<Pending> batch;
  batch.reserve(width);
  std::vector<Pending> rest;
  rest.reserve(queue_.size() - width);
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (hopeless[i]) {
      stats_.expired_in_queue += 1;
      if (instruments_.expired != nullptr) instruments_.expired->increment();
      emit_error(queue_[i].conn, queue_[i].request.request_id,
                 ErrorCode::kDeadlineExceeded, close);
    } else {
      (taken[i] ? batch : rest).push_back(std::move(queue_[i]));
    }
  }
  queue_ = std::move(rest);
  if (batch.empty()) {
    // Every eligible request was hopeless; no service slot is spent.
    note_queue_depth();
    return;
  }

  // The sweeps above guarantee every batch member can still make its
  // deadline at the close.
  std::vector<const Pending*> live;
  live.reserve(batch.size());
  for (const Pending& p : batch) live.push_back(&p);

  stats_.batches += 1;
  const SimTime service_us =
      config_.batch_overhead_us +
      static_cast<SimTime>(live.size()) * config_.per_query_us;
  const SimTime completion = close + service_us;
  busy_until_ = completion;
  note_queue_depth();

  std::vector<serve::Query> queries;
  queries.reserve(live.size());
  for (const Pending* p : live) queries.push_back(p->request.query());
  std::vector<serve::Answer> answers(queries.size());
  serve::BatchStatus status = oracle_->try_answer(queries, answers);
  if (status == serve::BatchStatus::kStale && store_ != nullptr) {
    // Live appends landed since the last batch: refresh-then-retry
    // instead of dying (the recoverable kStale path).
    store_->refresh();
    stats_.stale_refreshes += 1;
    if (instruments_.stale_refreshes != nullptr) {
      instruments_.stale_refreshes->increment();
    }
    status = oracle_->try_answer(queries, answers);
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    const Pending& p = *live[i];
    if (status == serve::BatchStatus::kStale) {
      emit_error(p.conn, p.request.request_id, ErrorCode::kStale, completion);
      continue;
    }
    if (p.deadline_us != 0 && completion > p.deadline_us) {
      stats_.expired_served += 1;
      if (instruments_.expired != nullptr) instruments_.expired->increment();
      emit_error(p.conn, p.request.request_id, ErrorCode::kDeadlineExceeded,
                 completion);
      continue;
    }
    stats_.answered += 1;
    if (instruments_.answered != nullptr) instruments_.answered->increment();
    if (instruments_.service_ms != nullptr) {
      instruments_.service_ms->record(
          static_cast<double>(completion - p.enqueue_us) / 1000.0);
    }
    std::vector<std::uint8_t> bytes;
    append_response_frame(
        bytes, make_response(p.request.request_id, answers[i],
                             oracle_->store().registry()));
    push_output(p.conn, std::move(bytes), completion);
  }
}

void FrontServer::run_until(SimTime now) {
  while (true) {
    const std::optional<SimTime> close = next_batch_close();
    if (!close.has_value() || *close > now) break;
    run_batch(*close);
  }
}

std::optional<SimTime> FrontServer::next_activity() const {
  std::optional<SimTime> at;
  const auto consider = [&at](SimTime t) {
    if (!at.has_value() || t < *at) at = t;
  };
  if (const auto close = next_batch_close(); close.has_value()) {
    consider(*close);
  }
  for (const Conn& c : conns_) {
    for (const Output& o : c.outputs) consider(o.ready_us);
  }
  return at;
}

std::vector<std::uint8_t> FrontServer::take_output(ConnId conn, SimTime now) {
  Conn& c = conns_[conn];
  std::vector<Output*> ready;
  for (Output& o : c.outputs) {
    if (o.ready_us <= now) ready.push_back(&o);
  }
  if (ready.empty()) return {};
  // Delivery order is (simulated ready time, emission order) — stable
  // regardless of internal emission interleaving.
  std::sort(ready.begin(), ready.end(), [](const Output* a, const Output* b) {
    if (a->ready_us != b->ready_us) return a->ready_us < b->ready_us;
    return a->seq < b->seq;
  });
  std::vector<std::uint8_t> bytes;
  for (Output* o : ready) {
    bytes.insert(bytes.end(), o->bytes.begin(), o->bytes.end());
    o->bytes.clear();  // mark delivered
  }
  std::erase_if(c.outputs, [](const Output& o) { return o.bytes.empty(); });
  return bytes;
}

bool FrontServer::drained() const noexcept {
  if (!queue_.empty()) return false;
  for (const Conn& c : conns_) {
    if (!c.outputs.empty()) return false;
  }
  return true;
}

void FrontServer::attach_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    instruments_ = Instruments{};
    return;
  }
  instruments_.requests = &metrics->counter("front.requests");
  instruments_.admitted = &metrics->counter("front.admitted");
  instruments_.answered = &metrics->counter("front.answered");
  instruments_.shed_queue_full = &metrics->counter("front.shed.queue_full");
  instruments_.shed_deadline = &metrics->counter("front.shed.deadline");
  instruments_.shed_throttled = &metrics->counter("front.shed.throttled");
  instruments_.expired = &metrics->counter("front.expired");
  instruments_.decode_errors = &metrics->counter("front.decode_errors");
  instruments_.stale_refreshes = &metrics->counter("front.stale_refreshes");
  instruments_.queue_depth = &metrics->gauge("front.queue_depth");
  instruments_.service_ms = &metrics->histogram("front.service_ms");
}

}  // namespace shears::front
