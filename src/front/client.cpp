#include "front/client.hpp"

#include <algorithm>
#include <stdexcept>

namespace shears::front {

void ClientConfig::validate() const {
  if (max_retries < 0) {
    throw std::invalid_argument("ClientConfig: max_retries must be >= 0");
  }
  if (backoff_base_us == 0 || backoff_cap_us == 0) {
    throw std::invalid_argument(
        "ClientConfig: backoff base and cap must be > 0");
  }
  if (jitter_fraction < 0.0 || jitter_fraction >= 1.0) {
    throw std::invalid_argument(
        "ClientConfig: jitter_fraction must be in [0, 1)");
  }
}

FrontClient::FrontClient(std::uint64_t client_id, ClientConfig config,
                         std::uint64_t session_seed)
    : client_id_(client_id),
      config_(config),
      rng_(stats::Xoshiro256(session_seed).fork(client_id)) {
  config_.validate();
}

SimTime FrontClient::backoff_us(int attempt) {
  // Capped exponential: base × 2^(attempt-1), the campaign retry curve.
  SimTime wait = config_.backoff_base_us;
  for (int i = 1; i < attempt && wait < config_.backoff_cap_us; ++i) {
    wait *= 2;
  }
  wait = std::min(wait, config_.backoff_cap_us);
  if (config_.jitter_fraction > 0.0) {
    const double scale = rng_.uniform(1.0 - config_.jitter_fraction,
                                      1.0 + config_.jitter_fraction);
    wait = static_cast<SimTime>(static_cast<double>(wait) * scale);
    if (wait == 0) wait = 1;
  }
  return wait;
}

std::vector<std::uint8_t> FrontClient::frame_attempt(
    const serve::Query& query, const PendingRequest& pending, SimTime now) {
  Request req;
  req.request_id = pending.request_id;
  req.client_id = client_id_;
  req.deadline_us = config_.deadline_us == 0 ? 0 : now + config_.deadline_us;
  req.kind = query.kind;
  req.lat_deg = query.where.lat_deg;
  req.lon_deg = query.where.lon_deg;
  req.country_iso2 = std::string(query.country_iso2);
  req.access = query.access;
  req.any_access = query.any_access;
  req.app_id = std::string(query.app_id);
  req.budget_ms = query.budget_ms;
  req.k = query.k;
  std::vector<std::uint8_t> bytes;
  append_request_frame(bytes, req);
  stats_.sent += 1;
  return bytes;
}

std::vector<std::uint8_t> FrontClient::make_request(
    const serve::Query& query, std::uint64_t corpus_index, SimTime now) {
  PendingRequest pending;
  pending.request_id = (client_id_ << 32) | next_request_++;
  pending.corpus_index = corpus_index;
  pending.first_issue_us = now;
  pending.attempt = 1;
  std::vector<std::uint8_t> bytes = frame_attempt(query, pending, now);
  pending_.push_back(pending);
  return bytes;
}

std::vector<std::uint8_t> FrontClient::make_retry(const Outcome& outcome,
                                                  const serve::Query& query,
                                                  SimTime now) {
  const auto it = std::find_if(pending_.begin(), pending_.end(),
                               [&outcome](const PendingRequest& p) {
                                 return p.request_id == outcome.request_id;
                               });
  if (it == pending_.end()) {
    throw std::logic_error("FrontClient::make_retry: unknown request id");
  }
  return frame_attempt(query, *it, now);
}

std::vector<FrontClient::Outcome> FrontClient::on_bytes(
    std::span<const std::uint8_t> bytes, SimTime now) {
  std::vector<Outcome> outcomes;
  FrameDecoder decoder;
  decoder.feed(bytes);
  while (true) {
    const FrameDecoder::Item item = decoder.next();
    if (item.status == DecodeStatus::kNeedMore) break;
    if (item.status != DecodeStatus::kFrame) continue;

    std::uint64_t request_id = 0;
    bool completed = false;
    double latency_ms = 0.0;
    ErrorCode code = ErrorCode::kBadRequest;
    if (item.type == FrameType::kResponse) {
      Response res;
      if (!decode_response(item.payload, res)) continue;
      request_id = res.request_id;
      completed = true;
    } else if (item.type == FrameType::kError) {
      Error err;
      if (!decode_error(item.payload, err)) continue;
      request_id = err.request_id;
      code = err.code;
    } else {
      continue;  // servers do not send requests
    }

    const auto it = std::find_if(pending_.begin(), pending_.end(),
                                 [request_id](const PendingRequest& p) {
                                   return p.request_id == request_id;
                                 });
    if (it == pending_.end()) continue;  // duplicate or unsolicited

    Outcome outcome;
    outcome.request_id = request_id;
    outcome.corpus_index = it->corpus_index;
    if (completed) {
      latency_ms = static_cast<double>(now - it->first_issue_us) / 1000.0;
      outcome.kind = Outcome::Kind::kCompleted;
      outcome.latency_ms = latency_ms;
      stats_.completed += 1;
      latencies_ms_.push_back(latency_ms);
      pending_.erase(it);
    } else {
      switch (code) {
        case ErrorCode::kOverloaded: stats_.errors_overloaded += 1; break;
        case ErrorCode::kThrottled: stats_.errors_throttled += 1; break;
        case ErrorCode::kDeadlineExceeded: stats_.errors_deadline += 1; break;
        case ErrorCode::kStale: stats_.errors_stale += 1; break;
        case ErrorCode::kBadRequest: stats_.errors_bad_request += 1; break;
      }
      if (retryable(code) && it->attempt <= config_.max_retries) {
        outcome.kind = Outcome::Kind::kRetry;
        outcome.retry_at = now + backoff_us(it->attempt);
        it->attempt += 1;
        stats_.retries += 1;
      } else {
        outcome.kind = Outcome::Kind::kFailed;
        stats_.failed += 1;
        pending_.erase(it);
      }
    }
    outcomes.push_back(outcome);
  }
  return outcomes;
}

}  // namespace shears::front
