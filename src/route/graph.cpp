#include "route/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace shears::route {

namespace detail {
std::span<const TransportNode> nodes();
std::vector<std::pair<std::uint16_t, std::uint16_t>> cable_indices();
}  // namespace detail

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

TransportGraph::TransportGraph(Options options) : options_(options) {
  const auto nodes = detail::nodes();
  adjacency_.resize(nodes.size());

  // Submarine cables: explicit edges.
  for (const auto& [a, b] : detail::cable_indices()) {
    if (a == 0xFFFF || b == 0xFFFF) {
      throw std::logic_error("cable references unknown node");
    }
    TransportLink link;
    link.a = a;
    link.b = b;
    link.submarine = true;
    link.length_km = geo::haversine_km(nodes[a].location, nodes[b].location) *
                     options_.submarine_detour;
    links_.push_back(link);
  }

  // Terrestrial mesh: every same-continent pair within reach.
  for (std::uint16_t i = 0; i < nodes.size(); ++i) {
    for (std::uint16_t j = static_cast<std::uint16_t>(i + 1); j < nodes.size();
         ++j) {
      if (nodes[i].continent != nodes[j].continent) continue;
      const double d = geo::haversine_km(nodes[i].location, nodes[j].location);
      if (d > options_.terrestrial_reach_km) continue;
      TransportLink link;
      link.a = i;
      link.b = j;
      link.submarine = false;
      link.length_km = d * options_.terrestrial_detour;
      links_.push_back(link);
    }
  }

  for (const TransportLink& link : links_) {
    adjacency_[link.a].emplace_back(link.b, link.length_km);
    adjacency_[link.b].emplace_back(link.a, link.length_km);
  }
}

const TransportGraph& TransportGraph::instance() {
  static const TransportGraph graph{Options{}};
  return graph;
}

std::span<const TransportNode> TransportGraph::nodes() const noexcept {
  return detail::nodes();
}

std::optional<std::uint16_t> TransportGraph::nearest_node(
    const geo::GeoPoint& point, std::optional<geo::Continent> continent) const {
  const auto all = nodes();
  std::optional<std::uint16_t> best;
  double best_d = kInf;
  for (std::uint16_t i = 0; i < all.size(); ++i) {
    if (continent && all[i].continent != *continent) continue;
    const double d = geo::haversine_km(point, all[i].location);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

double TransportGraph::shortest_km(std::uint16_t from, std::uint16_t to) const {
  if (from == to) return 0.0;
  // Dijkstra; the graph is tiny (~75 nodes), no need for anything fancier.
  std::vector<double> dist(adjacency_.size(), kInf);
  using Entry = std::pair<double, std::uint16_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[from] = 0.0;
  queue.emplace(0.0, from);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == to) return d;
    for (const auto& [v, w] : adjacency_[u]) {
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        queue.emplace(dist[v], v);
      }
    }
  }
  return dist[to];
}

std::vector<std::uint16_t> TransportGraph::shortest_path(
    std::uint16_t from, std::uint16_t to) const {
  std::vector<double> dist(adjacency_.size(), kInf);
  std::vector<std::uint16_t> prev(adjacency_.size(), 0xFFFF);
  using Entry = std::pair<double, std::uint16_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  dist[from] = 0.0;
  queue.emplace(0.0, from);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : adjacency_[u]) {
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        prev[v] = u;
        queue.emplace(dist[v], v);
      }
    }
  }
  std::vector<std::uint16_t> path;
  if (dist[to] == kInf) return path;
  for (std::uint16_t at = to; at != 0xFFFF; at = prev[at]) {
    path.push_back(at);
    if (at == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double TransportGraph::routed_km(const geo::GeoPoint& src,
                                 const geo::GeoPoint& dst) const {
  const double geodesic = geo::haversine_km(src, dst);
  const auto a = nearest_node(src);
  const auto b = nearest_node(dst);
  if (!a || !b) return geodesic;
  const auto all = nodes();
  const double tail_src =
      geo::haversine_km(src, all[*a].location) * options_.terrestrial_detour;
  const double tail_dst =
      geo::haversine_km(dst, all[*b].location) * options_.terrestrial_detour;
  const double via_graph = tail_src + shortest_km(*a, *b) + tail_dst;
  // A routed path can never beat the geodesic; and if the graph offers no
  // sane route (disconnected), fall back to a heavily detoured geodesic.
  if (via_graph == kInf) return geodesic * 2.0;
  return std::max(geodesic, via_graph);
}

}  // namespace shears::route
