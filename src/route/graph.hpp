// The routed-path engine: an explicit model of the Internet's physical
// transport fabric — major exchange points and the submarine-cable map
// the paper cites ([68]) — with shortest-path routing over it.
//
// The default latency model abstracts routing as a tier-dependent
// geodesic stretch. This module makes the abstraction checkable and
// replaceable: Dijkstra over real exchange/cable geography yields a
// routed distance per (vantage, datacenter) pair, which can (a) validate
// the stretch model (ablation A6) and (b) drive campaigns directly via
// LatencyModel's path override.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "geo/continent.hpp"
#include "geo/coordinates.hpp"

namespace shears::route {

enum class NodeType : unsigned char {
  kExchangePoint = 0,  ///< a metro IXP / carrier hotel
  kCableLanding,       ///< a submarine-cable landing station
};

struct TransportNode {
  std::string_view id;    ///< short slug, e.g. "fra" or "mrs-landing"
  std::string_view name;
  NodeType type;
  geo::Continent continent;
  geo::GeoPoint location;
};

/// A physical link between two nodes. Submarine edges carry their cable
/// route length; terrestrial edges are generated between nearby nodes.
struct TransportLink {
  std::uint16_t a = 0;  ///< node indices
  std::uint16_t b = 0;
  double length_km = 0.0;
  bool submarine = false;
};

/// The embedded node registry (~70 exchange points and landings).
[[nodiscard]] std::span<const TransportNode> transport_nodes() noexcept;

/// Lookup by slug; nullptr when absent.
[[nodiscard]] const TransportNode* find_node(std::string_view id) noexcept;

/// The transport graph: embedded submarine cables plus generated
/// terrestrial links (each node connects to its nearby same-continent
/// neighbours with a routing-inefficiency factor applied).
class TransportGraph {
 public:
  struct Options {
    /// Terrestrial links connect node pairs within this geodesic range.
    double terrestrial_reach_km = 3500.0;
    /// Terrestrial fibre follows roads/rails, not great circles.
    double terrestrial_detour = 1.25;
    /// Submarine cables follow sea routes; slack vs geodesic.
    double submarine_detour = 1.15;
  };

  /// Builds the default graph (nodes + cables embedded, terrestrial links
  /// generated). Deterministic.
  static const TransportGraph& instance();

  explicit TransportGraph(Options options);

  [[nodiscard]] std::span<const TransportNode> nodes() const noexcept;
  [[nodiscard]] const std::vector<TransportLink>& links() const noexcept {
    return links_;
  }

  /// Index of the node nearest to a point (optionally restricted to a
  /// continent); nullopt if the restriction empties the candidate set.
  [[nodiscard]] std::optional<std::uint16_t> nearest_node(
      const geo::GeoPoint& point,
      std::optional<geo::Continent> continent = std::nullopt) const;

  /// Shortest on-graph distance between two nodes (km); +inf when
  /// disconnected.
  [[nodiscard]] double shortest_km(std::uint16_t from, std::uint16_t to) const;

  /// End-to-end routed distance between arbitrary points: haul from each
  /// endpoint to its nearest node (with the terrestrial detour), plus the
  /// on-graph shortest path. Never reported below the geodesic.
  [[nodiscard]] double routed_km(const geo::GeoPoint& src,
                                 const geo::GeoPoint& dst) const;

  /// The node sequence of the shortest path (for display/tests).
  [[nodiscard]] std::vector<std::uint16_t> shortest_path(
      std::uint16_t from, std::uint16_t to) const;

 private:
  Options options_;
  std::vector<TransportLink> links_;
  std::vector<std::vector<std::pair<std::uint16_t, double>>> adjacency_;
};

}  // namespace shears::route
