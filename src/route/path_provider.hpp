// Adapter: drive the latency model's path with the transport graph.
#pragma once

#include "net/access.hpp"
#include "net/path.hpp"
#include "route/graph.hpp"

namespace shears::route {

/// net::PathProvider backed by the explicit exchange/cable graph.
/// Distances route over the fabric; tier and backbone are applied as
/// multiplicative corrections on top:
///   * national-infrastructure tier inflates the domestic haul (poor
///     national backbones do not reach the exchange point directly);
///   * private provider backbones shave a little distance (traffic leaves
///     the public fabric at the provider's nearest PoP).
struct GraphProviderOptions {
  /// Fraction of the tier latency multiplier applied to the routed
  /// distance (0 = ignore tier, 1 = full multiplier).
  double tier_weight = 0.35;
  /// Distance factor for private-backbone destinations.
  double private_backbone_factor = 0.93;
};

class GraphPathProvider final : public net::PathProvider {
 public:
  using Options = GraphProviderOptions;

  explicit GraphPathProvider(const TransportGraph& graph,
                             Options options = {}) noexcept
      : graph_(&graph), options_(options) {}

  [[nodiscard]] double routed_km(
      const geo::GeoPoint& src, geo::ConnectivityTier src_tier,
      const geo::GeoPoint& dst,
      topology::BackboneClass backbone) const override {
    double km = graph_->routed_km(src, dst);
    const double tier_mult = net::tier_latency_multiplier(src_tier);
    km *= 1.0 + (tier_mult - 1.0) * options_.tier_weight;
    if (backbone == topology::BackboneClass::kPrivate) {
      km *= options_.private_backbone_factor;
    }
    return km;
  }

 private:
  const TransportGraph* graph_;
  Options options_;
};

}  // namespace shears::route
