#include "route/steering.hpp"

#include <algorithm>

#include "geo/country.hpp"
#include "stats/ecdf.hpp"

namespace shears::route {

namespace {

/// Regions in the user's measurement scope (own continent + fallback),
/// ranked ascending by baseline RTT.
std::vector<const topology::CloudRegion*> ranked_in_scope(
    const net::LatencyModel& model, const net::Endpoint& user,
    geo::Continent user_continent, const topology::CloudRegistry& cloud) {
  std::vector<std::pair<double, const topology::CloudRegion*>> ranked;
  for (const topology::CloudRegion* region : cloud.regions()) {
    const geo::Continent rc = topology::region_continent(*region);
    if (rc != user_continent &&
        geo::measurement_fallback(user_continent) != rc) {
      continue;
    }
    ranked.emplace_back(model.baseline_rtt_ms(user, *region), region);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<const topology::CloudRegion*> out;
  out.reserve(ranked.size());
  for (const auto& [rtt, region] : ranked) out.push_back(region);
  return out;
}

}  // namespace

const topology::CloudRegion* steer(const net::LatencyModel& model,
                                   const net::Endpoint& user,
                                   geo::Continent user_continent,
                                   const topology::CloudRegistry& cloud,
                                   SteeringPolicy policy,
                                   const SteeringConfig& config,
                                   stats::Xoshiro256& rng) {
  const auto ranked = ranked_in_scope(model, user, user_continent, cloud);
  if (ranked.empty()) return nullptr;

  switch (policy) {
    case SteeringPolicy::kMeasuredBest:
      return ranked.front();
    case SteeringPolicy::kGeoNearest: {
      const topology::CloudRegion* nearest = nullptr;
      double best_km = 0.0;
      for (const topology::CloudRegion* region : ranked) {
        const double km = geo::haversine_km(user.location, region->location);
        if (nearest == nullptr || km < best_km) {
          nearest = region;
          best_km = km;
        }
      }
      return nearest;
    }
    case SteeringPolicy::kAnycast: {
      if (!rng.bernoulli(config.anycast_misroute_rate) || ranked.size() == 1) {
        return ranked.front();
      }
      const auto depth = static_cast<std::size_t>(
          std::max(1, config.anycast_detour_depth));
      const std::size_t rank =
          1 + rng.bounded(std::min(depth, ranked.size() - 1));
      return ranked[rank];
    }
  }
  return ranked.front();
}

SteeringPenalty evaluate_steering(const net::LatencyModel& model,
                                  const topology::CloudRegistry& cloud,
                                  SteeringPolicy policy,
                                  const SteeringConfig& config,
                                  std::uint64_t seed) {
  SteeringPenalty summary;
  summary.policy = policy;
  stats::Xoshiro256 rng(seed);
  std::vector<double> penalties;
  for (const geo::Country& country : geo::all_countries()) {
    const net::Endpoint user{country.site, country.tier,
                             net::AccessTechnology::kFibre};
    const auto ranked = ranked_in_scope(model, user, country.continent, cloud);
    if (ranked.empty()) continue;
    const topology::CloudRegion* chosen = steer(
        model, user, country.continent, cloud, policy, config, rng);
    ++summary.users;
    const double best = model.baseline_rtt_ms(user, *ranked.front());
    const double got = model.baseline_rtt_ms(user, *chosen);
    const double penalty = got - best;
    penalties.push_back(penalty);
    if (chosen != ranked.front()) ++summary.misrouted;
  }
  if (!penalties.empty()) {
    double sum = 0.0;
    for (const double p : penalties) sum += p;
    summary.mean_penalty_ms = sum / static_cast<double>(penalties.size());
    const stats::Ecdf ecdf(std::move(penalties));
    summary.p90_penalty_ms = ecdf.percentile(90.0);
    summary.worst_penalty_ms = ecdf.max();
  }
  return summary;
}

}  // namespace shears::route
