// Embedded transport-fabric dataset: ~75 major exchange points and
// submarine-cable landing stations, plus the principal submarine cable
// routes connecting them (after the public submarine cable map the paper
// cites [68]). Terrestrial links are generated, not listed.
#include "route/graph.hpp"

#include <array>

namespace shears::route {

namespace {

using enum geo::Continent;
constexpr NodeType IXP = NodeType::kExchangePoint;
constexpr NodeType LND = NodeType::kCableLanding;

constexpr std::array kNodes = {
    // ---------------------------------------------------------- Europe --
    TransportNode{"fra", "Frankfurt (DE-CIX)", IXP, kEurope, {50.11, 8.68}},
    TransportNode{"ams", "Amsterdam (AMS-IX)", IXP, kEurope, {52.37, 4.90}},
    TransportNode{"lon", "London (LINX)", IXP, kEurope, {51.51, -0.13}},
    TransportNode{"par", "Paris (France-IX)", IXP, kEurope, {48.86, 2.35}},
    TransportNode{"mad", "Madrid (ESpanix)", IXP, kEurope, {40.42, -3.70}},
    TransportNode{"mil", "Milan (MIX)", IXP, kEurope, {45.46, 9.19}},
    TransportNode{"vie", "Vienna (VIX)", IXP, kEurope, {48.21, 16.37}},
    TransportNode{"waw", "Warsaw (PLIX)", IXP, kEurope, {52.23, 21.01}},
    TransportNode{"sto", "Stockholm (Netnod)", IXP, kEurope, {59.33, 18.07}},
    TransportNode{"cph", "Copenhagen", IXP, kEurope, {55.68, 12.57}},
    TransportNode{"mos", "Moscow (MSK-IX)", IXP, kEurope, {55.76, 37.62}},
    TransportNode{"ist", "Istanbul", IXP, kEurope, {41.01, 28.98}},
    TransportNode{"lis", "Lisbon", IXP, kEurope, {38.72, -9.14}},
    TransportNode{"dub", "Dublin (INEX)", IXP, kEurope, {53.35, -6.26}},
    TransportNode{"prg", "Prague (NIX.CZ)", IXP, kEurope, {50.08, 14.44}},
    TransportNode{"bud", "Budapest (BIX)", IXP, kEurope, {47.50, 19.04}},
    TransportNode{"buh", "Bucharest", IXP, kEurope, {44.43, 26.10}},
    TransportNode{"kie", "Kyiv (UA-IX)", IXP, kEurope, {50.45, 30.52}},
    TransportNode{"mrs", "Marseille landing", LND, kEurope, {43.30, 5.37}},
    // --------------------------------------------------- North America --
    TransportNode{"nyc", "New York", IXP, kNorthAmerica, {40.71, -74.01}},
    TransportNode{"ash", "Ashburn (Equinix)", IXP, kNorthAmerica, {39.04, -77.49}},
    TransportNode{"mia", "Miami (NOTA)", LND, kNorthAmerica, {25.76, -80.19}},
    TransportNode{"chi", "Chicago", IXP, kNorthAmerica, {41.88, -87.63}},
    TransportNode{"dal", "Dallas", IXP, kNorthAmerica, {32.78, -96.80}},
    TransportNode{"den", "Denver", IXP, kNorthAmerica, {39.74, -104.99}},
    TransportNode{"atl", "Atlanta", IXP, kNorthAmerica, {33.75, -84.39}},
    TransportNode{"lax", "Los Angeles", LND, kNorthAmerica, {34.05, -118.24}},
    TransportNode{"sjc", "San Jose", IXP, kNorthAmerica, {37.35, -121.96}},
    TransportNode{"sea", "Seattle", LND, kNorthAmerica, {47.61, -122.33}},
    TransportNode{"tor", "Toronto (TorIX)", IXP, kNorthAmerica, {43.65, -79.38}},
    TransportNode{"mex", "Mexico City", IXP, kNorthAmerica, {19.43, -99.13}},
    // --------------------------------------------------- South America --
    TransportNode{"gru", "Sao Paulo (IX.br)", IXP, kSouthAmerica, {-23.55, -46.63}},
    TransportNode{"for", "Fortaleza landing", LND, kSouthAmerica, {-3.72, -38.54}},
    TransportNode{"eze", "Buenos Aires", IXP, kSouthAmerica, {-34.60, -58.38}},
    TransportNode{"scl", "Santiago", IXP, kSouthAmerica, {-33.45, -70.67}},
    TransportNode{"bog", "Bogota", IXP, kSouthAmerica, {4.71, -74.07}},
    TransportNode{"lim", "Lima", LND, kSouthAmerica, {-12.05, -77.04}},
    TransportNode{"ccs", "Caracas landing", LND, kSouthAmerica, {10.48, -66.90}},
    // ------------------------------------------------------------- Asia --
    TransportNode{"sin", "Singapore (Equinix)", LND, kAsia, {1.35, 103.82}},
    TransportNode{"hkg", "Hong Kong (HKIX)", LND, kAsia, {22.32, 114.17}},
    TransportNode{"tyo", "Tokyo (JPNAP)", LND, kAsia, {35.68, 139.69}},
    TransportNode{"sel", "Seoul (KINX)", IXP, kAsia, {37.57, 126.98}},
    TransportNode{"tpe", "Taipei", LND, kAsia, {25.03, 121.57}},
    TransportNode{"sha", "Shanghai landing", LND, kAsia, {31.23, 121.47}},
    TransportNode{"pek", "Beijing", IXP, kAsia, {39.90, 116.41}},
    TransportNode{"bom", "Mumbai landing", LND, kAsia, {19.08, 72.88}},
    TransportNode{"maa", "Chennai landing", LND, kAsia, {13.08, 80.27}},
    TransportNode{"del", "Delhi (NIXI)", IXP, kAsia, {28.61, 77.21}},
    TransportNode{"kul", "Kuala Lumpur", IXP, kAsia, {3.14, 101.69}},
    TransportNode{"cgk", "Jakarta", LND, kAsia, {-6.21, 106.85}},
    TransportNode{"bkk", "Bangkok", IXP, kAsia, {13.76, 100.50}},
    TransportNode{"dxb", "Dubai (UAE-IX)", IXP, kAsia, {25.20, 55.27}},
    TransportNode{"fjr", "Fujairah landing", LND, kAsia, {25.12, 56.34}},
    TransportNode{"tlv", "Tel Aviv landing", LND, kAsia, {32.09, 34.78}},
    TransportNode{"khi", "Karachi landing", LND, kAsia, {24.86, 67.01}},
    TransportNode{"han", "Hanoi", IXP, kAsia, {21.03, 105.85}},
    TransportNode{"mnl", "Manila landing", LND, kAsia, {14.60, 120.98}},
    // ---------------------------------------------------------- Oceania --
    TransportNode{"syd", "Sydney landing", LND, kOceania, {-33.87, 151.21}},
    TransportNode{"akl", "Auckland landing", LND, kOceania, {-36.85, 174.76}},
    TransportNode{"per", "Perth landing", LND, kOceania, {-31.95, 115.86}},
    TransportNode{"gum", "Guam landing", LND, kOceania, {13.44, 144.79}},
    // ----------------------------------------------------------- Africa --
    TransportNode{"jnb", "Johannesburg (NAPAfrica)", IXP, kAfrica, {-26.20, 28.05}},
    TransportNode{"cpt", "Cape Town landing", LND, kAfrica, {-33.92, 18.42}},
    TransportNode{"lag", "Lagos landing", LND, kAfrica, {6.52, 3.38}},
    TransportNode{"nbo", "Nairobi (KIXP)", IXP, kAfrica, {-1.29, 36.82}},
    TransportNode{"mba", "Mombasa landing", LND, kAfrica, {-4.04, 39.67}},
    TransportNode{"cai", "Cairo", IXP, kAfrica, {30.04, 31.24}},
    TransportNode{"alx", "Alexandria landing", LND, kAfrica, {31.20, 29.92}},
    TransportNode{"cas", "Casablanca landing", LND, kAfrica, {33.57, -7.59}},
    TransportNode{"dkr", "Dakar landing", LND, kAfrica, {14.72, -17.47}},
    TransportNode{"dji", "Djibouti landing", LND, kAfrica, {11.59, 43.15}},
    TransportNode{"acc", "Accra landing", LND, kAfrica, {5.60, -0.19}},
    TransportNode{"tun", "Tunis landing", LND, kAfrica, {36.81, 10.18}},
    TransportNode{"mpm", "Maputo landing", LND, kAfrica, {-25.97, 32.57}},
    TransportNode{"lad", "Luanda landing", LND, kAfrica, {-8.84, 13.23}},
};

/// Submarine cable routes as node-slug pairs. Route length is the
/// geodesic times the submarine detour factor (cables hug sea lanes).
struct CableRoute {
  std::string_view a;
  std::string_view b;
};

constexpr std::array kCables = {
    // Transatlantic
    CableRoute{"lon", "nyc"}, CableRoute{"par", "nyc"},
    CableRoute{"lis", "for"}, CableRoute{"dkr", "for"},
    // Mediterranean + Atlantic Africa/Europe
    CableRoute{"mrs", "alx"}, CableRoute{"mrs", "tun"},
    CableRoute{"mrs", "tlv"}, CableRoute{"lis", "cas"},
    CableRoute{"cas", "dkr"}, CableRoute{"dkr", "acc"},
    CableRoute{"acc", "lag"}, CableRoute{"lag", "lad"},
    CableRoute{"lad", "cpt"},
    // Red Sea / Indian Ocean (SEA-ME-WE family)
    CableRoute{"alx", "dji"}, CableRoute{"dji", "fjr"},
    CableRoute{"dji", "bom"}, CableRoute{"fjr", "bom"},
    CableRoute{"fjr", "khi"}, CableRoute{"dji", "mba"},
    CableRoute{"mba", "mpm"},
    // India / Southeast Asia / East Asia
    CableRoute{"bom", "maa"}, CableRoute{"maa", "sin"},
    CableRoute{"sin", "cgk"}, CableRoute{"sin", "hkg"},
    CableRoute{"hkg", "mnl"}, CableRoute{"hkg", "tpe"},
    CableRoute{"tpe", "tyo"}, CableRoute{"sha", "tyo"},
    CableRoute{"sel", "tyo"}, CableRoute{"hkg", "tyo"},
    // Australia / Pacific
    CableRoute{"sin", "per"}, CableRoute{"syd", "akl"},
    CableRoute{"syd", "gum"}, CableRoute{"gum", "tyo"},
    CableRoute{"gum", "mnl"}, CableRoute{"akl", "lax"},
    CableRoute{"syd", "lax"},
    // Transpacific north
    CableRoute{"tyo", "sea"}, CableRoute{"tyo", "lax"},
    // Americas
    CableRoute{"mia", "for"}, CableRoute{"mia", "ccs"},
    CableRoute{"mia", "bog"}, CableRoute{"ccs", "for"},
};

}  // namespace

std::span<const TransportNode> transport_nodes() noexcept { return kNodes; }

const TransportNode* find_node(std::string_view id) noexcept {
  for (const TransportNode& n : kNodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

namespace detail {

// Exposed to graph.cpp only.
std::span<const TransportNode> nodes() { return kNodes; }

std::vector<std::pair<std::uint16_t, std::uint16_t>> cable_indices() {
  std::vector<std::pair<std::uint16_t, std::uint16_t>> out;
  out.reserve(kCables.size());
  for (const CableRoute& cable : kCables) {
    std::uint16_t ia = 0xFFFF;
    std::uint16_t ib = 0xFFFF;
    for (std::size_t i = 0; i < kNodes.size(); ++i) {
      if (kNodes[i].id == cable.a) ia = static_cast<std::uint16_t>(i);
      if (kNodes[i].id == cable.b) ib = static_cast<std::uint16_t>(i);
    }
    out.emplace_back(ia, ib);
  }
  return out;
}

}  // namespace detail

}  // namespace shears::route
