// Client-to-region steering — how users actually *find* a region.
//
// The campaign measures every in-scope region and takes minima; a real
// application gets one region chosen by a steering layer (DNS geo-mapping
// or BGP anycast), and that choice is imperfect: Jin et al. (SIGCOMM'19,
// [36] in the paper — the study closest to this one) show a tail of
// clients landing in the wrong catchment. This module models the three
// policies and quantifies the steering penalty: the latency a user loses
// versus the measured-best region.
#pragma once

#include <string_view>
#include <vector>

#include "net/latency_model.hpp"
#include "stats/rng.hpp"
#include "topology/registry.hpp"

namespace shears::route {

enum class SteeringPolicy : unsigned char {
  kMeasuredBest = 0,  ///< oracle: the lowest-baseline region (campaign minima)
  kGeoNearest,        ///< DNS geo-mapping: great-circle nearest region
  kAnycast,           ///< BGP catchments: usually right, sometimes a detour
};

[[nodiscard]] constexpr std::string_view to_string(SteeringPolicy p) noexcept {
  switch (p) {
    case SteeringPolicy::kMeasuredBest: return "measured-best";
    case SteeringPolicy::kGeoNearest: return "geo-nearest";
    case SteeringPolicy::kAnycast: return "anycast";
  }
  return "unknown";
}

struct SteeringConfig {
  /// Probability an anycast catchment misroutes a client past its best
  /// region (Jin et al. observe a noticeable minority of such clients).
  double anycast_misroute_rate = 0.12;
  /// When misrouted, the client lands on the k-th best region instead;
  /// drawn uniformly from ranks [2, 1 + anycast_detour_depth].
  int anycast_detour_depth = 3;
};

/// Chooses the region a client is steered to under a policy. `rng` is
/// consulted only by the anycast policy. Returns nullptr when the
/// registry has no region in the user's measurement scope.
[[nodiscard]] const topology::CloudRegion* steer(
    const net::LatencyModel& model, const net::Endpoint& user,
    geo::Continent user_continent, const topology::CloudRegistry& cloud,
    SteeringPolicy policy, const SteeringConfig& config,
    stats::Xoshiro256& rng);

/// Steering-penalty summary over a set of users.
struct SteeringPenalty {
  SteeringPolicy policy{};
  std::size_t users = 0;
  std::size_t misrouted = 0;      ///< steered past the measured best
  double mean_penalty_ms = 0.0;   ///< RTT(steered) - RTT(best), mean
  double p90_penalty_ms = 0.0;
  double worst_penalty_ms = 0.0;
};

/// Evaluates a policy over one user endpoint per country (wired,
/// tier-appropriate), comparing against the measured-best oracle.
[[nodiscard]] SteeringPenalty evaluate_steering(
    const net::LatencyModel& model, const topology::CloudRegistry& cloud,
    SteeringPolicy policy, const SteeringConfig& config, std::uint64_t seed);

}  // namespace shears::route
