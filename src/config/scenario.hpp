// Scenario files: one INI file describes a complete experiment — fleet,
// schedule, latency-model knobs, and the cloud footprint — so studies can
// be rerun and varied without recompiling. Strict parsing: any unknown
// key aborts (catches typos in sweeps).
//
// Example:
//   [fleet]
//   probes = 3200
//   seed = 42
//   [campaign]
//   days = 30
//   interval_hours = 3
//   uptime = 0.97
//   [model]
//   wireless_scale = 0.5      ; the 5G what-if
//   diurnal_amplitude = 0.15
//   [footprint]
//   year = 2016               ; historical snapshot
//   providers = Amazon, Google
#pragma once

#include <iosfwd>
#include <string>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "faults/fault_schedule.hpp"
#include "front/server.hpp"
#include "front/traffic.hpp"
#include "net/latency_model.hpp"
#include "topology/registry.hpp"

namespace shears::config {

struct Scenario {
  std::string name = "default";
  atlas::PlacementConfig fleet{};
  atlas::CampaignConfig campaign{};
  net::LatencyModelConfig model{};
  /// Fault-injection knobs ([faults] section); all rates default to 0,
  /// so an unfaulted scenario builds an empty schedule. Retry/quarantine
  /// knobs ([resilience]) live inside `campaign`.
  faults::FaultScheduleConfig faults{};
  /// Serving front-end knobs ([traffic] section): admission control,
  /// batching and the traffic-generator session driven against the
  /// oracle built from this scenario's dataset.
  front::FrontConfig front{};
  front::TrafficConfig traffic{};
  /// Store-snapshot persistence knobs ([snapshot] section), consumed by
  /// the drivers (examples/store_snapshot) that own a serve store.
  /// Strings and bools only — config does not link the serve layer.
  struct SnapshotConfig {
    std::string path{};   ///< base snapshot file; empty = persistence off
    std::string delta{};  ///< delta-log file; empty = no incremental log
    std::string mode = "read";  ///< load mode: read | mmap
    bool lazy = false;    ///< defer the summary rebuild to first use
    bool compact = false;  ///< fold the delta log into the base after load
  };
  SnapshotConfig snapshot{};
  /// Footprint-optimizer knobs ([optimizer] section), consumed by the
  /// drivers (examples/footprint_planner) that own a serve store and the
  /// opt subsystem. Plain scalars and strings only — config does not
  /// link opt, mirroring the snapshot section's layering.
  struct OptimizerConfig {
    double threshold_ms = 50.0;    ///< coverage budget (ms)
    int max_sites = 8;             ///< site budget of the search
    int swap_passes = 1;           ///< local-search rounds after greedy
    double wireless_scale = 1.0;   ///< base-delta 5G knob
    double route_scale = 1.0;      ///< base-delta routing multiplier
    /// Placement tiers of the candidate universe (edge::EdgePlacement
    /// names: basestation | central-office | metro-pop | regional-site).
    std::vector<std::string> placements{};
    int max_cities_per_country = 4;
    double min_metro_population_m = 0.0;
  };
  OptimizerConfig optimizer{};
  /// Footprint snapshot year; 0 = the full campaign footprint.
  int footprint_year = 0;
  /// Provider subset; empty = all seven.
  std::vector<topology::CloudProvider> providers{};

  /// Materialises the registry described by year/providers.
  [[nodiscard]] topology::CloudRegistry make_registry() const;

  /// Builds the fault schedule: empty when no [faults] rate is set.
  [[nodiscard]] faults::FaultSchedule make_fault_schedule() const;
};

/// Parses a scenario file; throws std::runtime_error on malformed input,
/// unknown keys, unknown provider names, or out-of-range values.
[[nodiscard]] Scenario parse_scenario(std::istream& is);
[[nodiscard]] Scenario parse_scenario_string(const std::string& text);

/// The default scenario as a commented INI document (for --print-default).
[[nodiscard]] std::string default_scenario_text();

}  // namespace shears::config
