// A minimal INI reader for scenario files — sections, `key = value`
// pairs, `#`/`;` comments. Strict by design: scenario typos must fail
// loudly, so consumers can enumerate the keys they understand and reject
// the rest.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace shears::config {

class IniFile {
 public:
  /// Parses INI text; throws std::runtime_error with a line number on
  /// malformed input (unterminated section, missing '=', duplicate key).
  static IniFile parse(std::istream& is);
  static IniFile parse_string(const std::string& text);

  /// Raw lookup; nullopt when absent. Keys are "section.key" with the
  /// empty section spelled as just "key".
  [[nodiscard]] std::optional<std::string> raw(const std::string& section,
                                               const std::string& key) const;

  /// Typed getters: return `fallback` when the key is absent, throw
  /// std::runtime_error when present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& section,
                                       const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& section,
                                  const std::string& key,
                                  double fallback) const;
  [[nodiscard]] long get_int(const std::string& section,
                             const std::string& key, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section,
                              const std::string& key, bool fallback) const;

  /// Comma-separated list value; empty when absent.
  [[nodiscard]] std::vector<std::string> get_list(const std::string& section,
                                                  const std::string& key) const;

  /// All "section.key" identifiers present in the file.
  [[nodiscard]] std::set<std::string> keys() const;

  /// Throws std::runtime_error listing any present key not in `allowed`
  /// ("section.key" spelling). Call after reading everything you accept.
  void require_only(const std::set<std::string>& allowed) const;

 private:
  std::map<std::string, std::string> values_;  ///< "section.key" -> value
};

}  // namespace shears::config
