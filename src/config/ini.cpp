#include "config/ini.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace shears::config {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("ini: line " + std::to_string(line) + ": " +
                           message);
}

}  // namespace

IniFile IniFile::parse(std::istream& is) {
  IniFile file;
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments (naive: no quoted values in this dialect).
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    const std::string text = trim(line);
    if (text.empty()) continue;
    if (text.front() == '[') {
      if (text.back() != ']' || text.size() < 3) {
        fail(line_no, "malformed section header");
      }
      section = lower(trim(text.substr(1, text.size() - 2)));
      continue;
    }
    const auto eq = text.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key = value");
    const std::string key = lower(trim(text.substr(0, eq)));
    const std::string value = trim(text.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    const std::string id = section.empty() ? key : section + "." + key;
    if (!file.values_.emplace(id, value).second) {
      fail(line_no, "duplicate key '" + id + "'");
    }
  }
  return file;
}

IniFile IniFile::parse_string(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

std::optional<std::string> IniFile::raw(const std::string& section,
                                        const std::string& key) const {
  const std::string id =
      section.empty() ? lower(key) : lower(section) + "." + lower(key);
  const auto it = values_.find(id);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string IniFile::get_string(const std::string& section,
                                const std::string& key,
                                const std::string& fallback) const {
  return raw(section, key).value_or(fallback);
}

double IniFile::get_double(const std::string& section, const std::string& key,
                           double fallback) const {
  const auto value = raw(section, key);
  if (!value) return fallback;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*value, &used);
    if (used != value->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: key '" + section + "." + key +
                             "' is not a number: " + *value);
  }
}

long IniFile::get_int(const std::string& section, const std::string& key,
                      long fallback) const {
  const auto value = raw(section, key);
  if (!value) return fallback;
  try {
    std::size_t used = 0;
    const long parsed = std::stol(*value, &used);
    if (used != value->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: key '" + section + "." + key +
                             "' is not an integer: " + *value);
  }
}

bool IniFile::get_bool(const std::string& section, const std::string& key,
                       bool fallback) const {
  const auto value = raw(section, key);
  if (!value) return fallback;
  const std::string v = lower(*value);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw std::runtime_error("ini: key '" + section + "." + key +
                           "' is not a boolean: " + *value);
}

std::vector<std::string> IniFile::get_list(const std::string& section,
                                           const std::string& key) const {
  std::vector<std::string> out;
  const auto value = raw(section, key);
  if (!value) return out;
  std::istringstream is(*value);
  std::string item;
  while (std::getline(is, item, ',')) {
    const std::string trimmed = trim(item);
    if (!trimmed.empty()) out.push_back(trimmed);
  }
  return out;
}

std::set<std::string> IniFile::keys() const {
  std::set<std::string> out;
  for (const auto& [id, value] : values_) out.insert(id);
  return out;
}

void IniFile::require_only(const std::set<std::string>& allowed) const {
  std::string unknown;
  for (const auto& [id, value] : values_) {
    if (allowed.count(id) == 0) {
      if (!unknown.empty()) unknown += ", ";
      unknown += id;
    }
  }
  if (!unknown.empty()) {
    throw std::runtime_error("ini: unknown keys: " + unknown);
  }
}

}  // namespace shears::config
