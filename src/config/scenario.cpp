#include "config/scenario.hpp"

#include <sstream>
#include <stdexcept>

#include "config/ini.hpp"

namespace shears::config {

namespace {

const std::set<std::string>& allowed_keys() {
  static const std::set<std::string> keys = {
      "name",
      "fleet.probes", "fleet.seed", "fleet.tagged_fraction",
      "fleet.privileged_fraction",
      "campaign.days", "campaign.interval_hours", "campaign.packets",
      "campaign.targets_per_tick", "campaign.uptime", "campaign.seed",
      "campaign.threads", "campaign.sampling_cache",
      "model.wireless_scale", "model.excess_fraction", "model.excess_spread",
      "model.spike_probability", "model.core_loss_rate",
      "model.diurnal_amplitude", "model.diurnal_peak_hour",
      "path.fibre_us_per_km", "path.long_haul_stretch", "path.min_routed_km",
      "path.per_hop_ms",
      "faults.seed", "faults.epoch_ticks",
      "faults.region_outage_rate", "faults.region_outage_mean_ticks",
      "faults.route_flap_rate", "faults.route_flap_mean_ticks",
      "faults.route_flap_multiplier", "faults.route_flap_extra_loss",
      "faults.storm_rate", "faults.storm_mean_ticks",
      "faults.storm_load_multiplier", "faults.storm_wireless_only",
      "faults.probe_hang_rate", "faults.probe_hang_mean_ticks",
      "faults.clock_skew_rate", "faults.clock_skew_mean_ticks",
      "faults.clock_skew_ms",
      "faults.blackout_rate", "faults.blackout_mean_ticks",
      "resilience.max_retries", "resilience.backoff_cap_ticks",
      "resilience.quarantine", "resilience.quarantine_window",
      "resilience.quarantine_loss_threshold",
      "resilience.quarantine_cooldown_ticks",
      "traffic.arrival", "traffic.clients", "traffic.offered_qps",
      "traffic.think_time_us", "traffic.zipf_exponent", "traffic.duration_us",
      "traffic.slo_ms", "traffic.seed", "traffic.deadline_us",
      "traffic.max_retries", "traffic.backoff_base_us",
      "traffic.backoff_cap_us", "traffic.jitter_fraction",
      "traffic.queue_capacity", "traffic.client_rate_qps",
      "traffic.client_burst", "traffic.max_batch", "traffic.batch_linger_us",
      "traffic.batch_overhead_us", "traffic.per_query_us",
      "snapshot.path", "snapshot.delta", "snapshot.mode", "snapshot.lazy",
      "snapshot.compact",
      "optimizer.threshold_ms", "optimizer.max_sites",
      "optimizer.swap_passes", "optimizer.wireless_scale",
      "optimizer.route_scale", "optimizer.placements",
      "optimizer.max_cities_per_country",
      "optimizer.min_metro_population_m",
      "footprint.year", "footprint.providers",
  };
  return keys;
}

void check_range(bool ok, const std::string& what) {
  if (!ok) throw std::runtime_error("scenario: " + what + " out of range");
}

}  // namespace

topology::CloudRegistry Scenario::make_registry() const {
  if (!providers.empty()) {
    // Provider subset first; then intersect with the year snapshot.
    if (footprint_year == 0) {
      return topology::CloudRegistry::for_providers(providers);
    }
    std::vector<const topology::CloudRegion*> regions;
    for (const topology::CloudRegion& r : topology::all_regions()) {
      if (r.launch_year > footprint_year) continue;
      for (const topology::CloudProvider p : providers) {
        if (r.provider == p) {
          regions.push_back(&r);
          break;
        }
      }
    }
    return topology::CloudRegistry(std::move(regions));
  }
  return footprint_year == 0
             ? topology::CloudRegistry::campaign_footprint()
             : topology::CloudRegistry::footprint_as_of(footprint_year);
}

faults::FaultSchedule Scenario::make_fault_schedule() const {
  if (!faults.any_rate()) return faults::FaultSchedule{};
  return faults::FaultSchedule(faults);
}

Scenario parse_scenario(std::istream& is) {
  const IniFile ini = IniFile::parse(is);
  ini.require_only(allowed_keys());

  Scenario s;
  s.name = ini.get_string("", "name", s.name);

  s.fleet.probe_count = static_cast<std::size_t>(
      ini.get_int("fleet", "probes",
                  static_cast<long>(s.fleet.probe_count)));
  s.fleet.seed = static_cast<std::uint64_t>(
      ini.get_int("fleet", "seed", static_cast<long>(s.fleet.seed)));
  s.fleet.tagged_fraction =
      ini.get_double("fleet", "tagged_fraction", s.fleet.tagged_fraction);
  s.fleet.privileged_fraction = ini.get_double("fleet", "privileged_fraction",
                                               s.fleet.privileged_fraction);
  check_range(s.fleet.tagged_fraction >= 0.0 && s.fleet.tagged_fraction <= 1.0,
              "fleet.tagged_fraction");
  check_range(
      s.fleet.privileged_fraction >= 0.0 && s.fleet.privileged_fraction <= 1.0,
      "fleet.privileged_fraction");

  s.campaign.duration_days = static_cast<int>(
      ini.get_int("campaign", "days", s.campaign.duration_days));
  s.campaign.interval_hours = static_cast<int>(
      ini.get_int("campaign", "interval_hours", s.campaign.interval_hours));
  s.campaign.packets_per_ping = static_cast<int>(
      ini.get_int("campaign", "packets", s.campaign.packets_per_ping));
  s.campaign.targets_per_tick = static_cast<int>(ini.get_int(
      "campaign", "targets_per_tick", s.campaign.targets_per_tick));
  s.campaign.probe_uptime =
      ini.get_double("campaign", "uptime", s.campaign.probe_uptime);
  s.campaign.seed = static_cast<std::uint64_t>(
      ini.get_int("campaign", "seed", static_cast<long>(s.campaign.seed)));
  s.campaign.threads = static_cast<unsigned>(
      ini.get_int("campaign", "threads", s.campaign.threads));
  s.campaign.sampling_cache = ini.get_bool("campaign", "sampling_cache",
                                           s.campaign.sampling_cache);
  check_range(s.campaign.duration_days > 0, "campaign.days");
  check_range(s.campaign.interval_hours > 0 && s.campaign.interval_hours <= 24,
              "campaign.interval_hours");
  check_range(s.campaign.probe_uptime > 0.0 && s.campaign.probe_uptime <= 1.0,
              "campaign.uptime");

  s.model.wireless_latency_scale = ini.get_double(
      "model", "wireless_scale", s.model.wireless_latency_scale);
  s.model.excess_fraction =
      ini.get_double("model", "excess_fraction", s.model.excess_fraction);
  s.model.excess_spread =
      ini.get_double("model", "excess_spread", s.model.excess_spread);
  s.model.spike_probability =
      ini.get_double("model", "spike_probability", s.model.spike_probability);
  s.model.core_loss_rate =
      ini.get_double("model", "core_loss_rate", s.model.core_loss_rate);
  s.model.diurnal_amplitude =
      ini.get_double("model", "diurnal_amplitude", s.model.diurnal_amplitude);
  s.model.diurnal_peak_hour =
      ini.get_double("model", "diurnal_peak_hour", s.model.diurnal_peak_hour);
  check_range(s.model.wireless_latency_scale > 0.0, "model.wireless_scale");
  check_range(s.model.core_loss_rate >= 0.0 && s.model.core_loss_rate < 1.0,
              "model.core_loss_rate");

  s.model.path.fibre_us_per_km = ini.get_double(
      "path", "fibre_us_per_km", s.model.path.fibre_us_per_km);
  s.model.path.long_haul_stretch = ini.get_double(
      "path", "long_haul_stretch", s.model.path.long_haul_stretch);
  s.model.path.min_routed_km =
      ini.get_double("path", "min_routed_km", s.model.path.min_routed_km);
  s.model.path.per_hop_ms =
      ini.get_double("path", "per_hop_ms", s.model.path.per_hop_ms);
  check_range(s.model.path.fibre_us_per_km > 3.3, "path.fibre_us_per_km");

  s.faults.seed = static_cast<std::uint64_t>(
      ini.get_int("faults", "seed", static_cast<long>(s.faults.seed)));
  s.faults.epoch_ticks = static_cast<std::uint32_t>(ini.get_int(
      "faults", "epoch_ticks", static_cast<long>(s.faults.epoch_ticks)));
  s.faults.region_outage_rate = ini.get_double(
      "faults", "region_outage_rate", s.faults.region_outage_rate);
  s.faults.region_outage_mean_ticks = ini.get_double(
      "faults", "region_outage_mean_ticks", s.faults.region_outage_mean_ticks);
  s.faults.route_flap_rate =
      ini.get_double("faults", "route_flap_rate", s.faults.route_flap_rate);
  s.faults.route_flap_mean_ticks = ini.get_double(
      "faults", "route_flap_mean_ticks", s.faults.route_flap_mean_ticks);
  s.faults.route_flap_latency_multiplier =
      ini.get_double("faults", "route_flap_multiplier",
                     s.faults.route_flap_latency_multiplier);
  s.faults.route_flap_extra_loss = ini.get_double(
      "faults", "route_flap_extra_loss", s.faults.route_flap_extra_loss);
  s.faults.storm_rate =
      ini.get_double("faults", "storm_rate", s.faults.storm_rate);
  s.faults.storm_mean_ticks =
      ini.get_double("faults", "storm_mean_ticks", s.faults.storm_mean_ticks);
  s.faults.storm_load_multiplier = ini.get_double(
      "faults", "storm_load_multiplier", s.faults.storm_load_multiplier);
  s.faults.storm_wireless_only = ini.get_bool(
      "faults", "storm_wireless_only", s.faults.storm_wireless_only);
  s.faults.probe_hang_rate =
      ini.get_double("faults", "probe_hang_rate", s.faults.probe_hang_rate);
  s.faults.probe_hang_mean_ticks = ini.get_double(
      "faults", "probe_hang_mean_ticks", s.faults.probe_hang_mean_ticks);
  s.faults.clock_skew_rate =
      ini.get_double("faults", "clock_skew_rate", s.faults.clock_skew_rate);
  s.faults.clock_skew_mean_ticks = ini.get_double(
      "faults", "clock_skew_mean_ticks", s.faults.clock_skew_mean_ticks);
  s.faults.clock_skew_ms =
      ini.get_double("faults", "clock_skew_ms", s.faults.clock_skew_ms);
  s.faults.blackout_rate =
      ini.get_double("faults", "blackout_rate", s.faults.blackout_rate);
  s.faults.blackout_mean_ticks = ini.get_double(
      "faults", "blackout_mean_ticks", s.faults.blackout_mean_ticks);
  try {
    s.faults.validate();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("scenario: ") + e.what());
  }

  s.campaign.retry.max_retries = static_cast<int>(ini.get_int(
      "resilience", "max_retries", s.campaign.retry.max_retries));
  s.campaign.retry.backoff_cap_ticks = static_cast<std::uint32_t>(
      ini.get_int("resilience", "backoff_cap_ticks",
                  static_cast<long>(s.campaign.retry.backoff_cap_ticks)));
  s.campaign.quarantine.enabled = ini.get_bool(
      "resilience", "quarantine", s.campaign.quarantine.enabled);
  s.campaign.quarantine.window_bursts = static_cast<int>(
      ini.get_int("resilience", "quarantine_window",
                  s.campaign.quarantine.window_bursts));
  s.campaign.quarantine.loss_threshold =
      ini.get_double("resilience", "quarantine_loss_threshold",
                     s.campaign.quarantine.loss_threshold);
  s.campaign.quarantine.cooldown_ticks = static_cast<std::uint32_t>(
      ini.get_int("resilience", "quarantine_cooldown_ticks",
                  static_cast<long>(s.campaign.quarantine.cooldown_ticks)));
  try {
    s.campaign.validate();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("scenario: ") + e.what());
  }

  const std::string arrival = ini.get_string(
      "traffic", "arrival", std::string(front::to_string(s.traffic.arrival)));
  const auto mode = front::arrival_from_string(arrival);
  if (!mode) {
    throw std::runtime_error("scenario: unknown traffic.arrival '" + arrival +
                             "' (open|closed)");
  }
  s.traffic.arrival = *mode;
  s.traffic.clients = static_cast<std::uint32_t>(ini.get_int(
      "traffic", "clients", static_cast<long>(s.traffic.clients)));
  s.traffic.offered_qps = static_cast<std::uint32_t>(ini.get_int(
      "traffic", "offered_qps", static_cast<long>(s.traffic.offered_qps)));
  s.traffic.think_time_us = static_cast<front::SimTime>(ini.get_int(
      "traffic", "think_time_us", static_cast<long>(s.traffic.think_time_us)));
  s.traffic.zipf_exponent =
      ini.get_double("traffic", "zipf_exponent", s.traffic.zipf_exponent);
  s.traffic.duration_us = static_cast<front::SimTime>(ini.get_int(
      "traffic", "duration_us", static_cast<long>(s.traffic.duration_us)));
  s.traffic.slo_ms = ini.get_double("traffic", "slo_ms", s.traffic.slo_ms);
  s.traffic.seed = static_cast<std::uint64_t>(
      ini.get_int("traffic", "seed", static_cast<long>(s.traffic.seed)));
  s.traffic.client.deadline_us = static_cast<front::SimTime>(
      ini.get_int("traffic", "deadline_us",
                  static_cast<long>(s.traffic.client.deadline_us)));
  s.traffic.client.max_retries = static_cast<int>(ini.get_int(
      "traffic", "max_retries", s.traffic.client.max_retries));
  s.traffic.client.backoff_base_us = static_cast<front::SimTime>(
      ini.get_int("traffic", "backoff_base_us",
                  static_cast<long>(s.traffic.client.backoff_base_us)));
  s.traffic.client.backoff_cap_us = static_cast<front::SimTime>(
      ini.get_int("traffic", "backoff_cap_us",
                  static_cast<long>(s.traffic.client.backoff_cap_us)));
  s.traffic.client.jitter_fraction = ini.get_double(
      "traffic", "jitter_fraction", s.traffic.client.jitter_fraction);
  s.front.queue_capacity = static_cast<std::size_t>(ini.get_int(
      "traffic", "queue_capacity", static_cast<long>(s.front.queue_capacity)));
  s.front.client_rate_qps = static_cast<std::uint32_t>(
      ini.get_int("traffic", "client_rate_qps",
                  static_cast<long>(s.front.client_rate_qps)));
  s.front.client_burst = static_cast<std::uint32_t>(ini.get_int(
      "traffic", "client_burst", static_cast<long>(s.front.client_burst)));
  s.front.max_batch = static_cast<std::size_t>(ini.get_int(
      "traffic", "max_batch", static_cast<long>(s.front.max_batch)));
  s.front.batch_linger_us = static_cast<front::SimTime>(
      ini.get_int("traffic", "batch_linger_us",
                  static_cast<long>(s.front.batch_linger_us)));
  s.front.batch_overhead_us = static_cast<front::SimTime>(
      ini.get_int("traffic", "batch_overhead_us",
                  static_cast<long>(s.front.batch_overhead_us)));
  s.front.per_query_us = static_cast<front::SimTime>(ini.get_int(
      "traffic", "per_query_us", static_cast<long>(s.front.per_query_us)));
  try {
    s.front.validate();
    s.traffic.validate();
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("scenario: ") + e.what());
  }

  s.snapshot.path = ini.get_string("snapshot", "path", s.snapshot.path);
  s.snapshot.delta = ini.get_string("snapshot", "delta", s.snapshot.delta);
  s.snapshot.mode = ini.get_string("snapshot", "mode", s.snapshot.mode);
  s.snapshot.lazy = ini.get_bool("snapshot", "lazy", s.snapshot.lazy);
  s.snapshot.compact =
      ini.get_bool("snapshot", "compact", s.snapshot.compact);
  if (s.snapshot.mode != "read" && s.snapshot.mode != "mmap") {
    throw std::runtime_error("scenario: unknown snapshot.mode '" +
                             s.snapshot.mode + "' (read|mmap)");
  }
  if (s.snapshot.path.empty() && !s.snapshot.delta.empty()) {
    throw std::runtime_error(
        "scenario: snapshot.delta requires snapshot.path (the log is keyed "
        "to a base snapshot)");
  }

  s.optimizer.threshold_ms = ini.get_double("optimizer", "threshold_ms",
                                            s.optimizer.threshold_ms);
  s.optimizer.max_sites = static_cast<int>(ini.get_int(
      "optimizer", "max_sites", static_cast<long>(s.optimizer.max_sites)));
  s.optimizer.swap_passes = static_cast<int>(ini.get_int(
      "optimizer", "swap_passes", static_cast<long>(s.optimizer.swap_passes)));
  s.optimizer.wireless_scale = ini.get_double("optimizer", "wireless_scale",
                                              s.optimizer.wireless_scale);
  s.optimizer.route_scale =
      ini.get_double("optimizer", "route_scale", s.optimizer.route_scale);
  s.optimizer.placements = ini.get_list("optimizer", "placements");
  s.optimizer.max_cities_per_country = static_cast<int>(
      ini.get_int("optimizer", "max_cities_per_country",
                  static_cast<long>(s.optimizer.max_cities_per_country)));
  s.optimizer.min_metro_population_m =
      ini.get_double("optimizer", "min_metro_population_m",
                     s.optimizer.min_metro_population_m);
  check_range(s.optimizer.threshold_ms > 0.0, "optimizer.threshold_ms");
  check_range(s.optimizer.max_sites >= 0, "optimizer.max_sites");
  check_range(s.optimizer.swap_passes >= 0, "optimizer.swap_passes");
  check_range(s.optimizer.wireless_scale > 0.0, "optimizer.wireless_scale");
  check_range(s.optimizer.route_scale > 0.0, "optimizer.route_scale");
  check_range(s.optimizer.max_cities_per_country >= 0,
              "optimizer.max_cities_per_country");
  check_range(s.optimizer.min_metro_population_m >= 0.0,
              "optimizer.min_metro_population_m");
  for (const std::string& p : s.optimizer.placements) {
    // Names match edge::to_string(EdgePlacement); literal here because
    // config stays below the opt/edge layers (same rule as snapshot.mode).
    if (p != "basestation" && p != "central-office" && p != "metro-pop" &&
        p != "regional-site") {
      throw std::runtime_error("scenario: unknown optimizer placement '" + p +
                               "'");
    }
  }

  s.footprint_year =
      static_cast<int>(ini.get_int("footprint", "year", s.footprint_year));
  for (const std::string& name : ini.get_list("footprint", "providers")) {
    const auto provider = topology::provider_from_string(name);
    if (!provider) {
      throw std::runtime_error("scenario: unknown provider '" + name + "'");
    }
    s.providers.push_back(*provider);
  }
  return s;
}

Scenario parse_scenario_string(const std::string& text) {
  std::istringstream is(text);
  return parse_scenario(is);
}

std::string default_scenario_text() {
  const Scenario s;
  std::ostringstream out;
  out << "# latency-shears scenario file (all keys optional)\n"
      << "name = default\n\n"
      << "[fleet]\n"
      << "probes = " << s.fleet.probe_count << "\n"
      << "seed = " << s.fleet.seed << "\n"
      << "tagged_fraction = " << s.fleet.tagged_fraction << "\n"
      << "privileged_fraction = " << s.fleet.privileged_fraction << "\n\n"
      << "[campaign]\n"
      << "days = " << s.campaign.duration_days << "\n"
      << "interval_hours = " << s.campaign.interval_hours << "\n"
      << "packets = " << s.campaign.packets_per_ping << "\n"
      << "targets_per_tick = " << s.campaign.targets_per_tick << "\n"
      << "uptime = " << s.campaign.probe_uptime << "\n"
      << "seed = " << s.campaign.seed << "\n"
      << "threads = " << s.campaign.threads << "  ; 0 = hardware\n"
      << "sampling_cache = " << (s.campaign.sampling_cache ? "true" : "false")
      << "  ; precompute probe x region paths\n\n"
      << "[model]\n"
      << "wireless_scale = " << s.model.wireless_latency_scale
      << "  ; <1 = the 5G what-if\n"
      << "excess_fraction = " << s.model.excess_fraction << "\n"
      << "excess_spread = " << s.model.excess_spread << "\n"
      << "spike_probability = " << s.model.spike_probability << "\n"
      << "core_loss_rate = " << s.model.core_loss_rate << "\n"
      << "diurnal_amplitude = " << s.model.diurnal_amplitude << "\n"
      << "diurnal_peak_hour = " << s.model.diurnal_peak_hour << "\n\n"
      << "[path]\n"
      << "fibre_us_per_km = " << s.model.path.fibre_us_per_km << "\n"
      << "long_haul_stretch = " << s.model.path.long_haul_stretch << "\n"
      << "min_routed_km = " << s.model.path.min_routed_km << "\n"
      << "per_hop_ms = " << s.model.path.per_hop_ms << "\n\n"
      << "[faults]\n"
      << "# All rates default to 0 — no faults. Rates are per (entity,\n"
      << "# epoch) activation probabilities; see scenarios/faulted_9_months"
         ".ini\n"
      << "seed = " << s.faults.seed << "\n"
      << "epoch_ticks = " << s.faults.epoch_ticks
      << "  ; one week of 3 h ticks\n"
      << "region_outage_rate = " << s.faults.region_outage_rate << "\n"
      << "route_flap_rate = " << s.faults.route_flap_rate << "\n"
      << "storm_rate = " << s.faults.storm_rate << "\n"
      << "probe_hang_rate = " << s.faults.probe_hang_rate << "\n"
      << "clock_skew_rate = " << s.faults.clock_skew_rate << "\n"
      << "blackout_rate = " << s.faults.blackout_rate << "\n\n"
      << "[resilience]\n"
      << "max_retries = " << s.campaign.retry.max_retries
      << "  ; 0 = no retries\n"
      << "backoff_cap_ticks = " << s.campaign.retry.backoff_cap_ticks << "\n"
      << "quarantine = " << (s.campaign.quarantine.enabled ? "true" : "false")
      << "\n"
      << "quarantine_window = " << s.campaign.quarantine.window_bursts << "\n"
      << "quarantine_loss_threshold = "
      << s.campaign.quarantine.loss_threshold << "\n"
      << "quarantine_cooldown_ticks = "
      << s.campaign.quarantine.cooldown_ticks << "\n\n"
      << "[traffic]\n"
      << "# Serving front-end session over the post-campaign oracle; see\n"
      << "# scenarios/serving_peak_load.ini for an overload study\n"
      << "arrival = " << front::to_string(s.traffic.arrival)
      << "  ; open | closed\n"
      << "clients = " << s.traffic.clients << "\n"
      << "offered_qps = " << s.traffic.offered_qps << "\n"
      << "think_time_us = " << s.traffic.think_time_us << "\n"
      << "zipf_exponent = " << s.traffic.zipf_exponent << "\n"
      << "duration_us = " << s.traffic.duration_us << "\n"
      << "slo_ms = " << s.traffic.slo_ms << "\n"
      << "seed = " << s.traffic.seed << "\n"
      << "deadline_us = " << s.traffic.client.deadline_us
      << "  ; 0 = none\n"
      << "max_retries = " << s.traffic.client.max_retries << "\n"
      << "backoff_base_us = " << s.traffic.client.backoff_base_us << "\n"
      << "backoff_cap_us = " << s.traffic.client.backoff_cap_us << "\n"
      << "jitter_fraction = " << s.traffic.client.jitter_fraction << "\n"
      << "queue_capacity = " << s.front.queue_capacity << "\n"
      << "client_rate_qps = " << s.front.client_rate_qps
      << "  ; 0 = unlimited\n"
      << "client_burst = " << s.front.client_burst << "\n"
      << "max_batch = " << s.front.max_batch << "\n"
      << "batch_linger_us = " << s.front.batch_linger_us << "\n"
      << "batch_overhead_us = " << s.front.batch_overhead_us << "\n"
      << "per_query_us = " << s.front.per_query_us << "\n\n"
      << "[snapshot]\n"
      << "# Store persistence (examples/store_snapshot): save the built\n"
      << "# store to `path`, or load it back instead of replaying the\n"
      << "# campaign; `delta` adds an append-only log for incremental\n"
      << "# ingest on top of the base.\n"
      << "# path = store.snap\n"
      << "# delta = store.delta\n"
      << "mode = " << s.snapshot.mode << "  ; read | mmap\n"
      << "lazy = " << (s.snapshot.lazy ? "true" : "false")
      << "  ; defer summary rebuild to first use\n"
      << "compact = " << (s.snapshot.compact ? "true" : "false")
      << "  ; fold the delta log into the base\n\n"
      << "[optimizer]\n"
      << "# Footprint placement search (examples/footprint_planner): pick\n"
      << "# the edge sites that maximise population-weighted coverage at\n"
      << "# threshold_ms; see scenarios/footprint_search.ini\n"
      << "threshold_ms = " << s.optimizer.threshold_ms << "\n"
      << "max_sites = " << s.optimizer.max_sites << "\n"
      << "swap_passes = " << s.optimizer.swap_passes << "\n"
      << "wireless_scale = " << s.optimizer.wireless_scale
      << "  ; <1 = search under the 5G what-if\n"
      << "route_scale = " << s.optimizer.route_scale << "\n"
      << "# placements = metro-pop, regional-site\n"
      << "max_cities_per_country = " << s.optimizer.max_cities_per_country
      << "\n"
      << "min_metro_population_m = " << s.optimizer.min_metro_population_m
      << "\n\n"
      << "[footprint]\n"
      << "year = 0        ; 0 = full 2019/2020 footprint\n"
      << "# providers = Amazon, Google   ; default: all seven\n";
  return out.str();
}

}  // namespace shears::config
