// Fig. 1 — the zeitgeist of "edge computing" vs "cloud computing",
// 2004-2019: Google-web-search popularity (normalised, Google Trends
// methodology: 100 = the peak of the strongest series) and scientific
// publications per year (Google Scholar counts via the paper's crawler).
// The series are embedded data; the module adds the era segmentation
// (CDN / Cloud / Edge) and growth analytics the paper narrates in §2.
#pragma once

#include <span>
#include <string_view>

#include "stats/regression.hpp"

namespace shears::trends {

enum class Topic : unsigned char {
  kEdgeComputing = 0,
  kCloudComputing,
};

[[nodiscard]] constexpr std::string_view to_string(Topic t) noexcept {
  switch (t) {
    case Topic::kEdgeComputing: return "edge computing";
    case Topic::kCloudComputing: return "cloud computing";
  }
  return "unknown";
}

struct TrendPoint {
  int year;
  double value;
};

inline constexpr int kFirstYear = 2004;
inline constexpr int kLastYear = 2019;

/// Normalised web-search popularity per year (0-100).
[[nodiscard]] std::span<const TrendPoint> search_popularity(Topic t) noexcept;

/// Publications per year mentioning the keyword.
[[nodiscard]] std::span<const TrendPoint> publications(Topic t) noexcept;

/// Value for a specific year; 0 outside the covered range.
[[nodiscard]] double value_in(std::span<const TrendPoint> series,
                              int year) noexcept;

/// §2's three eras. Boundaries are derived from the data: the cloud era
/// starts when cloud search interest first exceeds 25% of its peak; the
/// edge era starts when edge publications first grow faster (year over
/// year, relative) than cloud publications while cloud search interest is
/// already declining.
struct EraBoundaries {
  int cdn_until;    ///< last year of the CDN era
  int cloud_until;  ///< last year of the cloud era; edge era follows
};

[[nodiscard]] EraBoundaries segment_eras() noexcept;

/// Compound annual growth rate of a series between two years (inclusive);
/// 0 when either endpoint is missing or non-positive.
[[nodiscard]] double cagr(std::span<const TrendPoint> series, int from_year,
                          int to_year) noexcept;

/// Exponential-growth fit: OLS of ln(value) on year over the subrange with
/// positive values. slope ≈ ln(1 + annual growth).
[[nodiscard]] stats::LinearFit log_growth_fit(std::span<const TrendPoint> series,
                                              int from_year, int to_year);

/// First year in which `a`'s year-over-year relative growth exceeds `b`'s
/// by at least `margin` (ratio of growth factors) while `a` is rising;
/// -1 when never. margin = 1 degenerates to a plain crossover.
[[nodiscard]] int growth_crossover_year(std::span<const TrendPoint> a,
                                        std::span<const TrendPoint> b,
                                        double margin = 1.0) noexcept;

}  // namespace shears::trends
