#include "trends/trends.hpp"

#include <array>
#include <cmath>
#include <vector>

namespace shears::trends {

namespace {

// Normalised Google-web-search interest, yearly averages. 100 is the
// all-time peak across both series (cloud computing, 2011/2012).
constexpr std::array<TrendPoint, 16> kSearchEdge = {{
    {2004, 0},  {2005, 0},  {2006, 0},  {2007, 0},  {2008, 1},  {2009, 1},
    {2010, 1},  {2011, 1},  {2012, 1},  {2013, 2},  {2014, 2},  {2015, 4},
    {2016, 8},  {2017, 17}, {2018, 29}, {2019, 40},
}};

constexpr std::array<TrendPoint, 16> kSearchCloud = {{
    {2004, 0},  {2005, 0},  {2006, 2},  {2007, 6},  {2008, 16}, {2009, 37},
    {2010, 63}, {2011, 95}, {2012, 100}, {2013, 93}, {2014, 84}, {2015, 74},
    {2016, 65}, {2017, 58}, {2018, 52}, {2019, 47},
}};

// Publications per year (Google Scholar keyword counts, crawler-derived).
constexpr std::array<TrendPoint, 16> kPubsEdge = {{
    {2004, 12},   {2005, 15},   {2006, 22},   {2007, 30},  {2008, 40},
    {2009, 55},   {2010, 70},   {2011, 90},   {2012, 120}, {2013, 170},
    {2014, 280},  {2015, 620},  {2016, 1600}, {2017, 4200}, {2018, 8600},
    {2019, 14500},
}};

constexpr std::array<TrendPoint, 16> kPubsCloud = {{
    {2004, 60},    {2005, 90},    {2006, 160},   {2007, 420},  {2008, 1300},
    {2009, 4200},  {2010, 9400},  {2011, 15600}, {2012, 21500}, {2013, 26000},
    {2014, 28800}, {2015, 30200}, {2016, 30600}, {2017, 30100}, {2018, 29200},
    {2019, 28100},
}};

}  // namespace

std::span<const TrendPoint> search_popularity(Topic t) noexcept {
  return t == Topic::kEdgeComputing ? std::span<const TrendPoint>(kSearchEdge)
                                    : std::span<const TrendPoint>(kSearchCloud);
}

std::span<const TrendPoint> publications(Topic t) noexcept {
  return t == Topic::kEdgeComputing ? std::span<const TrendPoint>(kPubsEdge)
                                    : std::span<const TrendPoint>(kPubsCloud);
}

double value_in(std::span<const TrendPoint> series, int year) noexcept {
  for (const TrendPoint& p : series) {
    if (p.year == year) return p.value;
  }
  return 0.0;
}

EraBoundaries segment_eras() noexcept {
  const auto cloud_search = search_popularity(Topic::kCloudComputing);
  double cloud_peak = 0.0;
  for (const TrendPoint& p : cloud_search) cloud_peak = std::max(cloud_peak, p.value);

  int cloud_start = kLastYear;
  for (const TrendPoint& p : cloud_search) {
    if (p.value >= 0.25 * cloud_peak) {
      cloud_start = p.year;
      break;
    }
  }

  // The edge era begins when edge publication growth decisively (1.5x)
  // outpaces cloud's — the "research community jumped at the opportunity"
  // inflection of §2.
  const int edge_start =
      growth_crossover_year(publications(Topic::kEdgeComputing),
                            publications(Topic::kCloudComputing), 1.5);
  return {cloud_start - 1, (edge_start > 0 ? edge_start : kLastYear) - 1};
}

double cagr(std::span<const TrendPoint> series, int from_year,
            int to_year) noexcept {
  const double v0 = value_in(series, from_year);
  const double v1 = value_in(series, to_year);
  if (v0 <= 0.0 || v1 <= 0.0 || to_year <= from_year) return 0.0;
  return std::pow(v1 / v0, 1.0 / static_cast<double>(to_year - from_year)) -
         1.0;
}

stats::LinearFit log_growth_fit(std::span<const TrendPoint> series,
                                int from_year, int to_year) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const TrendPoint& p : series) {
    if (p.year >= from_year && p.year <= to_year && p.value > 0.0) {
      xs.push_back(static_cast<double>(p.year));
      ys.push_back(std::log(p.value));
    }
  }
  return stats::fit_linear(xs, ys);
}

int growth_crossover_year(std::span<const TrendPoint> a,
                          std::span<const TrendPoint> b,
                          double margin) noexcept {
  for (int year = kFirstYear + 1; year <= kLastYear; ++year) {
    const double a0 = value_in(a, year - 1);
    const double a1 = value_in(a, year);
    const double b0 = value_in(b, year - 1);
    const double b1 = value_in(b, year);
    if (a0 <= 0.0 || b0 <= 0.0 || b1 <= 0.0) continue;
    if ((a1 / a0) > margin * (b1 / b0) && a1 > a0) return year;
  }
  return -1;
}

}  // namespace shears::trends
