// The Fig. 1 measurement substrate: the paper counted publications with a
// custom Google Scholar crawler ([38]). We cannot crawl Scholar offline,
// so we build the equivalent: a deterministic synthetic publication
// corpus whose topic adoption follows the published series, and a
// phrase-query crawler (with result pagination, like the real one) that
// recounts the series from raw records. The embedded Fig. 1 series stays
// the ground truth; the crawler demonstrates and tests the methodology.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trends/trends.hpp"

namespace shears::trends {

/// One synthetic publication record.
struct Publication {
  int year = 0;
  std::string title;
};

/// A deterministic corpus of publications, 2004-2019. Keyword papers
/// follow the embedded per-year counts divided by `scale` (the full
/// corpus would hold ~500k records; scale 10 keeps tests fast); decoy
/// papers use near-miss vocabulary ("edge detection", "cloud droplet
/// physics") that a naive substring match would miscount.
class SyntheticCorpus {
 public:
  struct Options {
    std::uint64_t seed = 2020;
    /// Divisor on the embedded per-year counts.
    double scale = 10.0;
    /// Decoy (non-matching) papers per matching paper.
    double decoy_ratio = 1.5;
  };

  static SyntheticCorpus generate(const Options& options);

  [[nodiscard]] std::span<const Publication> publications() const noexcept {
    return publications_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return publications_.size();
  }

 private:
  explicit SyntheticCorpus(std::vector<Publication> publications)
      : publications_(std::move(publications)) {}

  std::vector<Publication> publications_;
};

/// Phrase-query crawler over a corpus: counts publications per year whose
/// title contains the exact phrase (case-insensitive), visiting results
/// in pages like the real crawler.
struct CrawlerOptions {
  std::size_t page_size = 100;   ///< results fetched per request
  std::size_t max_pages = 1000;  ///< crawl budget per (phrase, year)
};

class KeywordCrawler {
 public:
  using Options = CrawlerOptions;

  explicit KeywordCrawler(const SyntheticCorpus& corpus,
                          Options options = {})
      : corpus_(&corpus), options_(options) {}

  /// Yearly counts for a phrase over [kFirstYear, kLastYear].
  [[nodiscard]] std::vector<TrendPoint> count_by_year(
      const std::string& phrase) const;

  /// Total requests issued by the last count_by_year call.
  [[nodiscard]] std::size_t requests_issued() const noexcept {
    return requests_;
  }

 private:
  const SyntheticCorpus* corpus_;
  Options options_;
  mutable std::size_t requests_ = 0;
};

/// Case-insensitive phrase containment (exact phrase, not bag of words).
[[nodiscard]] bool contains_phrase(const std::string& text,
                                   const std::string& phrase);

}  // namespace shears::trends
