#include "trends/crawler.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "stats/rng.hpp"

namespace shears::trends {

namespace {

constexpr const char* kAdjectives[] = {
    "Scalable", "Efficient", "Towards", "Rethinking", "Adaptive",
    "Secure",   "Elastic",   "Robust",  "Practical",  "Distributed",
};
constexpr const char* kDomains[] = {
    "IoT analytics",     "video streaming",   "smart manufacturing",
    "mobile offloading", "data management",   "service placement",
    "network functions", "machine learning",  "healthcare systems",
    "vehicular systems",
};
/// Titles that contain the bare words but not the exact phrase — a naive
/// word-bag matcher would miscount these.
constexpr const char* kDecoys[] = {
    "Edge detection in noisy images",
    "Cloud droplet physics in convective storms",
    "Computing minimum spanning trees at the graph edge",
    "Point cloud registration for robotics",
    "Cutting-edge advances in compilers",
    "Cloud cover estimation from satellite imagery",
    "Spectral methods for edge colouring",
    "Cloud chamber experiments in particle physics",
};

std::string make_title(const char* keyword, stats::Xoshiro256& rng) {
  const auto* adj = kAdjectives[rng.bounded(std::size(kAdjectives))];
  const auto* domain = kDomains[rng.bounded(std::size(kDomains))];
  return std::string(adj) + " " + keyword + " for " + domain;
}

char to_lower_ascii(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

SyntheticCorpus SyntheticCorpus::generate(const Options& options) {
  std::vector<Publication> publications;
  stats::Xoshiro256 rng(options.seed);

  const struct {
    Topic topic;
    const char* keyword;
  } topics[] = {
      {Topic::kEdgeComputing, "edge computing"},
      {Topic::kCloudComputing, "cloud computing"},
  };

  for (const auto& [topic, keyword] : topics) {
    for (const TrendPoint& point : trends::publications(topic)) {
      const auto count = static_cast<std::size_t>(
          std::llround(point.value / options.scale));
      for (std::size_t i = 0; i < count; ++i) {
        publications.push_back({point.year, make_title(keyword, rng)});
      }
      // Decoys spread proportionally across the same years.
      const auto decoys = static_cast<std::size_t>(
          std::llround(count * options.decoy_ratio));
      for (std::size_t i = 0; i < decoys; ++i) {
        publications.push_back(
            {point.year,
             std::string(kDecoys[rng.bounded(std::size(kDecoys))])});
      }
    }
  }
  // Shuffle so no consumer can rely on grouping (Fisher-Yates).
  for (std::size_t i = publications.size(); i > 1; --i) {
    std::swap(publications[i - 1], publications[rng.bounded(i)]);
  }
  return SyntheticCorpus(std::move(publications));
}

bool contains_phrase(const std::string& text, const std::string& phrase) {
  if (phrase.empty()) return true;
  if (text.size() < phrase.size()) return false;
  const auto matches_at = [&](std::size_t offset) {
    for (std::size_t i = 0; i < phrase.size(); ++i) {
      if (to_lower_ascii(text[offset + i]) != to_lower_ascii(phrase[i])) {
        return false;
      }
    }
    return true;
  };
  for (std::size_t offset = 0; offset + phrase.size() <= text.size();
       ++offset) {
    if (matches_at(offset)) return true;
  }
  return false;
}

std::vector<TrendPoint> KeywordCrawler::count_by_year(
    const std::string& phrase) const {
  requests_ = 0;
  std::vector<TrendPoint> series;
  for (int year = kFirstYear; year <= kLastYear; ++year) {
    // Paginate through the corpus like the real crawler pages through
    // result lists: fixed-size pages, bounded budget.
    std::size_t matches = 0;
    std::size_t scanned = 0;
    std::size_t pages = 0;
    const auto all = corpus_->publications();
    while (scanned < all.size() && pages < options_.max_pages) {
      ++pages;
      ++requests_;
      const std::size_t page_end =
          std::min(all.size(), scanned + options_.page_size);
      for (; scanned < page_end; ++scanned) {
        const Publication& pub = all[scanned];
        if (pub.year == year && contains_phrase(pub.title, phrase)) {
          ++matches;
        }
      }
    }
    series.push_back({year, static_cast<double>(matches)});
  }
  return series;
}

}  // namespace shears::trends
