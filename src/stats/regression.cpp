#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace shears::stats {

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fit_linear: size mismatch");
  }
  LinearFit fit;
  fit.n = x.size();
  if (fit.n < 2) {
    fit.intercept = fit.n == 1 ? y[0] : 0.0;
    return fit;
  }
  const auto n = static_cast<double>(fit.n);
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

/// Mid-rank transform (ties share the average rank).
std::vector<double> ranks_of(const std::vector<double>& values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(values.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j < order.size() && values[order[j]] == values[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j - 1)) /
                           2.0 + 1.0;
    for (std::size_t k = i; k < j; ++k) ranks[order[k]] = mid;
    i = j;
  }
  return ranks;
}

}  // namespace

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return pearson(ranks_of(x), ranks_of(y));
}

}  // namespace shears::stats
