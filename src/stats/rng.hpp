// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic components of the simulator draw from Xoshiro256** seeded
// via SplitMix64, so that a campaign run with the same seed produces
// bit-identical measurement datasets on every platform. We deliberately do
// not use std::mt19937 / std::*_distribution for anything that feeds the
// persisted datasets: libstdc++/libc++ distribution implementations differ,
// which would break cross-platform reproducibility of the figures.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace shears::stats {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Passes BigCrush when used as a generator itself; here it is only
/// a seed sequence.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t(min)() noexcept { return 0; }
  static constexpr std::uint64_t(max)() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the simulator's workhorse generator. 256-bit state,
/// period 2^256 - 1, passes all known statistical test batteries.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 as recommended by the
  /// xoshiro authors; guarantees a non-zero state for any seed.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t(min)() noexcept { return 0; }
  static constexpr std::uint64_t(max)() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with full 53-bit mantissa resolution.
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  constexpr bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Derives an independent child generator; used to give each probe /
  /// target pair its own stream so that adding probes does not perturb
  /// the draws of existing ones.
  constexpr Xoshiro256 fork(std::uint64_t stream_id) noexcept {
    SplitMix64 sm(state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^
                  0xd1b54a32d192ed03ULL);
    Xoshiro256 child(sm.next());
    return child;
  }

 private:
  // XoshiroLanes advances eight of these states side by side in SoA form
  // (stats/lanes.cpp); it needs the raw words to transpose in and out.
  friend class XoshiroLanes;

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Stable 64-bit hash of a string (FNV-1a); used to derive per-entity RNG
/// stream ids from probe/region identifiers.
constexpr std::uint64_t fnv1a64(const char* data, std::size_t n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace shears::stats
