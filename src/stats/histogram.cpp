#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace shears::stats {

Histogram::Histogram(double lo, double hi, std::size_t n_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(n_bins)),
      counts_(n_bins, 0) {
  if (!(hi > lo) || n_bins == 0) {
    throw std::invalid_argument("Histogram: require hi > lo and n_bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float-edge guard
  ++counts_[idx];
}

std::vector<HistogramBin> Histogram::bins() const {
  std::vector<HistogramBin> out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out.push_back({lo_ + width_ * static_cast<double>(i),
                   lo_ + width_ * static_cast<double>(i + 1), counts_[i]});
  }
  return out;
}

std::size_t Histogram::mode_bin() const noexcept {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return it == counts_.end() ? 0
                             : static_cast<std::size_t>(it - counts_.begin());
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade)
    : log_lo_(std::log10(lo)), log_hi_(std::log10(hi)),
      inv_width_(static_cast<double>(bins_per_decade)) {
  if (!(lo > 0.0) || !(hi > lo) || bins_per_decade == 0) {
    throw std::invalid_argument(
        "LogHistogram: require hi > lo > 0 and bins_per_decade > 0");
  }
  const auto n = static_cast<std::size_t>(
      std::ceil((log_hi_ - log_lo_) * inv_width_));
  counts_.assign(n > 0 ? n : 1, 0);
}

void LogHistogram::add(double x) noexcept {
  ++total_;
  if (!(x > 0.0) || std::log10(x) < log_lo_) {
    ++underflow_;
    return;
  }
  const double lx = std::log10(x);
  if (lx >= log_hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((lx - log_lo_) * inv_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

std::vector<HistogramBin> LogHistogram::bins() const {
  std::vector<HistogramBin> out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double l0 = log_lo_ + static_cast<double>(i) / inv_width_;
    const double l1 = log_lo_ + static_cast<double>(i + 1) / inv_width_;
    out.push_back({std::pow(10.0, l0), std::pow(10.0, l1), counts_[i]});
  }
  return out;
}

}  // namespace shears::stats
