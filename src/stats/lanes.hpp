// Lane-batched PRNG: N independent Xoshiro256** streams advanced side by
// side for the block sampling kernels (net/burst_lanes.hpp).
//
// The lanes are the *same* generators the scalar engine uses — lane l is
// root.fork(stream_ids[l]), exactly the fork the per-probe scalar path
// performs — so any lane's raw 64-bit stream is recoverable by running
// that fork by hand. The batched kernel consumes each lane's stream on a
// *fixed schedule* (a constant number of draws per packet, see
// net/burst_lanes.hpp) instead of the scalar engine's data-dependent
// draw pattern; that is what lets fill_u64_lockstep generate the whole
// draw grid as branch-free 8-wide array code. The two engines therefore
// agree in distribution, not draw for draw — the differential suite
// (src/check) holds them to bounded quantile drift.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "stats/rng.hpp"

namespace shears::stats {

class XoshiroLanes {
 public:
  /// Lane width of the batched kernels. Eight 256-bit states fill the
  /// same four cache lines as one AoS array of them; the win is the
  /// batched transcendental math downstream, not the RNG layout.
  static constexpr std::size_t kLanes = 8;

  XoshiroLanes() noexcept : XoshiroLanes(Xoshiro256(0)) {}
  explicit XoshiroLanes(const Xoshiro256& fill) noexcept
      : lanes_{fill, fill, fill, fill, fill, fill, fill, fill} {}

  /// Stripes lane l from root.fork(stream_ids[l]); unused trailing lanes
  /// (when fewer than kLanes ids are given) keep an arbitrary fork and
  /// must be masked inactive by the caller.
  [[nodiscard]] static XoshiroLanes striped(
      Xoshiro256& root, std::span<const std::uint64_t> stream_ids) noexcept {
    XoshiroLanes lanes(root.fork(0));
    const std::size_t n = stream_ids.size() < kLanes ? stream_ids.size()
                                                     : kLanes;
    for (std::size_t l = 0; l < n; ++l) {
      lanes.lanes_[l] = root.fork(stream_ids[l]);
    }
    return lanes;
  }

  [[nodiscard]] Xoshiro256& lane(std::size_t l) noexcept { return lanes_[l]; }
  [[nodiscard]] const Xoshiro256& lane(std::size_t l) const noexcept {
    return lanes_[l];
  }

  /// Lockstep uniform draw: one next_double() per lane, for stages where
  /// every lane consumes exactly one draw.
  void next_double_all(double out[kLanes]) noexcept {
    for (std::size_t l = 0; l < kLanes; ++l) out[l] = lanes_[l].next_double();
  }

  /// Advances every lane `rounds` steps in lockstep and writes the raw
  /// 64-bit outputs striped as out[r * kLanes + l] — row r holds draw r
  /// of all eight streams. The grid is generated from an SoA transpose
  /// of the lane states with plain array ops (compiled as a SIMD kernel
  /// TU, see stats/lanes.cpp), so the eight streams advance in four
  /// integer vector lanes instead of eight serial dependency chains.
  /// Lanes with advance[l] == false still contribute rows (their slots
  /// carry valid but unused draws) yet have their state restored, so a
  /// masked-out lane's stream position is untouched by the call.
  void fill_u64_lockstep(std::uint64_t* out, std::size_t rounds,
                         const std::array<bool, kLanes>& advance) noexcept;

 private:
  std::array<Xoshiro256, kLanes> lanes_;
};

}  // namespace shears::stats
