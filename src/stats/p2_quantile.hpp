// P² (piecewise-parabolic) streaming quantile estimation — Jain & Chlamtac
// 1985. Tracks a single quantile in O(1) memory; the full nine-month
// campaign produces tens of millions of samples per analysis cell, and
// P² lets dashboards track medians/percentiles without retaining them.
#pragma once

#include <array>
#include <cstdint>

namespace shears::stats {

class P2Quantile {
 public:
  /// q in (0, 1): the quantile to track.
  explicit P2Quantile(double q);

  void add(double x) noexcept;

  /// Current estimate. Exact while fewer than 5 samples were seen;
  /// undefined (0) before the first sample.
  [[nodiscard]] double value() const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Structural invariants of the marker state, exposed for the property
  /// harness (shears_check): once the estimator leaves exact mode
  /// (count >= 5), marker heights are nondecreasing and marker positions
  /// strictly increase from the pinned extremes (positions[0] == 1,
  /// positions[4] == count). Always true before the fifth sample.
  [[nodiscard]] bool invariants_ok() const noexcept;

 private:
  void insert_initial(double x) noexcept;
  [[nodiscard]] double parabolic(int i, int d) const noexcept;
  [[nodiscard]] double linear(int i, int d) const noexcept;

  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    ///< marker heights
  std::array<double, 5> positions_{};  ///< actual marker positions
  std::array<double, 5> desired_{};    ///< desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace shears::stats
