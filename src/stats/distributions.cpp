#include "stats/distributions.hpp"

#include <cmath>

namespace shears::stats {

double sample_standard_normal(Xoshiro256& rng) noexcept {
  // Marsaglia polar method. We discard the second variate rather than
  // caching it: the samplers must stay stateless so that forked RNG streams
  // remain independent.
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Xoshiro256& rng, double mean, double sigma) noexcept {
  return mean + sigma * sample_standard_normal(rng);
}

double sample_lognormal(Xoshiro256& rng, double mu, double sigma) noexcept {
  return std::exp(sample_normal(rng, mu, sigma));
}

double sample_lognormal_median(Xoshiro256& rng, double median,
                               double spread) noexcept {
  if (median <= 0.0) return 0.0;
  const double sigma = spread > 1.0 ? std::log(spread) : 0.0;
  return median * std::exp(sigma * sample_standard_normal(rng));
}

double sample_exponential(Xoshiro256& rng, double mean) noexcept {
  // Inverse CDF; 1 - U avoids log(0).
  return -mean * std::log(1.0 - rng.next_double());
}

double sample_weibull(Xoshiro256& rng, double shape, double scale) noexcept {
  const double u = 1.0 - rng.next_double();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double sample_pareto(Xoshiro256& rng, double x_min, double alpha) noexcept {
  const double u = 1.0 - rng.next_double();
  return x_min / std::pow(u, 1.0 / alpha);
}

std::size_t sample_weighted(Xoshiro256& rng, const double* weights,
                            std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i] > 0.0 ? weights[i] : 0.0;
  if (total <= 0.0 || n == 0) return 0;
  double r = rng.next_double() * total;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return n - 1;
}

}  // namespace shears::stats
