#include "stats/distributions.hpp"

namespace shears::stats {

std::size_t sample_weighted(Xoshiro256& rng, const double* weights,
                            std::size_t n) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += weights[i] > 0.0 ? weights[i] : 0.0;
  if (total <= 0.0 || n == 0) return 0;
  double r = rng.next_double() * total;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return n - 1;
}

}  // namespace shears::stats
