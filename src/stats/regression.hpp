// Ordinary least squares on (x, y) pairs — used by the trends module to
// quantify the growth of "edge computing" publications (Fig. 1) and by the
// calibration tests to check latency-vs-distance linearity.
#pragma once

#include <cstddef>
#include <vector>

namespace shears::stats {

/// Result of a simple linear regression y ~ intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination in [0, 1]
  std::size_t n = 0;

  [[nodiscard]] double predict(double x) const noexcept {
    return intercept + slope * x;
  }
};

/// Fits OLS over parallel vectors (must be the same length; n >= 2 for a
/// meaningful slope — with fewer points slope/r² are 0).
LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y);

/// Pearson correlation coefficient; 0 when undefined (constant input).
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (Pearson over mid-ranks); robust to the
/// monotone-but-nonlinear relations the path engines exhibit. 0 when
/// undefined.
double spearman(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace shears::stats
