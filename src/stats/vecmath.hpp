// Branch-light array transcendentals for the batched sampling kernels.
//
// glibc's exp/log are scalar calls (its vector variants live in libmvec
// and demand -ffast-math semantics the determinism contract forbids), so
// the lane-batched burst kernel evaluates its lognormal / Weibull /
// Pareto math through these plain-array polynomial routines, which the
// autovectorizer turns into AVX2 code on the kernel TUs (see
// cmake/ShearsKernels.cmake). Two properties matter more than speed:
//
//   * Determinism across builds: every operation below is exact-order
//     IEEE arithmetic — no FMA (kernel TUs pin -ffp-contract=off), no
//     reassociation, no table lookups — so a given input produces the
//     same bits whether the loop was vectorized or compiled scalar. The
//     SIMD and forced-scalar builds are bit-identical by construction.
//   * Bounded drift against libm: the routines are accurate to ~1e-10
//     relative rather than correctly rounded — the batched sampler is
//     gated distributionally (scalar-vs-batched differential oracle,
//     DESIGN.md §6), not by byte identity, so polynomial degrees are
//     chosen for throughput inside that budget.
//
// Domain notes: callers feed exp with |x| <= a few hundred (sigma·z and
// tail exponents) and log with x > 0; inputs outside clamp to the
// nearest boundary instead of producing inf/NaN, which keeps the masked
// dummy slots of partially-active lanes harmless.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace shears::stats::vec {

inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;

/// exp(x) for finite x, clamped to [-708, 708] (beyond which the true
/// value under/overflows a double anyway). Relative error < ~1e-11.
inline double exp_poly(double x) noexcept {
  constexpr double kLog2e = 1.4426950408889634074;
  constexpr double kShift = 0x1.8p52;  // round-to-nearest-integer trick
  // Clamp as one select expression: the vectorizer if-converts this under
  // -fno-trapping-math (see ShearsKernels.cmake), where statement-form
  // reassignment chains defeat GCC 12's if-conversion.
  const double xc = x > 708.0 ? 708.0 : (x < -708.0 ? -708.0 : x);
  const double kd = xc * kLog2e + kShift;
  const double k = kd - kShift;  // nearest integer to xc * log2(e)
  const double r = (xc - k * kLn2Hi) - k * kLn2Lo;  // |r| <= ln2/2
  // Taylor for exp(r), degree 9 in exact Horner order: the truncation
  // term r^10/10! is < 7e-12 on the reduced range — far inside the
  // distributional gate's budget, and four Horner steps cheaper than a
  // faithful-rounding degree.
  double p = 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  // Scale by 2^k through the exponent bits; |k| <= 1022 after the clamp,
  // so the biased exponent never leaves (0, 2046). The integer k is read
  // out of kd's mantissa (kd == 1.5·2^52 + k exactly), which keeps the
  // whole routine in integer/fp lanes the vectorizer handles.
  const std::int64_t ik =
      (std::bit_cast<std::int64_t>(kd) & 0x000FFFFFFFFFFFFFLL) -
      0x0008000000000000LL;
  const double scale = std::bit_cast<double>((ik + 1023) << 52);
  return p * scale;
}

/// log(x) for x > 0 finite. Inputs below DBL_MIN (including +0 from
/// masked dummy slots) clamp to DBL_MIN, yielding ~-708.4 — more
/// negative than any draw the samplers produce, so downstream exp
/// flushes the value to the same ~0 the scalar path computes. Relative
/// error < ~1e-10.
inline double log_poly(double x) noexcept {
  constexpr double kMinNormal = 2.2250738585072014e-308;
  constexpr double kSqrt2 = 1.41421356237309504880;
  constexpr double kShift = 0x1.8p52;
  const double xs = x < kMinNormal ? kMinNormal : x;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(xs);
  const double m0 = std::bit_cast<double>((bits & 0x000FFFFFFFFFFFFFULL) |
                                          0x3FF0000000000000ULL);  // [1, 2)
  // Biased exponent as a double without an int64->double conversion
  // (which would need AVX512DQ to vectorize): adding the small integer
  // to kShift's bit pattern plants it in the mantissa, so the subtract
  // reads it back exactly — the inverse of exp_poly's rounding trick.
  const double eb =
      std::bit_cast<double>(static_cast<std::int64_t>(bits >> 52) +
                            std::bit_cast<std::int64_t>(kShift)) -
      kShift;
  // Fold the mantissa into [sqrt(2)/2, sqrt(2)) so s stays small. Selects
  // stay in expression form (see exp_poly) and the exponent bump happens
  // in exact double arithmetic, keeping the whole routine if-convertible.
  const bool fold = m0 > kSqrt2;
  const double m = fold ? m0 * 0.5 : m0;
  const double ed = (fold ? eb + 1.0 : eb) - 1023.0;
  const double s = (m - 1.0) / (m + 1.0);  // |s| <= 0.1716
  const double z = s * s;
  // atanh series: log(m) = 2s (1 + z/3 + z^2/5 + ...); z <= 0.0295, the
  // z^5/11 truncation is < 3e-9 relative on log(m) and shrinks with the
  // exponent term folded in — inside the distributional gate's budget.
  double p = 1.0 / 9.0;
  p = p * z + 1.0 / 7.0;
  p = p * z + 1.0 / 5.0;
  p = p * z + 1.0 / 3.0;
  p = p * z + 1.0;
  const double lm = 2.0 * s * p;
  return ed * kLn2Hi + (lm + ed * kLn2Lo);
}

/// sin(2*pi*t) for |t| <= 0.25 (one quarter period, in turns). Taylor
/// degree 11 in exact Horner order; the degree-13 truncation term is
/// < 6e-8 at the |t| = 0.25 boundary — far inside the epsilon budget of
/// the batched-sampling differential gate, which is distributional.
inline double sin_2pi_quarter(double t) noexcept {
  constexpr double k2Pi = 6.283185307179586476925286766559;
  constexpr double c0 = k2Pi;
  constexpr double c1 = -k2Pi * k2Pi * k2Pi / 6.0;
  constexpr double c2 = k2Pi * k2Pi * k2Pi * k2Pi * k2Pi / 120.0;
  constexpr double c3 = -c2 * k2Pi * k2Pi / 42.0;   // -(2pi)^7/7!
  constexpr double c4 = -c3 * k2Pi * k2Pi / 72.0;   // +(2pi)^9/9!
  constexpr double c5 = -c4 * k2Pi * k2Pi / 110.0;  // -(2pi)^11/11!
  const double z = t * t;
  double p = c5;
  p = p * z + c4;
  p = p * z + c3;
  p = p * z + c2;
  p = p * z + c1;
  p = p * z + c0;
  return t * p;
}

/// cos(2*pi*v) and sin(2*pi*v) for v in [0, 1) — one full turn, the
/// Box–Muller angle. Branch-free quarter-period folding onto
/// sin_2pi_quarter so the loop around it if-converts and vectorizes.
inline void cossin_2pi(double v, double& cos_out, double& sin_out) noexcept {
  // Centre the turn: y in [-0.5, 0.5), cos(2*pi*v) = -cos(2*pi*y),
  // sin(2*pi*v) = -sin(2*pi*y).
  const double y = v - 0.5;
  const double a = y < 0.0 ? -y : y;  // |y| in [0, 0.5]
  // cos(2*pi*a) = -sin(2*pi*(a - 0.25)), argument already in a quarter.
  cos_out = sin_2pi_quarter(a - 0.25);
  // sin(2*pi*a) = sin of the folded quarter 0.25 - |a - 0.25|, always
  // >= 0 on [0, 0.5]; restore the sign of y, then the half-turn flip.
  const double d = a - 0.25;
  const double q = 0.25 - (d < 0.0 ? -d : d);
  const double s = sin_2pi_quarter(q);
  sin_out = y < 0.0 ? s : -s;
}

inline void vexp(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_poly(x[i]);
}

inline void vlog(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = log_poly(x[i]);
}

/// Exact (correctly rounded in hardware); vectorizes to vsqrtpd under
/// -fno-math-errno.
inline void vsqrt(const double* x, double* out, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::sqrt(x[i]);
}

}  // namespace shears::stats::vec
