#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/ecdf.hpp"

namespace shears::stats {

namespace {

std::vector<double> resample(const std::vector<double>& sample,
                             Xoshiro256& rng) {
  std::vector<double> out(sample.size());
  for (auto& v : out) v = sample[rng.bounded(sample.size())];
  return out;
}

BootstrapInterval interval_from(std::vector<double> replicas, double point,
                                double level) {
  Ecdf dist(std::move(replicas));
  const double alpha = (1.0 - level) / 2.0;
  return {point, dist.quantile(alpha), dist.quantile(1.0 - alpha), level};
}

}  // namespace

BootstrapInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    double level, std::size_t replicates, Xoshiro256& rng) {
  if (sample.empty() || replicates == 0) {
    throw std::invalid_argument("bootstrap_ci: empty sample or no replicates");
  }
  std::vector<double> replicas;
  replicas.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    replicas.push_back(statistic(resample(sample, rng)));
  }
  return interval_from(std::move(replicas), statistic(sample), level);
}

BootstrapInterval bootstrap_ratio_ci(
    const std::vector<double>& numerator,
    const std::vector<double>& denominator,
    const std::function<double(const std::vector<double>&)>& statistic,
    double level, std::size_t replicates, Xoshiro256& rng) {
  if (numerator.empty() || denominator.empty() || replicates == 0) {
    throw std::invalid_argument("bootstrap_ratio_ci: empty sample");
  }
  std::vector<double> replicas;
  replicas.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    const double num = statistic(resample(numerator, rng));
    const double den = statistic(resample(denominator, rng));
    replicas.push_back(den != 0.0 ? num / den : 0.0);
  }
  const double den0 = statistic(denominator);
  const double point = den0 != 0.0 ? statistic(numerator) / den0 : 0.0;
  return interval_from(std::move(replicas), point, level);
}

}  // namespace shears::stats
