#include "stats/ranktest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace shears::stats {

namespace {

/// Complementary normal CDF via the error function.
double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

RankSumResult mann_whitney_u(const std::vector<double>& a,
                             const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("mann_whitney_u: empty sample");
  }
  RankSumResult result;
  result.n_a = a.size();
  result.n_b = b.size();

  // Pool, sort, assign mid-ranks.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(a.size() + b.size());
  for (const double v : a) pooled.push_back({v, true});
  for (const double v : b) pooled.push_back({v, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  const double n = static_cast<double>(pooled.size());
  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum of t^3 - t over tie groups
  std::size_t i = 0;
  while (i < pooled.size()) {
    std::size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
    const double t = static_cast<double>(j - i);
    // Mid-rank of the tie group (1-based ranks).
    const double mid_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (pooled[k].from_a) rank_sum_a += mid_rank;
    }
    tie_term += t * t * t - t;
    i = j;
  }

  const double na = static_cast<double>(result.n_a);
  const double nb = static_cast<double>(result.n_b);
  result.u_statistic = rank_sum_a - na * (na + 1.0) / 2.0;
  result.effect_size = result.u_statistic / (na * nb);

  const double mean_u = na * nb / 2.0;
  const double variance =
      na * nb / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (variance <= 0.0) {
    // All values identical: no evidence of a shift.
    result.z_score = 0.0;
    result.p_two_sided = 1.0;
    return result;
  }
  result.z_score = (result.u_statistic - mean_u) / std::sqrt(variance);
  result.p_two_sided = 2.0 * normal_sf(std::abs(result.z_score));
  if (result.p_two_sided > 1.0) result.p_two_sided = 1.0;
  return result;
}

KsResult kolmogorov_smirnov(const std::vector<double>& a,
                            const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("kolmogorov_smirnov: empty sample");
  }
  std::vector<double> sa = a;
  std::vector<double> sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  KsResult result;
  result.n_a = sa.size();
  result.n_b = sb.size();

  // Sweep the merged order statistics tracking both empirical CDFs.
  std::size_t i = 0;
  std::size_t j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(j) / static_cast<double>(sb.size());
    d = std::max(d, std::abs(fa - fb));
  }
  result.statistic = d;

  // Asymptotic Kolmogorov distribution: Q(lambda) = 2 sum (-1)^{k-1}
  // exp(-2 k^2 lambda^2).
  const double na = static_cast<double>(result.n_a);
  const double nb = static_cast<double>(result.n_b);
  const double effective_n = na * nb / (na + nb);
  const double lambda =
      (std::sqrt(effective_n) + 0.12 + 0.11 / std::sqrt(effective_n)) * d;
  if (lambda < 0.3) {
    // The series oscillates without converging for tiny lambda; the true
    // Q is indistinguishable from 1 there.
    result.p_value = 1.0;
    return result;
  }
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  result.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  return result;
}

}  // namespace shears::stats
