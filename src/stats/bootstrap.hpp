// Non-parametric bootstrap confidence intervals, used to attach uncertainty
// to figure-level statistics (e.g. the wireless/wired ratio of Fig. 7).
#pragma once

#include <functional>
#include <vector>

#include "stats/rng.hpp"

namespace shears::stats {

/// A two-sided percentile bootstrap confidence interval.
struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the original sample
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.0;  ///< e.g. 0.95
};

/// Percentile bootstrap for a statistic of one sample. `statistic` receives
/// a resampled vector of the same size as `sample`. Deterministic given the
/// RNG state. `replicates` resamples are drawn (>= 1).
BootstrapInterval bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    double level, std::size_t replicates, Xoshiro256& rng);

/// Bootstrap CI for the ratio statistic(sample_a) / statistic(sample_b),
/// resampling both sides independently — matches the Fig. 7 wireless/wired
/// median-ratio construction.
BootstrapInterval bootstrap_ratio_ci(
    const std::vector<double>& numerator,
    const std::vector<double>& denominator,
    const std::function<double(const std::vector<double>&)>& statistic,
    double level, std::size_t replicates, Xoshiro256& rng);

}  // namespace shears::stats
