// Empirical cumulative distribution functions — the workhorse of every
// figure in the paper (Figs. 5, 6, 7 are CDF plots; Fig. 4 is a banded
// quantile map).
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace shears::stats {

/// Immutable ECDF over a sample of doubles. Construction sorts a copy of
/// the sample once; all queries are then O(log n).
class Ecdf {
 public:
  Ecdf() = default;

  /// Builds from an arbitrary (unsorted) sample. NaNs must not be present.
  explicit Ecdf(std::vector<double> sample);

  /// Builds from an already-sorted sample without re-sorting — the merge
  /// paths below and the serving layer's shard refresh produce sorted
  /// data by construction. Throws std::invalid_argument when the input is
  /// not nondecreasing (every query assumes it).
  [[nodiscard]] static Ecdf from_sorted(std::vector<double> sorted);

  /// Exact merge: the ECDF of the union multiset of `parts` (null entries
  /// skipped). Because the full sample is retained, shard summaries merge
  /// without approximation — unlike streaming sketches, the merged
  /// quantiles equal those of an ECDF built over the concatenated raw
  /// samples in one shot, whatever the shard split was.
  [[nodiscard]] static Ecdf merged(std::span<const Ecdf* const> parts);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// F(x): fraction of samples <= x. 0 for an empty ECDF.
  [[nodiscard]] double fraction_at_or_below(double x) const noexcept;

  /// Fraction of samples strictly below x.
  [[nodiscard]] double fraction_below(double x) const noexcept;

  /// Quantile with linear interpolation between order statistics
  /// (type-7 / numpy default). q is clamped to [0, 1]. NaN when the
  /// sample is empty — an empty ECDF has no quantiles, and a sentinel
  /// 0.0 would be indistinguishable from a real 0 ms RTT; check empty()
  /// first or let the NaN propagate.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Convenience: quantile(p / 100).
  [[nodiscard]] double percentile(double p) const noexcept {
    return quantile(p / 100.0);
  }

  /// Extremes of the sample; NaN when empty (same rationale as
  /// quantile()).
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double median() const noexcept { return quantile(0.5); }

  /// The sorted sample (for plot rendering).
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }

  /// Structural invariant, exposed for the property harness
  /// (shears_check): the retained sample is nondecreasing — every query
  /// (binary search, interpolation) assumes it.
  [[nodiscard]] bool invariants_ok() const noexcept {
    return std::is_sorted(sorted_.begin(), sorted_.end());
  }

  /// Evaluates the CDF at each of `points`, returning (x, F(x)) pairs —
  /// the series a plotting tool consumes.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      const std::vector<double>& points) const;

  /// Uniformly spaced n-point rendering of the CDF over [min, max].
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t n_points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace shears::stats
