// Sampling routines for the latency model's noise processes.
//
// The network simulator composes three stochastic ingredients:
//   * log-normal jitter around a per-path baseline (the canonical model for
//     Internet RTT variability),
//   * Weibull-distributed bufferbloat episode durations (heavy-ish tail,
//     bounded below), and
//   * Pareto tails for rare routing events (route flaps, handovers).
// All samplers are implemented directly against Xoshiro256 instead of
// std::*_distribution for cross-platform determinism (see rng.hpp).
#pragma once

#include <cstdint>

#include "stats/rng.hpp"

namespace shears::stats {

/// Standard normal via the polar (Marsaglia) method.
double sample_standard_normal(Xoshiro256& rng) noexcept;

/// Normal with the given mean and standard deviation (sigma >= 0).
double sample_normal(Xoshiro256& rng, double mean, double sigma) noexcept;

/// Log-normal parameterised by the *location/scale of the underlying
/// normal*: exp(N(mu, sigma)).
double sample_lognormal(Xoshiro256& rng, double mu, double sigma) noexcept;

/// Log-normal parameterised by its own median and a multiplicative spread
/// factor: median * exp(N(0, ln(spread))). spread == 1 degenerates to the
/// median. Convenient for "RTT is median m, occasionally 2-3x" modelling.
double sample_lognormal_median(Xoshiro256& rng, double median,
                               double spread) noexcept;

/// Exponential with the given mean (mean > 0).
double sample_exponential(Xoshiro256& rng, double mean) noexcept;

/// Weibull with shape k and scale lambda (both > 0).
double sample_weibull(Xoshiro256& rng, double shape, double scale) noexcept;

/// Pareto (type I) with scale x_m > 0 and tail index alpha > 0; support
/// [x_m, inf).
double sample_pareto(Xoshiro256& rng, double x_min, double alpha) noexcept;

/// Samples from a discrete distribution given non-negative weights.
/// Returns an index in [0, n). A zero total weight yields index 0.
std::size_t sample_weighted(Xoshiro256& rng, const double* weights,
                            std::size_t n) noexcept;

/// Clamps a sample into [lo, hi]; used to keep pathological tail draws from
/// destabilising calibration while preserving the distribution body.
constexpr double clamp_sample(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace shears::stats
