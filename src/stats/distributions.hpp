// Sampling routines for the latency model's noise processes.
//
// The network simulator composes three stochastic ingredients:
//   * log-normal jitter around a per-path baseline (the canonical model for
//     Internet RTT variability),
//   * Weibull-distributed bufferbloat episode durations (heavy-ish tail,
//     bounded below), and
//   * Pareto tails for rare routing events (route flaps, handovers).
// All samplers are implemented directly against Xoshiro256 instead of
// std::*_distribution for cross-platform determinism (see rng.hpp).
#pragma once

#include <cmath>
#include <cstdint>

#include "stats/rng.hpp"

namespace shears::stats {

// The per-packet samplers are defined inline: a nine-month campaign draws
// from them tens of millions of times from the atlas hot loop, and the
// cross-TU call cost is measurable there. The definitions are exactly the
// out-of-line ones they replace — same operations, same order, bit-identical
// samples.

/// Standard normal via the polar (Marsaglia) method.
inline double sample_standard_normal(Xoshiro256& rng) noexcept {
  // We discard the second variate rather than caching it: the samplers
  // must stay stateless so that forked RNG streams remain independent.
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

/// Normal with the given mean and standard deviation (sigma >= 0).
inline double sample_normal(Xoshiro256& rng, double mean,
                            double sigma) noexcept {
  return mean + sigma * sample_standard_normal(rng);
}

/// Log-normal parameterised by the *location/scale of the underlying
/// normal*: exp(N(mu, sigma)).
inline double sample_lognormal(Xoshiro256& rng, double mu,
                               double sigma) noexcept {
  return std::exp(sample_normal(rng, mu, sigma));
}

/// The underlying-normal sigma sample_lognormal_median derives from a
/// spread factor; hoist it out of hot loops where the spread is invariant.
[[nodiscard]] inline double lognormal_sigma_of_spread(double spread) noexcept {
  return spread > 1.0 ? std::log(spread) : 0.0;
}

/// Hot-path variant of sample_lognormal_median with the sigma precomputed
/// via lognormal_sigma_of_spread. Consumes the same draws and produces
/// bit-identical samples — the median <= 0 guard (which consumes no draws)
/// is preserved.
inline double sample_lognormal_presigma(Xoshiro256& rng, double median,
                                        double sigma) noexcept {
  if (median <= 0.0) return 0.0;
  return median * std::exp(sigma * sample_standard_normal(rng));
}

/// Log-normal parameterised by its own median and a multiplicative spread
/// factor: median * exp(N(0, ln(spread))). spread == 1 degenerates to the
/// median. Convenient for "RTT is median m, occasionally 2-3x" modelling.
inline double sample_lognormal_median(Xoshiro256& rng, double median,
                                      double spread) noexcept {
  return sample_lognormal_presigma(rng, median,
                                   lognormal_sigma_of_spread(spread));
}

/// Exponential with the given mean (mean > 0).
inline double sample_exponential(Xoshiro256& rng, double mean) noexcept {
  // Inverse CDF; 1 - U avoids log(0).
  return -mean * std::log(1.0 - rng.next_double());
}

/// Weibull with shape k and scale lambda (both > 0).
inline double sample_weibull(Xoshiro256& rng, double shape,
                             double scale) noexcept {
  const double u = 1.0 - rng.next_double();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

/// Pareto (type I) with scale x_m > 0 and tail index alpha > 0; support
/// [x_m, inf).
inline double sample_pareto(Xoshiro256& rng, double x_min,
                            double alpha) noexcept {
  const double u = 1.0 - rng.next_double();
  return x_min / std::pow(u, 1.0 / alpha);
}

/// Samples from a discrete distribution given non-negative weights.
/// Returns an index in [0, n). A zero total weight yields index 0.
std::size_t sample_weighted(Xoshiro256& rng, const double* weights,
                            std::size_t n) noexcept;

/// Clamps a sample into [lo, hi]; used to keep pathological tail draws from
/// destabilising calibration while preserving the distribution body.
constexpr double clamp_sample(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace shears::stats
