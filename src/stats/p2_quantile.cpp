#include "stats/p2_quantile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace shears::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0) || !(q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
  }
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::insert_initial(double x) noexcept {
  heights_[count_] = x;
  ++count_;
  if (count_ == 5) {
    std::sort(heights_.begin(), heights_.end());
  }
}

double P2Quantile::parabolic(int i, int d) const noexcept {
  const double np = positions_[static_cast<std::size_t>(i + 1)];
  const double nm = positions_[static_cast<std::size_t>(i - 1)];
  const double n = positions_[static_cast<std::size_t>(i)];
  const double hp = heights_[static_cast<std::size_t>(i + 1)];
  const double hm = heights_[static_cast<std::size_t>(i - 1)];
  const double h = heights_[static_cast<std::size_t>(i)];
  return h + d / (np - nm) *
                 ((n - nm + d) * (hp - h) / (np - n) +
                  (np - n - d) * (h - hm) / (n - nm));
}

double P2Quantile::linear(int i, int d) const noexcept {
  const auto idx = static_cast<std::size_t>(i);
  const auto next = static_cast<std::size_t>(i + d);
  return heights_[idx] + d * (heights_[next] - heights_[idx]) /
                             (positions_[next] - positions_[idx]);
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    insert_initial(x);
    return;
  }

  // Locate the cell and clamp the extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) positions_[static_cast<std::size_t>(i)] += 1.0;
  for (int i = 0; i < 5; ++i) {
    desired_[static_cast<std::size_t>(i)] +=
        increments_[static_cast<std::size_t>(i)];
  }

  // Adjust the three interior markers.
  for (int i = 1; i <= 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double d = desired_[idx] - positions_[idx];
    if ((d >= 1.0 && positions_[idx + 1] - positions_[idx] > 1.0) ||
        (d <= -1.0 && positions_[idx - 1] - positions_[idx] < -1.0)) {
      const int sign = d >= 0.0 ? 1 : -1;
      double candidate = parabolic(i, sign);
      if (heights_[idx - 1] < candidate && candidate < heights_[idx + 1]) {
        heights_[idx] = candidate;
      } else {
        heights_[idx] = linear(i, sign);
      }
      positions_[idx] += sign;
    }
  }
  ++count_;
}

bool P2Quantile::invariants_ok() const noexcept {
  if (count_ < 5) return true;
  if (positions_[0] != 1.0 ||
      positions_[4] != static_cast<double>(count_)) {
    return false;
  }
  for (std::size_t i = 1; i < 5; ++i) {
    if (!(positions_[i] > positions_[i - 1])) return false;
    if (heights_[i] < heights_[i - 1]) return false;
  }
  return true;
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile (nearest-rank on the sorted prefix).
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const auto rank = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(count_ - 1),
                         std::floor(q_ * static_cast<double>(count_))));
    return sorted[rank];
  }
  return heights_[2];
}

}  // namespace shears::stats
