#include "stats/rng.hpp"

namespace shears::stats {

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method with rejection to remove bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace shears::stats
