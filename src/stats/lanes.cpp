// Lockstep generation for XoshiroLanes (see lanes.hpp).
//
// The Xoshiro256** recurrence defeats GCC 12's loop vectorizer (the
// cross-round state dependence reads as an "unsupported use"), so the
// hot loop uses GNU vector extensions instead of relying on
// autovectorization: 4x64-bit integer vectors, two per state word for
// the eight lanes. These are portable GNU C (GCC/Clang), not ISA
// intrinsics — under -mavx2 (cmake/ShearsKernels.cmake) they lower to
// single AVX2 ops, and in the SHEARS_DISABLE_SIMD build to baseline
// SSE2/scalar code. Either way the math is exact unsigned 64-bit
// arithmetic — shifts, xors, rotates and multiplies by 5/9 — so the
// outputs and final states are bit-identical to calling
// lanes_[l].next() `rounds` times on every build.
#include "stats/lanes.hpp"

namespace shears::stats {
namespace {

typedef std::uint64_t V4 __attribute__((vector_size(32)));

constexpr std::size_t kVecWidth = 4;
constexpr std::size_t kVecs = XoshiroLanes::kLanes / kVecWidth;
static_assert(XoshiroLanes::kLanes % kVecWidth == 0);

}  // namespace

void XoshiroLanes::fill_u64_lockstep(
    std::uint64_t* out, std::size_t rounds,
    const std::array<bool, kLanes>& advance) noexcept {
  // SoA transpose of the lane states: word w of every lane contiguous,
  // split into kVecs vector registers.
  V4 s0[kVecs], s1[kVecs], s2[kVecs], s3[kVecs];
  for (std::size_t h = 0; h < kVecs; ++h)
    for (std::size_t j = 0; j < kVecWidth; ++j) {
      const std::size_t l = h * kVecWidth + j;
      s0[h][j] = lanes_[l].state_[0];
      s1[h][j] = lanes_[l].state_[1];
      s2[h][j] = lanes_[l].state_[2];
      s3[h][j] = lanes_[l].state_[3];
    }

  for (std::size_t r = 0; r < rounds; ++r) {
    std::uint64_t* row = out + r * kLanes;
    for (std::size_t h = 0; h < kVecs; ++h) {
      // Exactly Xoshiro256::next(), vector-form.
      const V4 x = s1[h] * 5;
      const V4 result = ((x << 7) | (x >> 57)) * 9;
      __builtin_memcpy(row + h * kVecWidth, &result, sizeof(V4));
      const V4 t = s1[h] << 17;
      s2[h] ^= s0[h];
      s3[h] ^= s1[h];
      s1[h] ^= s2[h];
      s0[h] ^= s3[h];
      s2[h] ^= t;
      s3[h] = (s3[h] << 45) | (s3[h] >> 19);
    }
  }

  for (std::size_t h = 0; h < kVecs; ++h)
    for (std::size_t j = 0; j < kVecWidth; ++j) {
      const std::size_t l = h * kVecWidth + j;
      if (!advance[l]) continue;
      lanes_[l].state_[0] = s0[h][j];
      lanes_[l].state_[1] = s1[h][j];
      lanes_[l].state_[2] = s2[h][j];
      lanes_[l].state_[3] = s3[h][j];
    }
}

}  // namespace shears::stats
