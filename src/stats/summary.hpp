// Streaming summary statistics (Welford) used throughout the analysis
// pipeline wherever a full sample vector is not required.
#pragma once

#include <cstdint>
#include <limits>

namespace shears::stats {

/// Single-pass accumulator for count / mean / variance / min / max.
/// Numerically stable (Welford's algorithm); merging two summaries is
/// exact, which lets campaign shards be aggregated in parallel.
class Summary {
 public:
  constexpr Summary() noexcept = default;

  constexpr void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another summary into this one (Chan's parallel update).
  constexpr void merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] constexpr double mean() const noexcept {
    return count_ ? mean_ : 0.0;
  }
  [[nodiscard]] constexpr double min() const noexcept {
    return count_ ? min_ : 0.0;
  }
  [[nodiscard]] constexpr double max() const noexcept {
    return count_ ? max_ : 0.0;
  }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] constexpr double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] constexpr double sample_variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sample_stddev() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace shears::stats
