// Fixed-width and logarithmic histograms for latency distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace shears::stats {

/// One rendered histogram bin.
struct HistogramBin {
  double lower = 0.0;   ///< inclusive lower edge
  double upper = 0.0;   ///< exclusive upper edge (inclusive for the last bin)
  std::uint64_t count = 0;
};

/// Linear-bin histogram over [lo, hi) with overflow/underflow tracking.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t n_bins);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }

  [[nodiscard]] std::vector<HistogramBin> bins() const;

  /// Index of the fullest bin; 0 if empty.
  [[nodiscard]] std::size_t mode_bin() const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Log-spaced histogram (base-10) for RTTs spanning 1–1000 ms.
class LogHistogram {
 public:
  /// Bins per decade must be >= 1; range [lo, hi) with lo > 0.
  LogHistogram(double lo, double hi, std::size_t bins_per_decade);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::vector<HistogramBin> bins() const;

 private:
  double log_lo_;
  double log_hi_;
  double inv_width_;  ///< bins per unit of log10(x)
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace shears::stats
