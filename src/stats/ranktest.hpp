// Mann-Whitney U (Wilcoxon rank-sum) test — used to attach significance
// to the Fig. 7 wired-vs-wireless comparison instead of eyeballing two
// medians. Normal approximation with tie correction; exact for the
// sample sizes the campaign produces (thousands of bursts).
#pragma once

#include <vector>

namespace shears::stats {

struct RankSumResult {
  double u_statistic = 0.0;   ///< U for the first sample
  double z_score = 0.0;       ///< normal-approximation z (tie-corrected)
  double p_two_sided = 1.0;   ///< two-sided p-value
  /// Common-language effect size: P(a > b) + 0.5 P(a == b). 0.5 = no
  /// effect; 1.0 = every a exceeds every b.
  double effect_size = 0.5;
  std::size_t n_a = 0;
  std::size_t n_b = 0;
};

/// Tests whether samples `a` and `b` come from the same distribution
/// against a location shift. Throws std::invalid_argument when either
/// sample is empty.
[[nodiscard]] RankSumResult mann_whitney_u(const std::vector<double>& a,
                                           const std::vector<double>& b);

struct KsResult {
  double statistic = 0.0;   ///< sup |F_a - F_b|
  double p_value = 1.0;     ///< asymptotic two-sample p
  std::size_t n_a = 0;
  std::size_t n_b = 0;
};

/// Two-sample Kolmogorov-Smirnov test: maximum CDF distance plus the
/// asymptotic Kolmogorov p-value. Sensitive to any distributional
/// difference, not just location — used to compare whole latency
/// distributions (e.g. the two path engines in ablation A6).
/// Throws std::invalid_argument when either sample is empty.
[[nodiscard]] KsResult kolmogorov_smirnov(const std::vector<double>& a,
                                          const std::vector<double>& b);

}  // namespace shears::stats
