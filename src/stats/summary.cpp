#include "stats/summary.hpp"

#include <cmath>

namespace shears::stats {

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::sample_stddev() const noexcept {
  return std::sqrt(sample_variance());
}

}  // namespace shears::stats
