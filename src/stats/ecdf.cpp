#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace shears::stats {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

Ecdf Ecdf::from_sorted(std::vector<double> sorted) {
  if (!std::is_sorted(sorted.begin(), sorted.end())) {
    throw std::invalid_argument("Ecdf::from_sorted: sample not sorted");
  }
  Ecdf ecdf;
  ecdf.sorted_ = std::move(sorted);
  return ecdf;
}

Ecdf Ecdf::merged(std::span<const Ecdf* const> parts) {
  std::size_t total = 0;
  for (const Ecdf* part : parts) {
    if (part != nullptr) total += part->size();
  }
  std::vector<double> out;
  out.reserve(total);
  for (const Ecdf* part : parts) {
    if (part == nullptr || part->empty()) continue;
    const std::size_t mid = out.size();
    out.insert(out.end(), part->sorted().begin(), part->sorted().end());
    std::inplace_merge(out.begin(),
                       out.begin() + static_cast<std::ptrdiff_t>(mid),
                       out.end());
  }
  Ecdf ecdf;
  ecdf.sorted_ = std::move(out);
  return ecdf;
}

double Ecdf::fraction_at_or_below(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::fraction_below(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const noexcept {
  // NaN, not 0.0: an empty sample has no quantiles, and 0.0 is a real
  // (excellent) RTT — callers must check empty() or propagate the NaN.
  if (sorted_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const double h = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = lo + 1 < sorted_.size() ? lo + 1 : lo;
  const double frac = h - std::floor(h);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double Ecdf::min() const noexcept {
  return sorted_.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : sorted_.front();
}
double Ecdf::max() const noexcept {
  return sorted_.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : sorted_.back();
}

std::vector<std::pair<double, double>> Ecdf::curve(
    const std::vector<double>& points) const {
  std::vector<std::pair<double, double>> out;
  out.reserve(points.size());
  for (const double x : points) out.emplace_back(x, fraction_at_or_below(x));
  return out;
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t n_points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || n_points == 0) return out;
  out.reserve(n_points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  const double step =
      n_points > 1 ? (hi - lo) / static_cast<double>(n_points - 1) : 0.0;
  for (std::size_t i = 0; i < n_points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

}  // namespace shears::stats
