#include "geo/spatial_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace shears::geo {

namespace {

constexpr std::uint32_t kLeafSize = 8;

[[nodiscard]] std::array<double, 3> unit_vector(const GeoPoint& p) noexcept {
  const double lat = deg_to_rad(p.lat_deg);
  const double lon = deg_to_rad(p.lon_deg);
  const double cos_lat = std::cos(lat);
  return {cos_lat * std::cos(lon), cos_lat * std::sin(lon), std::sin(lat)};
}

/// Squared chord length admitting every point whose great-circle distance
/// is <= distance_km. The relative margin (1e-9) swamps the rounding
/// difference between the chord and haversine formulations, so pruning by
/// it never discards a candidate the exact comparison would keep.
[[nodiscard]] double chord2_bound(double distance_km) noexcept {
  if (!(distance_km < kMaxSurfaceDistanceKm)) return 5.0;  // nothing prunable
  const double half_angle = distance_km / (2.0 * kEarthRadiusKm);
  const double chord = 2.0 * std::sin(half_angle);
  return chord * chord * (1.0 + 1e-9) + 1e-12;
}

/// Squared Euclidean distance from q to the node's bounding box.
[[nodiscard]] double box_chord2(const std::array<double, 3>& q,
                                const std::array<double, 3>& lo,
                                const std::array<double, 3>& hi) noexcept {
  double d2 = 0.0;
  for (int a = 0; a < 3; ++a) {
    const double d = q[a] < lo[a] ? lo[a] - q[a] : (q[a] > hi[a] ? q[a] - hi[a] : 0.0);
    d2 += d * d;
  }
  return d2;
}

/// The brute-force comparison key: strictly better when nearer, smaller
/// id on an exact tie.
[[nodiscard]] bool better(double d, std::uint32_t id, double best_d,
                          std::uint32_t best_id) noexcept {
  return d < best_d || (d == best_d && id < best_id);
}

}  // namespace

SpatialIndex::SpatialIndex(std::span<const GeoPoint> points) {
  geo_.assign(points.begin(), points.end());
  for (const GeoPoint& p : geo_) {
    if (!is_valid(p)) {
      throw std::invalid_argument("SpatialIndex: point outside WGS-84 ranges");
    }
  }
  if (geo_.empty()) return;
  ids_.resize(geo_.size());
  unit_.resize(geo_.size());
  for (std::uint32_t i = 0; i < geo_.size(); ++i) {
    ids_[i] = i;
    unit_[i] = unit_vector(geo_[i]);
  }
  nodes_.reserve(2 * geo_.size() / kLeafSize + 2);
  build_node(0, static_cast<std::uint32_t>(geo_.size()));
}

std::uint32_t SpatialIndex::build_node(std::uint32_t begin, std::uint32_t end) {
  const std::uint32_t index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    node.lo = {1.0, 1.0, 1.0};
    node.hi = {-1.0, -1.0, -1.0};
    for (std::uint32_t i = begin; i < end; ++i) {
      for (int a = 0; a < 3; ++a) {
        node.lo[a] = std::min(node.lo[a], unit_[i][a]);
        node.hi[a] = std::max(node.hi[a], unit_[i][a]);
      }
    }
  }
  if (end - begin <= kLeafSize) return index;

  // Median split on the widest bounding-box axis. The comparator falls
  // back to the point id so the permutation (hence the whole index) is a
  // pure function of the input, even with duplicate coordinates.
  int axis = 0;
  {
    const Node& node = nodes_[index];
    double widest = -1.0;
    for (int a = 0; a < 3; ++a) {
      const double width = node.hi[a] - node.lo[a];
      if (width > widest) {
        widest = width;
        axis = a;
      }
    }
  }
  const std::uint32_t mid = begin + (end - begin) / 2;
  // Sort ids and unit vectors together through an index permutation.
  std::vector<std::uint32_t> order(end - begin);
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = begin + i;
  std::nth_element(order.begin(), order.begin() + (mid - begin), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (unit_[a][axis] != unit_[b][axis]) {
                       return unit_[a][axis] < unit_[b][axis];
                     }
                     return ids_[a] < ids_[b];
                   });
  std::vector<std::uint32_t> ids_tmp(order.size());
  std::vector<std::array<double, 3>> unit_tmp(order.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    ids_tmp[i] = ids_[order[i]];
    unit_tmp[i] = unit_[order[i]];
  }
  std::copy(ids_tmp.begin(), ids_tmp.end(), ids_.begin() + begin);
  std::copy(unit_tmp.begin(), unit_tmp.end(), unit_.begin() + begin);

  const std::uint32_t left = build_node(begin, mid);
  const std::uint32_t right = build_node(mid, end);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

std::optional<SpatialHit> SpatialIndex::nearest(const GeoPoint& query) const {
  if (empty()) return std::nullopt;
  const std::array<double, 3> q = unit_vector(query);
  double best_d = std::numeric_limits<double>::infinity();
  std::uint32_t best_id = 0;
  double bound = 5.0;  // larger than any chord^2 (max 4)

  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const std::uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (box_chord2(q, node.lo, node.hi) > bound) continue;
    if (node.left == 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const std::uint32_t id = ids_[i];
        const double d = haversine_km(query, geo_[id]);
        if (better(d, id, best_d, best_id)) {
          best_d = d;
          best_id = id;
          bound = chord2_bound(best_d);
        }
      }
      continue;
    }
    // Visit the nearer child first so the bound tightens early.
    const double dl = box_chord2(q, nodes_[node.left].lo, nodes_[node.left].hi);
    const double dr =
        box_chord2(q, nodes_[node.right].lo, nodes_[node.right].hi);
    if (dl <= dr) {
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return SpatialHit{best_id, best_d};
}

std::vector<SpatialHit> SpatialIndex::nearest_n(const GeoPoint& query,
                                                std::size_t n) const {
  std::vector<SpatialHit> best;
  if (empty() || n == 0) return best;
  n = std::min(n, size());
  const std::array<double, 3> q = unit_vector(query);
  // `best` is kept sorted ascending by (distance, id); with n small this
  // insertion sort beats a heap and gives the output order for free.
  best.reserve(n + 1);
  double bound = 5.0;

  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const std::uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (box_chord2(q, node.lo, node.hi) > bound) continue;
    if (node.left == 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const std::uint32_t id = ids_[i];
        const double d = haversine_km(query, geo_[id]);
        if (best.size() == n &&
            !better(d, id, best.back().distance_km, best.back().id)) {
          continue;
        }
        const SpatialHit hit{id, d};
        const auto pos = std::lower_bound(
            best.begin(), best.end(), hit,
            [](const SpatialHit& a, const SpatialHit& b) {
              return better(a.distance_km, a.id, b.distance_km, b.id);
            });
        best.insert(pos, hit);
        if (best.size() > n) best.pop_back();
        if (best.size() == n) bound = chord2_bound(best.back().distance_km);
      }
      continue;
    }
    const double dl = box_chord2(q, nodes_[node.left].lo, nodes_[node.left].hi);
    const double dr =
        box_chord2(q, nodes_[node.right].lo, nodes_[node.right].hi);
    if (dl <= dr) {
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return best;
}

std::vector<SpatialHit> SpatialIndex::within_radius(const GeoPoint& query,
                                                    double radius_km) const {
  std::vector<SpatialHit> hits;
  if (empty() || !(radius_km >= 0.0)) return hits;
  const std::array<double, 3> q = unit_vector(query);
  const double bound = chord2_bound(radius_km);

  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const std::uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (box_chord2(q, node.lo, node.hi) > bound) continue;
    if (node.left == 0) {
      for (std::uint32_t i = node.begin; i < node.end; ++i) {
        const std::uint32_t id = ids_[i];
        const double d = haversine_km(query, geo_[id]);
        if (d <= radius_km) hits.push_back(SpatialHit{id, d});
      }
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
  std::sort(hits.begin(), hits.end(),
            [](const SpatialHit& a, const SpatialHit& b) {
              return better(a.distance_km, a.id, b.distance_km, b.id);
            });
  return hits;
}

}  // namespace shears::geo
