#include "geo/coordinates.hpp"

namespace shears::geo {

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.lat_deg);
  const double lat2 = deg_to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  // Clamp guards against floating error for near-antipodal points.
  const double hc = h > 1.0 ? 1.0 : (h < 0.0 ? 0.0 : h);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(hc));
}

}  // namespace shears::geo
