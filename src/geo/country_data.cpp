// Embedded country dataset.
//
// Coordinates are the primary population centre (usually the capital or the
// largest connectivity hub), which is where RIPE Atlas probes cluster.
// Connectivity tiers follow published broadband/transit measurement
// literature circa 2019-2020; probe weights approximate the real RIPE Atlas
// density skew (Fig. 3b of the paper: dense in EU/NA, sparse elsewhere).
// scatter_km spreads generated probes around the site roughly with national
// geography so that large countries produce wide latency spreads.
#include "geo/country.hpp"

#include <array>

namespace shears::geo {

namespace {

using enum Continent;
constexpr ConnectivityTier T1 = ConnectivityTier::kTier1;
constexpr ConnectivityTier T2 = ConnectivityTier::kTier2;
constexpr ConnectivityTier T3 = ConnectivityTier::kTier3;
constexpr ConnectivityTier T4 = ConnectivityTier::kTier4;

constexpr std::array kCountries = {
    // ---------------------------------------------------------- Europe --
    Country{"AD", "Andorra", kEurope, {42.51, 1.52}, T1, 1, 20, 0.08},
    Country{"AL", "Albania", kEurope, {41.33, 19.82}, T2, 2, 80, 2.9},
    Country{"AT", "Austria", kEurope, {48.21, 16.37}, T1, 25, 200, 8.9},
    Country{"BA", "Bosnia and Herzegovina", kEurope, {43.86, 18.41}, T2, 3, 120, 3.3},
    Country{"BE", "Belgium", kEurope, {50.85, 4.35}, T1, 30, 100, 11.5},
    Country{"BG", "Bulgaria", kEurope, {42.70, 23.32}, T2, 12, 180, 6.9},
    Country{"BY", "Belarus", kEurope, {53.90, 27.57}, T2, 4, 250, 9.4},
    Country{"CH", "Switzerland", kEurope, {47.38, 8.54}, T1, 35, 120, 8.6},
    Country{"CY", "Cyprus", kEurope, {35.19, 33.38}, T2, 4, 60, 1.2},
    Country{"CZ", "Czechia", kEurope, {50.08, 14.44}, T1, 25, 150, 10.7},
    Country{"DE", "Germany", kEurope, {50.11, 8.68}, T1, 170, 350, 83.2},
    Country{"DK", "Denmark", kEurope, {55.68, 12.57}, T1, 20, 150, 5.8},
    Country{"EE", "Estonia", kEurope, {59.44, 24.75}, T1, 6, 100, 1.3},
    Country{"ES", "Spain", kEurope, {40.42, -3.70}, T1, 35, 400, 47.4},
    Country{"FI", "Finland", kEurope, {60.17, 24.94}, T1, 18, 350, 5.5},
    Country{"FR", "France", kEurope, {48.86, 2.35}, T1, 90, 400, 67.4},
    Country{"GB", "United Kingdom", kEurope, {51.51, -0.13}, T1, 80, 300, 67.2},
    Country{"GR", "Greece", kEurope, {37.98, 23.73}, T2, 12, 250, 10.7},
    Country{"HR", "Croatia", kEurope, {45.81, 15.98}, T2, 6, 150, 4.0},
    Country{"HU", "Hungary", kEurope, {47.50, 19.04}, T2, 10, 150, 9.7},
    Country{"IE", "Ireland", kEurope, {53.35, -6.26}, T1, 15, 150, 5.0},
    Country{"IS", "Iceland", kEurope, {64.15, -21.94}, T1, 4, 80, 0.37},
    Country{"IT", "Italy", kEurope, {45.46, 9.19}, T1, 45, 450, 59.6},
    Country{"LI", "Liechtenstein", kEurope, {47.14, 9.52}, T1, 1, 10, 0.04},
    Country{"LT", "Lithuania", kEurope, {54.69, 25.28}, T1, 6, 120, 2.8},
    Country{"LU", "Luxembourg", kEurope, {49.61, 6.13}, T1, 6, 30, 0.63},
    Country{"LV", "Latvia", kEurope, {56.95, 24.11}, T1, 5, 120, 1.9},
    Country{"MD", "Moldova", kEurope, {47.01, 28.86}, T2, 3, 100, 2.6},
    Country{"ME", "Montenegro", kEurope, {42.44, 19.26}, T2, 1, 60, 0.62},
    Country{"MK", "North Macedonia", kEurope, {41.99, 21.43}, T2, 2, 70, 2.1},
    Country{"MT", "Malta", kEurope, {35.90, 14.51}, T2, 2, 15, 0.52},
    Country{"NL", "Netherlands", kEurope, {52.37, 4.90}, T1, 70, 100, 17.4},
    Country{"NO", "Norway", kEurope, {59.91, 10.75}, T1, 18, 400, 5.4},
    Country{"PL", "Poland", kEurope, {52.23, 21.01}, T2, 30, 300, 38.0},
    Country{"PT", "Portugal", kEurope, {38.72, -9.14}, T1, 12, 250, 10.3},
    Country{"RO", "Romania", kEurope, {44.43, 26.10}, T2, 15, 280, 19.3},
    Country{"RS", "Serbia", kEurope, {44.79, 20.45}, T2, 6, 150, 6.9},
    Country{"RU", "Russia", kEurope, {55.76, 37.62}, T2, 50, 1000, 144.1},
    Country{"SE", "Sweden", kEurope, {59.33, 18.07}, T1, 30, 400, 10.4},
    Country{"SI", "Slovenia", kEurope, {46.05, 14.51}, T1, 5, 80, 2.1},
    Country{"SK", "Slovakia", kEurope, {48.15, 17.11}, T2, 6, 150, 5.5},
    Country{"UA", "Ukraine", kEurope, {50.45, 30.52}, T2, 20, 400, 44.1},
    // --------------------------------------------------- North America --
    Country{"US", "United States", kNorthAmerica, {39.10, -94.58}, T1, 160, 900, 331.0},
    Country{"CA", "Canada", kNorthAmerica, {43.65, -79.38}, T1, 40, 600, 38.0},
    Country{"MX", "Mexico", kNorthAmerica, {19.43, -99.13}, T2, 8, 450, 128.9},
    Country{"GT", "Guatemala", kNorthAmerica, {14.63, -90.51}, T3, 0.5, 120, 16.9},
    Country{"HN", "Honduras", kNorthAmerica, {14.07, -87.19}, T3, 0.4, 120, 9.9},
    Country{"SV", "El Salvador", kNorthAmerica, {13.69, -89.19}, T3, 0.4, 60, 6.5},
    Country{"NI", "Nicaragua", kNorthAmerica, {12.11, -86.24}, T3, 0.4, 120, 6.6},
    Country{"CR", "Costa Rica", kNorthAmerica, {9.93, -84.08}, T2, 1, 100, 5.1},
    Country{"PA", "Panama", kNorthAmerica, {8.98, -79.52}, T2, 0.8, 100, 4.3},
    Country{"CU", "Cuba", kNorthAmerica, {23.11, -82.37}, T4, 0.4, 250, 11.3},
    Country{"DO", "Dominican Republic", kNorthAmerica, {18.47, -69.89}, T3, 0.6, 120, 10.8},
    Country{"HT", "Haiti", kNorthAmerica, {18.54, -72.34}, T4, 0.3, 80, 11.4},
    Country{"JM", "Jamaica", kNorthAmerica, {17.97, -76.79}, T3, 0.4, 60, 3.0},
    Country{"TT", "Trinidad and Tobago", kNorthAmerica, {10.65, -61.51}, T3, 0.4, 40, 1.4},
    Country{"BS", "Bahamas", kNorthAmerica, {25.04, -77.35}, T3, 0.3, 80, 0.39},
    Country{"BB", "Barbados", kNorthAmerica, {13.10, -59.62}, T3, 0.3, 20, 0.29},
    Country{"BZ", "Belize", kNorthAmerica, {17.25, -88.77}, T3, 0.3, 80, 0.4},
    Country{"PR", "Puerto Rico", kNorthAmerica, {18.47, -66.11}, T2, 0.8, 50, 3.2},
    // --------------------------------------------------- South America --
    Country{"AR", "Argentina", kSouthAmerica, {-34.60, -58.38}, T2, 10, 700, 45.4},
    Country{"BO", "Bolivia", kSouthAmerica, {-16.49, -68.12}, T3, 1, 300, 11.7},
    Country{"BR", "Brazil", kSouthAmerica, {-23.55, -46.63}, T2, 20, 800, 212.6},
    Country{"CL", "Chile", kSouthAmerica, {-33.45, -70.67}, T2, 8, 600, 19.1},
    Country{"CO", "Colombia", kSouthAmerica, {4.71, -74.07}, T3, 5, 400, 50.9},
    Country{"EC", "Ecuador", kSouthAmerica, {-0.18, -78.47}, T3, 2, 200, 17.6},
    Country{"GY", "Guyana", kSouthAmerica, {6.80, -58.16}, T3, 1, 120, 0.79},
    Country{"PY", "Paraguay", kSouthAmerica, {-25.26, -57.58}, T3, 1, 200, 7.1},
    Country{"PE", "Peru", kSouthAmerica, {-12.05, -77.04}, T3, 3, 400, 32.9},
    Country{"SR", "Suriname", kSouthAmerica, {5.85, -55.20}, T3, 1, 80, 0.59},
    Country{"UY", "Uruguay", kSouthAmerica, {-34.90, -56.16}, T2, 3, 150, 3.5},
    Country{"VE", "Venezuela", kSouthAmerica, {10.48, -66.90}, T4, 2, 350, 28.4},
    // ------------------------------------------------------------- Asia --
    Country{"AE", "United Arab Emirates", kAsia, {25.20, 55.27}, T1, 8, 120, 9.9},
    Country{"AF", "Afghanistan", kAsia, {34.56, 69.21}, T4, 1, 300, 38.9},
    Country{"AM", "Armenia", kAsia, {40.18, 44.51}, T2, 2, 80, 3.0},
    Country{"AZ", "Azerbaijan", kAsia, {40.41, 49.87}, T3, 2, 150, 10.1},
    Country{"BD", "Bangladesh", kAsia, {23.81, 90.41}, T3, 2, 200, 164.7},
    Country{"BH", "Bahrain", kAsia, {26.23, 50.59}, T3, 2, 20, 1.7},
    Country{"BN", "Brunei", kAsia, {4.94, 114.95}, T2, 1, 40, 0.44},
    Country{"BT", "Bhutan", kAsia, {27.47, 89.64}, T3, 1, 60, 0.77},
    Country{"CN", "China", kAsia, {32.00, 114.00}, T2, 15, 800, 1411.0},
    Country{"GE", "Georgia", kAsia, {41.72, 44.83}, T2, 3, 120, 3.7},
    Country{"HK", "Hong Kong", kAsia, {22.32, 114.17}, T1, 10, 30, 7.5},
    Country{"ID", "Indonesia", kAsia, {-6.21, 106.85}, T3, 8, 600, 273.5},
    Country{"IL", "Israel", kAsia, {32.09, 34.78}, T1, 10, 80, 9.2},
    Country{"IN", "India", kAsia, {19.08, 72.88}, T3, 20, 700, 1380.0},
    Country{"IQ", "Iraq", kAsia, {33.31, 44.37}, T4, 1, 250, 40.2},
    Country{"IR", "Iran", kAsia, {35.69, 51.39}, T3, 4, 500, 84.0},
    Country{"JO", "Jordan", kAsia, {31.95, 35.93}, T3, 2, 80, 10.2},
    Country{"JP", "Japan", kAsia, {35.68, 139.69}, T1, 35, 350, 125.8},
    Country{"KG", "Kyrgyzstan", kAsia, {42.87, 74.59}, T3, 1, 150, 6.6},
    Country{"KH", "Cambodia", kAsia, {11.56, 104.92}, T3, 1, 150, 16.7},
    Country{"KR", "South Korea", kAsia, {37.57, 126.98}, T1, 15, 150, 51.8},
    Country{"KW", "Kuwait", kAsia, {29.38, 47.99}, T3, 2, 40, 4.3},
    Country{"KZ", "Kazakhstan", kAsia, {43.24, 76.89}, T3, 3, 600, 18.8},
    Country{"LA", "Laos", kAsia, {17.96, 102.61}, T3, 1, 150, 7.3},
    Country{"LB", "Lebanon", kAsia, {33.89, 35.50}, T3, 1, 40, 6.8},
    Country{"LK", "Sri Lanka", kAsia, {6.93, 79.85}, T3, 2, 120, 21.9},
    Country{"MM", "Myanmar", kAsia, {16.87, 96.20}, T4, 1, 300, 54.4},
    Country{"MN", "Mongolia", kAsia, {47.89, 106.91}, T3, 1, 400, 3.3},
    Country{"MO", "Macau", kAsia, {22.20, 113.55}, T2, 1, 10, 0.68},
    Country{"MV", "Maldives", kAsia, {4.18, 73.51}, T3, 1, 40, 0.54},
    Country{"MY", "Malaysia", kAsia, {3.14, 101.69}, T2, 8, 350, 32.4},
    Country{"NP", "Nepal", kAsia, {27.72, 85.32}, T3, 1, 150, 29.1},
    Country{"OM", "Oman", kAsia, {23.59, 58.41}, T3, 2, 200, 5.1},
    Country{"PH", "Philippines", kAsia, {14.60, 120.98}, T3, 5, 400, 109.6},
    Country{"PK", "Pakistan", kAsia, {24.86, 67.01}, T3, 3, 500, 220.9},
    Country{"QA", "Qatar", kAsia, {25.29, 51.53}, T3, 3, 30, 2.9},
    Country{"SA", "Saudi Arabia", kAsia, {24.71, 46.68}, T2, 5, 500, 34.8},
    Country{"SG", "Singapore", kAsia, {1.35, 103.82}, T1, 20, 20, 5.7},
    Country{"SY", "Syria", kAsia, {33.51, 36.29}, T4, 1, 120, 17.5},
    Country{"TH", "Thailand", kAsia, {13.76, 100.50}, T2, 8, 350, 69.8},
    Country{"TJ", "Tajikistan", kAsia, {38.56, 68.79}, T4, 1, 150, 9.5},
    Country{"TM", "Turkmenistan", kAsia, {37.96, 58.33}, T4, 1, 200, 6.0},
    Country{"TR", "Turkey", kAsia, {41.01, 28.98}, T2, 12, 550, 84.3},
    Country{"TW", "Taiwan", kAsia, {25.03, 121.57}, T1, 10, 120, 23.6},
    Country{"UZ", "Uzbekistan", kAsia, {41.30, 69.24}, T3, 2, 300, 34.2},
    Country{"VN", "Vietnam", kAsia, {21.03, 105.85}, T3, 4, 500, 97.3},
    Country{"YE", "Yemen", kAsia, {15.37, 44.19}, T4, 1, 200, 29.8},
    // ---------------------------------------------------------- Oceania --
    Country{"AU", "Australia", kOceania, {-33.87, 151.21}, T1, 25, 600, 25.7},
    Country{"NZ", "New Zealand", kOceania, {-36.85, 174.76}, T1, 10, 350, 5.1},
    Country{"FJ", "Fiji", kOceania, {-18.14, 178.44}, T3, 0.2, 60, 0.9},
    Country{"PG", "Papua New Guinea", kOceania, {-9.44, 147.18}, T4, 0.2, 250, 8.9},
    Country{"NC", "New Caledonia", kOceania, {-22.26, 166.45}, T2, 0.2, 60, 0.27},
    Country{"PF", "French Polynesia", kOceania, {-17.54, -149.57}, T3, 0.2, 60, 0.28},
    Country{"WS", "Samoa", kOceania, {-13.83, -171.77}, T4, 0.2, 30, 0.2},
    Country{"TO", "Tonga", kOceania, {-21.14, -175.20}, T4, 0.2, 30, 0.11},
    Country{"VU", "Vanuatu", kOceania, {-17.73, 168.32}, T4, 0.2, 60, 0.31},
    Country{"SB", "Solomon Islands", kOceania, {-9.43, 159.95}, T4, 0.2, 80, 0.69},
    // ----------------------------------------------------------- Africa --
    Country{"AO", "Angola", kAfrica, {-8.84, 13.23}, T4, 1, 400, 32.9},
    Country{"BF", "Burkina Faso", kAfrica, {12.37, -1.52}, T4, 1, 200, 20.9},
    Country{"BI", "Burundi", kAfrica, {-3.38, 29.36}, T4, 1, 60, 11.9},
    Country{"BJ", "Benin", kAfrica, {6.37, 2.39}, T4, 1, 150, 12.1},
    Country{"BW", "Botswana", kAfrica, {-24.65, 25.91}, T3, 1, 250, 2.4},
    Country{"CD", "DR Congo", kAfrica, {-4.44, 15.27}, T4, 1, 600, 89.6},
    Country{"CG", "Congo", kAfrica, {-4.26, 15.24}, T4, 1, 200, 5.5},
    Country{"CI", "Ivory Coast", kAfrica, {5.36, -4.01}, T3, 2, 200, 26.4},
    Country{"CM", "Cameroon", kAfrica, {4.05, 9.70}, T4, 1, 250, 26.5},
    Country{"CV", "Cape Verde", kAfrica, {14.93, -23.51}, T3, 1, 40, 0.56},
    Country{"DJ", "Djibouti", kAfrica, {11.59, 43.15}, T3, 1, 40, 0.99},
    Country{"DZ", "Algeria", kAfrica, {36.75, 3.06}, T3, 3, 400, 43.9},
    Country{"EG", "Egypt", kAfrica, {30.04, 31.24}, T3, 5, 300, 102.3},
    Country{"ET", "Ethiopia", kAfrica, {9.03, 38.74}, T4, 1, 300, 115.0},
    Country{"GA", "Gabon", kAfrica, {0.42, 9.47}, T4, 1, 150, 2.2},
    Country{"GH", "Ghana", kAfrica, {5.60, -0.19}, T3, 2, 200, 31.1},
    Country{"GM", "Gambia", kAfrica, {13.45, -16.58}, T4, 1, 40, 2.4},
    Country{"GN", "Guinea", kAfrica, {9.64, -13.58}, T4, 1, 150, 13.1},
    Country{"KE", "Kenya", kAfrica, {-1.29, 36.82}, T3, 4, 250, 53.8},
    Country{"LR", "Liberia", kAfrica, {6.30, -10.80}, T4, 1, 100, 5.1},
    Country{"LS", "Lesotho", kAfrica, {-29.32, 27.48}, T4, 1, 60, 2.1},
    Country{"LY", "Libya", kAfrica, {32.89, 13.19}, T4, 1, 300, 6.9},
    Country{"MA", "Morocco", kAfrica, {33.57, -7.59}, T3, 4, 300, 36.9},
    Country{"MG", "Madagascar", kAfrica, {-18.88, 47.51}, T4, 1, 300, 27.7},
    Country{"ML", "Mali", kAfrica, {12.64, -8.00}, T4, 1, 300, 20.3},
    Country{"MR", "Mauritania", kAfrica, {18.08, -15.98}, T4, 1, 250, 4.6},
    Country{"MU", "Mauritius", kAfrica, {-20.16, 57.50}, T2, 2, 20, 1.3},
    Country{"MW", "Malawi", kAfrica, {-13.96, 33.77}, T4, 1, 150, 19.1},
    Country{"MZ", "Mozambique", kAfrica, {-25.97, 32.57}, T4, 1, 400, 31.3},
    Country{"NA", "Namibia", kAfrica, {-22.56, 17.08}, T3, 1, 300, 2.5},
    Country{"NE", "Niger", kAfrica, {13.51, 2.11}, T4, 1, 250, 24.2},
    Country{"NG", "Nigeria", kAfrica, {6.52, 3.38}, T3, 3, 400, 206.1},
    Country{"RW", "Rwanda", kAfrica, {-1.94, 30.06}, T3, 1, 60, 13.0},
    Country{"SC", "Seychelles", kAfrica, {-4.62, 55.45}, T3, 1, 20, 0.1},
    Country{"SD", "Sudan", kAfrica, {15.50, 32.56}, T4, 1, 350, 43.8},
    Country{"SL", "Sierra Leone", kAfrica, {8.47, -13.23}, T4, 1, 100, 8.0},
    Country{"SN", "Senegal", kAfrica, {14.72, -17.47}, T3, 2, 150, 16.7},
    Country{"SO", "Somalia", kAfrica, {2.05, 45.32}, T4, 1, 250, 15.9},
    Country{"SS", "South Sudan", kAfrica, {4.86, 31.57}, T4, 1, 200, 11.2},
    Country{"SZ", "Eswatini", kAfrica, {-26.31, 31.14}, T4, 1, 50, 1.2},
    Country{"TD", "Chad", kAfrica, {12.13, 15.06}, T4, 1, 300, 16.4},
    Country{"TG", "Togo", kAfrica, {6.13, 1.22}, T4, 1, 120, 8.3},
    Country{"TN", "Tunisia", kAfrica, {36.81, 10.18}, T3, 2, 150, 11.8},
    Country{"TZ", "Tanzania", kAfrica, {-6.79, 39.21}, T3, 2, 300, 59.7},
    Country{"UG", "Uganda", kAfrica, {0.35, 32.58}, T3, 1, 150, 45.7},
    Country{"ZA", "South Africa", kAfrica, {-26.20, 28.05}, T2, 8, 500, 59.3},
    Country{"ZM", "Zambia", kAfrica, {-15.39, 28.32}, T4, 1, 300, 18.4},
    Country{"ZW", "Zimbabwe", kAfrica, {-17.83, 31.05}, T4, 1, 250, 14.9},
};

}  // namespace

std::span<const Country> all_countries() noexcept { return kCountries; }

const Country* find_country(std::string_view iso2) noexcept {
  for (const Country& c : kCountries) {
    if (c.iso2 == iso2) return &c;
  }
  return nullptr;
}

std::vector<const Country*> countries_in(Continent continent) {
  std::vector<const Country*> out;
  for (const Country& c : kCountries) {
    if (c.continent == continent) out.push_back(&c);
  }
  return out;
}

std::size_t country_count() noexcept { return kCountries.size(); }

double world_population_m() noexcept {
  double total = 0.0;
  for (const Country& c : kCountries) total += c.population_m;
  return total;
}

double population_share(const Country& c) noexcept {
  // The total is a pure function of the embedded table; computing it once
  // keeps the accessor cheap enough for per-row objective loops.
  static const double total = world_population_m();
  return c.population_m / total;
}

double population_in_tier_m(ConnectivityTier tier) noexcept {
  double total = 0.0;
  for (const Country& c : kCountries) {
    if (c.tier == tier) total += c.population_m;
  }
  return total;
}

}  // namespace shears::geo
