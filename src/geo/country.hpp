// Country registry: the vantage-point universe of the study.
//
// The paper's probes sit in 166 countries; each analysis in §4 aggregates
// by country (Fig. 4) or by continent (Figs. 5-6). We embed a registry of
// countries with:
//   * a representative coordinate (the primary population centre, since
//     RIPE Atlas probes cluster in cities),
//   * a connectivity tier capturing national network-infrastructure
//     quality (drives path stretch and last-mile quality in `net`), and
//   * a probe-density weight reproducing RIPE Atlas's strong Europe/North
//     America skew (§4.1, Fig. 3b).
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "geo/continent.hpp"
#include "geo/coordinates.hpp"

namespace shears::geo {

/// National network-infrastructure quality. Calibrated against published
/// measurement literature: tier 1 ~ dense fibre + rich IXP fabric, tier 4 ~
/// severely under-served (the paper's "Africa ... severely under-served,
/// both in cloud presence and network infrastructure").
enum class ConnectivityTier : unsigned char {
  kTier1 = 1,  ///< dense fibre, major IXPs, direct provider peering
  kTier2 = 2,  ///< good national backbone, some transit detours
  kTier3 = 3,  ///< developing backbone, significant transit detours
  kTier4 = 4,  ///< under-served; traffic frequently trombones abroad
};

struct Country {
  std::string_view iso2;       ///< ISO-3166-1 alpha-2 code
  std::string_view name;
  Continent continent;
  GeoPoint site;               ///< primary population centre
  ConnectivityTier tier;
  double probe_weight;         ///< relative RIPE-Atlas probe density (>0)
  double scatter_km;           ///< dispersion of probe placement around site
  double population_m;         ///< population, millions (~2020)
};

/// Sum of `population_m` across the registry (~7.7B for the 2020 table).
[[nodiscard]] double world_population_m() noexcept;

/// Fraction of the world population living in `c`:
/// population_m / world_population_m(). This is the per-country weight of
/// every population-weighted objective (the footprint optimizer's
/// coverage, digital-divide style reports) — one source of truth instead
/// of each consumer re-deriving weights from the raw table. `c` must be
/// a registry entry (all_countries() / find_country()).
[[nodiscard]] double population_share(const Country& c) noexcept;

/// Total population (millions) across countries of one connectivity
/// tier — the population × connectivity-tier marginal of the registry.
[[nodiscard]] double population_in_tier_m(ConnectivityTier tier) noexcept;

/// All embedded countries, grouped by continent in a stable order. The
/// table is the dataset, not a cache.
[[nodiscard]] std::span<const Country> all_countries() noexcept;

/// Lookup by ISO-2 code (case-sensitive, upper-case).
[[nodiscard]] const Country* find_country(std::string_view iso2) noexcept;

/// Countries of one continent, in registry order.
[[nodiscard]] std::vector<const Country*> countries_in(Continent c);

/// Number of embedded countries.
[[nodiscard]] std::size_t country_count() noexcept;

}  // namespace shears::geo
