// City registry: urban population centres used for probe placement.
//
// RIPE Atlas probes sit overwhelmingly in cities. Placement draws each
// urban probe's location from its country's cities (weighted by metro
// population) instead of a purely Gaussian scatter around the national
// hub; countries without listed cities fall back to the scatter model.
// The table covers every country whose geography is large enough for the
// difference to matter.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "geo/coordinates.hpp"

namespace shears::geo {

struct City {
  std::string_view name;
  std::string_view country_iso2;
  GeoPoint location;
  double metro_population_m;  ///< metropolitan population, millions (~2020)
};

/// All embedded cities, grouped by country.
[[nodiscard]] std::span<const City> all_cities() noexcept;

/// Cities of one country (registry order); empty when none are listed.
[[nodiscard]] std::vector<const City*> cities_in(std::string_view iso2);

[[nodiscard]] std::size_t city_count() noexcept;

}  // namespace shears::geo
