// Spatial index over points on the sphere: a 3-D k-d tree in unit-vector
// space.
//
// The serving layer answers "nearest cloud region / probe to (lat, lon)"
// and "everything within R km" at memory speed. A k-d tree over raw
// (lat, lon) would break at the antimeridian (lon -179.9 and +179.9 are
// 22 km apart at the equator, not 40 000) and at the poles (every
// longitude collapses to one point). Embedding each point as a unit
// vector on the sphere removes both singularities: chord distance
// |a - b| is strictly monotone in great-circle distance, so a Euclidean
// k-d tree in R^3 prunes correctly everywhere on the globe.
//
// Exactness contract: candidate points are always compared by
// haversine_km — the same function a brute-force geodesic scan uses —
// with ties broken towards the smaller id. The chord metric is used only
// for subtree pruning, with a relative safety margin far wider than the
// float error between the two formulations, so results (ids *and*
// reported distances) are bit-identical to the brute-force scan the
// property harness runs (see check_spatial_index).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geo/coordinates.hpp"

namespace shears::geo {

/// One query result: the point's index in the construction span and its
/// great-circle distance from the query point.
struct SpatialHit {
  std::uint32_t id = 0;
  double distance_km = 0.0;

  friend bool operator==(const SpatialHit&, const SpatialHit&) = default;
};

class SpatialIndex {
 public:
  SpatialIndex() = default;

  /// Builds over `points`; ids are indices into the span. Throws
  /// std::invalid_argument when a point is outside the WGS-84 ranges
  /// (is_valid) — an index answering from garbage coordinates must fail
  /// loudly at build time, not at query time.
  explicit SpatialIndex(std::span<const GeoPoint> points);

  [[nodiscard]] std::size_t size() const noexcept { return geo_.size(); }
  [[nodiscard]] bool empty() const noexcept { return geo_.empty(); }

  /// The point nearest to `query` by great-circle distance, smallest id
  /// on exact ties (duplicate coordinates); nullopt when empty.
  [[nodiscard]] std::optional<SpatialHit> nearest(
      const GeoPoint& query) const;

  /// The `n` nearest points, ascending by (distance, id). Returns fewer
  /// when the index holds fewer.
  [[nodiscard]] std::vector<SpatialHit> nearest_n(const GeoPoint& query,
                                                  std::size_t n) const;

  /// Every point with haversine_km(query, point) <= radius_km, ascending
  /// by (distance, id). The boundary is inclusive, like the brute-force
  /// scan's `<=`.
  [[nodiscard]] std::vector<SpatialHit> within_radius(
      const GeoPoint& query, double radius_km) const;

 private:
  struct Node {
    std::array<double, 3> lo{};  ///< tight bounding box over the subtree
    std::array<double, 3> hi{};
    std::uint32_t begin = 0;  ///< leaf: range into ids_/unit_
    std::uint32_t end = 0;
    std::uint32_t left = 0;  ///< 0 = leaf (node 0 is always the root)
    std::uint32_t right = 0;
  };

  std::uint32_t build_node(std::uint32_t begin, std::uint32_t end);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> ids_;              ///< leaf-ordered point ids
  std::vector<std::array<double, 3>> unit_;     ///< unit vectors, leaf order
  std::vector<GeoPoint> geo_;                   ///< original points, by id
};

}  // namespace shears::geo
