// Geographic primitives: WGS-84 points and great-circle distance.
//
// Propagation delay in the latency model is driven by the geodesic
// (haversine) distance between a vantage point and a datacenter, multiplied
// by an infrastructure-dependent path-stretch factor (fibre does not follow
// great circles).
#pragma once

#include <cmath>

namespace shears::geo {

/// Mean Earth radius in kilometres (IUGG).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// A point on the Earth's surface in decimal degrees.
struct GeoPoint {
  double lat_deg = 0.0;  ///< latitude, [-90, 90]
  double lon_deg = 0.0;  ///< longitude, [-180, 180]

  friend constexpr bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// True when the point lies within the valid WGS-84 ranges.
[[nodiscard]] constexpr bool is_valid(const GeoPoint& p) noexcept {
  return p.lat_deg >= -90.0 && p.lat_deg <= 90.0 && p.lon_deg >= -180.0 &&
         p.lon_deg <= 180.0;
}

[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept {
  return deg * 3.14159265358979323846 / 180.0;
}

/// Great-circle distance (haversine) in kilometres. Accurate to ~0.5% of
/// the true geodesic, far below the path-stretch uncertainty it feeds.
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Antipodal upper bound on any great-circle distance (km): half the mean
/// circumference, pi * R.
inline constexpr double kMaxSurfaceDistanceKm =
    3.14159265358979323846 * kEarthRadiusKm;

}  // namespace shears::geo
