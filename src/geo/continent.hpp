// Continents and the adjacent-continent measurement rule.
//
// The paper schedules probes to datacenters "within the same continent",
// except for Africa and South America (low datacenter density), whose
// probes additionally measure to Europe and North America respectively
// (§4.1). That adjacency is encoded here.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace shears::geo {

enum class Continent : unsigned char {
  kAfrica = 0,
  kAsia,
  kEurope,
  kNorthAmerica,
  kSouthAmerica,
  kOceania,
};

inline constexpr std::size_t kContinentCount = 6;

inline constexpr std::array<Continent, kContinentCount> kAllContinents = {
    Continent::kAfrica,       Continent::kAsia,
    Continent::kEurope,       Continent::kNorthAmerica,
    Continent::kSouthAmerica, Continent::kOceania,
};

[[nodiscard]] constexpr std::string_view to_string(Continent c) noexcept {
  switch (c) {
    case Continent::kAfrica: return "Africa";
    case Continent::kAsia: return "Asia";
    case Continent::kEurope: return "Europe";
    case Continent::kNorthAmerica: return "North America";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kOceania: return "Oceania";
  }
  return "Unknown";
}

/// Short code used in dataset exports ("AF", "AS", "EU", "NA", "SA", "OC").
[[nodiscard]] constexpr std::string_view to_code(Continent c) noexcept {
  switch (c) {
    case Continent::kAfrica: return "AF";
    case Continent::kAsia: return "AS";
    case Continent::kEurope: return "EU";
    case Continent::kNorthAmerica: return "NA";
    case Continent::kSouthAmerica: return "SA";
    case Continent::kOceania: return "OC";
  }
  return "??";
}

[[nodiscard]] constexpr std::optional<Continent> continent_from_code(
    std::string_view code) noexcept {
  for (const Continent c : kAllContinents) {
    if (to_code(c) == code) return c;
  }
  return std::nullopt;
}

/// The continent whose datacenters under-served probes also target
/// (the paper's Africa→Europe, South America→North America rule), or
/// nullopt when in-continent coverage suffices.
[[nodiscard]] constexpr std::optional<Continent> measurement_fallback(
    Continent c) noexcept {
  switch (c) {
    case Continent::kAfrica: return Continent::kEurope;
    case Continent::kSouthAmerica: return Continent::kNorthAmerica;
    default: return std::nullopt;
  }
}

[[nodiscard]] constexpr std::size_t index_of(Continent c) noexcept {
  return static_cast<std::size_t>(c);
}

}  // namespace shears::geo
