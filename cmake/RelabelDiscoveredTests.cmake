# Re-applies a full label list to every test gtest_discover_tests found
# for one target. The discovery machinery flattens list arguments when
# it writes the generated set_tests_properties calls, so of a
# multi-label list like "serve;snapshot" only the first label survives
# and `ctest -L` filters silently miss the rest. shears_add_test works
# around it by appending a tiny generated file to TEST_INCLUDE_FILES —
# processed by ctest after the discovery include — that sets the two
# variables below and includes this script.
#
# Expects:
#   SHEARS_RELABEL_FILE    — the target's generated <name>[1]_tests.cmake
#   SHEARS_RELABEL_LABELS  — the label list to apply
if(EXISTS "${SHEARS_RELABEL_FILE}")
  file(STRINGS "${SHEARS_RELABEL_FILE}" _shears_relabel_lines
       REGEX "^add_test")
  foreach(_shears_relabel_line IN LISTS _shears_relabel_lines)
    # Test names are bracket-guarded: add_test([=[Suite.Name]=] ...).
    # Capture up to the first closing bracket — gtest names never
    # contain one.
    if(_shears_relabel_line MATCHES "^add_test\\(\\[=*\\[([^]]+)\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
        LABELS "${SHEARS_RELABEL_LABELS}")
    endif()
  endforeach()
endif()
