# Compile-flag policy for the numeric hot paths and SIMD kernel TUs.
#
# Every special-cased math/vector flag in the tree is granted through the
# two helpers below instead of ad-hoc target_compile_options calls, so the
# default, sanitize, CI, and forced-scalar builds all agree on exactly
# which translation units get which flags.
#
#   shears_hot_math(<target>)
#     Adds -fno-math-errno to the whole target. Value-safe: sqrt lowers to
#     the bare hardware instruction (correctly rounded either way), nothing
#     in the tree reads errno, and no reassociation/contraction flags are
#     enabled — datasets stay bit-identical (the determinism suite pins
#     golden checksums).
#
#   shears_simd_kernel(<target> <source>...)
#     Marks the listed sources of <target> as SIMD kernel TUs:
#       * -ffp-contract=off always — the kernels promise bit-identical
#         results between the AVX2 and forced-scalar builds, which requires
#         that no build ever fuses a*b+c (plain -mavx2 does not enable FMA,
#         but this pins the contract against -march experiments);
#       * -O3 — GCC 12's -O2 vectorizer runs the "very-cheap" cost model,
#         which refuses every loop with an unknown trip count; the kernels
#         exist to be vectorized, so they opt into the full model;
#       * -fno-trapping-math — the kernels' clamp/mask selects are FP
#         compares feeding ternaries, and if-conversion refuses to
#         speculate FP compares while traps are considered observable.
#         Value-safe: results are bit-identical, only the (unused) FP
#         exception flags may differ;
#       * -mavx2 unless SHEARS_DISABLE_SIMD is ON. Kernel TUs detect the
#         ISA with #ifdef __AVX2__, so the forced-scalar build compiles the
#         same sources down to their scalar fallbacks — no macro plumbing.
#     Also applies shears_hot_math to the target (vector math needs the
#     errno bookkeeping gone to vectorize sqrt).
#
# SHEARS_DISABLE_SIMD is the build half of the scalar fallback story; the
# runtime half is the SHEARS_FORCE_SCALAR environment variable read by the
# serve::scan dispatcher. CI's nightly scalar job sets both.

option(SHEARS_DISABLE_SIMD
  "Build SIMD kernel TUs without -mavx2 (scalar fallbacks only)" OFF)

function(shears_hot_math target)
  target_compile_options(${target} PRIVATE -fno-math-errno)
endfunction()

function(shears_simd_kernel target)
  shears_hot_math(${target})
  set(flags "-ffp-contract=off" "-O3" "-fno-trapping-math")
  if(NOT SHEARS_DISABLE_SIMD)
    list(APPEND flags "-mavx2")
  endif()
  foreach(src ${ARGN})
    set_property(SOURCE ${src} APPEND PROPERTY COMPILE_OPTIONS ${flags})
  endforeach()
endfunction()
