// quickstart — the five-minute tour of the library:
//  1. generate the RIPE-Atlas-like probe fleet,
//  2. load the 101-region cloud footprint,
//  3. run a (short) measurement campaign over the Internet latency model,
//  4. ask the paper's question: is the cloud already close enough?
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "shears.hpp"

int main() {
  using namespace shears;

  // 1. A 3200-probe fleet across ~177 countries, EU/NA-dense like the real
  //    RIPE Atlas. Deterministic: same config -> same fleet.
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate({});
  std::cout << "fleet: " << fleet.size() << " probes, "
            << fleet.country_count() << " countries\n";

  // 2. The 2019/2020 cloud footprint: 101 compute regions, 7 providers.
  const topology::CloudRegistry cloud =
      topology::CloudRegistry::campaign_footprint();
  std::cout << "cloud: " << cloud.size() << " regions in "
            << cloud.hosting_countries().size() << " countries\n";

  // 3. One week of pings, every 3 hours, per the paper's §4.1 schedule.
  const net::LatencyModel internet;  // calibrated defaults
  atlas::CampaignConfig schedule;
  schedule.duration_days = 7;
  const atlas::Campaign campaign(fleet, cloud, internet, schedule);
  const atlas::MeasurementDataset dataset = campaign.run();
  std::cout << "campaign: " << dataset.size() << " ping bursts collected\n\n";

  // 4a. Fig. 4 in two lines: how many countries reach the cloud fast?
  const core::LatencyBands bands =
      core::band_country_latencies(core::country_min_latency(dataset));
  std::cout << bands.under_10 << " countries reach a datacenter under 10 ms; "
            << bands.under_100() << " of " << bands.total()
            << " measured countries are under the 100 ms perceivable-latency "
               "threshold\n";

  // 4b. And the verdict for one motivating application, per region.
  const apps::Application* gaming = apps::find_application("cloud-gaming");
  const auto samples = core::best_region_samples_by_continent(dataset);
  for (const geo::Continent c :
       {geo::Continent::kEurope, geo::Continent::kAfrica}) {
    const double median =
        stats::Ecdf(samples[geo::index_of(c)]).median();
    const core::EdgeVerdict verdict = core::classify(*gaming, median);
    std::cout << gaming->name << " behind the median "
              << to_string(c) << " cloud (" << report::fmt(median, 1)
              << " ms): " << to_string(verdict) << '\n';
  }
  return 0;
}
