// dataset_export — runs a campaign and writes the measurement dataset as
// CSV, emulating the paper's public dataset release ([18] in the paper).
//
// Usage:  dataset_export [days] [output.csv]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "shears.hpp"

int main(int argc, char** argv) {
  using namespace shears;

  atlas::CampaignConfig config;
  config.duration_days = argc > 1 ? std::atoi(argv[1]) : 7;
  if (config.duration_days <= 0) config.duration_days = 7;
  const std::string path = argc > 2 ? argv[2] : "shears_dataset.csv";

  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate({});
  const topology::CloudRegistry cloud =
      topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel internet;
  const atlas::MeasurementDataset dataset =
      atlas::Campaign(fleet, cloud, internet, config).run();

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return 1;
  }
  dataset.write_csv(out);
  out.flush();
  if (!out) {
    std::cerr << "write to " << path << " failed (disk full?)\n";
    return 1;
  }
  std::cout << "wrote " << dataset.size() << " ping bursts ("
            << config.duration_days << " days, " << fleet.size()
            << " probes, " << cloud.size() << " regions) to " << path << '\n'
            << "columns: probe_id,country,continent,access,provider,region,"
               "tick,min_ms,avg_ms,max_ms,sent,received,retries,faults\n";
  return 0;
}
