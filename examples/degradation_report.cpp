// degradation_report — how much does a broken Internet move the paper's
// conclusions? Runs the same campaign twice — once clean, once under a
// moderate fault regime with retries and quarantine enabled — applies
// the data-quality guards to both datasets, and prints:
//   * the engine's resilience telemetry for the faulted run,
//   * what the quality guards dropped and why,
//   * the per-continent feasibility-verdict shifts (the degradation
//     report proper).
//
// Usage:  degradation_report [days]      (default 30)
#include <cstdlib>
#include <iostream>

#include "shears.hpp"

int main(int argc, char** argv) {
  using namespace shears;

  const int days = argc > 1 ? std::atoi(argv[1]) : 30;
  if (days <= 0) {
    std::cerr << "usage: degradation_report [days]\n";
    return 1;
  }

  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  atlas::CampaignConfig config;
  config.duration_days = days;

  std::cout << "clean campaign: " << fleet.size() << " probes, " << days
            << " days...\n";
  const auto clean = atlas::Campaign(fleet, registry, model, config).run();

  faults::FaultScheduleConfig fault_config;
  fault_config.region_outage_rate = 0.02;
  fault_config.route_flap_rate = 0.05;
  fault_config.storm_rate = 0.04;
  fault_config.probe_hang_rate = 0.03;
  fault_config.clock_skew_rate = 0.01;
  fault_config.blackout_rate = 0.002;
  const faults::FaultSchedule schedule(fault_config);

  atlas::CampaignConfig faulted_config = config;
  faulted_config.retry.max_retries = 2;
  faulted_config.quarantine.enabled = true;

  std::cout << "faulted campaign (outages, flaps, storms, hangs, skew, "
               "blackouts; retries + quarantine on)...\n\n";
  atlas::CampaignTelemetry telemetry;
  const auto faulted =
      atlas::Campaign(fleet, registry, model, faulted_config, &schedule)
          .run(telemetry);

  std::cout << "telemetry (faulted run)\n"
            << report::telemetry_table(telemetry).to_string() << '\n';

  core::QualityReport quality;
  const auto guarded = core::apply_quality_guards(faulted, {}, &quality);
  std::cout << "quality guards (faulted run)\n"
            << report::quality_table(quality).to_string() << '\n';
  std::cout << "faulted records carrying fault flags: "
            << report::fmt_percent(faulted.faulted_fraction()) << ", "
            << guarded.size() << " records survive the guards\n\n";

  const core::DegradationReport degradation = core::degradation_report(
      clean, faulted, apps::application_catalog());
  std::cout << "degradation report (clean vs faulted medians, Fig. 8 "
               "verdicts)\n"
            << report::degradation_table(degradation).to_string() << '\n';
  std::cout << (degradation.stable()
                    ? "verdicts are STABLE under this fault regime.\n"
                    : "verdicts SHIFTED — see rows above.\n");
  return 0;
}
