// calibration_report — prints the simulator's key statistics next to the
// paper's published anchors so model calibration can be inspected at a
// glance. Run after any change to the latency model.
#include <cstdlib>
#include <iostream>
#include <string>

#include "atlas/campaign.hpp"
#include "atlas/placement.hpp"
#include "core/access_comparison.hpp"
#include "core/analysis.hpp"
#include "net/latency_model.hpp"
#include "report/table.hpp"
#include "stats/ecdf.hpp"
#include "topology/registry.hpp"

namespace {

using namespace shears;

void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace

int main(int argc, char** argv) {
  // A reduced campaign keeps this interactive: 30 days instead of nine
  // months. Pass a day count to override.
  atlas::CampaignConfig campaign_config;
  campaign_config.duration_days = argc > 1 ? std::atoi(argv[1]) : 30;

  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate({});
  const topology::CloudRegistry registry =
      topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  std::cout << "fleet: " << fleet.size() << " probes in "
            << fleet.country_count() << " countries; registry: "
            << registry.size() << " regions in "
            << registry.hosting_countries().size() << " countries\n";

  const atlas::Campaign campaign(fleet, registry, model, campaign_config);
  const atlas::MeasurementDataset dataset = campaign.run();
  std::cout << "dataset: " << dataset.size() << " ping bursts, loss "
            << report::fmt_percent(dataset.loss_fraction()) << "\n";

  print_header("Fig.4 anchors: country minimum-latency bands");
  const auto rows = core::country_min_latency(dataset);
  const auto bands = core::band_country_latencies(rows);
  std::cout << "countries <10ms: " << bands.under_10 << "  (paper: 32)\n"
            << "countries 10-20ms: " << bands.from_10_to_20 << "  (paper: 21)\n"
            << "countries >=100ms: " << bands.over_100 << "  (paper: ~16)\n"
            << "countries measured: " << bands.total() << "\n";

  print_header("Fig.5 anchors: per-probe min RTT by continent");
  const auto mins = core::min_rtt_by_continent(dataset);
  for (const geo::Continent c : geo::kAllContinents) {
    const auto& sample = mins[geo::index_of(c)];
    if (sample.empty()) continue;
    const stats::Ecdf ecdf(sample);
    std::cout << geo::to_string(c) << ": n=" << sample.size()
              << " F(20)=" << report::fmt_percent(ecdf.fraction_at_or_below(20))
              << " F(50)=" << report::fmt_percent(ecdf.fraction_at_or_below(50))
              << " F(100)=" << report::fmt_percent(ecdf.fraction_at_or_below(100))
              << " median=" << report::fmt(ecdf.median()) << "ms\n";
  }
  std::cout << "(paper: ~80% EU/NA under 20ms; Oceania ~all under 50ms;"
               " ~75% AF/SA under 100ms)\n";

  print_header("Fig.6 anchors: all bursts to best region by continent");
  const auto all_samples = core::best_region_samples_by_continent(dataset);
  for (const geo::Continent c : geo::kAllContinents) {
    const auto& sample = all_samples[geo::index_of(c)];
    if (sample.empty()) continue;
    const stats::Ecdf ecdf(sample);
    std::cout << geo::to_string(c) << ": n=" << sample.size()
              << " p25=" << report::fmt(ecdf.percentile(25))
              << " median=" << report::fmt(ecdf.median())
              << " p75=" << report::fmt(ecdf.percentile(75))
              << " F(MTP)=" << report::fmt_percent(ecdf.fraction_at_or_below(20))
              << " F(PL)=" << report::fmt_percent(ecdf.fraction_at_or_below(100))
              << "\n";
  }
  std::cout << "(paper: >75% NA/EU/OC under PL; top 25% NA/EU under MTP)\n";

  print_header("Fig.7 anchors: wired vs wireless");
  const core::AccessComparison cmp = core::compare_access(dataset);
  std::cout << "wired probes: " << cmp.wired_probe_count
            << ", wireless probes: " << cmp.wireless_probe_count << "\n"
            << "wired median: " << report::fmt(cmp.wired_median)
            << "ms, wireless median: " << report::fmt(cmp.wireless_median)
            << "ms\n"
            << "ratio: " << report::fmt(cmp.median_ratio, 2)
            << "  (paper: ~2.5x), added: "
            << report::fmt(cmp.added_latency_ms) << "ms (paper: 10-40ms)\n";
  return 0;
}
