// campaign_telemetry_report — the observability surface in one run.
// Attaches a MetricsRegistry to a (lightly faulted) campaign, feeds the
// same registry through the §4 analyses, and then:
//   * prints the full metric snapshot as a table (counters, gauges,
//     per-phase latency histograms),
//   * exports the snapshot to telemetry.jsonl and telemetry.csv next to
//     the working directory (prefix overridable), the formats the bench
//     tooling and dashboards consume.
//
// The counters are deterministic functions of the dataset (the golden
// checksum stays green with the registry attached); only the wall-time
// gauges and histograms vary run to run.
//
// Usage:  campaign_telemetry_report [days] [output-prefix]
//         (defaults: 30 days, prefix "telemetry")
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "shears.hpp"

namespace {

std::string fmt_ms(double ms) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << ms;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shears;

  const int days = argc > 1 ? std::atoi(argv[1]) : 30;
  const std::string prefix = argc > 2 ? argv[2] : "telemetry";
  if (days <= 0) {
    std::cerr << "usage: campaign_telemetry_report [days] [output-prefix]\n";
    return 1;
  }

  const auto fleet = atlas::ProbeFleet::generate({});
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel model;

  faults::FaultScheduleConfig fault_config;
  fault_config.route_flap_rate = 0.03;
  fault_config.clock_skew_rate = 0.01;
  const faults::FaultSchedule schedule(fault_config);

  atlas::CampaignConfig config;
  config.duration_days = days;
  config.retry.max_retries = 1;

  obs::MetricsRegistry metrics;
  atlas::Campaign campaign(fleet, registry, model, config, &schedule);
  campaign.attach_metrics(&metrics);

  std::cout << "instrumented campaign: " << fleet.size() << " probes, "
            << days << " days...\n";
  const auto dataset = campaign.run();

  core::AnalysisOptions analysis_options;
  analysis_options.metrics = &metrics;
  const auto country = core::country_min_latency(dataset, analysis_options);
  const auto best = core::per_probe_best(dataset, analysis_options);
  std::cout << "analyses: " << country.size() << " countries, "
            << best.size() << " probes\n\n";

  const obs::Snapshot snap = metrics.snapshot();

  report::TextTable table;
  table.set_header({"metric", "kind", "count", "value",
                    "p50 ms", "p99 ms"});
  for (const auto& sample : snap.samples()) {
    switch (sample.kind) {
      case obs::MetricKind::kCounter:
        table.add_row({sample.name, "counter", std::to_string(sample.count),
                       "", "", ""});
        break;
      case obs::MetricKind::kGauge:
        table.add_row({sample.name, "gauge", "", fmt_ms(sample.value),
                       "", ""});
        break;
      case obs::MetricKind::kHistogram:
        table.add_row({sample.name, "histogram",
                       std::to_string(sample.count), fmt_ms(sample.sum_ms),
                       fmt_ms(sample.p50_ms), fmt_ms(sample.p99_ms)});
        break;
    }
  }
  std::cout << "metric snapshot (" << snap.samples().size() << " rows)\n"
            << table.to_string() << '\n';

  const std::string jsonl_path = prefix + ".jsonl";
  const std::string csv_path = prefix + ".csv";
  std::ofstream jsonl(jsonl_path);
  snap.write_jsonl(jsonl);
  jsonl.flush();
  std::ofstream csv(csv_path);
  snap.write_csv(csv);
  csv.flush();
  if (!jsonl || !csv) {
    std::cerr << "failed writing " << jsonl_path << " / " << csv_path << '\n';
    return 1;
  }
  std::cout << "exported: " << jsonl_path << ", " << csv_path << '\n';
  return 0;
}
