// analyze_dataset — the offline half of the measurement pipeline: loads a
// CSV dataset previously produced by dataset_export (or any campaign's
// write_csv) and regenerates the headline analyses without re-running the
// simulation. Mirrors how the paper's public dataset [18] is consumed.
//
// Usage:  analyze_dataset <dataset.csv>
#include <fstream>
#include <iostream>

#include "shears.hpp"

int main(int argc, char** argv) {
  using namespace shears;

  if (argc < 2) {
    std::cerr << "usage: analyze_dataset <dataset.csv>\n"
              << "(produce one with ./build/examples/dataset_export)\n";
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::cerr << "cannot open " << argv[1] << '\n';
    return 1;
  }

  // The dataset references the default fleet and footprint; the loader
  // cross-checks every row and aborts loudly on a mismatched fleet.
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate({});
  const topology::CloudRegistry cloud =
      topology::CloudRegistry::campaign_footprint();
  atlas::MeasurementDataset dataset = [&] {
    try {
      return atlas::MeasurementDataset::read_csv(in, &fleet, &cloud);
    } catch (const std::exception& e) {
      std::cerr << "load failed: " << e.what() << '\n';
      std::exit(1);
    }
  }();

  std::cout << "loaded " << dataset.size() << " ping bursts (loss "
            << report::fmt_percent(dataset.loss_fraction()) << ")\n\n";

  const auto rows = core::country_min_latency(dataset);
  const auto bands = core::band_country_latencies(rows);
  std::cout << "Fig.4 bands: <10ms " << bands.under_10 << ", 10-20ms "
            << bands.from_10_to_20 << ", >=100ms " << bands.over_100
            << " (of " << bands.total() << " countries)\n";

  const auto cov = core::population_coverage(rows);
  std::cout << "population under PL: " << report::fmt_percent(cov.under_pl)
            << "\n\n";

  report::TextTable table;
  table.set_header({"continent", "probes", "median min RTT", "F(MTP)",
                    "F(PL)"});
  const auto mins = core::min_rtt_by_continent(dataset);
  for (const geo::Continent c : geo::kAllContinents) {
    const auto& sample = mins[geo::index_of(c)];
    if (sample.empty()) continue;
    const stats::Ecdf ecdf(sample);
    table.add_row({std::string(to_string(c)), std::to_string(sample.size()),
                   report::fmt(ecdf.median(), 1),
                   report::fmt_percent(ecdf.fraction_at_or_below(20.0)),
                   report::fmt_percent(ecdf.fraction_at_or_below(100.0))});
  }
  std::cout << table.to_string();

  const core::AccessComparison cmp = core::compare_access(dataset);
  if (!cmp.wired.empty() && !cmp.wireless.empty()) {
    std::cout << "\nwired vs wireless: " << report::fmt(cmp.wired_median, 1)
              << " vs " << report::fmt(cmp.wireless_median, 1) << " ms ("
              << report::fmt(cmp.median_ratio, 2) << "x)\n";
  }
  return 0;
}
