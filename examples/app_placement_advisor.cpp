// app_placement_advisor — the practitioner-facing scenario behind the
// paper: "should application X deploy on the cloud, at the edge, or
// on-device for users in country Y?"
//
// Usage:  app_placement_advisor [app-slug] [iso2-country]
//         app_placement_advisor cloud-gaming KE
//         app_placement_advisor            (prints the full matrix)
//
// The advisor measures the cloud latency a wired and a wireless user in
// that country actually experience (sampling the latency model against
// the real footprint), then applies the Fig. 8 feasibility logic.
#include <iostream>
#include <string>

#include "shears.hpp"

namespace {

using namespace shears;

/// Median sampled RTT from a country's main population centre to the best
/// cloud region reachable under the §4.1 continent rule.
double measured_cloud_rtt(const geo::Country& country,
                          net::AccessTechnology access,
                          const topology::CloudRegistry& cloud,
                          const net::LatencyModel& internet) {
  const net::Endpoint user{country.site, country.tier, access};
  // Pick the best region by congestion-free baseline...
  const topology::CloudRegion* best = nullptr;
  double best_rtt = 0.0;
  for (const topology::CloudRegion* region : cloud.regions()) {
    const auto rc = topology::region_continent(*region);
    if (rc != country.continent &&
        geo::measurement_fallback(country.continent) != rc) {
      continue;
    }
    const double rtt = internet.baseline_rtt_ms(user, *region);
    if (best == nullptr || rtt < best_rtt) {
      best = region;
      best_rtt = rtt;
    }
  }
  if (best == nullptr) return 1e9;
  // ...then sample what a user actually sees across a day of traffic.
  stats::Xoshiro256 rng(stats::fnv1a64(country.iso2.data(), 2));
  std::vector<double> rtts;
  for (int i = 0; i < 2000; ++i) {
    const net::PingObservation obs = internet.ping_once(user, *best, rng);
    if (!obs.lost) rtts.push_back(obs.rtt_ms);
  }
  return stats::Ecdf(std::move(rtts)).median();
}

void advise(const apps::Application& app, const geo::Country& country,
            const topology::CloudRegistry& cloud,
            const net::LatencyModel& internet) {
  const double wired = measured_cloud_rtt(
      country, net::AccessTechnology::kFibre, cloud, internet);
  const double wireless = measured_cloud_rtt(
      country, net::AccessTechnology::kLte, cloud, internet);
  const core::EdgeVerdict wired_verdict = core::classify(app, wired);
  const core::EdgeVerdict wireless_verdict = core::classify(app, wireless);
  std::cout << app.name << " for users in " << country.name << ":\n"
            << "  wired cloud RTT ~" << report::fmt(wired, 1) << " ms -> "
            << to_string(wired_verdict) << '\n'
            << "  LTE cloud RTT  ~" << report::fmt(wireless, 1) << " ms -> "
            << to_string(wireless_verdict) << '\n'
            << "  requirement: " << report::fmt(app.latency_floor_ms, 1)
            << "-" << report::fmt(app.latency_ceiling_ms, 0) << " ms, "
            << report::fmt(app.data_gb_per_entity_day, 1)
            << " GB/entity/day (quadrant "
            << to_string(quadrant_of(app)) << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const topology::CloudRegistry cloud =
      topology::CloudRegistry::campaign_footprint();
  const net::LatencyModel internet;

  if (argc >= 3) {
    const apps::Application* app = apps::find_application(argv[1]);
    const geo::Country* country = geo::find_country(argv[2]);
    if (app == nullptr || country == nullptr) {
      std::cerr << "unknown application slug or ISO-2 country code\n"
                << "apps: ";
      for (const auto& a : apps::application_catalog()) {
        std::cerr << a.id << ' ';
      }
      std::cerr << '\n';
      return 1;
    }
    advise(*app, *country, cloud, internet);
    return 0;
  }

  // No arguments: the full matrix for three contrasting countries.
  for (const char* iso2 : {"DE", "BR", "KE"}) {
    const geo::Country* country = geo::find_country(iso2);
    std::cout << "=== " << country->name << " ===\n";
    for (const char* slug :
         {"cloud-gaming", "ar-vr", "traffic-monitoring", "wearables",
          "smart-city"}) {
      advise(*apps::find_application(slug), *country, cloud, internet);
    }
    std::cout << '\n';
  }
  return 0;
}
