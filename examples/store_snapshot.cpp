// store_snapshot — snapshot persistence end to end, driven by the
// [snapshot] scenario section:
//  * cold start: run the scenario's campaign, stream it through a
//    ColumnarStore (plus the delta log when configured), and save the
//    base snapshot;
//  * warm start: when the snapshot file already exists, load it back
//    (buffered or mmap, eager or lazy) instead of replaying the
//    campaign, apply any delta log, and optionally compact the log into
//    a fresh base.
// Either path ends in the same store; a sample oracle query proves it
// answers.
//
// Usage:  store_snapshot [scenario.ini]
//         (no scenario: 7-day defaults, snapshot at store.snap)
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "shears.hpp"

int main(int argc, char** argv) {
  using namespace shears;

  config::Scenario scenario;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open scenario " << argv[1] << '\n';
      return 1;
    }
    scenario = config::parse_scenario(in);
  } else {
    scenario.campaign.duration_days = 7;
    scenario.snapshot.path = "store.snap";
  }
  if (scenario.snapshot.path.empty()) {
    std::cerr << "scenario has no [snapshot] path — nothing to persist\n";
    return 1;
  }

  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate(scenario.fleet);
  const topology::CloudRegistry cloud = scenario.make_registry();
  const net::LatencyModel model(scenario.model);
  const faults::FaultSchedule schedule = scenario.make_fault_schedule();

  serve::SnapshotLoadOptions options;
  options.mmap = scenario.snapshot.mode == "mmap";
  options.lazy_summaries = scenario.snapshot.lazy;

  serve::ColumnarStore store(&fleet, &cloud);
  const bool have_snapshot =
      std::ifstream(scenario.snapshot.path).good();
  try {
    if (have_snapshot) {
      // Warm start: the snapshot replaces the campaign replay.
      store = serve::load_snapshot(scenario.snapshot.path, &fleet, &cloud,
                                   {}, options);
      std::cout << "loaded " << scenario.snapshot.path << " ("
                << scenario.snapshot.mode
                << (scenario.snapshot.lazy ? ", lazy" : "") << "): "
                << store.rows_stored() << " rows\n";
      if (!scenario.snapshot.delta.empty() &&
          std::ifstream(scenario.snapshot.delta).good()) {
        const std::size_t segments =
            serve::apply_delta_log(store, scenario.snapshot.delta);
        std::cout << "applied " << segments << " delta segments from "
                  << scenario.snapshot.delta << " -> "
                  << store.rows_stored() << " rows\n";
      }
      store.refresh();
      if (scenario.snapshot.compact && !scenario.snapshot.delta.empty()) {
        serve::DeltaLog log(&store, scenario.snapshot.delta,
                            serve::DeltaLog::Open::kTruncate);
        log.compact(scenario.snapshot.path);
        std::cout << "compacted the delta log into "
                  << scenario.snapshot.path << '\n';
      }
    } else {
      // Cold start: campaign -> store (and delta log, when configured),
      // then persist the base.
      atlas::Campaign campaign(fleet, cloud, model, scenario.campaign,
                               schedule.empty() ? nullptr : &schedule);
      if (scenario.snapshot.delta.empty()) {
        campaign.attach_sink(&store);
        (void)campaign.run();
        store.refresh();
        serve::save_snapshot(store, scenario.snapshot.path);
      } else {
        serve::DeltaLog log(&store, scenario.snapshot.delta);
        campaign.attach_sink(&log);
        (void)campaign.run();
        store.refresh();
        log.compact(scenario.snapshot.path);
      }
      std::cout << "ran " << scenario.campaign.duration_days
                << "-day campaign and saved " << scenario.snapshot.path
                << ": " << store.rows_stored() << " rows\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "snapshot persistence failed: " << error.what() << '\n';
    return 1;
  }

  // The restored (or fresh) store must answer — the paper's feasibility
  // question as the smoke query.
  serve::Oracle oracle(&store);
  serve::Query query;
  query.kind = serve::QueryKind::kFeasibility;
  query.country_iso2 = "DE";
  query.app_id = "cloud-gaming";
  const serve::Answer answer = oracle.answer_one(query);
  if (answer.ok) {
    std::cout << std::fixed << std::setprecision(1)
              << "cloud gaming from DE (best " << answer.best_ms
              << " ms): " << to_string(answer.verdict) << '\n';
  }
  return 0;
}
