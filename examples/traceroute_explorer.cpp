// traceroute_explorer — "where is the delay?" for one user/region pair:
// prints the segment decomposition and a sampled traceroute, the way a
// practitioner would debug a slow path.
//
// Usage:  traceroute_explorer [iso2] [access] [region-id]
//         traceroute_explorer KE dsl eu-central-1
#include <iostream>
#include <string>

#include "shears.hpp"

namespace {

using namespace shears;

net::AccessTechnology parse_access(std::string_view name) {
  for (const net::AccessTechnology t : net::kAllAccessTechnologies) {
    if (to_string(t) == name) return t;
  }
  std::cerr << "unknown access technology '" << name << "', using ethernet\n";
  return net::AccessTechnology::kEthernet;
}

const topology::CloudRegion* parse_region(std::string_view id) {
  for (const topology::CloudRegion& r : topology::all_regions()) {
    if (r.region_id == id) return &r;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string iso2 = argc > 1 ? argv[1] : "KE";
  const std::string access_name = argc > 2 ? argv[2] : "dsl";
  const std::string region_id = argc > 3 ? argv[3] : "eu-central-1";

  const geo::Country* country = geo::find_country(iso2);
  const topology::CloudRegion* region = parse_region(region_id);
  if (country == nullptr || region == nullptr) {
    std::cerr << "unknown country or region id\n";
    return 1;
  }
  const net::Endpoint user{country->site, country->tier,
                           parse_access(access_name)};
  const net::LatencyModel model;

  std::cout << "path: " << country->name << " (" << access_name << ", tier "
            << static_cast<int>(country->tier) << ") -> " << region->city
            << " [" << to_string(region->provider) << " " << region->region_id
            << "]\n\n";

  const net::PathCharacteristics path = model.path_to(user, *region);
  std::cout << "geodesic " << report::fmt(path.geodesic_km, 0)
            << " km, routed " << report::fmt(path.routed_km, 0) << " km ("
            << report::fmt(path.routed_km / std::max(path.geodesic_km, 1.0), 2)
            << "x stretch), ~" << report::fmt(path.hop_count, 0) << " hops\n";
  std::cout << "expected RTT: " << report::fmt(model.baseline_rtt_ms(user, *region), 1)
            << " ms\n\n";

  std::cout << "segment decomposition:\n";
  const net::SegmentBreakdown breakdown =
      net::decompose_path(model, user, *region);
  for (std::size_t i = 0; i < net::kPathSegmentCount; ++i) {
    const auto segment = static_cast<net::PathSegment>(i);
    std::cout << "  " << to_string(segment) << ": "
              << report::fmt(breakdown[segment], 2) << " ms ("
              << report::fmt_percent(breakdown.share(segment), 0) << ")\n";
  }

  std::cout << "\nsampled traceroute:\n";
  stats::Xoshiro256 rng(stats::fnv1a64(iso2.data(), iso2.size()));
  for (const net::TracerouteHop& hop :
       net::traceroute(model, user, *region, rng)) {
    std::cout << "  " << hop.ttl << "\t" << hop.label << "\t"
              << (hop.responded ? report::fmt(hop.rtt_ms, 2) + " ms" : "*")
              << "\t[" << to_string(hop.segment) << "]\n";
  }
  return 0;
}
