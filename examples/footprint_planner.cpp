// footprint_planner — the optimizer end to end:
//  1. run a campaign into the columnar store (the measured base world),
//  2. generate candidate sites (cities x placement tiers) from the
//     scenario's [optimizer] section,
//  3. lazy-greedy search with overlay-evaluated what-ifs, swap-refined,
//  4. report the chosen footprint, its coverage gain, and a what-if
//     query answered through the scenario overlay without a rebuild.
//
// Build & run:  ./build/examples/footprint_planner [scenario.ini]
#include <fstream>
#include <iomanip>
#include <iostream>

#include "shears.hpp"

namespace {

shears::edge::EdgePlacement placement_from(const std::string& name) {
  using shears::edge::EdgePlacement;
  if (name == "basestation") return EdgePlacement::kBasestation;
  if (name == "central-office") return EdgePlacement::kCentralOffice;
  if (name == "regional-site") return EdgePlacement::kRegionalSite;
  return EdgePlacement::kMetroPop;  // config validated the name already
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shears;

  config::Scenario scenario;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open scenario " << argv[1] << '\n';
      return 1;
    }
    scenario = config::parse_scenario(in);
  } else {
    scenario = config::parse_scenario_string(
        "[fleet]\nprobes = 1600\n[campaign]\ndays = 7\n"
        "[optimizer]\nplacements = metro-pop, regional-site\n"
        "max_cities_per_country = 2\nmin_metro_population_m = 2\n"
        "max_sites = 6\n");
  }

  // 1. The measured base world.
  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate(scenario.fleet);
  const topology::CloudRegistry cloud = scenario.make_registry();
  const net::LatencyModel internet(scenario.model);
  serve::ColumnarStore store(&fleet, &cloud);
  atlas::Campaign campaign(fleet, cloud, internet, scenario.campaign);
  campaign.attach_sink(&store);
  campaign.run();
  store.refresh();
  std::cout << "store: " << store.rows_stored() << " rows, "
            << store.shard_count() << " shards\n";

  // 2. Candidate universe from the scenario.
  opt::CandidateConfig candidates;
  if (!scenario.optimizer.placements.empty()) {
    candidates.placements.clear();
    for (const std::string& name : scenario.optimizer.placements) {
      candidates.placements.push_back(placement_from(name));
    }
  }
  candidates.max_cities_per_country =
      static_cast<std::size_t>(scenario.optimizer.max_cities_per_country);
  candidates.min_metro_population_m =
      scenario.optimizer.min_metro_population_m;
  std::vector<opt::CandidateSite> universe =
      opt::generate_candidates(candidates);
  std::cout << "candidates: " << universe.size() << " (cities x placements)\n";

  // 3. The search.
  opt::SearchConfig search;
  search.threshold_ms = scenario.optimizer.threshold_ms;
  search.max_sites = static_cast<std::size_t>(scenario.optimizer.max_sites);
  search.swap_passes =
      static_cast<std::size_t>(scenario.optimizer.swap_passes);
  search.wireless_scale = scenario.optimizer.wireless_scale;
  search.route_scale = scenario.optimizer.route_scale;
  opt::OverlayConfig overlay;
  overlay.path = scenario.model.path;
  const opt::FootprintSearch optimizer(&store, std::move(universe), search,
                                       overlay);
  const opt::FootprintPlan plan = optimizer.plan();

  std::cout << std::fixed << std::setprecision(4);
  std::cout << "coverage at " << std::setprecision(0) << search.threshold_ms
            << " ms: " << std::setprecision(4) << plan.base_objective
            << " -> " << plan.objective << " ("
            << plan.sites.size() << " sites)\n";
  for (const opt::PlanStep& step : plan.steps) {
    std::cout << "  + " << optimizer.candidates()[step.candidate].label
              << "  gain " << step.gain << '\n';
  }

  // 4. A what-if answered through the overlay — the store is untouched.
  const opt::OverlayView view =
      optimizer.evaluator().evaluate(optimizer.delta_for(plan.sites));
  std::cout << "overlay: " << view.affected_cells() << " cells, "
            << view.affected_countries() << " country rollups substituted\n";
  const serve::Oracle oracle(&store);
  for (const opt::CountryCoverage& c : plan.coverage.countries) {
    if (c.country == nullptr || plan.sites.empty()) break;
    if (c.country != optimizer.candidates()[plan.sites.front()].country) {
      continue;
    }
    serve::Query q;
    q.kind = serve::QueryKind::kBestRtt;
    q.country_iso2 = c.country->iso2;
    serve::Answer base_answer;
    serve::Answer what_if;
    oracle.answer(std::span<const serve::Query>(&q, 1),
                  std::span<serve::Answer>(&base_answer, 1));
    oracle.answer(std::span<const serve::Query>(&q, 1),
                  std::span<serve::Answer>(&what_if, 1), &view);
    if (base_answer.ok && what_if.ok) {
      std::cout << std::setprecision(1) << "best RTT from "
                << c.country->iso2 << ": " << base_answer.best_ms
                << " ms -> " << what_if.best_ms << " ms with the plan\n";
    }
    break;
  }
  return 0;
}
