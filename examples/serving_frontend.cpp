// The serving front-end end to end: a campaign feeds the columnar
// store, the oracle answers over it, and the framed session layer
// (src/front) runs the peak-load study of scenarios/serving_peak_load.ini
// on its simulated clock — open Poisson arrivals at ~8x the modelled
// service capacity, zipf-skewed queries, 3 ms deadlines, retrying
// clients. Prints the deterministic session report: what was admitted,
// what was shed where, and the latency tail of what was answered.
//
// With --loopback the same store and oracle are served over real TCP
// instead: the epoll socket transport on 127.0.0.1, closed-loop client
// threads, wall-clock latencies (src/front/transport).
//
//   ./build/examples/serving_frontend [days] [--loopback]   (default 7)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "atlas/campaign.hpp"
#include "atlas/measurement.hpp"
#include "atlas/placement.hpp"
#include "front/server.hpp"
#include "front/traffic.hpp"
#include "front/transport/loopback.hpp"
#include "front/transport/socket_server.hpp"
#include "net/latency_model.hpp"
#include "obs/metrics.hpp"
#include "serve/columnar.hpp"
#include "serve/oracle.hpp"
#include "topology/registry.hpp"

using namespace shears;

namespace {

int run_loopback(const serve::Oracle& oracle, serve::ColumnarStore& store,
                 const std::vector<serve::Query>& corpus) {
  if (!front::sockets_available()) {
    std::printf("\nloopback sockets unavailable in this sandbox; nothing "
                "to serve\n");
    return 1;
  }
  // Token buckets well below the hammering closed-loop offered rate:
  // the fairness machinery, not the oracle, sets the completed rate.
  front::FrontConfig front_config;
  front_config.client_rate_qps = 500;
  front_config.client_burst = 16;

  front::LoopbackConfig config;
  config.clients = 8;
  config.requests_per_client = 500;
  config.slo_ms = 5.0;
  config.client.max_retries = 3;
  config.client.backoff_base_us = 500;
  config.client.backoff_cap_us = 2'000;

  std::printf("\n== loopback session: %u closed-loop TCP clients x %llu "
              "requests, %.1f ms SLO ==\n",
              config.clients,
              static_cast<unsigned long long>(config.requests_per_client),
              config.slo_ms);
  front::FrontServer server(&oracle, &store, front_config);
  const front::LoopbackReport report =
      front::run_loopback(server, corpus, config);

  const auto llu = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  std::printf("offered   %8llu   (+ %llu retries = %llu on the wire)\n",
              llu(report.offered), llu(report.retries), llu(report.sent));
  std::printf("completed %8llu   failed %llu\n", llu(report.completed),
              llu(report.failed));
  std::printf("shed      %8llu   (throttled %llu, queue-full %llu)\n",
              llu(report.server.shed_throttled +
                  report.server.shed_queue_full +
                  report.server.shed_deadline),
              llu(report.server.shed_throttled),
              llu(report.server.shed_queue_full));
  std::printf("transport %8llu accepted  %llu KiB in / %llu KiB out, "
              "%llu partial writes\n",
              llu(report.transport.accepted),
              llu(report.transport.bytes_in >> 10),
              llu(report.transport.bytes_out >> 10),
              llu(report.transport.partial_writes));
  std::printf("latency   p50 %.3f / p95 %.3f / p99 %.3f ms  (wall clock)\n",
              report.p50_ms, report.p95_ms, report.p99_ms);
  std::printf("qps: %.0f over %.1f ms   (SLO %s, transport %s)\n",
              report.qps, report.duration_ms,
              report.slo_met ? "met" : "MISSED",
              report.drained ? "drained" : "NOT DRAINED");
  return report.slo_met && report.drained ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool loopback = false;
  int days = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--loopback") == 0) {
      loopback = true;
    } else {
      days = std::atoi(argv[i]);
    }
  }
  std::printf("== campaign (%d day%s) ==\n", days, days == 1 ? "" : "s");
  const auto registry = topology::CloudRegistry::campaign_footprint();
  const auto fleet = atlas::ProbeFleet::generate({});
  const net::LatencyModel model{};
  atlas::CampaignConfig campaign_config;
  campaign_config.duration_days = days > 0 ? days : 7;
  const auto dataset =
      atlas::Campaign(fleet, registry, model, campaign_config).run();
  std::printf("%zu measurements\n", dataset.size());

  serve::ColumnarStore store =
      serve::ColumnarStore::build(dataset, serve::StoreConfig{0});
  const serve::Oracle oracle(&store, serve::OracleConfig{});
  const std::vector<serve::Query> corpus =
      front::make_corpus(dataset.fleet(), 4096);

  if (loopback) return run_loopback(oracle, store, corpus);

  // The peak-load regime of scenarios/serving_peak_load.ini: a 100 us +
  // 200 us/query service model against 40 kqps offered, with deadlines
  // and backoffs sized so completed requests meet the SLO by
  // construction.
  front::FrontConfig front_config;
  front_config.queue_capacity = 256;
  front_config.max_batch = 64;
  front_config.batch_overhead_us = 100;
  front_config.per_query_us = 200;
  front_config.client_rate_qps = 2000;
  front_config.client_burst = 16;

  front::TrafficConfig traffic;
  traffic.arrival = front::ArrivalMode::kOpen;
  traffic.clients = 64;
  traffic.offered_qps = 40'000;
  traffic.zipf_exponent = 1.1;
  traffic.duration_us = 1'000'000;
  traffic.slo_ms = 5.0;
  traffic.seed = 2020;
  traffic.client.deadline_us = 3000;
  traffic.client.max_retries = 2;
  traffic.client.backoff_base_us = 500;
  traffic.client.backoff_cap_us = 1000;

  std::printf("\n== front-end session: %u clients, %u qps offered, "
              "%.1f ms SLO ==\n",
              traffic.clients, traffic.offered_qps, traffic.slo_ms);
  obs::MetricsRegistry metrics;
  front::FrontServer server(&oracle, &store, front_config);
  server.attach_metrics(&metrics);
  const front::TrafficReport report =
      front::run_traffic(server, corpus, traffic, &metrics);

  const auto llu = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  std::printf("offered   %8llu   (+ %llu retries = %llu on the wire)\n",
              llu(report.offered), llu(report.retries), llu(report.sent));
  std::printf("completed %8llu   failed %llu\n", llu(report.completed),
              llu(report.failed));
  std::printf("admitted  %8llu   answered %llu over %llu batches\n",
              llu(report.server.admitted), llu(report.server.answered),
              llu(report.server.batches));
  std::printf("shed      %8llu   (deadline %llu, throttled %llu, "
              "queue-full %llu)\n",
              llu(report.server.shed_deadline + report.server.shed_throttled +
                  report.server.shed_queue_full),
              llu(report.server.shed_deadline),
              llu(report.server.shed_throttled),
              llu(report.server.shed_queue_full));
  std::printf("expired   %8llu   (in queue %llu, served late %llu)\n",
              llu(report.server.expired_in_queue + report.server.expired_served),
              llu(report.server.expired_in_queue),
              llu(report.server.expired_served));
  std::printf("latency   p50 %.3f / p95 %.3f / p99 %.3f ms\n", report.p50_ms,
              report.p95_ms, report.p99_ms);
  std::printf("qps under SLO: %.0f   (SLO %s, server %s)\n", report.qps,
              report.slo_met ? "met" : "MISSED",
              report.drained ? "drained" : "NOT DRAINED");
  return report.slo_met && report.drained ? 0 : 1;
}
