// run_scenario — the configurable experiment runner: loads a scenario
// file, runs the campaign it describes, and prints the standard summary
// (Fig. 4 bands, continent CDF anchors, Fig. 7 ratio). Sweeps become a
// folder of scenario files instead of recompiles.
//
// Usage:  run_scenario <scenario.ini>
//         run_scenario --print-default > my_scenario.ini
#include <fstream>
#include <iostream>
#include <string>

#include "config/scenario.hpp"
#include "shears.hpp"

int main(int argc, char** argv) {
  using namespace shears;

  if (argc < 2) {
    std::cerr << "usage: run_scenario <scenario.ini> | --print-default\n";
    return 1;
  }
  const std::string arg = argv[1];
  if (arg == "--print-default") {
    std::cout << config::default_scenario_text();
    return 0;
  }

  std::ifstream in(arg);
  if (!in) {
    std::cerr << "cannot open " << arg << '\n';
    return 1;
  }
  config::Scenario scenario;
  try {
    scenario = config::parse_scenario(in);
  } catch (const std::exception& e) {
    std::cerr << "scenario error: " << e.what() << '\n';
    return 1;
  }

  const atlas::ProbeFleet fleet = atlas::ProbeFleet::generate(scenario.fleet);
  const topology::CloudRegistry registry = scenario.make_registry();
  const net::LatencyModel model(scenario.model);
  std::cout << "scenario '" << scenario.name << "': " << fleet.size()
            << " probes, " << registry.size() << " regions, "
            << scenario.campaign.duration_days << " days\n";
  if (registry.empty()) {
    std::cerr << "footprint is empty (year too early / providers too "
                 "narrow)\n";
    return 1;
  }

  const faults::FaultSchedule schedule = scenario.make_fault_schedule();
  const atlas::Campaign campaign(fleet, registry, model, scenario.campaign,
                                 schedule.empty() ? nullptr : &schedule);
  atlas::CampaignTelemetry telemetry;
  const auto dataset = campaign.run(telemetry);
  std::cout << "dataset: " << dataset.size() << " bursts, loss "
            << report::fmt_percent(dataset.loss_fraction()) << "\n";
  if (!schedule.empty()) {
    std::cout << "faults: "
              << report::fmt_percent(dataset.faulted_fraction())
              << " of bursts flagged, " << telemetry.bursts_retried
              << " retried, " << telemetry.bursts_recovered
              << " recovered, " << telemetry.quarantine_entries
              << " quarantine entries\n";
  }
  std::cout << '\n';

  const auto bands =
      core::band_country_latencies(core::country_min_latency(dataset));
  std::cout << "Fig.4 bands: <10ms " << bands.under_10 << " | 10-20ms "
            << bands.from_10_to_20 << " | >=100ms " << bands.over_100
            << " (of " << bands.total() << ")\n";

  report::TextTable table;
  table.set_header({"continent", "probes", "median min", "F(MTP)", "F(PL)"});
  const auto mins = core::min_rtt_by_continent(dataset);
  for (const geo::Continent c : geo::kAllContinents) {
    const auto& sample = mins[geo::index_of(c)];
    if (sample.empty()) continue;
    const stats::Ecdf ecdf(sample);
    table.add_row({std::string(to_string(c)), std::to_string(sample.size()),
                   report::fmt(ecdf.median(), 1),
                   report::fmt_percent(ecdf.fraction_at_or_below(20.0)),
                   report::fmt_percent(ecdf.fraction_at_or_below(100.0))});
  }
  std::cout << table.to_string();

  const core::AccessComparison cmp = core::compare_access(dataset);
  if (!cmp.wired.empty() && !cmp.wireless.empty()) {
    std::cout << "\nwired vs wireless medians: "
              << report::fmt(cmp.wired_median, 1) << " vs "
              << report::fmt(cmp.wireless_median, 1) << " ms ("
              << report::fmt(cmp.median_ratio, 2) << "x)\n";
  }
  return 0;
}
